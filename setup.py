"""Setuptools shim for environments that cannot run PEP 517 builds.

All metadata lives in pyproject.toml; ``python setup.py develop`` remains
usable on fully offline machines lacking the ``wheel`` package (see the
README's installation notes).
"""

from setuptools import setup

setup()

"""Brick/lane statistics tests (repro.core.stats)."""

import numpy as np
import pytest

from repro.core.stats import (
    brick_stats,
    lane_balance,
    structural_speedup_bound,
)
from repro.hw.config import PAPER_CONFIG, small_config
from repro.nn.activations import sparse_activations

from conftest import make_conv_work


class TestBrickStats:
    def test_dense_array(self):
        stats = brick_stats(np.ones((32, 4, 4)), brick_size=16)
        assert stats.mean_nonzero == 16
        assert stats.full_fraction == 1.0
        assert stats.empty_fraction == 0.0
        assert stats.zero_fraction == 0.0

    def test_zero_fraction_consistent(self, rng):
        a = sparse_activations((32, 8, 8), 0.45, rng)
        stats = brick_stats(a)
        assert stats.zero_fraction == pytest.approx((a == 0).mean(), abs=1e-9)

    def test_histogram_sums_to_bricks(self, rng):
        a = sparse_activations((16, 6, 6), 0.5, rng)
        stats = brick_stats(a)
        assert sum(stats.histogram.values()) == stats.num_bricks


class TestStructuralBound:
    def test_balanced_shape_has_no_penalty(self):
        # i=256: 16 brick columns on 16 lanes — the paper's sweet spot.
        assert structural_speedup_bound(3, 16, 16) == 1.0

    def test_google_1x1_shallow_penalty(self):
        # A 1x1 conv over 192 channels: 12 bricks on 16 lanes.
        assert structural_speedup_bound(1, 12, 16) == pytest.approx(12 / 16)

    def test_vgg_conv2_penalty(self):
        # 3x3 over 64 channels: 36 bricks, busiest lane holds 3.
        assert structural_speedup_bound(3, 4, 16) == pytest.approx(36 / 48)

    def test_alex_conv2_group_penalty(self):
        # 5x5 over 48-deep groups: 75 bricks, busiest lane holds 5.
        assert structural_speedup_bound(5, 3, 16) == pytest.approx(75 / 80)


class TestEncoderThroughput:
    def test_deep_layers_have_ample_margin(self, rng):
        """Section IV-B4's claim: windows take far longer than the 16
        cycles the serial encoder needs per output brick."""
        from repro.core.stats import encoder_throughput_margin

        work, _ = make_conv_work(
            rng, in_depth=64, in_y=8, in_x=8, num_filters=8, zero_fraction=0.44
        )
        assert encoder_throughput_margin(work, PAPER_CONFIG) > 1.0

    def test_1x1_shallow_layers_are_the_tight_case(self, rng):
        """google-style 1x1 reduce layers have short windows — the margin
        shrinks toward (and below) one, showing where double-buffered
        output bricks would matter."""
        from repro.core.stats import encoder_throughput_margin

        deep, _ = make_conv_work(
            rng, in_depth=64, in_y=8, in_x=8, num_filters=8, zero_fraction=0.44
        )
        shallow, _ = make_conv_work(
            rng, in_depth=32, in_y=8, in_x=8, num_filters=8, kernel=1, pad=0,
            zero_fraction=0.44,
        )
        assert encoder_throughput_margin(shallow, PAPER_CONFIG) < (
            encoder_throughput_margin(deep, PAPER_CONFIG)
        )


class TestLaneBalance:
    def test_utilization_in_unit_interval(self, rng):
        work, _ = make_conv_work(rng, zero_fraction=0.5)
        stats = lane_balance(work, small_config())
        assert 0.0 < stats.mean_lane_utilization <= 1.0

    def test_dense_balanced_layer_fully_utilized(self, rng):
        work, _ = make_conv_work(
            rng, in_depth=16, kernel=2, pad=0, zero_fraction=0.0
        )
        stats = lane_balance(work, small_config())  # 4 bricks/col = 4 lanes
        assert stats.mean_lane_utilization == pytest.approx(1.0)
        assert stats.structural_bound == 1.0
        assert stats.value_stall_fraction == 0.0

    def test_sparser_input_lowers_utilization(self, rng):
        cfg = PAPER_CONFIG
        dense, _ = make_conv_work(
            rng, in_depth=64, in_y=8, in_x=8, zero_fraction=0.0
        )
        sparse, _ = make_conv_work(
            rng, in_depth=64, in_y=8, in_x=8, zero_fraction=0.6
        )
        u_dense = lane_balance(dense, cfg).mean_lane_utilization
        u_sparse = lane_balance(sparse, cfg).mean_lane_utilization
        assert u_sparse < u_dense + 1e-9

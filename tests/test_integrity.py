"""Integrity defense: ABFT checksums, CRC-guarded arena, env validators.

Four suites:

* **Policy/env** — one shared checker drives all four warn-and-default
  environment validators (``CNVLUTIN_ENGINE_CACHE_MB``,
  ``CNVLUTIN_SPARSE_CUTOFF``, ``CNVLUTIN_INTEGRITY``,
  ``CNVLUTIN_INTEGRITY_RECHECK_S``): junk warns and falls back, valid
  values parse silently, absence is silent.
* **ABFT** — the GEMM/matvec checksum invariants: clean products pass,
  perturbations above the exported detectability thresholds raise
  :class:`IntegrityError`, verification never mutates the product, and
  a verified kernel run is byte-identical to an unverified one (the
  property the serving tier's bit-identity contract rides on).
* **Hypothesis property** — across the dtype × stride × groups grid of
  ``tests/differential.py``: any single-element perturbation of the
  weights or the patch matrix above the dtype-tolerance threshold is
  detected (blind coordinates — dead columns, cancelling row sums — are
  excluded via the helpers' ``inf`` returns, which is their documented
  meaning).
* **Arena** — per-segment CRC32 in the manifest: verify pinpoints a
  flipped byte's segment, attach rejects a corrupt arena, and the
  startup sweeper unlinks orphaned segments of dead pids only.
"""

import os
import warnings

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from differential import grid_cases, prune, sparse_env
from repro.nn import sparse as zskip
from repro.nn.engine import DEFAULT_CACHE_MB, _cache_budget_bytes
from repro.nn.layers import conv2d, fully_connected
from repro.nn.inference import WeightStore
from repro.nn.shm import ARENA_PREFIX, SharedWeightArena, sweep_stale_arenas
from repro.reliability import integrity
from repro.reliability.integrity import (
    DEFAULT_RECHECK_S,
    INTEGRITY_ENV,
    RECHECK_ENV,
    IntegrityError,
    detectable_patch_delta,
    detectable_weight_delta,
    gemm_tolerance,
    resolve_policy,
    resolve_recheck_s,
    should_verify,
    verify_gemm,
    verify_matvec,
)


# ----------------------------------------------------------------------
# the shared env-validator contract
# ----------------------------------------------------------------------
def check_env_validator(monkeypatch, env, resolve, junk, default, valid,
                        expected):
    """All warn-and-default validators obey one contract: junk warns
    (naming the variable) and returns the default, valid values parse
    silently, absence is silent."""
    integrity._policy_memo.clear()  # warnings memoize per raw string
    monkeypatch.setenv(env, junk)
    with pytest.warns(RuntimeWarning, match=env):
        assert resolve() == default
    monkeypatch.setenv(env, valid)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve() == expected
    monkeypatch.delenv(env)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        resolve()


VALIDATOR_CASES = [
    pytest.param(
        "CNVLUTIN_ENGINE_CACHE_MB", _cache_budget_bytes,
        "banana", int(DEFAULT_CACHE_MB * 1024 * 1024),
        "64", 64 * 1024 * 1024,
        id="engine-cache-mb",
    ),
    pytest.param(
        zskip.CUTOFF_ENV, zskip.resolve_cutoff,
        "1.5", zskip.DEFAULT_CUTOFF,
        "0.25", 0.25,
        id="sparse-cutoff",
    ),
    pytest.param(
        INTEGRITY_ENV, resolve_policy,
        "bogus", ("off", 0.0),
        "sample:0.25", ("sample", 0.25),
        id="integrity-policy",
    ),
    pytest.param(
        RECHECK_ENV, resolve_recheck_s,
        "-3", DEFAULT_RECHECK_S,
        "1.5", 1.5,
        id="integrity-recheck",
    ),
]


class TestEnvValidators:
    @pytest.mark.parametrize(
        "env,resolve,junk,default,valid,expected", VALIDATOR_CASES
    )
    def test_warn_and_default_contract(
        self, monkeypatch, env, resolve, junk, default, valid, expected
    ):
        check_env_validator(
            monkeypatch, env, resolve, junk, default, valid, expected
        )

    @pytest.mark.parametrize("raw,parsed", [
        ("off", ("off", 0.0)),
        ("always", ("always", 1.0)),
        ("ALWAYS", ("always", 1.0)),
        (" sample:0.05 ", ("sample", 0.05)),
        ("sample:1", ("sample", 1.0)),
        ("sample:0", ("sample", 0.0)),
    ])
    def test_policy_parses(self, raw, parsed):
        assert resolve_policy(raw) == parsed

    @pytest.mark.parametrize("raw", [
        "on", "sample:", "sample:nan", "sample:1.5", "sample:-0.1", "1",
    ])
    def test_explicit_junk_policy_raises(self, raw):
        # Explicit arguments are caller bugs, not environment typos.
        with pytest.raises(ValueError):
            resolve_policy(raw)

    def test_junk_policy_warns_once_per_value(self, monkeypatch):
        integrity._policy_memo.clear()
        monkeypatch.setenv(INTEGRITY_ENV, "garbage-once")
        with pytest.warns(RuntimeWarning):
            resolve_policy()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_policy() == ("off", 0.0)  # memoized, silent


class TestShouldVerify:
    def test_off_never_always_always(self):
        assert not any(
            should_verify(("off", 0.0)) for _ in range(50)
        )
        assert all(should_verify(("always", 1.0)) for _ in range(50))

    def test_sampling_extremes(self):
        assert not any(should_verify(("sample", 0.0)) for _ in range(200))
        assert all(should_verify(("sample", 1.0)) for _ in range(200))

    def test_sampling_rate_roughly_holds(self):
        hits = sum(should_verify(("sample", 0.25)) for _ in range(2000))
        assert 300 < hits < 700  # deterministic hash, generous band


# ----------------------------------------------------------------------
# ABFT invariants
# ----------------------------------------------------------------------
def make_gemm(seed=0, m=6, k=21, n=4, dtype="float64", threshold=0.0):
    rng = np.random.default_rng(seed)
    cols = prune(
        np.maximum(rng.normal(0.3, 1.0, size=(m, k)), 0.0), threshold
    ).astype(dtype)
    wt = rng.normal(size=(k, n)).astype(dtype)
    return cols, wt


class TestVerifyGemm:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_clean_product_passes(self, dtype):
        cols, wt = make_gemm(dtype=dtype)
        verify_gemm(cols, wt, cols @ wt)

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_product_corruption_detected(self, dtype):
        cols, wt = make_gemm(dtype=dtype)
        product = cols @ wt
        product[2, 1] += (1.0 + abs(float(product[2, 1]))) * 1e6
        with pytest.raises(IntegrityError, match="row 2"):
            verify_gemm(cols, wt, product)

    def test_nan_in_product_detected(self):
        cols, wt = make_gemm()
        product = cols @ wt
        product[0, 0] = np.nan
        with pytest.raises(IntegrityError):
            verify_gemm(cols, wt, product)

    def test_below_tolerance_perturbation_passes(self):
        # The bound is deliberately loose: a perturbation well inside it
        # must not fire (false positives would poison serving).
        cols, wt = make_gemm()
        product = cols @ wt
        product[1, 2] += 0.01 * float(gemm_tolerance(cols, wt)[1])
        verify_gemm(cols, wt, product)

    def test_verification_is_read_only(self):
        cols, wt = make_gemm()
        product = cols @ wt
        before = product.tobytes()
        verify_gemm(cols, wt, product)
        assert product.tobytes() == before

    def test_stale_checksum_detects_inplace_weight_flip(self):
        # The cached rowsum is the *clean* fingerprint: mutating the
        # array in place (an arena bit flip) makes the next product
        # disagree with it.
        cols, wt = make_gemm()
        verify_gemm(cols, wt, cols @ wt)  # caches clean checksums
        delta = detectable_weight_delta(cols, wt, k=3)
        assert np.isfinite(delta)
        wt[3, 1] += delta
        with pytest.raises(IntegrityError):
            verify_gemm(cols, wt, cols @ wt)


class TestVerifyMatvec:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_clean_product_passes(self, dtype):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(9, 30)).astype(dtype)
        flat = rng.normal(size=30).astype(dtype)
        verify_matvec(weights, flat, weights @ flat)

    def test_product_corruption_detected(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(size=(9, 30)).astype("float32")
        flat = rng.normal(size=30).astype("float32")
        product = weights @ flat
        product[4] += (1.0 + abs(float(product[4]))) * 1e6
        with pytest.raises(IntegrityError, match="fc checksum"):
            verify_matvec(weights, flat, product)

    def test_stale_checksum_detects_inplace_weight_flip(self):
        rng = np.random.default_rng(3)
        weights = rng.normal(size=(9, 30)).astype("float32")
        flat = np.abs(rng.normal(size=30)).astype("float32") + 0.1
        verify_matvec(weights, flat, weights @ flat)  # caches colsums
        weights[5, 7] += 1e4 * float(np.abs(weights).max())
        with pytest.raises(IntegrityError):
            verify_matvec(weights, flat, weights @ flat)


class TestKernelByteIdentity:
    """Verified runs are byte-identical to unverified runs, and the
    dense/sparse bit-identity contract survives verification."""

    def _conv_bytes(self, rng):
        activations = np.maximum(
            rng.normal(0.3, 1.0, size=(7, 8, 8)), 0.0
        ).astype("float32")
        weights = rng.normal(size=(4, 7, 3, 3)).astype("float32")
        bias = rng.normal(size=4).astype("float32")
        return conv2d(activations, weights, bias, stride=1, pad=1).tobytes()

    def _fc_bytes(self, rng):
        activations = np.maximum(
            rng.normal(0.3, 1.0, size=(5, 4, 4)), 0.0
        ).astype("float32")
        weights = rng.normal(size=(9, 80)).astype("float32")
        bias = rng.normal(size=9).astype("float32")
        return fully_connected(activations, weights, bias).tobytes()

    @pytest.mark.parametrize("kernel", ["conv", "fc"])
    def test_always_matches_off(self, monkeypatch, kernel):
        compute = self._conv_bytes if kernel == "conv" else self._fc_bytes
        blobs = {}
        for mode in ("off", "always", "sample:0.5"):
            monkeypatch.setenv(INTEGRITY_ENV, mode)
            blobs[mode] = compute(np.random.default_rng(11))
        assert blobs["always"] == blobs["off"]
        assert blobs["sample:0.5"] == blobs["off"]

    def test_sparse_modes_identical_under_verification(self, monkeypatch):
        from differential import run_conv_grid

        monkeypatch.setenv(INTEGRITY_ENV, "always")
        cases = [
            case for case in grid_cases(
                dtypes=("float32",), strides=(1, 2), pads=(1,),
                groups=(1, 2), batches=(1,), thresholds=(0.0, 0.8),
            )
        ]
        assert run_conv_grid(np.random.default_rng(5), cases) == len(cases)


class TestMemActivationsFault:
    def test_corrupt_epilogue_raises_then_recovers(self, monkeypatch):
        monkeypatch.setenv(INTEGRITY_ENV, "always")
        monkeypatch.setenv("CNVLUTIN_FAULTS", "mem:activations=corrupt@1")
        cols, wt = make_gemm(seed=7, threshold=0.3)
        with sparse_env("always"):
            gemm = lambda: zskip.partitioned_gemm(cols, wt, "always", 0.05)
            first = gemm()  # trial 0: clean
            with pytest.raises(IntegrityError):
                gemm()  # trial 1: corrupted epilogue
            again = gemm()  # trial 2: clean again
        assert np.array_equal(first, again)


# ----------------------------------------------------------------------
# hypothesis: perturbations above the threshold are always detected
# ----------------------------------------------------------------------
GRID = [
    case for case in grid_cases()
    if (case.pad, case.batch) == (1, 1)  # dtype x stride x groups x thr
]


def gemm_from_case(case, seed):
    """im2col-shaped matrices whose geometry tracks the grid case."""
    rng = np.random.default_rng(seed)
    depth = 8 if case.groups == 2 else 7
    kernel = 3
    k = (depth // case.groups) * kernel * kernel
    m = 2 + (12 // case.stride)  # more windows at smaller stride
    n = 4
    cols = prune(
        np.maximum(rng.normal(0.3, 1.0, size=(m, k)), 0.0), case.threshold
    ).astype(case.dtype)
    wt = rng.normal(size=(k, n)).astype(case.dtype)
    return cols, wt


class TestPerturbationProperty:
    @given(
        case=st.sampled_from(GRID),
        seed=st.integers(0, 2**31 - 1),
        coord=st.integers(0, 2**31 - 1),
        sign=st.sampled_from([-1.0, 1.0]),
    )
    @settings(max_examples=60)
    def test_weight_perturbation_detected(self, case, seed, coord, sign):
        cols, wt = gemm_from_case(case, seed)
        k = coord % wt.shape[0]
        n = (coord // wt.shape[0]) % wt.shape[1]
        delta = detectable_weight_delta(cols, wt, k)  # caches clean sums
        assume(np.isfinite(delta))  # dead column: documented blind spot
        wt[k, n] += np.asarray(sign * delta, dtype=wt.dtype)
        assume(float(wt[k, n]) != 0.0 or delta == 0.0)  # rounding ate it
        with pytest.raises(IntegrityError):
            verify_gemm(cols, wt, cols @ wt)

    @given(
        case=st.sampled_from(GRID),
        seed=st.integers(0, 2**31 - 1),
        coord=st.integers(0, 2**31 - 1),
        sign=st.sampled_from([-1.0, 1.0]),
    )
    @settings(max_examples=60)
    def test_patch_perturbation_detected(self, case, seed, coord, sign):
        cols, wt = gemm_from_case(case, seed)
        i = coord % cols.shape[0]
        k = (coord // cols.shape[0]) % cols.shape[1]
        product = cols @ wt
        delta = detectable_patch_delta(cols, wt, i, k)
        assume(np.isfinite(delta))  # cancelling row sums: blind spot
        perturbed = cols.copy()
        perturbed[i, k] += np.asarray(sign * delta, dtype=cols.dtype)
        assume(float(perturbed[i, k]) != float(cols[i, k]))
        with pytest.raises(IntegrityError):
            verify_gemm(perturbed, wt, product)


# ----------------------------------------------------------------------
# CRC-guarded arena + stale-segment sweeper
# ----------------------------------------------------------------------
def one_net_stores():
    rng = np.random.default_rng(9)
    return {
        "netA": WeightStore(
            weights={
                "conv1": rng.standard_normal((4, 3, 3, 3)).astype(np.float32),
                "fc1": rng.standard_normal((10, 36)).astype(np.float32),
            },
            biases={
                "conv1": rng.standard_normal(4).astype(np.float32),
                "fc1": rng.standard_normal(10).astype(np.float32),
            },
            shifts={},
        )
    }


class TestArenaCRC:
    def test_manifest_carries_crc_and_verify_passes(self):
        arena = SharedWeightArena.publish(one_net_stores())
        try:
            for entry in arena.manifest["networks"].values():
                for section in ("weights", "biases"):
                    for meta in entry[section].values():
                        assert isinstance(meta["crc32"], int)
            assert arena.verify() == []
        finally:
            arena.unlink()
            arena.close()

    def test_verify_pinpoints_flipped_segment(self):
        arena = SharedWeightArena.publish(one_net_stores())
        try:
            meta = arena.manifest["networks"]["netA"]["weights"]["fc1"]
            position = meta["offset"] + 5
            arena.shm.buf[position] ^= 0x40
            assert arena.verify() == ["netA/weights/fc1"]
            arena.shm.buf[position] ^= 0x40
            assert arena.verify() == []
        finally:
            arena.unlink()
            arena.close()

    def test_attach_rejects_corrupt_arena(self):
        arena = SharedWeightArena.publish(one_net_stores())
        try:
            meta = arena.manifest["networks"]["netA"]["biases"]["conv1"]
            arena.shm.buf[meta["offset"]] ^= 0xFF
            with pytest.raises(IntegrityError, match="netA/biases/conv1"):
                SharedWeightArena.attach(arena.manifest)
            attached = SharedWeightArena.attach(arena.manifest, verify=False)
            attached.close()
        finally:
            arena.unlink()
            arena.close()

    def test_pre_guard_manifest_attaches(self):
        # Manifests published before the CRC guard carry no checksums;
        # attach must keep working (rolling upgrade of a serving tier).
        arena = SharedWeightArena.publish(one_net_stores())
        try:
            manifest = {
                "shm": arena.manifest["shm"],
                "networks": {
                    network: {
                        "weights": {
                            layer: {
                                key: value for key, value in meta.items()
                                if key != "crc32"
                            }
                            for layer, meta in entry["weights"].items()
                        },
                        "biases": {
                            layer: {
                                key: value for key, value in meta.items()
                                if key != "crc32"
                            }
                            for layer, meta in entry["biases"].items()
                        },
                        "shifts": entry.get("shifts", {}),
                    }
                    for network, entry in arena.manifest["networks"].items()
                },
            }
            attached = SharedWeightArena.attach(manifest)
            assert attached.verify() == []  # nothing guarded, nothing bad
            attached.close()
        finally:
            arena.unlink()
            arena.close()


class TestStaleArenaSweep:
    def test_sweeps_dead_pid_segments_only(self, tmp_path):
        shm_dir = tmp_path
        # A segment "owned" by a reaped pid vs one owned by this process.
        dead = shm_dir / f"{ARENA_PREFIX}999999999-deadbeef"
        alive = shm_dir / f"{ARENA_PREFIX}{os.getpid()}-cafecafe"
        stranger = shm_dir / "unrelated-file"
        for path in (dead, alive, stranger):
            path.write_bytes(b"x")
        removed = sweep_stale_arenas(shm_dir=str(shm_dir))
        assert [os.path.basename(p) for p in removed] == [dead.name]
        assert not dead.exists()
        assert alive.exists() and stranger.exists()

    def test_ignores_unparseable_names(self, tmp_path):
        weird = tmp_path / f"{ARENA_PREFIX}notapid-token"
        noslot = tmp_path / f"{ARENA_PREFIX}12345"
        weird.write_bytes(b"x")
        noslot.write_bytes(b"x")
        assert sweep_stale_arenas(shm_dir=str(tmp_path)) == []
        assert weird.exists() and noslot.exists()

    def test_missing_dir_is_quiet(self, tmp_path):
        assert sweep_stale_arenas(shm_dir=str(tmp_path / "absent")) == []

    def test_live_arena_survives_sweep(self):
        arena = SharedWeightArena.publish(one_net_stores())
        try:
            assert arena.shm.name.startswith(ARENA_PREFIX)
            swept = sweep_stale_arenas()
            assert arena.shm.name not in {
                os.path.basename(p) for p in swept
            }
            assert arena.verify() == []
        finally:
            arena.unlink()
            arena.close()

"""Timing aggregation tests (repro.hw.timing_types)."""

import pytest

from repro.hw.counters import ActivityCounters
from repro.hw.timing_types import LayerTiming, NetworkTiming


def _layer(name, kind, cycles, events, counts=None):
    counters = ActivityCounters()
    for key, value in (counts or {}).items():
        counters.add(key, value)
    return LayerTiming(
        name=name, kind=kind, cycles=cycles, lane_events=events, counters=counters
    )


class TestLayerTiming:
    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            _layer("x", "conv", 1, {"bogus": 1.0})


class TestNetworkTiming:
    def _net(self):
        return NetworkTiming(
            network="t",
            architecture="dadiannao",
            layers=[
                _layer("conv1", "conv", 100, {"conv1": 400.0}, {"mults": 10}),
                _layer("conv2", "conv", 50, {"nonzero": 150.0, "zero": 50.0}, {"mults": 5}),
                _layer("pool", "maxpool", 10, {"other": 40.0}),
            ],
        )

    def test_totals(self):
        net = self._net()
        assert net.total_cycles == 160
        assert net.conv_cycles == 150

    def test_lane_events_merged(self):
        events = self._net().lane_events()
        assert events["conv1"] == 400.0
        assert events["nonzero"] == 150.0
        assert events["stall"] == 0.0

    def test_counters_merged_with_cycles(self):
        counters = self._net().counters()
        assert counters["mults"] == 15
        assert counters["cycles"] == 160

    def test_seconds(self):
        assert self._net().seconds(1.0) == pytest.approx(160e-9)

    def test_cycles_by_layer(self):
        assert self._net().cycles_by_layer()["conv2"] == 50

"""Synthetic data tests (repro.nn.datasets, repro.nn.activations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.activations import brick_nonzero_counts, sparse_activations, zero_fraction
from repro.nn.datasets import NUM_SHAPE_CLASSES, ShapeDataset, natural_image, natural_images


class TestNaturalImage:
    def test_shape_and_range(self, rng):
        img = natural_image((3, 32, 32), rng)
        assert img.shape == (3, 32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_spatially_correlated(self, rng):
        """Adjacent pixels correlate far more than random ones would."""
        img = natural_image((1, 64, 64), rng)[0]
        diffs_adjacent = np.abs(np.diff(img, axis=1)).mean()
        shuffled = img.reshape(-1).copy()
        rng.shuffle(shuffled)
        diffs_random = np.abs(np.diff(shuffled)).mean()
        assert diffs_adjacent < diffs_random / 2

    def test_batch_reproducible(self):
        a = natural_images((1, 16, 16), 2, seed=5)
        b = natural_images((1, 16, 16), 2, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        assert not np.array_equal(a[0], a[1])


class TestShapeDataset:
    def test_all_classes_render(self, rng):
        ds = ShapeDataset()
        for label in range(NUM_SHAPE_CLASSES):
            img = ds.render(label, rng)
            assert img.shape == (1, 24, 24)
            assert np.abs(img).max() > 0.5  # shape is visible over noise

    def test_invalid_label(self, rng):
        with pytest.raises(ValueError):
            ShapeDataset().render(NUM_SHAPE_CLASSES, rng)

    def test_batch_balanced(self):
        _, labels = ShapeDataset().batch(NUM_SHAPE_CLASSES * 4, seed=1)
        counts = np.bincount(labels, minlength=NUM_SHAPE_CLASSES)
        assert np.all(counts == 4)

    def test_classes_distinguishable(self):
        """Mean images of different classes differ substantially —
        otherwise the CNN accuracy signal would be meaningless."""
        ds = ShapeDataset(noise=0.0)
        rng = np.random.default_rng(0)
        means = []
        for label in (0, 1, 6):
            means.append(
                np.mean([ds.render(label, rng) for _ in range(8)], axis=0)
            )
        assert np.abs(means[0] - means[1]).mean() > 0.05
        assert np.abs(means[0] - means[2]).mean() > 0.05


class TestSparseActivations:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.0, 0.9), st.integers(0, 2**32 - 1))
    def test_zero_fraction_achieved(self, target, seed):
        rng = np.random.default_rng(seed)
        a = sparse_activations((16, 12, 12), target, rng)
        assert zero_fraction(a) == pytest.approx(target, abs=0.02)

    def test_nonnegative(self, rng):
        a = sparse_activations((8, 8, 8), 0.5, rng)
        assert a.min() >= 0.0

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            sparse_activations((4, 4, 4), 1.0, rng)

    def test_zeros_cluster_spatially(self, rng):
        """Correlated fields produce clustered zeros (more uneven bricks
        than i.i.d. zeros) — the structure CNV's stalls depend on."""
        corr = sparse_activations((16, 24, 24), 0.5, rng, correlation=3.0)
        iid = sparse_activations((16, 24, 24), 0.5, rng, correlation=0.0)
        var_corr = brick_nonzero_counts(corr).var()
        var_iid = brick_nonzero_counts(iid).var()
        assert var_corr > var_iid


class TestBrickCounts:
    def test_counts_shape_and_sum(self, rng):
        a = sparse_activations((20, 5, 5), 0.4, rng)
        counts = brick_nonzero_counts(a, brick_size=16)
        assert counts.shape == (5, 5, 2)  # 20 pads to 32 -> 2 bricks
        assert counts.sum() == (a != 0).sum()

    def test_counts_bounded_by_brick_size(self, rng):
        a = sparse_activations((32, 4, 4), 0.1, rng)
        counts = brick_nonzero_counts(a, brick_size=8)
        assert counts.max() <= 8

    def test_exact_small_example(self):
        a = np.zeros((4, 1, 1))
        a[1] = 5.0
        a[3] = 2.0
        counts = brick_nonzero_counts(a, brick_size=4)
        assert counts[0, 0, 0] == 2

"""Serial output-encoder tests (repro.core.encoder)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoder import Encoder
from repro.core.zfnaf import encode_brick


class TestEncoder:
    def test_matches_vectorized_encoding(self):
        neurons = np.array([0.0, 1.5, 0.0, 0.0, 2.0, 0.0, 0.0, 3.0] + [0.0] * 8)
        result = Encoder(brick_size=16).encode_brick(neurons)
        values, offsets = encode_brick(neurons)
        assert np.array_equal(result.values, values)
        assert np.array_equal(result.offsets, offsets)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from([0.0, 0.0, 1.0, -2.5, 0.25]), min_size=16, max_size=16))
    def test_property_matches_vectorized(self, neurons):
        neurons = np.array(neurons)
        result = Encoder(brick_size=16).encode_brick(neurons)
        values, offsets = encode_brick(neurons)
        assert np.array_equal(result.values, values)
        assert np.array_equal(result.offsets, offsets)

    def test_serial_cost_is_one_cycle_per_neuron(self):
        """Section IV-B4: the encoder examines one IB neuron per cycle."""
        enc = Encoder(brick_size=16)
        result = enc.encode_brick(np.zeros(16))
        assert result.cycles == 16
        assert enc.counters["encoder_cycles"] == 16

    def test_threshold_prunes_near_zero(self):
        """Section V-E: below-threshold neurons are dropped from the stream."""
        neurons = np.zeros(16)
        neurons[2] = 0.05
        neurons[7] = 0.5
        result = Encoder(brick_size=16, threshold=0.1).encode_brick(neurons)
        assert list(result.offsets) == [7]

    def test_threshold_zero_keeps_all_nonzeros(self):
        neurons = np.zeros(16)
        neurons[1] = 1e-6
        result = Encoder(brick_size=16).encode_brick(neurons)
        assert list(result.offsets) == [1]

    def test_wrong_brick_size_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Encoder(brick_size=16).encode_brick(np.zeros(8))

    def test_nm_write_counted_per_brick(self):
        enc = Encoder(brick_size=4)
        enc.encode_brick(np.ones(4))
        enc.encode_brick(np.ones(4))
        assert enc.counters["nm_writes"] == 2

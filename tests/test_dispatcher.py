"""Dispatcher tests (repro.core.dispatcher)."""

import numpy as np
import pytest

from repro.core.dispatcher import DispatchedBrick, Dispatcher, bank_pressure
from repro.hw.config import ArchConfig


def _brick(values, offsets, seq):
    return DispatchedBrick(
        values=np.array(values, dtype=float),
        offsets=np.array(offsets, dtype=int),
        seq=seq,
    )


def _cfg(lanes=2, empty=1):
    return ArchConfig(
        num_units=1,
        neuron_lanes=lanes,
        filters_per_unit=1,
        brick_size=4,
        empty_brick_cycles=empty,
    )


class TestDispatch:
    def test_independent_lane_drain(self):
        """Lanes drain at their own rate — the decoupling of Section III-C."""
        d = Dispatcher(_cfg())
        d.load_window([
            [_brick([1, 2, 3], [0, 1, 3], 0)],
            [_brick([9], [2], 0)],
        ])
        kinds = []
        for cycle in range(3):
            d.tick(cycle)
            kinds.append([s.kind for s in d.current_slots])
        assert kinds == [
            ["pair", "pair"],
            ["pair", "idle"],  # lane 1 finished, idles (stall)
            ["pair", "idle"],
        ]
        assert d.window_done

    def test_values_and_offsets_delivered_in_order(self):
        d = Dispatcher(_cfg(lanes=1))
        d.load_window([[_brick([5, 7], [1, 3], 0), _brick([2], [0], 1)]])
        got = []
        for cycle in range(3):
            d.tick(cycle)
            slot = d.current_slots[0]
            got.append((slot.value, slot.offset, slot.seq))
        assert got == [(5, 1, 0), (7, 3, 0), (2, 0, 1)]

    def test_no_bubble_between_bricks(self):
        """Prefetch hides the next brick's fetch (Section IV-B3)."""
        d = Dispatcher(_cfg(lanes=1))
        d.load_window([[_brick([1], [0], 0), _brick([2], [0], 1)]])
        d.tick(0)
        assert d.current_slots[0].kind == "pair"
        d.tick(1)
        assert d.current_slots[0].kind == "pair"
        assert d.window_done

    def test_empty_brick_costs_one_cycle(self):
        d = Dispatcher(_cfg(lanes=1, empty=1))
        d.load_window([[_brick([], [], 0), _brick([3], [2], 1)]])
        d.tick(0)
        assert d.current_slots[0].kind == "bubble"
        d.tick(1)
        assert d.current_slots[0].kind == "pair"
        assert d.current_slots[0].value == 3

    def test_free_skip_ablation(self):
        """empty_brick_cycles=0: empty bricks are skipped in zero cycles."""
        d = Dispatcher(_cfg(lanes=1, empty=0))
        d.load_window([[_brick([], [], 0), _brick([], [], 1), _brick([3], [2], 2)]])
        d.tick(0)
        assert d.current_slots[0].kind == "pair"
        assert d.current_slots[0].value == 3
        assert d.window_done

    def test_all_empty_window_free_skip(self):
        d = Dispatcher(_cfg(lanes=1, empty=0))
        d.load_window([[_brick([], [], 0), _brick([], [], 1)]])
        d.tick(0)
        assert d.current_slots[0].kind == "idle"
        assert d.window_done

    def test_nm_reads_counted_per_brick(self):
        d = Dispatcher(_cfg(lanes=1))
        d.load_window([[_brick([1], [0], 0), _brick([], [], 1), _brick([2], [1], 2)]])
        for cycle in range(3):
            d.tick(cycle)
        assert d.counters["nm_reads"] == 3

    def test_queue_count_validation(self):
        d = Dispatcher(_cfg(lanes=2))
        with pytest.raises(ValueError):
            d.load_window([[]])

    def test_window_reload(self):
        """A dispatcher is reused across windows (Section IV-B5)."""
        d = Dispatcher(_cfg(lanes=1))
        d.load_window([[_brick([1], [0], 0)]])
        d.tick(0)
        assert d.window_done
        d.load_window([[_brick([2], [1], 0)]])
        assert not d.window_done
        d.tick(1)
        assert d.current_slots[0].value == 2


class TestBankPressure:
    def test_no_conflicts(self):
        addresses = np.array([[0, 1, 2, 3]])
        hist = bank_pressure(addresses, 4)
        assert hist == {1: 4}

    def test_conflicts_counted(self):
        addresses = np.array([[0, 4, 1, -1]])  # banks 0,0,1 with 4 banks
        hist = bank_pressure(addresses, 4)
        assert hist == {2: 1, 1: 1}

    def test_idle_rows_ignored(self):
        addresses = np.full((3, 4), -1)
        assert bank_pressure(addresses, 4) == {}

"""Reproduce the paper's worked examples (Sections III-B/III-C, Figs. 3/4/7).

The simplified unit of Fig. 3 has two neuron lanes and two filter lanes
(each with two synapse sublanes); a 2x2x2 window (8 neurons, half of them
zero) takes the baseline 4 lock-step cycles.  The equivalent CNV unit of
Fig. 4 splits the front-end into two subunits consuming (value, offset)
pairs and produces *the same* outputs — 48 for filter 0 and -48 for
filter 1, the filters being negatives of each other — in just 2 cycles.
"""

import numpy as np

from repro.baseline.accelerator import DaDianNaoNode
from repro.baseline.workload import ConvWork
from repro.core.accelerator import CnvNode
from repro.core.zfnaf import encode, encode_brick
from repro.hw.config import ArchConfig


def walkthrough_setup():
    """A 2x2x2 single-window layer matching the Fig. 3/4 narrative.

    The window's four bricks (two neurons each, one per (x, y) position)
    each contain exactly one non-zero neuron, so the two CNV neuron lanes
    (two bricks each) finish in two cycles while the baseline's lock-step
    lanes need all four.  Synapses are chosen to make the filter-0 output
    48, and filter 1 is filter 0 negated, exactly as in the figures.
    """
    config = ArchConfig(
        num_units=1, neuron_lanes=2, filters_per_unit=2, brick_size=2
    )
    activations = np.zeros((2, 2, 2))
    # Bricks in (y, x) order hold (1,0), (0,2), (3,0), (0,4).
    activations[:, 0, 0] = (1, 0)
    activations[:, 0, 1] = (0, 2)
    activations[:, 1, 0] = (3, 0)
    activations[:, 1, 1] = (0, 4)
    weights = np.zeros((2, 2, 2, 2))  # (filter, z, fy, fx)
    weights[0, :, 0, 0] = (2, 9)  # 1*2 = 2
    weights[0, :, 0, 1] = (9, 5)  # 2*5 = 10
    weights[0, :, 1, 0] = (4, 9)  # 3*4 = 12
    weights[0, :, 1, 1] = (9, 6)  # 4*6 = 24  -> total 48
    weights[1] = -weights[0]
    geometry = {
        "in_depth": 2, "in_y": 2, "in_x": 2, "num_filters": 2,
        "kernel": 2, "stride": 1, "pad": 0, "groups": 1, "out_y": 1, "out_x": 1,
    }
    work = ConvWork("example", geometry, activations)
    return config, work, weights


class TestFig3Baseline:
    def test_four_lockstep_cycles(self):
        """Fig. 3 shows 3 of the 4 cycles; 'the calculation of the complete
        filter would take one additional cycle'."""
        config, work, weights = walkthrough_setup()
        result = DaDianNaoNode(config).run_conv_layer(work, weights)
        assert result.cycles == 4

    def test_outputs_are_48_and_minus_48(self):
        config, work, weights = walkthrough_setup()
        result = DaDianNaoNode(config).run_conv_layer(work, weights)
        assert result.output[0, 0, 0] == 48
        assert result.output[1, 0, 0] == -48

    def test_baseline_multiplies_the_zeros(self):
        """Four multiplications could have been avoided (Section III-B)."""
        config, work, weights = walkthrough_setup()
        result = DaDianNaoNode(config).run_conv_layer(work, weights)
        # 4 cycles x 2 lanes x 2 filters = 16 products, half ineffectual.
        assert result.counters["mults"] == 16


class TestFig4Cnv:
    def test_same_output_in_two_cycles(self):
        """'The same result as in the baseline (48, -48) is calculated in
        only two cycles.'"""
        config, work, weights = walkthrough_setup()
        result = CnvNode(config).run_conv_layer(work, weights)
        assert result.cycles == 2
        assert result.output[0, 0, 0] == 48
        assert result.output[1, 0, 0] == -48

    def test_only_effectual_products_performed(self):
        config, work, weights = walkthrough_setup()
        result = CnvNode(config).run_conv_layer(work, weights)
        # 4 non-zero neurons x 2 filters = 8 products, none ineffectual.
        assert result.counters["mults"] == 8

    def test_no_stalls_in_balanced_example(self):
        config, work, weights = walkthrough_setup()
        result = CnvNode(config).run_conv_layer(work, weights)
        assert result.counters["lane_stall"] == 0


class TestFig7Zfnaf:
    def test_section3c_encoding_example(self):
        """'if the original stream of neurons would have been (1,0,0,3)
        they will be encoded as ((1,0),(3,3))'."""
        values, offsets = encode_brick(np.array([1.0, 0.0, 0.0, 3.0]))
        assert list(zip(values, offsets)) == [(1.0, 0), (3.0, 3)]

    def test_fig7_four_element_bricks(self):
        """Fig. 7 shows ZFNAf with 4-element bricks: bricks stay at their
        conventional positions and are zero padded."""
        stream = np.array([0.0, 1.0, 2.0, 0.0, 0.0, 0.0, 0.0, 3.0])
        array = stream.reshape(8, 1, 1)
        z = encode(array, brick_size=4)
        v0, o0 = z.brick(0, 0, 0)
        v1, o1 = z.brick(0, 0, 1)
        assert list(zip(v0, o0)) == [(1.0, 1), (2.0, 2)]
        assert list(zip(v1, o1)) == [(3.0, 3)]
        # Capacity reserved regardless of content (no footprint savings).
        assert z.values.shape == (1, 1, 2, 4)

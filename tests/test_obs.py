"""Tracing + metrics (``repro.obs``) correctness tests.

Covers the observability contract: spans nest and export as valid Chrome
trace-event JSON, disabled tracing is a true no-op, worker-recorded
spans merge into the parent trace with their own pids, metrics snapshots
merge with the documented semantics (counters/histograms sum, gauges
last-wins), and — the part that guards the paper numbers — instrumented
runs produce byte-identical results to uninstrumented ones, with and
without injected faults.
"""

import json
import threading

import pytest

from repro import obs
from repro.experiments.config import PaperConfig
from repro.experiments.manifest import RunManifest, UnitRecord
from repro.experiments.report import results_to_json_doc
from repro.experiments.runner import run_all_with_manifest
from repro.obs.metrics import Histogram, MetricsRegistry, sketch_index
from repro.obs.report import main as obs_main
from repro.obs.report import metrics_report
from repro.reliability import RetryPolicy


def tiny_config(tmp_path, **overrides):
    kwargs = {
        "scale": "tiny",
        "networks": ["alex", "cnnS"],
        "num_images": 1,
        "smallcnn": False,
    }
    kwargs.update(overrides)
    return PaperConfig(cache_dir=tmp_path, **kwargs)


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Tracing and metrics are process-global; every test starts clean."""
    obs.disable_tracing()
    obs.reset_tracing()
    obs.reset_metrics()
    yield
    obs.disable_tracing()
    obs.reset_tracing()
    obs.reset_metrics()


class TestSpans:
    def test_spans_nest_and_record_depth(self):
        obs.enable_tracing()
        with obs.span("parent", cat="test", who="outer"):
            with obs.span("child", cat="test"):
                pass
        events = obs.drain_events()
        # Children exit (and append) before their parents.
        assert [e["name"] for e in events] == ["child", "parent"]
        child, parent = events
        assert parent["args"]["depth"] == 0
        assert child["args"]["depth"] == 1
        assert parent["args"]["who"] == "outer"
        # The child's interval lies inside the parent's.
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1.0
        assert child["tid"] == parent["tid"] == threading.get_ident()

    def test_disabled_tracing_adds_no_events(self):
        assert not obs.tracing_enabled()
        first = obs.span("anything", cat="test", key="value")
        with first as handle:
            handle.set(more="attrs")
        # One shared no-op object, zero buffered events.
        assert obs.span("other") is first
        assert obs.event_count() == 0

    def test_set_attaches_mid_span_attributes(self):
        obs.enable_tracing()
        with obs.span("work", cat="test") as span:
            span.set(verdict="hit")
        (event,) = obs.drain_events()
        assert event["args"]["verdict"] == "hit"

    def test_exception_is_recorded_and_span_still_closes(self):
        obs.enable_tracing()
        with pytest.raises(ValueError):
            with obs.span("doomed", cat="test"):
                raise ValueError("boom")
        (event,) = obs.drain_events()
        assert event["args"]["error"] == "ValueError"
        # The thread-local stack popped: a fresh span is root-depth again.
        with obs.span("after", cat="test"):
            pass
        (event,) = obs.drain_events()
        assert event["args"]["depth"] == 0

    def test_traced_decorator(self):
        @obs.traced(cat="test")
        def helper():
            return 41 + 1

        assert helper() == 42  # disabled: plain call, no events
        assert obs.event_count() == 0
        obs.enable_tracing()
        assert helper() == 42
        (event,) = obs.drain_events()
        assert event["name"].endswith("helper")


class TestChromeExport:
    def test_write_and_validate_roundtrip(self, tmp_path):
        obs.enable_tracing()
        with obs.span("outer", cat="test"):
            with obs.span("inner", cat="test"):
                pass
        path = tmp_path / "trace.json"
        written = obs.write_chrome_trace(path)
        assert written == 2
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert obs.validate_chrome_trace(document) == []

    def test_validation_catches_malformed_events(self):
        assert obs.validate_chrome_trace({}) == ["document has no traceEvents list"]
        problems = obs.validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "X", "ts": 1.0, "pid": 1, "tid": 1, "dur": 2.0},
                    {"name": "bad", "ph": "X", "ts": 1.0, "pid": 1, "tid": 1,
                     "dur": -5.0},
                    {"name": "old", "ph": "X", "ts": -1.0, "pid": 1, "tid": 1,
                     "dur": 0.0},
                ]
            }
        )
        assert len(problems) == 3
        assert "missing keys" in problems[0]
        assert "negative dur" in problems[1]
        assert "negative ts" in problems[2]


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter_add("hits")
        registry.counter_add("hits", 2)
        registry.gauge_set("temperature", 7.0)
        registry.observe("latency", 0.5)
        registry.observe("latency", 1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == 3
        assert snapshot["gauges"]["temperature"] == 7.0
        hist = snapshot["histograms"]["latency"]
        assert hist["count"] == 2
        assert hist["total"] == pytest.approx(2.0)
        assert hist["min"] == 0.5 and hist["max"] == 1.5
        assert registry.histograms["latency"].mean == pytest.approx(1.0)

    def test_merge_semantics(self):
        """Counters and histograms accumulate; gauges are last-wins."""
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter_add("hits", 1)
        parent.gauge_set("profile", 10.0)
        parent.observe("latency", 1.0)
        worker.counter_add("hits", 4)
        worker.gauge_set("profile", 10.0)  # idempotent restatement
        worker.observe("latency", 3.0)
        parent.merge_snapshot(worker.snapshot())
        merged = parent.snapshot()
        assert merged["counters"]["hits"] == 5
        assert merged["gauges"]["profile"] == 10.0
        assert merged["histograms"]["latency"] == {
            "count": 2, "total": 4.0, "min": 1.0, "max": 3.0,
            "buckets": {
                str(sketch_index(1.0)): 1, str(sketch_index(3.0)): 1,
            },
        }

    def test_empty_histogram_merge_is_a_noop(self):
        histogram = Histogram()
        histogram.merge_dict({"count": 0, "total": 0.0, "min": 0.0, "max": 0.0})
        assert histogram.count == 0
        assert histogram.to_dict()["min"] == 0.0  # not inf in JSON

    def test_take_snapshot_resets(self):
        obs.counter_add("work.done", 2)
        first = obs.take_snapshot()
        assert first["counters"]["work.done"] == 2
        second = obs.take_snapshot()
        assert "work.done" not in second["counters"]


class TestManifestSchema:
    def test_v3_roundtrips_metrics(self, tmp_path):
        manifest = RunManifest(
            scale="tiny", seed=7, networks=["alex"], jobs=1,
            config_hash="abc", experiments=["fig1"],
        )
        manifest.metrics = {
            "counters": {"engine.cache.hits": 3.0},
            "gauges": {},
            "histograms": {},
        }
        path = tmp_path / "manifest.json"
        manifest.save(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 4
        loaded = RunManifest.load(path)
        assert loaded.metrics["counters"]["engine.cache.hits"] == 3.0

    def test_v2_manifest_loads_with_empty_metrics(self, tmp_path):
        payload = {
            "version": 2,
            "scale": "tiny",
            "seed": 7,
            "networks": ["alex"],
            "jobs": 1,
            "config_hash": "abc",
            "experiments": ["fig1"],
            "wall_seconds": 1.0,
            "cache": {"hits": 1, "misses": 0, "stores": 1, "quarantined": 0},
            "units": [],
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(payload))
        loaded = RunManifest.load(path)
        assert loaded.metrics == {}
        assert loaded.cache_stores == 1


class TestEngineCacheSurfacing:
    def test_profile_output_reports_engine_stats(self, tmp_path):
        """The --profile view surfaces EngineStats hit/miss/eviction counts
        captured into the manifest's metrics snapshot."""
        config = tiny_config(tmp_path, networks=["alex"])
        _, manifest = run_all_with_manifest(config, only=["fig10"], verbose=False)
        counters = manifest.metrics["counters"]
        assert counters["engine.runs"] >= 1
        assert counters["engine.cache.misses"] > 0
        profile = manifest.profile_table()
        assert "engine cache:" in profile
        assert "evictions" in profile
        # Per-layer forward-compute histograms rode along.
        layer_histograms = [
            name for name in manifest.metrics["histograms"]
            if name.startswith("nn.layer.")
        ]
        assert layer_histograms


class TestTracedRunDeterminism:
    def test_traced_jobs2_matches_untraced_serial_with_merged_pids(self, tmp_path):
        """The acceptance criterion: tracing must not perturb results, and
        the merged trace carries spans from parent and worker pids."""
        import os

        serial_results, _ = run_all_with_manifest(
            tiny_config(tmp_path / "serial"), only=["fig1", "table1"],
            verbose=False,
        )
        obs.reset_metrics()

        obs.enable_tracing()
        traced_results, manifest = run_all_with_manifest(
            tiny_config(tmp_path / "traced"), only=["fig1", "table1"],
            verbose=False, jobs=2,
        )
        events = obs.drain_events()
        obs.disable_tracing()

        assert results_to_json_doc(traced_results) == results_to_json_doc(
            serial_results
        )

        pids = {event["pid"] for event in events}
        assert len(pids) >= 2, "expected spans from parent and worker processes"
        assert os.getpid() in pids
        unit_pids = {e["pid"] for e in events if e["cat"] == "unit"}
        assert unit_pids and os.getpid() not in unit_pids
        experiment_spans = [e for e in events if e["cat"] == "experiment"]
        assert {e["args"]["experiment"] for e in experiment_spans} == {
            "fig1", "table1",
        }

        # The merged buffer exports as a valid Chrome trace document.
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path, events)
        assert obs.validate_chrome_trace(json.loads(path.read_text())) == []

        # Worker metrics merged into the manifest snapshot.
        counters = manifest.metrics["counters"]
        assert counters.get("unit.attempts.ok", 0) >= 4


class TestFaultedRunDeterminism:
    def test_injected_retry_leaves_tables_identical_and_spans_distinct(
        self, tmp_path, monkeypatch
    ):
        """A CNVLUTIN_FAULTS-injected failure shows up as distinct attempt
        spans and fault/retry metrics while the final tables stay
        byte-identical to a clean run."""
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0, backoff_max=0.0)

        monkeypatch.delenv("CNVLUTIN_FAULTS", raising=False)
        clean_results, _ = run_all_with_manifest(
            tiny_config(tmp_path / "clean"), only=["fig1"], verbose=False,
            jobs=2, policy=policy,
        )
        obs.reset_metrics()
        obs.reset_tracing()

        monkeypatch.setenv("CNVLUTIN_FAULTS", "unit:fig1/alex=raise@0")
        obs.enable_tracing()
        faulted_results, manifest = run_all_with_manifest(
            tiny_config(tmp_path / "faulted"), only=["fig1"], verbose=False,
            jobs=2, policy=policy,
        )
        events = obs.drain_events()
        obs.disable_tracing()

        assert results_to_json_doc(faulted_results) == results_to_json_doc(
            clean_results
        )

        record = next(u for u in manifest.units if u.unit == "fig1:alex")
        assert record.status == "ok"
        assert record.attempts == 2

        attempt_spans = [e for e in events if e["name"] == "unit:fig1:alex"]
        assert {e["args"]["attempt"] for e in attempt_spans} == {0, 1}
        by_attempt = {e["args"]["attempt"]: e["args"]["status"]
                      for e in attempt_spans}
        assert by_attempt == {0: "error", 1: "ok"}

        counters = manifest.metrics["counters"]
        assert counters["faults.injected"] >= 1
        assert counters["faults.injected.unit:fig1/alex"] >= 1
        assert counters["unit.attempts.error"] >= 1
        assert counters["retry.scheduled"] >= 1


class TestObsReportCli:
    def make_manifest_dict(self):
        manifest = RunManifest(
            scale="tiny", seed=7, networks=["alex"], jobs=2,
            config_hash="abc", experiments=["fig1"],
        )
        manifest.add_unit(
            UnitRecord(
                unit="fig1:alex", experiment="fig1", network="alex",
                phase="parallel", worker=41, seconds=1.5,
                cache_hits=2, cache_misses=3, attempts=2,
            )
        )
        manifest.wall_seconds = 2.0
        manifest.metrics = {
            "counters": {
                "engine.cache.hits": 10.0,
                "engine.cache.misses": 5.0,
                "artifact.stores": 4.0,
                "faults.injected": 1.0,
                "faults.injected.unit:fig1/alex": 1.0,
                "retry.scheduled": 1.0,
                "retry.backoff_seconds": 0.25,
            },
            "gauges": {},
            "histograms": {
                "nn.layer.alex.conv1": {
                    "count": 4, "total": 0.8, "min": 0.1, "max": 0.3,
                },
            },
        }
        return manifest.to_dict()

    def test_report_renders_all_sections(self):
        report = metrics_report(self.make_manifest_dict())
        assert "obs report" in report
        assert "manifest v4" in report
        assert "fig1:alex" in report
        assert "conv1" in report
        assert "engine cache: 10 hits / 5 misses" in report
        assert "4 stores" in report
        assert "1 extra attempt(s)" in report
        assert "unit:fig1/alex: 1" in report

    def test_v2_manifest_report_falls_back_to_cache_section(self):
        payload = self.make_manifest_dict()
        payload["version"] = 2
        payload["metrics"] = {}
        payload["cache"] = {
            "hits": 7, "misses": 3, "stores": 2, "quarantined": 1,
            "hit_rate": 0.7,
        }
        report = metrics_report(payload)
        assert "artifact cache: 7 hits / 3 misses / 2 stores / 1 quarantined" in report

    def test_cli_reads_manifest_file(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(self.make_manifest_dict()))
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "obs report" in out

    def test_cli_errors_return_2(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "missing.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert obs_main(["report", str(bad)]) == 2
        array = tmp_path / "array.json"
        array.write_text("[1, 2]")
        assert obs_main(["report", str(array)]) == 2
        err = capsys.readouterr().err
        assert "no such manifest" in err

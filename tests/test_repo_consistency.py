"""Repository-consistency tests: docs, registry, and accounting identities."""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.baseline.timing import baseline_network_timing
from repro.core.timing import cnv_network_timing
from repro.experiments.runner import EXPERIMENTS
from repro.hw.config import small_config

REPO = Path(__file__).resolve().parents[1]


class TestDocumentation:
    def test_design_md_lists_every_experiment(self):
        """DESIGN.md's experiment index and the runner registry agree."""
        text = (REPO / "DESIGN.md").read_text()
        for experiment in EXPERIMENTS:
            if "_" in experiment:
                # Extension experiments (fig9_backends) are documented
                # by their registry name, not a paper figure label.
                label = experiment
            elif experiment.startswith("table"):
                label = {"table1": "Table I", "table2": "Table II"}[experiment]
            else:
                label = experiment.replace("fig", "Fig. ")
            assert label in text, f"{label} missing from DESIGN.md"

    def test_experiments_md_covers_all_figures(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for heading in ("Fig. 1", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
                        "Fig. 13", "Fig. 14", "Table I", "Table II"):
            assert heading in text, f"{heading} missing from EXPERIMENTS.md"

    def test_readme_mentions_key_entry_points(self):
        text = (REPO / "README.md").read_text()
        for needle in ("cnvlutin-experiments", "pytest benchmarks/",
                       "DESIGN.md", "EXPERIMENTS.md", "quickstart.py"):
            assert needle in text

    def test_every_example_has_a_docstring_and_main(self):
        for script in sorted((REPO / "examples").glob("*.py")):
            source = script.read_text()
            assert source.lstrip().startswith(("#!", '"""')), script.name
            assert "def main(" in source, script.name
            assert '__name__ == "__main__"' in source, script.name

    def test_bench_exists_for_every_paper_experiment(self):
        bench_names = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        expected = {
            "fig1": "bench_fig01_zero_fraction.py",
            "table1": "bench_table1_networks.py",
            "fig9": "bench_fig09_speedup.py",
            "fig10": "bench_fig10_breakdown.py",
            "fig11": "bench_fig11_area.py",
            "fig12": "bench_fig12_power.py",
            "fig13": "bench_fig13_edp.py",
            "table2": "bench_table2_thresholds.py",
            "fig14": "bench_fig14_pruning.py",
        }
        for experiment, bench in expected.items():
            assert bench in bench_names, f"no bench for {experiment}"


class TestAccountingIdentities:
    """The Fig. 10 metric must be an exact accounting of cycles."""

    @pytest.fixture(scope="class")
    def run(self):
        from repro.nn.datasets import natural_images
        from repro.nn.inference import init_weights, run_forward
        from repro.nn.models import build_network

        net = build_network("cnnS", input_size=64)
        store = init_weights(net, np.random.default_rng(17))
        image = natural_images(net.input_shape, 1, seed=18)[0]
        fwd = run_forward(net, store, image, keep_outputs=False)
        return net, fwd

    def test_baseline_identity(self, run):
        net, fwd = run
        cfg = small_config()
        timing = baseline_network_timing(net, fwd.conv_inputs, cfg)
        events = sum(timing.lane_events().values())
        assert events == pytest.approx(
            timing.total_cycles * cfg.num_units * cfg.neuron_lanes
        )

    def test_cnv_identity(self, run):
        net, fwd = run
        cfg = small_config()
        timing = cnv_network_timing(net, fwd.conv_inputs, cfg)
        events = sum(timing.lane_events().values())
        assert events == pytest.approx(
            timing.total_cycles * cfg.num_units * cfg.neuron_lanes
        )

    def test_shared_categories_identical_across_architectures(self, run):
        """'other' and 'conv1' events are architecture-independent."""
        net, fwd = run
        cfg = small_config()
        base = baseline_network_timing(net, fwd.conv_inputs, cfg).lane_events()
        cnv = cnv_network_timing(net, fwd.conv_inputs, cfg).lane_events()
        assert base["other"] == pytest.approx(cnv["other"])
        assert base["conv1"] == pytest.approx(cnv["conv1"])

    def test_cnv_nonzero_matches_baseline_nonzero(self, run):
        """Both architectures process the same effectual neurons; CNV just
        removes the zero events and adds stalls."""
        net, fwd = run
        cfg = small_config()
        base = baseline_network_timing(net, fwd.conv_inputs, cfg).lane_events()
        cnv = cnv_network_timing(net, fwd.conv_inputs, cfg).lane_events()
        assert cnv["nonzero"] == pytest.approx(base["nonzero"])

"""Golden snapshot of the ``repro-obs report`` text output.

The report renderer is the operator-facing view of every metric
namespace the repo emits (engine cache, artifact cache, per-layer
forward time, retries/faults, the ``serve.*`` serving summary with
sketch quantiles, the sharded-router summary, and the ``slo.*``
objective table).  A hand-written schema-v4 manifest fixture exercises
every section at once; this test pins the rendered text byte for byte
so formatting or aggregation drift is a deliberate, reviewed change.

Refresh after an intentional change with::

    CNVLUTIN_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_obs_report_golden.py -q

and commit the updated ``tests/golden/obs_report.txt``.
"""

import json
import os
from pathlib import Path

import pytest

from repro.obs.report import main as report_main
from repro.obs.report import metrics_report

MANIFEST_PATH = Path(__file__).parent / "golden" / "obs_report_manifest.json"
GOLDEN_PATH = Path(__file__).parent / "golden" / "obs_report.txt"


def render() -> str:
    manifest = json.loads(MANIFEST_PATH.read_text())
    return metrics_report(manifest, top=5) + "\n"


def test_report_matches_golden():
    actual = render()

    if os.environ.get("CNVLUTIN_UPDATE_GOLDEN"):
        GOLDEN_PATH.write_text(actual)
        pytest.skip(f"updated golden file {GOLDEN_PATH}")

    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; generate it with "
        "CNVLUTIN_UPDATE_GOLDEN=1"
    )
    assert actual == GOLDEN_PATH.read_text(), (
        "repro-obs report output drifted from the golden snapshot "
        "(refresh with CNVLUTIN_UPDATE_GOLDEN=1 if intentional)"
    )


def test_report_covers_every_section():
    """The fixture must keep exercising each renderer section."""
    text = render()
    for heading in (
        "-- self time by experiment",
        "-- slowest work units",
        "-- forward compute by layer",
        "-- forward compute by network",
        "-- caches --",
        "-- serving --",
        "-- sharded serving --",
        "-- slo --",
        "-- backend activity --",
        "-- retries / faults --",
    ):
        assert heading in text, f"fixture no longer exercises {heading!r}"
    assert "shed rate 8%" in text
    assert "pool:worker: 1" in text
    # v4 sketch quantiles and the queue-depth watermark render too.
    assert "p50" in text and "p99" in text
    assert "queue depth last 3 (max 11)" in text
    assert "BURNING" in text
    # Backend activity rows resolve architectures through the registry
    # and render scientific-notation event counts.
    assert "cnvlutin2" in text and "scnn" in text
    assert "1.200e+06" in text


def test_report_cli_prints_the_same_text(capsys):
    assert report_main(["report", str(MANIFEST_PATH), "--top", "5"]) == 0
    assert capsys.readouterr().out == render()


def test_report_cli_rejects_bad_input(tmp_path, capsys):
    assert report_main(["report", str(tmp_path / "missing.json")]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert report_main(["report", str(bad)]) == 2
    array = tmp_path / "array.json"
    array.write_text("[]")
    assert report_main(["report", str(array)]) == 2
    capsys.readouterr()

"""Cross-backend conformance suite plus CNV2/SCNN model properties.

Every backend in the :mod:`repro.backends` registry must honour one
shared contract, checked here **parameterized over the registry** — a
newly registered backend is covered with zero test edits:

* cycles are bounded below by the effectual-work capacity bound
  ``ceil(E / (units x lanes x filters_per_unit))`` and above by the
  dense baseline's cycles;
* timing is deterministic: re-simulating the identical workload
  reproduces cycles, lane events, and every activity counter exactly;
* activity counters are internally consistent (multiplies pair with
  adds; nothing goes negative), and for backends declaring
  ``mults_are_effectual`` (SCNN) the multiply count equals the
  brute-force effectual-pair count exactly;
* ``needs_weights`` backends refuse to run without weights.

Workload regime: the upper bound is a *model* property only where the
models are meant to operate — paper-like depths (>= 2 bricks, so lanes
fill) and output planes with at least ``num_units`` positions.  On toy
sub-brick workloads (depth 8, the repo-wide default) CNV genuinely
loses to the dense baseline (half-padded bricks waste 15 of 16 lanes)
and SCNN underutilizes tiny output planes, so the conformance
workloads below pin the realistic regime on purpose.

The Hypothesis sections cross-validate CNV2's offset-pair intersection
against brute force over :func:`repro.core.zfnaf.encode` bricks
(including all-zero bricks and depth % 16 != 0 tails) and pin the
ordering invariants: CNV2 <= CNV cycles for *any* weights, equality for
dense weights, and a strict win under channel-structured pruning.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import make_conv_work
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    Backend,
    backend_names,
    brick_slot_mask,
    effectual_pair_count,
    get_backend,
    pair_intersection_counts,
    pass_weight_union,
    power_model_for,
    prune_input_channels,
    prune_weights,
    register,
    scnn_conv_timing,
)
from repro.backends.registry import architectures
from repro.baseline.workload import ceil_div
from repro.core.zfnaf import encode
from repro.hw.config import PAPER_CONFIG

#: Paper-like conformance workloads (see module docstring for why the
#: regime matters): depth >= 2 bricks, out_y*out_x >= num_units, one
#: depth % 16 != 0 tail, one grouped, one strided, one high-sparsity.
CONFORMANCE_WORKLOADS = (
    dict(in_depth=64, in_y=8, in_x=8, num_filters=32),
    dict(in_depth=72, in_y=8, in_x=8, num_filters=20),
    dict(in_depth=64, in_y=8, in_x=8, num_filters=32, groups=2),
    dict(in_depth=48, in_y=11, in_x=11, num_filters=16, stride=2),
    dict(in_depth=64, in_y=8, in_x=8, num_filters=32, zero_fraction=0.7),
)

WEIGHT_SPARSITY = 0.4


def conformance_cases():
    """(ConvWork, pruned weights) per conformance geometry, fixed seed."""
    rng = np.random.default_rng(2024)
    cases = []
    for kwargs in CONFORMANCE_WORKLOADS:
        work, weights = make_conv_work(rng, **kwargs)
        cases.append((kwargs, work, prune_weights(weights, WEIGHT_SPARSITY)))
    return cases


def timing_for(spec: Backend, work, weights):
    return spec.layer_timing(
        work, PAPER_CONFIG, weights if spec.needs_weights else None
    )


def capacity_lower_bound(work, weights) -> int:
    """ceil(effectual pairs / peak products per cycle) — no backend can
    finish the effectual work faster than the full array allows."""
    pairs = effectual_pair_count(work, weights)
    per_cycle = (
        PAPER_CONFIG.num_units
        * PAPER_CONFIG.neuron_lanes
        * PAPER_CONFIG.filters_per_unit
    )
    return ceil_div(pairs, per_cycle)


@pytest.fixture(scope="module")
def cases():
    return conformance_cases()


def registry_backends() -> list[str]:
    """The conformance parameterization — the registry itself.

    ``CNVLUTIN_BACKEND_ONLY=<name>`` restricts the run to one backend
    (the CI matrix runs one job per backend through this knob).
    """
    import os

    only = os.environ.get("CNVLUTIN_BACKEND_ONLY")
    names = backend_names()
    if only:
        if only not in names:
            raise RuntimeError(
                f"CNVLUTIN_BACKEND_ONLY={only!r} is not registered ({names})"
            )
        return [only]
    return names


class TestConformance:
    """The shared contract, parameterized over the registry."""

    @pytest.mark.parametrize("name", registry_backends())
    def test_cycles_bounded_by_effectual_work_and_baseline(self, name, cases):
        spec = get_backend(name)
        base_spec = get_backend("baseline")
        for kwargs, work, weights in cases:
            timing = timing_for(spec, work, weights)
            base = timing_for(base_spec, work, weights)
            lower = capacity_lower_bound(work, weights)
            assert lower <= timing.cycles, (name, kwargs)
            assert timing.cycles <= base.cycles, (name, kwargs)

    @pytest.mark.parametrize("name", registry_backends())
    def test_timing_is_deterministic(self, name, cases):
        spec = get_backend(name)
        _, work, weights = cases[0]
        first = timing_for(spec, work, weights)
        second = timing_for(spec, work, weights)
        assert first.cycles == second.cycles
        assert first.lane_events == second.lane_events
        assert dict(first.counters.counts) == dict(second.counters.counts)

    @pytest.mark.parametrize("name", registry_backends())
    def test_counters_internally_consistent(self, name, cases):
        spec = get_backend(name)
        for kwargs, work, weights in cases:
            counters = timing_for(spec, work, weights).counters.counts
            assert counters, (name, kwargs)
            assert all(value >= 0 for value in counters.values()), (name, kwargs)
            # Every model here issues one accumulate per multiply.
            assert counters.get("mults", 0.0) == counters.get("adds", 0.0), (
                name, kwargs,
            )
            if spec.mults_are_effectual:
                pairs = effectual_pair_count(work, weights)
                assert int(counters["mults"]) == pairs, (name, kwargs)

    @pytest.mark.parametrize("name", registry_backends())
    def test_needs_weights_contract_enforced(self, name, cases):
        spec = get_backend(name)
        _, work, weights = cases[0]
        if spec.needs_weights:
            with pytest.raises(ValueError, match="requires a weights"):
                spec.layer_timing(work, PAPER_CONFIG)
        else:
            spec.layer_timing(work, PAPER_CONFIG)  # weights optional

    @pytest.mark.parametrize("name", registry_backends())
    def test_declares_power_model_and_unique_architecture(self, name):
        spec = get_backend(name)
        assert power_model_for(spec.architecture) is spec.power_model
        assert architectures()[spec.architecture] == name


class TestRegistry:
    def test_builtin_order_is_presentation_order(self):
        names = backend_names()
        assert names[:5] == ["baseline", "gated", "cnv", "cnv2", "scnn"]

    def test_duplicate_name_rejected(self):
        spec = get_backend("cnv")
        with pytest.raises(ValueError, match="already registered"):
            register(spec)

    def test_duplicate_architecture_rejected(self):
        spec = get_backend("cnv")
        clone = Backend(
            name="cnv-clone",
            architecture=spec.architecture,
            description="dup arch",
            conv_timing=spec.conv_timing,
            net_timing=spec.net_timing,
            power_model=spec.power_model,
        )
        with pytest.raises(ValueError, match="already registered"):
            register(clone)
        assert "cnv-clone" not in backend_names()

    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(KeyError, match="cnv2"):
            get_backend("definitely-not-a-backend")

    def test_unknown_architecture_raises(self):
        with pytest.raises(KeyError, match="unknown architecture"):
            power_model_for("tpu-v9")


def _brute_force_intersections(slab, pass_weights, brick_size, fy, fx):
    """Per-brick dispatched-offset counts, via explicit loops over the
    ZFNAf encoding — the independent ground truth for CNV2's front end."""
    depth = slab.shape[0]
    zf = encode(slab, brick_size)
    height, width = zf.spatial_shape
    bricks = zf.bricks_per_column
    counts = np.zeros((height, width, bricks))
    for y in range(height):
        for x in range(width):
            for bz in range(bricks):
                _, offsets = zf.brick(y, x, bz)
                for offset in offsets:
                    z = bz * brick_size + int(offset)
                    if z < depth and np.any(pass_weights[:, z, fy, fx] != 0.0):
                        counts[y, x, bz] += 1
    return counts


@given(
    seed=st.integers(0, 2**31 - 1),
    depth=st.integers(1, 40),
    side=st.integers(1, 4),
    filters=st.integers(1, 5),
    kernel=st.integers(1, 3),
    act_zero=st.floats(0.0, 1.0),
    weight_zero=st.floats(0.0, 1.0),
)
@settings(max_examples=40)
def test_cnv2_intersection_matches_zfnaf_brute_force(
    seed, depth, side, filters, kernel, act_zero, weight_zero
):
    """Skipped-pair count == brute force over encoded bricks, for every
    kernel tap — covering all-zero bricks and depth % 16 != 0 tails."""
    brick_size = 16
    rng = np.random.default_rng(seed)
    slab = rng.normal(size=(depth, side, side))
    slab[rng.random(slab.shape) < act_zero] = 0.0
    weights = rng.normal(size=(filters, depth, kernel, kernel))
    weights[rng.random(weights.shape) < weight_zero] = 0.0

    act_mask = brick_slot_mask(slab, brick_size)
    union = pass_weight_union(weights, brick_size)
    bricks = act_mask.shape[2]
    assert bricks == ceil_div(depth, brick_size)
    for fy in range(kernel):
        for fx in range(kernel):
            counts = pair_intersection_counts(act_mask, union[fy, fx])
            expected = _brute_force_intersections(
                slab, weights, brick_size, fy, fx
            )
            assert np.array_equal(counts, expected), (fy, fx)
            # skipped = brick_size - dispatched, per brick: zero activation
            # OR an all-zero weight column — never negative, never > slots.
            skipped = bricks * brick_size * side * side - counts.sum()
            assert 0 <= counts.max() <= brick_size
            assert skipped >= 0


@given(
    seed=st.integers(0, 2**31 - 1),
    depth=st.integers(1, 40),
    filters=st.integers(1, 6),
    groups=st.sampled_from([1, 2]),
    weight_zero=st.floats(0.0, 0.9),
)
@settings(max_examples=25)
def test_cnv2_never_exceeds_cnv_and_dense_weights_reduce_to_cnv(
    seed, depth, filters, groups, weight_zero
):
    """CNV2 cycles <= CNV cycles for ANY weights (the intersection can
    only shrink per-brick work); with fully dense weights the two models
    coincide exactly — cycles, lane events, and dispatch-scaled counters.
    Grouped convolutions included."""
    if depth % groups or filters % groups:
        depth = depth * groups
        filters = filters * groups
    rng = np.random.default_rng(seed)
    work, dense = make_conv_work(
        rng, in_depth=depth, in_y=5, in_x=5,
        num_filters=filters, groups=groups,
    )
    sparse = dense.copy()
    sparse[rng.random(dense.shape) < weight_zero] = 0.0

    cnv = get_backend("cnv").layer_timing(work, PAPER_CONFIG)
    cnv2_sparse = get_backend("cnv2").layer_timing(work, PAPER_CONFIG, sparse)
    cnv2_dense = get_backend("cnv2").layer_timing(work, PAPER_CONFIG, dense)

    assert cnv2_sparse.cycles <= cnv.cycles
    assert cnv2_dense.cycles == cnv.cycles
    assert cnv2_dense.counters.counts["mults"] == (
        cnv.counters.counts["mults"]
    )


def test_cnv2_strictly_faster_under_channel_structured_pruning(rng):
    """Unstructured pruning leaves the pass-wide offset union dense (an
    offset skips only when EVERY filter is zero there), so CNV2 == CNV;
    channel-structured pruning aligns the zeros and CNV2 wins strictly."""
    work, weights = make_conv_work(
        rng, in_depth=64, in_y=8, in_x=8, num_filters=32
    )
    structured = prune_input_channels(weights, 0.5)
    cnv = get_backend("cnv").layer_timing(work, PAPER_CONFIG)
    cnv2 = get_backend("cnv2").layer_timing(work, PAPER_CONFIG, structured)
    assert cnv2.cycles < cnv.cycles


def test_cnv2_first_layer_falls_back_to_baseline(rng):
    work, weights = make_conv_work(
        rng, in_depth=48, in_y=8, in_x=8, num_filters=16, is_first=True
    )
    base = get_backend("baseline").layer_timing(work, PAPER_CONFIG)
    cnv2 = get_backend("cnv2").layer_timing(work, PAPER_CONFIG, weights)
    assert cnv2.cycles == base.cycles


def _brute_force_pairs(work, weights) -> int:
    """Effectual products by the most explicit accumulation possible:
    one loop iteration per (filter, output position, weight tap)."""
    geom = work.geometry
    kernel = geom["kernel"]
    stride = geom["stride"]
    pad = geom["pad"]
    depth = geom["in_depth"]
    padded = np.zeros(
        (depth, geom["in_y"] + 2 * pad, geom["in_x"] + 2 * pad)
    )
    padded[:, pad:pad + geom["in_y"], pad:pad + geom["in_x"]] = (
        work.activations
    )
    fpg = work.filters_per_group
    group_depth = depth // work.num_groups
    total = 0
    for f in range(geom["num_filters"]):
        group = f // fpg
        base_z = group * group_depth
        for oy in range(geom["out_y"]):
            for ox in range(geom["out_x"]):
                for z in range(group_depth):
                    for fy in range(kernel):
                        for fx in range(kernel):
                            if weights[f, z, fy, fx] == 0.0:
                                continue
                            if padded[
                                base_z + z, oy * stride + fy, ox * stride + fx
                            ] != 0.0:
                                total += 1
    return total


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(in_depth=6, in_y=4, in_x=4, num_filters=3, kernel=3),
        dict(in_depth=4, in_y=5, in_x=5, num_filters=4, kernel=3, stride=2),
        dict(in_depth=8, in_y=4, in_x=4, num_filters=4, groups=2),
    ],
)
def test_scnn_mults_match_quintuple_loop_brute_force(rng, kwargs):
    """Both the timing model's product map and effectual_pair_count must
    agree with a 5-deep explicit loop — three independent accumulation
    orders of the same Cartesian-product quantity."""
    work, weights = make_conv_work(rng, **kwargs)
    pruned = prune_weights(weights, 0.5)
    expected = _brute_force_pairs(work, pruned)
    assert effectual_pair_count(work, pruned) == expected
    timing = scnn_conv_timing(work, PAPER_CONFIG, pruned)
    assert int(timing.counters.counts["mults"]) == expected


def test_scnn_pairs_never_exceed_dense_work(rng):
    """Halo products are excluded, so E <= dense MACs of the layer."""
    work, weights = make_conv_work(rng, in_depth=32, in_y=6, in_x=6,
                                   num_filters=8)
    geom = work.geometry
    dense = (
        geom["num_filters"] * (geom["in_depth"] // work.num_groups)
        * geom["kernel"] ** 2 * geom["out_y"] * geom["out_x"]
    )
    assert effectual_pair_count(work, weights) <= dense


def test_weight_pruning_is_deterministic_and_exact():
    rng = np.random.default_rng(11)
    weights = rng.normal(size=(8, 16, 3, 3))
    pruned_a = prune_weights(weights, 0.5)
    pruned_b = prune_weights(weights.copy(), 0.5)
    assert np.array_equal(pruned_a, pruned_b)
    zero_fraction = float(np.mean(pruned_a == 0.0))
    assert 0.45 <= zero_fraction <= 0.55
    assert prune_weights(weights, 0.0) is weights
    with pytest.raises(ValueError):
        prune_weights(weights, 1.0)

"""Second-wave coverage: internals, renderers, and cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.workload import ConvWork
from repro.cluster.timing import _node_work, _partition_filters
from repro.core.encoder import Encoder
from repro.core.validate import _crop_layer
from repro.core.zfnaf import encode, encode_brick
from repro.experiments.charts import render
from repro.experiments.report import ExperimentResult
from repro.power.energy import energy_report
from repro.hw.counters import ActivityCounters

from conftest import make_conv_work


class TestClusterInternals:
    def test_partition_even(self, rng):
        work, _ = make_conv_work(rng, num_filters=8)
        assert _partition_filters(work, 4) == [2, 2, 2, 2]

    def test_partition_uneven_drops_empty_nodes(self, rng):
        work, _ = make_conv_work(rng, num_filters=4)
        shares = _partition_filters(work, 3)
        assert sum(shares) == 4
        assert all(s > 0 for s in shares)

    def test_node_work_keeps_geometry(self, rng):
        work, _ = make_conv_work(rng, in_depth=8, num_filters=8, groups=2)
        node = _node_work(work, node_filters=2)
        assert node.geometry["num_filters"] == 4  # 2 per group x 2 groups
        assert node.geometry["in_depth"] == work.geometry["in_depth"]
        assert node.num_groups == 2


class TestChartRenderers:
    def _result(self, experiment, rows):
        return ExperimentResult(experiment=experiment, title="t", rows=rows)

    def test_fig10_stacked(self):
        rows = [
            {
                "network": "alex", "arch": "baseline",
                "other": 0.1, "conv1": 0.2, "nonzero": 0.3, "zero": 0.4,
                "stall": 0.0, "total": 1.0,
            }
        ]
        text = render(self._result("fig10", rows))
        assert "=stall" in text

    def test_fig11_deltas(self):
        rows = [
            {"component": "nm", "baseline_mm2": 10.0, "cnv_mm2": 13.4},
            {"component": "total", "baseline_mm2": 70.0, "cnv_mm2": 73.1},
        ]
        text = render(self._result("fig11", rows))
        assert "+34" in text

    def test_fig12_stacked(self):
        rows = [
            {
                "component": c,
                "baseline_static": 0.1, "baseline_dynamic": 0.1,
                "cnv_static": 0.08, "cnv_dynamic": 0.09, "delta": -0.05,
            }
            for c in ("nm", "sb", "logic", "sram", "total")
        ]
        text = render(self._result("fig12", rows))
        assert "baseline" in text and "cnv" in text

    def test_fig13_double_chart(self):
        rows = [{"network": "alex", "EDP_gain": 1.5, "ED2P_gain": 2.2}]
        text = render(self._result("fig13", rows))
        assert "EDP improvement" in text and "ED2P improvement" in text

    def test_fig1_percent(self):
        rows = [{"network": "alex", "zero_fraction": 0.44}]
        assert "44%" in render(self._result("fig1", rows))


class TestEncoderBrickSizes:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from([2, 4, 8, 16, 32]), st.integers(0, 2**32 - 1))
    def test_serial_equals_vectorized_any_brick_size(self, brick, seed):
        rng = np.random.default_rng(seed)
        neurons = rng.normal(size=brick)
        neurons[rng.uniform(size=brick) < 0.5] = 0.0
        result = Encoder(brick_size=brick).encode_brick(neurons)
        values, offsets = encode_brick(neurons)
        assert np.array_equal(result.values, values)
        assert np.array_equal(result.offsets, offsets)
        assert result.cycles == brick


class TestThresholdGroupsNonGoogle:
    def test_per_layer_for_flat_networks(self, tmp_path):
        from repro.experiments.config import PaperConfig
        from repro.experiments.context import ExperimentContext
        from repro.experiments.thresholds import threshold_groups

        config = PaperConfig(
            scale="tiny", networks=["alex"], cache_dir=tmp_path, num_images=1
        )
        ctx = ExperimentContext(config)
        groups = threshold_groups(ctx, "alex")
        assert groups == {name: name for name in groups}


class TestEnergyByComponent:
    def test_component_totals_consistent(self):
        counters = ActivityCounters()
        counters.add("mults", 1e8)
        counters.add("nm_reads", 1e5)
        report = energy_report(counters, 1e-3, "cnvlutin")
        by = report.by_component()
        assert sum(by.values()) == pytest.approx(report.total_j)
        assert by["nm"] > 0 and by["logic"] > 0


class TestWorkloadValidation:
    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="activations"):
            ConvWork(
                name="bad",
                geometry={
                    "in_depth": 4, "in_y": 5, "in_x": 5, "num_filters": 2,
                    "kernel": 2, "stride": 1, "pad": 0, "groups": 1,
                    "out_y": 4, "out_x": 4,
                },
                activations=rng.normal(size=(4, 6, 6)),
            )


class TestValidateCrop:
    def test_crop_recomputes_output_dims(self, rng):
        geometry = {
            "in_depth": 4, "in_y": 20, "in_x": 20, "num_filters": 2,
            "kernel": 3, "stride": 2, "pad": 1, "groups": 1,
            "out_y": 10, "out_x": 10,
        }
        act = rng.normal(size=(4, 20, 20))
        cropped, new_geom = _crop_layer(act, geometry, max_spatial=7)
        assert cropped.shape == (4, 7, 7)
        assert new_geom["out_y"] == (7 - 3 + 2) // 2 + 1

    def test_crop_never_below_kernel(self, rng):
        geometry = {
            "in_depth": 2, "in_y": 9, "in_x": 9, "num_filters": 1,
            "kernel": 5, "stride": 1, "pad": 0, "groups": 1,
            "out_y": 5, "out_x": 5,
        }
        act = rng.normal(size=(2, 9, 9))
        cropped, new_geom = _crop_layer(act, geometry, max_spatial=3)
        assert new_geom["in_y"] == 5  # clamped up to the kernel


class TestHardwareEncoderVsEngineThresholds:
    def test_hardware_pruning_equals_engine_pruning(self, rng):
        """The encoder's threshold comparison and the engine's
        threshold_relu produce identical zero patterns."""
        from repro.core.accelerator import encode_layer_output
        from repro.core.zfnaf import decode
        from repro.hw.config import small_config
        from repro.nn.layers import threshold_relu

        pre = rng.normal(size=(8, 5, 5))
        threshold = 0.3
        hw = decode(encode_layer_output(pre, small_config(), threshold=threshold))
        engine = threshold_relu(pre, threshold)
        assert np.array_equal(hw, engine)

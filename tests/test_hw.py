"""Hardware substrate tests (repro.hw)."""

import numpy as np
import pytest

from repro.hw.buffers import BrickBufferEntry, NeuronFifo, PartialSumBuffer
from repro.hw.config import PAPER_CONFIG, ArchConfig, small_config
from repro.hw.counters import ActivityCounters
from repro.hw.events import CycleKernel, SimulationTimeout
from repro.hw.interconnect import BroadcastBus
from repro.hw.memory import BankConflictError, NeuronMemory, SynapseBuffer


class TestArchConfig:
    def test_paper_defaults(self):
        cfg = PAPER_CONFIG
        assert cfg.num_units == 16
        assert cfg.filters_per_pass == 256
        assert cfg.multipliers_per_unit == 256
        assert cfg.offset_bits == 4
        assert cfg.sb_bytes_total == 32 * 1024 * 1024

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ArchConfig(num_units=0)
        with pytest.raises(ValueError):
            ArchConfig(empty_brick_cycles=2)

    def test_with_updates(self):
        cfg = PAPER_CONFIG.with_(brick_size=8)
        assert cfg.brick_size == 8
        assert PAPER_CONFIG.brick_size == 16  # frozen original untouched

    def test_small_config(self):
        cfg = small_config()
        assert cfg.filters_per_pass == 4


class TestCounters:
    def test_add_and_merge(self):
        a = ActivityCounters()
        a.add("mults", 10)
        b = ActivityCounters()
        b.add("mults", 5)
        b.add("sb_reads")
        a.merge(b)
        assert a["mults"] == 15
        assert a["sb_reads"] == 1
        assert a["unknown"] == 0

    def test_lane_events(self):
        c = ActivityCounters()
        c.add_lane_event("nonzero", 4)
        c.add_lane_event("stall", 2)
        events = c.lane_events()
        assert events["nonzero"] == 4
        assert events["zero"] == 0
        assert c.total_lane_events() == 6

    def test_unknown_lane_category_rejected(self):
        with pytest.raises(ValueError):
            ActivityCounters().add_lane_event("bogus")

    def test_scaled(self):
        c = ActivityCounters()
        c.add("mults", 3)
        assert c.scaled(2.0)["mults"] == 6
        assert c["mults"] == 3


class TestNeuronFifo:
    def test_fifo_order(self):
        fifo = NeuronFifo(capacity=4)
        fifo.push(1.0, 0)
        fifo.push(2.0, 3)
        assert fifo.pop() == (1.0, 0)
        assert fifo.pop() == (2.0, 3)

    def test_overflow_and_underflow(self):
        fifo = NeuronFifo(capacity=1)
        fifo.push(1.0)
        with pytest.raises(OverflowError):
            fifo.push(2.0)
        fifo.pop()
        with pytest.raises(IndexError):
            fifo.pop()

    def test_access_counting(self):
        counters = ActivityCounters()
        fifo = NeuronFifo(capacity=4, counters=counters)
        fifo.push(1.0)
        fifo.pop()
        assert counters["nbin_writes"] == 1
        assert counters["nbin_reads"] == 1


class TestPartialSumBuffer:
    def test_accumulate_and_drain(self):
        buf = PartialSumBuffer(entries=4)
        buf.accumulate(0, 1.5)
        buf.accumulate(0, 2.5)
        buf.accumulate(3, -1.0)
        sums = buf.drain()
        assert list(sums) == [4.0, 0.0, 0.0, -1.0]
        assert list(buf.drain()) == [0.0] * 4  # cleared

    def test_counts_read_modify_write(self):
        counters = ActivityCounters()
        buf = PartialSumBuffer(entries=2, counters=counters)
        buf.accumulate(0, 1.0)
        assert counters["nbout_reads"] == 1
        assert counters["nbout_writes"] == 1


class TestBrickBufferEntry:
    def test_drain_sequence(self):
        entry = BrickBufferEntry()
        entry.load([1.0, 2.0], [0, 3])
        assert not entry.exhausted
        assert entry.next_pair() == (1.0, 0)
        assert entry.next_pair() == (2.0, 3)
        assert entry.exhausted
        assert entry.next_pair() is None

    def test_empty_brick_immediately_exhausted(self):
        entry = BrickBufferEntry()
        entry.load([], [])
        assert entry.exhausted


class TestNeuronMemory:
    def test_store_and_timed_read(self):
        nm = NeuronMemory(num_banks=2)
        nm.store(0, 5, "brick")
        assert nm.read(0, 5, cycle=0) == "brick"
        assert nm.counters["nm_reads"] == 1

    def test_bank_conflict_same_cycle(self):
        nm = NeuronMemory(num_banks=2)
        nm.store(0, 0, "a")
        nm.store(0, 1, "b")
        nm.read(0, 0, cycle=7)
        with pytest.raises(BankConflictError):
            nm.read(0, 1, cycle=7)
        assert nm.read(0, 1, cycle=8) == "b"

    def test_different_banks_same_cycle_ok(self):
        nm = NeuronMemory(num_banks=2)
        nm.store(0, 0, "a")
        nm.store(1, 0, "b")
        nm.read(0, 0, cycle=0)
        nm.read(1, 0, cycle=0)

    def test_write_shares_port(self):
        nm = NeuronMemory(num_banks=1)
        nm.write(0, 0, "x", cycle=3)
        with pytest.raises(BankConflictError):
            nm.read(0, 0, cycle=3)
        assert nm.peek(0, 0) == "x"
        assert nm.entries(0) == 1


class TestSynapseBuffer:
    def test_column_reads_counted(self):
        counters = ActivityCounters()
        sb = SynapseBuffer(columns=np.arange(12).reshape(3, 4), counters=counters)
        assert list(sb.read_column(1)) == [4, 5, 6, 7]
        assert counters["sb_reads"] == 1
        assert sb.num_columns == 3

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            SynapseBuffer(columns=np.arange(4))


class TestBroadcastBus:
    def test_width_includes_offsets(self):
        base = BroadcastBus(lanes=16, data_bits=16)
        cnv = BroadcastBus(lanes=16, data_bits=16, offset_bits=4)
        assert base.width_bits == 256
        assert cnv.width_bits == 320  # widened for ZFNAf offsets

    def test_broadcast_counts(self):
        bus = BroadcastBus(lanes=4)
        bus.broadcast([1, 2, 3, 4])
        assert bus.counters["broadcasts"] == 1
        with pytest.raises(ValueError):
            bus.broadcast([1] * 5)


class _CountDown:
    def __init__(self, n):
        self.n = n

    def tick(self, cycle):
        self.n -= 1


class TestCycleKernel:
    def test_runs_until_done(self):
        c = _CountDown(5)
        kernel = CycleKernel([c])
        cycles = kernel.run_until(lambda: c.n <= 0)
        assert cycles == 5

    def test_timeout(self):
        kernel = CycleKernel([_CountDown(10)], max_cycles=3)
        with pytest.raises(SimulationTimeout):
            kernel.run_until(lambda: False)

    def test_components_tick_in_order(self):
        order = []

        class Probe:
            def __init__(self, tag):
                self.tag = tag

            def tick(self, cycle):
                order.append(self.tag)

        done = iter([False, True])
        kernel = CycleKernel([Probe("a"), Probe("b")])
        kernel.run_until(lambda: next(done))
        assert order == ["a", "b"]

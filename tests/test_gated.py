"""Zero-gating comparator tests (repro.baseline.gated)."""

import pytest

from repro.baseline.gated import gated_conv_timing, gated_network_timing
from repro.baseline.timing import baseline_conv_timing, baseline_network_timing
from repro.core.timing import cnv_network_timing
from repro.hw.config import small_config
from repro.power.energy import energy_report

from conftest import make_conv_work


class TestGatedConv:
    def test_same_cycles_as_baseline(self, rng):
        """Gating saves power, never time (Section VI on Eyeriss)."""
        work, _ = make_conv_work(rng, zero_fraction=0.6)
        cfg = small_config()
        assert (
            gated_conv_timing(work, cfg).cycles
            == baseline_conv_timing(work, cfg).cycles
        )

    def test_gated_mults_scale_with_effectual_fraction(self, rng):
        work, _ = make_conv_work(rng, zero_fraction=0.6, pad=0)
        cfg = small_config()
        base = baseline_conv_timing(work, cfg)
        gated = gated_conv_timing(work, cfg)
        events = base.lane_events
        effectual = events["nonzero"] / (events["nonzero"] + events["zero"])
        assert gated.counters["mults"] == pytest.approx(
            base.counters["mults"] * effectual
        )
        # Memory traffic is NOT gated (NM reads still happen).
        assert gated.counters["nm_reads"] == base.counters["nm_reads"]

    def test_first_layer_ungated(self, rng):
        work, _ = make_conv_work(rng, is_first=True, zero_fraction=0.6)
        cfg = small_config()
        base = baseline_conv_timing(work, cfg)
        gated = gated_conv_timing(work, cfg)
        assert gated.counters["mults"] == base.counters["mults"]


class TestGatedNetwork:
    @pytest.fixture(scope="class")
    def run(self):
        import numpy as np

        from repro.nn.datasets import natural_images
        from repro.nn.inference import init_weights, run_forward
        from repro.nn.models import build_network

        net = build_network("alex", input_size=67)
        store = init_weights(net, np.random.default_rng(2))
        image = natural_images(net.input_shape, 1, seed=2)[0]
        fwd = run_forward(net, store, image, keep_outputs=False)
        return net, fwd

    def test_three_way_comparison(self, run):
        """CNV beats gating on time AND energy; gating beats baseline on
        energy only — the paper's Section VI positioning."""
        net, fwd = run
        cfg = small_config()
        base = baseline_network_timing(net, fwd.conv_inputs, cfg)
        gated = gated_network_timing(net, fwd.conv_inputs, cfg)
        cnv = cnv_network_timing(net, fwd.conv_inputs, cfg)

        assert gated.total_cycles == base.total_cycles
        assert cnv.total_cycles < base.total_cycles

        freq = cfg.frequency_ghz
        e_base = energy_report(base.counters(), base.seconds(freq), "dadiannao")
        e_gated = energy_report(
            gated.counters(), gated.seconds(freq), "dadiannao-gated"
        )
        e_cnv = energy_report(cnv.counters(), cnv.seconds(freq), "cnvlutin")
        assert e_gated.total_j < e_base.total_j
        assert e_cnv.total_j < e_base.total_j

    def test_architecture_label(self, run):
        net, fwd = run
        timing = gated_network_timing(net, fwd.conv_inputs, small_config())
        assert timing.architecture == "dadiannao-gated"

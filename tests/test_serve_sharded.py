"""Sharded serving tests: shared-memory arena, byte-identity, failover.

The load-bearing guarantees of the sharded tier (repro.serve.router /
repro.serve.shard / repro.nn.shm):

* **Arena**: weights published to shared memory attach as zero-copy,
  read-only, bit-identical views; the manifest is JSON-safe; only the
  owner unlinks.
* **Differential**: at ANY shard count, a deterministic sharded run —
  consistent-hash routing, per-shard micro-batching, wire transport —
  produces responses byte-identical (canonical bytes) to one-at-a-time
  direct inference.
* **Failover / chaos**: an injected ``shard:forward`` fault fails over
  to a replica with zero failed responses; a ``shard:serve=crash`` that
  hard-kills a shard mid-run still yields zero failed responses, the
  death is observed, and the shard is respawned.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro import obs
from repro.nn.inference import WeightStore
from repro.nn.shm import SharedWeightArena, process_pss_kb
from repro.reliability import FaultInjector, RespawnPolicy, RetryPolicy
from repro.reliability.faults import parse_faults
from repro.serve import (
    ServeConfig,
    ServeRequest,
    ShardTierConfig,
    ShardedService,
    build_requests,
    build_sweep_requests,
    canonical_response_bytes,
    direct_response,
    run_load,
    summarize,
)

SERVE_NETWORKS = ("alex", "cnnS")


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One artifact-cache directory for the whole module: calibration is
    computed by the first service start and reused by every later one."""
    return tmp_path_factory.mktemp("sharded-artifacts")


def det_config(**overrides) -> ServeConfig:
    kwargs = dict(
        scale="tiny", networks=SERVE_NETWORKS, deterministic=True,
        queue_limit=256,
    )
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


def drive_sharded(
    config, tier, requests, cache_dir, rate=None,
    injector=None, respawn=None, policy=None,
):
    """Start a sharded service, run one workload, stop it.

    Returns (LoadResult, ShardedService) — the stopped service still
    carries its router-side repo (the direct-inference reference) and
    the obs data collected from the shards at stop.
    """

    async def _go():
        service = ShardedService(
            config, tier=tier, injector=injector, respawn=respawn,
            policy=policy, cache_dir=cache_dir,
        )
        await service.start()
        try:
            result = await run_load(service, requests, rate=rate)
        finally:
            await service.stop()
        return result, service

    return asyncio.run(_go())


def tiny_stores() -> dict[str, WeightStore]:
    rng = np.random.default_rng(3)
    def store(layers):
        return WeightStore(
            weights={
                name: rng.standard_normal(shape).astype(np.float32)
                for name, shape in layers.items()
            },
            biases={
                name: rng.standard_normal(shape[0]).astype(np.float32)
                for name, shape in layers.items()
            },
            shifts={"conv1": 0.25, "conv2": np.array([0.1, 0.2, 0.3])},
        )
    return {
        "netA": store({"conv1": (4, 3, 3, 3), "fc1": (10, 36)}),
        "netB": store({"conv1": (2, 1, 5, 5)}),
    }


class TestSharedWeightArena:
    def test_publish_attach_roundtrip_bit_identical(self):
        stores = tiny_stores()
        arena = SharedWeightArena.publish(stores)
        try:
            attached = SharedWeightArena.attach(arena.manifest)
            for name, original in stores.items():
                view = attached.stores[name]
                for layer, arr in original.weights.items():
                    assert view.weights[layer].dtype == arr.dtype
                    assert np.array_equal(view.weights[layer], arr)
                for layer, arr in original.biases.items():
                    assert np.array_equal(view.biases[layer], arr)
                for layer, shift in original.shifts.items():
                    if isinstance(shift, np.ndarray):
                        assert np.array_equal(view.shifts[layer], shift)
                    else:
                        assert view.shifts[layer] == shift
            attached.close()
        finally:
            arena.unlink()
            arena.close()

    def test_views_are_zero_copy_and_read_only(self):
        stores = tiny_stores()
        arena = SharedWeightArena.publish(stores)
        try:
            attached = SharedWeightArena.attach(arena.manifest)
            view = attached.stores["netA"].weights["conv1"]
            assert not view.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view[0, 0, 0, 0] = 1.0
            # Zero copy: the view's memory IS the shared block's buffer.
            expected = attached.manifest["networks"]["netA"]["weights"][
                "conv1"
            ]["offset"]
            base = np.frombuffer(attached.shm.buf, dtype=np.uint8)
            bounds = np.lib.array_utils.byte_bounds
            start = bounds(view)[0] - bounds(base)[0]
            assert start == expected
            del base, view
            attached.close()
        finally:
            arena.unlink()
            arena.close()

    def test_manifest_is_json_safe_and_aligned(self):
        arena = SharedWeightArena.publish(tiny_stores())
        try:
            manifest = json.loads(json.dumps(arena.manifest))
            assert manifest["shm"] == arena.shm.name
            for entry in manifest["networks"].values():
                for section in ("weights", "biases"):
                    for meta in entry[section].values():
                        assert meta["offset"] % 64 == 0
        finally:
            arena.unlink()
            arena.close()

    def test_only_owner_unlinks(self):
        arena = SharedWeightArena.publish(tiny_stores())
        try:
            attached = SharedWeightArena.attach(arena.manifest)
            with pytest.raises(RuntimeError):
                attached.unlink()
            attached.close()
        finally:
            arena.unlink()
            arena.close()

    def test_process_pss_kb(self):
        import os

        pss = process_pss_kb(os.getpid())
        assert pss is None or pss > 0
        assert process_pss_kb(2**30) is None


def mixed_workload() -> list[ServeRequest]:
    """Seeded + probe requests, all three kinds, plus threshold groups."""
    seeded = build_requests(6, list(SERVE_NETWORKS))
    pruned = build_requests(
        4, list(SERVE_NETWORKS), kinds=["classify", "zero_fraction"],
        seed=9, thresholds={"conv2": 0.05},
    )
    pruned = [
        ServeRequest(**{**req.__dict__, "id": f"p{index:04d}"})
        for index, req in enumerate(pruned)
    ]
    probes = build_sweep_requests(
        8, list(SERVE_NETWORKS), variants_per_network=2,
    )
    return seeded + pruned + probes


class TestShardedDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_byte_identical_to_direct(self, cache_dir, shards):
        requests = mixed_workload()
        result, service = drive_sharded(
            det_config(), ShardTierConfig(shards=shards, forward_timeout_s=120),
            requests, cache_dir,
        )
        assert len(result.responses) == len(requests)
        for request in requests:
            response = result.responses[request.id]
            assert response.status == "ok", response.payload
            reference = direct_response(service.repo, request)
            assert canonical_response_bytes(response) == (
                canonical_response_bytes(reference)
            )

    def test_summary_carries_per_shard_breakdown(self, cache_dir):
        requests = build_sweep_requests(
            8, list(SERVE_NETWORKS), variants_per_network=4,
            kinds=["classify"],
        )
        result, _ = drive_sharded(
            det_config(), ShardTierConfig(shards=2, forward_timeout_s=120),
            requests, cache_dir,
        )
        summary = summarize(result)
        assert "per_shard" in summary
        assert sum(
            entry["requests"] for entry in summary["per_shard"].values()
        ) == len(requests)
        # Latencies come from the shared perf_counter epoch: positive,
        # and bounded by the workload wall clock.
        for response in result.responses.values():
            assert response.latency_ms is not None
            assert 0 < response.latency_ms <= result.wall_s * 1e3

    def test_responses_identical_across_shard_counts(self, cache_dir):
        requests = build_sweep_requests(
            6, list(SERVE_NETWORKS), variants_per_network=3,
            kinds=["classify", "zero_fraction"],
        )
        byte_sets = []
        for shards in (1, 2):
            result, _ = drive_sharded(
                det_config(),
                ShardTierConfig(shards=shards, forward_timeout_s=120),
                requests, cache_dir,
            )
            byte_sets.append(
                {
                    rid: canonical_response_bytes(response)
                    for rid, response in result.responses.items()
                }
            )
        assert byte_sets[0] == byte_sets[1]


class TestFailover:
    def test_forward_fault_fails_over_with_zero_errors(self, cache_dir):
        obs.reset_metrics()
        injector = FaultInjector(rules=parse_faults("shard:forward=raise@0"))
        requests = build_sweep_requests(
            8, list(SERVE_NETWORKS), variants_per_network=2,
            kinds=["classify"],
        )
        result, _ = drive_sharded(
            det_config(), ShardTierConfig(shards=2, forward_timeout_s=120),
            requests, cache_dir, injector=injector,
        )
        summary = summarize(result)
        assert summary["error"] == 0 and summary["ok"] == len(requests)
        counters = obs.get_metrics().counters
        assert counters.get("router.retries", 0) >= len(requests)
        assert counters.get("router.failovers", 0) >= 1
        assert counters.get("faults.injected.shard:forward", 0) >= 1

    def test_shard_crash_mid_run_recovers(self, cache_dir, tmp_path):
        obs.reset_metrics()
        requests = build_sweep_requests(
            10, list(SERVE_NETWORKS), variants_per_network=2,
            kinds=["classify"],
        )
        result, _ = drive_sharded(
            det_config(),
            ShardTierConfig(
                shards=2, forward_timeout_s=120,
                faults="shard:serve=crash@3",
                fault_state=str(tmp_path / "fault-state"),
            ),
            requests, cache_dir,
            respawn=RespawnPolicy(backoff_base=0.01, seed=1),
        )
        summary = summarize(result)
        assert summary["error"] == 0, summary
        assert summary["ok"] == len(requests)
        counters = obs.get_metrics().counters
        assert counters.get("router.deaths", 0) >= 1

    def test_exhausted_attempts_yield_error_not_hang(self, cache_dir):
        obs.reset_metrics()
        injector = FaultInjector(rules=parse_faults("shard:forward=raise@*"))
        requests = build_requests(2, ["alex"], kinds=["classify"])
        result, _ = drive_sharded(
            det_config(),
            ShardTierConfig(shards=1, forward_timeout_s=120),
            requests, cache_dir, injector=injector,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
        )
        for response in result.responses.values():
            assert response.status == "error"
            assert "shard attempts failed" in response.payload["error"]


class TestRouterValidation:
    def test_unknown_network_and_bad_probe_index(self, cache_dir):
        async def _go():
            service = ShardedService(
                det_config(), tier=ShardTierConfig(shards=1),
                cache_dir=cache_dir,
            )
            await service.start()
            try:
                bad_net = await service.submit(
                    ServeRequest(id="a", kind="classify", network="nope")
                )
                bad_idx = await service.submit(
                    ServeRequest(
                        id="b", kind="classify", network="alex",
                        image_index=10_000,
                    )
                )
            finally:
                await service.stop()
            return bad_net, bad_idx

        bad_net, bad_idx = asyncio.run(_go())
        assert bad_net.status == "error"
        assert "unknown network" in bad_net.payload["error"]
        assert bad_idx.status == "error"
        assert "out of range" in bad_idx.payload["error"]

    def test_backlog_sheds_at_router(self, cache_dir):
        async def _go():
            service = ShardedService(
                det_config(),
                tier=ShardTierConfig(shards=1, backlog=2),
                cache_dir=cache_dir,
            )
            await service.start()
            try:
                # Saturate the accounting the router sheds on.
                client = service._clients[0]
                client.waiting = 2
                outcome = service.try_submit(
                    ServeRequest(id="s", kind="classify", network="alex")
                )
                client.waiting = 0
            finally:
                await service.stop()
            return outcome

        response = asyncio.run(_go())
        assert response.status == "shed"
        assert response.code == 429
        assert response.payload["backlog"] == 2


class TestSweepAffinity:
    def test_repeat_probe_traffic_hits_engine_caches(self, cache_dir):
        obs.reset_metrics()
        # Two full cycles over the groups: the second cycle must replay
        # the shards' threshold-signature caches.
        requests = build_sweep_requests(
            16, list(SERVE_NETWORKS), variants_per_network=4,
            kinds=["classify"],
        )
        result, _ = drive_sharded(
            det_config(), ShardTierConfig(shards=2, forward_timeout_s=120),
            requests, cache_dir,
        )
        assert summarize(result)["ok"] == len(requests)
        counters = obs.get_metrics().counters  # includes merged shard obs
        assert counters.get("engine.cache.hits", 0) > 0
        assert counters.get("engine.shared.attached", 0) >= 2
        assert counters.get("shard.requests", 0) >= len(requests)
        assert counters.get("router.forwarded", 0) == len(requests)


class TestSpawnStartMethod:
    def test_spawn_smoke(self, cache_dir):
        requests = build_requests(2, ["alex"], kinds=["classify"])
        result, service = drive_sharded(
            det_config(networks=("alex",)),
            ShardTierConfig(
                shards=1, start_method="spawn",
                connect_timeout_s=60, forward_timeout_s=120,
            ),
            requests, cache_dir,
        )
        for request in requests:
            response = result.responses[request.id]
            assert response.status == "ok"
            reference = direct_response(service.repo, request)
            assert canonical_response_bytes(response) == (
                canonical_response_bytes(reference)
            )

"""Serving tests (repro.serve): byte-identity, backpressure, deadlines.

The load-bearing guarantees:

* **Differential**: a deterministic service run — any arrival order, any
  batch cuts — produces responses byte-identical (canonical bytes) to
  one-at-a-time direct inference, for 100+ mixed-network requests.
* **Overload**: with a bounded queue and offered load beyond capacity,
  excess requests get explicit 429-style shed responses, every request
  gets *some* response, and the accepted ones are still byte-correct.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from differential import sparse_env
from repro import obs
from repro.reliability import FaultInjector, RetryPolicy
from repro.reliability.faults import parse_faults
from repro.serve import (
    InferenceService,
    MicroBatcher,
    ModelRepository,
    ServeConfig,
    ServeRequest,
    ServeResponse,
    build_requests,
    canonical_response_bytes,
    direct_response,
    percentile,
    run_load,
    summarize,
)

SERVE_NETWORKS = ("alex", "cnnS")


@pytest.fixture(scope="module")
def repo() -> ModelRepository:
    """One calibrated tiny-scale repository shared by the whole module."""
    config = ServeConfig(scale="tiny", networks=SERVE_NETWORKS, use_cache=False)
    repository = ModelRepository(config.paper_config())
    for name in SERVE_NETWORKS:
        repository.entry(name)
    return repository


def det_config(**overrides) -> ServeConfig:
    # Closed-loop runs submit the whole workload up front, so the queue
    # must hold it — backpressure is exercised separately (TestOverload).
    kwargs = dict(
        scale="tiny", networks=SERVE_NETWORKS, deterministic=True,
        use_cache=False, queue_limit=256,
    )
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


def drive(repo, config, requests, rate=None, seed=0, policy=None, injector=None):
    """Start a service, run one workload through it, stop it."""

    async def _go():
        service = InferenceService(
            config, repo=repo, policy=policy, injector=injector
        )
        await service.start()
        try:
            return await run_load(service, requests, rate=rate, seed=seed)
        finally:
            await service.stop()

    return asyncio.run(_go())


def canon(result) -> dict[str, bytes]:
    return {
        rid: canonical_response_bytes(resp)
        for rid, resp in result.responses.items()
    }


class TestDifferential:
    """Batched == unbatched, byte for byte (the PR's acceptance bar)."""

    N = 104  # >= 100 mixed-network requests, per the acceptance criterion

    @pytest.fixture(scope="class")
    def workload(self) -> list[ServeRequest]:
        return build_requests(self.N, networks=list(SERVE_NETWORKS), seed=11)

    @pytest.fixture(scope="class")
    def reference(self, repo, workload) -> dict[str, bytes]:
        """Direct one-at-a-time inference — no batching, no service."""
        return {
            request.id: canonical_response_bytes(direct_response(repo, request))
            for request in workload
        }

    def test_batched_matches_direct(self, repo, workload, reference):
        result = drive(repo, det_config(max_batch=7), workload)
        assert result.by_status() == {"ok": self.N}
        assert canon(result) == reference

    def test_arrival_order_and_cuts_do_not_matter(
        self, repo, workload, reference
    ):
        """Permuted arrivals + different batch boundaries, same bytes."""
        permuted = [
            workload[i] for r in range(3) for i in range(r, self.N, 3)
        ]
        assert [r.id for r in permuted] != [r.id for r in workload]
        result = drive(repo, det_config(max_batch=3), permuted)
        assert result.by_status() == {"ok": self.N}
        assert canon(result) == reference

    def test_batches_actually_formed(self, repo, workload):
        """The differential runs exercise real multi-request batches."""
        result = drive(repo, det_config(max_batch=7), workload[:28])
        sizes = {resp.batch_size for resp in result.responses.values()}
        assert max(sizes) == 7


class TestSparseDifferential:
    """CNVLUTIN_SPARSE changes wall time, never a response byte."""

    N = 24

    def _canon_for_mode(self, repo, requests, mode) -> dict[str, bytes]:
        with sparse_env(mode):
            result = drive(repo, det_config(max_batch=5), requests)
        assert result.by_status() == {"ok": self.N}
        return canon(result)

    def test_sparse_modes_preserve_response_bytes(self, repo):
        """A mixed-network batch through repro.serve answers identically
        under ``always``, ``never`` and ``auto`` — including thresholded
        requests whose pruned activations actually take the sparse path."""
        requests = build_requests(
            self.N - 6, networks=list(SERVE_NETWORKS), seed=21
        ) + build_requests(
            6, networks=list(SERVE_NETWORKS), seed=22,
            thresholds={"conv1": 0.5, "conv2": 0.5},
        )
        requests = [
            dataclasses.replace(request, id=f"s{index:06d}")
            for index, request in enumerate(requests)
        ]
        reference = self._canon_for_mode(repo, requests, "never")
        for mode in ("always", "auto"):
            assert self._canon_for_mode(repo, requests, mode) == reference


class TestOverload:
    def test_bounded_queue_sheds_and_survives(self, repo):
        """Offered load >> capacity: explicit sheds, correct accepts."""
        config = ServeConfig(
            scale="tiny", networks=SERVE_NETWORKS, use_cache=False,
            max_batch=2, queue_limit=3, workers=1, linger_ms=1.0,
        )
        requests = build_requests(30, networks=list(SERVE_NETWORKS), seed=5)
        result = drive(repo, config, requests, rate=2000.0, seed=5)
        summary = summarize(result)

        # Every request got exactly one explicit response — nothing lost,
        # nothing buffered beyond the queue bound.
        assert summary["requests"] == 30
        assert (
            summary["ok"] + summary["shed"] + summary["timeout"]
            + summary["error"] == 30
        )
        assert summary["shed"] > 0, "overload never tripped the queue bound"
        assert summary["ok"] > 0, "overload starved every request"
        assert summary["error"] == 0

        for response in result.responses.values():
            if response.status == "shed":
                assert response.payload["queue_limit"] == 3
                doc = json.loads(canonical_response_bytes(response))
                assert doc["code"] == 429

        # The accepted requests still answer byte-identically to direct
        # inference — overload degrades capacity, never correctness.
        by_id = {request.id: request for request in requests}
        checked = 0
        for rid, response in result.responses.items():
            if response.status != "ok":
                continue
            expected = canonical_response_bytes(direct_response(repo, by_id[rid]))
            assert canonical_response_bytes(response) == expected
            checked += 1
        assert checked == summary["ok"]


class TestDeadlines:
    def test_expired_deadline_times_out_without_computing(self, repo):
        requests = build_requests(
            4, networks=["alex"], kinds=["classify"], seed=2,
            deadline_ms=0.001,
        )
        result = drive(repo, det_config(max_batch=2), requests)
        assert result.by_status() == {"timeout": 4}
        for response in result.responses.values():
            doc = json.loads(canonical_response_bytes(response))
            assert doc["code"] == 504
            assert "deadline" in doc["payload"]["error"]

    def test_generous_deadline_completes(self, repo):
        requests = build_requests(
            2, networks=["alex"], kinds=["classify"], seed=2,
            deadline_ms=60_000.0,
        )
        result = drive(repo, det_config(max_batch=2), requests)
        assert result.by_status() == {"ok": 2}


class TestFaultsAndRetries:
    def test_injected_batch_fault_is_retried(self, repo):
        """CNVLUTIN_FAULTS-style 'serve:batch=raise@0' costs one retry."""
        injector = FaultInjector(rules=parse_faults("serve:batch=raise@0"))
        policy = RetryPolicy(
            max_attempts=2, backoff_base=0.0, backoff_max=0.0, seed=7
        )
        requests = build_requests(
            2, networks=["alex"], kinds=["classify"], seed=3
        )
        before = obs.get_metrics().snapshot()["counters"].get("serve.retries", 0)
        result = drive(
            repo, det_config(max_batch=2), requests,
            policy=policy, injector=injector,
        )
        assert result.by_status() == {"ok": 2}
        after = obs.get_metrics().snapshot()["counters"]["serve.retries"]
        assert after == before + 1

    def test_exhausted_retries_become_error_responses(self, repo):
        injector = FaultInjector(
            rules=parse_faults("serve:batch=raise@0;serve:batch=raise@1")
        )
        policy = RetryPolicy(
            max_attempts=2, backoff_base=0.0, backoff_max=0.0, seed=7
        )
        requests = build_requests(
            2, networks=["alex"], kinds=["classify"], seed=3
        )
        result = drive(
            repo, det_config(max_batch=2), requests,
            policy=policy, injector=injector,
        )
        assert result.by_status() == {"error": 2}
        for response in result.responses.values():
            assert "InjectedFault" in response.payload["error"]

    def test_unknown_network_is_an_error_not_a_crash(self, repo):
        request = ServeRequest(id="x", kind="classify", network="nosuch")
        result = drive(repo, det_config(), [request])
        response = result.responses["x"]
        assert response.status == "error"
        assert "unknown network" in response.payload["error"]


class TestServeMetrics:
    def test_serve_namespaces_populated(self, repo):
        requests = build_requests(6, networks=list(SERVE_NETWORKS), seed=9)
        drive(repo, det_config(max_batch=3), requests)
        snapshot = obs.get_metrics().snapshot()
        counters = snapshot["counters"]
        assert counters["serve.requests"] >= 6
        assert counters["serve.batches"] >= 2
        assert counters["serve.completed"] >= 6
        histograms = snapshot["histograms"]
        assert histograms["serve.batch_size"]["count"] >= 2
        assert histograms["serve.batch_size"]["max"] >= 3
        assert histograms["serve.latency_ms"]["count"] >= 6
        assert "serve.queue_depth" in snapshot["gauges"]

    def test_batch_span_emitted(self, repo, tmp_path):
        obs.enable_tracing()
        try:
            requests = build_requests(
                3, networks=["alex"], kinds=["classify"], seed=13
            )
            drive(repo, det_config(max_batch=3), requests)
            trace_path = tmp_path / "serve-trace.json"
            obs.write_chrome_trace(trace_path)
        finally:
            obs.disable_tracing()
        document = json.loads(trace_path.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert "serve.batch" in names
        assert "engine.run_stack" in names


class TestMicroBatcher:
    """Pure batcher logic — no service, no models."""

    @staticmethod
    def entry(rid: str, network: str = "alex", thresholds=None):
        request = ServeRequest(
            id=rid, kind="classify", network=network, thresholds=thresholds
        )
        return SimpleNamespace(request=request, future=None)

    def test_cuts_full_batch_at_max(self):
        batcher = MicroBatcher(max_batch=3, linger_s=1.0)
        assert batcher.add(self.entry("a"), now=0.0) is None
        assert batcher.add(self.entry("b"), now=0.0) is None
        batch = batcher.add(self.entry("c"), now=0.0)
        assert batch is not None and batch.reason == "full"
        assert [e.request.id for e in batch.entries] == ["a", "b", "c"]

    def test_linger_deadline_cuts_partial_batch(self):
        batcher = MicroBatcher(max_batch=8, linger_s=0.010)
        batcher.add(self.entry("a"), now=0.0)
        assert batcher.due(now=0.005) == []
        assert batcher.next_due(now=0.005) == pytest.approx(0.005)
        due = batcher.due(now=0.011)
        assert len(due) == 1 and due[0].reason == "linger"

    def test_deterministic_mode_ignores_the_clock(self):
        batcher = MicroBatcher(max_batch=2, linger_s=0.001, deterministic=True)
        batcher.add(self.entry("a"), now=0.0)
        assert batcher.due(now=999.0) == []
        assert batcher.next_due(now=999.0) is None
        flushed = batcher.flush()
        assert len(flushed) == 1 and flushed[0].reason == "flush"

    def test_groups_by_network_and_thresholds(self):
        batcher = MicroBatcher(max_batch=2, linger_s=1.0)
        assert batcher.add(self.entry("a", "alex"), now=0.0) is None
        assert batcher.add(self.entry("b", "cnnS"), now=0.0) is None
        batch = batcher.add(self.entry("c", "alex"), now=0.0)
        assert batch is not None and batch.network == "alex"
        thresholded = batcher.add(
            self.entry("d", "cnnS", thresholds={"conv1": 0.5}), now=0.0
        )
        assert thresholded is None  # distinct group from plain cnnS
        remaining = batcher.flush()
        assert [len(b.entries) for b in remaining] == [1, 1]
        assert {b.thresholds_key for b in remaining} == {
            (), (("conv1", 0.5),)
        }


class TestRequestSchema:
    def test_json_roundtrip(self):
        request = ServeRequest(
            id="q1", kind="timing", network="alex", image_seed=42,
            thresholds={"conv1": 0.25}, deadline_ms=100.0,
        )
        assert ServeRequest.from_json(request.to_json()) == request

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            ServeRequest.from_json(
                '{"id": "a", "kind": "classify", "network": "alex", "bogus": 1}'
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ServeRequest(id="a", kind="meditate", network="alex")

    def test_canonical_bytes_exclude_schedule_metadata(self):
        response = ServeResponse(
            id="a", status="ok", kind="classify", network="alex",
            payload={"top1": 3}, latency_ms=12.5, batch_size=4,
        )
        doc = json.loads(canonical_response_bytes(response))
        assert doc == {
            "id": "a", "status": "ok", "code": 200, "kind": "classify",
            "network": "alex", "payload": {"top1": 3},
        }

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 101)


class TestTcpServer:
    def test_json_lines_roundtrip(self, tmp_path):
        """`repro-serve serve` answers pipelined JSON lines and exits."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        env["CNVLUTIN_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve.cli", "serve",
                "--port", "0", "--max-requests", "2",
                "--scale", "tiny", "--networks", "alex", "--no-cache",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            port = int(banner.split(":")[-1].split()[0])
            deadline = time.monotonic() + 60
            with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
                sock.settimeout(30)
                lines = b"".join(
                    json.dumps(
                        {"id": rid, "kind": "classify", "network": "alex",
                         "image_seed": seed}
                    ).encode() + b"\n"
                    for rid, seed in (("t0", 1), ("t1", 2))
                )
                sock.sendall(lines)
                sock.shutdown(socket.SHUT_WR)
                raw = b""
                while raw.count(b"\n") < 2 and time.monotonic() < deadline:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
            docs = [json.loads(line) for line in raw.splitlines() if line]
            assert {doc["id"] for doc in docs} == {"t0", "t1"}
            assert all(doc["status"] == "ok" for doc in docs)
            assert all(isinstance(doc["payload"]["top1"], int) for doc in docs)
            proc.wait(timeout=60)
            assert proc.returncode == 0, proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

"""On-the-fly validation harness tests (repro.core.validate)."""

import numpy as np
import pytest

from repro.core.validate import validate_network
from repro.nn.datasets import natural_images
from repro.nn.inference import init_weights
from repro.nn.models import build_network
from repro.nn.training import train_small_cnn


class TestValidateNetwork:
    def test_alexnet_layers_validate(self):
        net = build_network("alex", input_size=67)
        store = init_weights(net, np.random.default_rng(3))
        image = natural_images(net.input_shape, 1, seed=4)[0]
        report = validate_network(net, store, image, max_spatial=6, max_filters=4)
        assert len(report.layers) == 5
        assert report.all_passed, report.summary()

    def test_trained_small_cnn_validates(self):
        result = train_small_cnn(train_count=64, test_count=32, epochs=1)
        from repro.nn.datasets import ShapeDataset

        images, _ = ShapeDataset().batch(1, seed=7)
        report = validate_network(
            result.network, result.store, images[0], max_spatial=8
        )
        assert report.all_passed, report.summary()
        # Encoded layers actually sped up on real activations.
        non_first = report.layers[1:]
        assert any(lv.speedup > 1.0 for lv in non_first)

    def test_layer_subset(self):
        net = build_network("alex", input_size=67)
        store = init_weights(net, np.random.default_rng(3))
        image = natural_images(net.input_shape, 1, seed=4)[0]
        report = validate_network(
            net, store, image, layers=["conv3"], max_spatial=5, max_filters=2
        )
        assert [lv.layer for lv in report.layers] == ["conv3"]

    def test_summary_format(self):
        net = build_network("alex", input_size=67)
        store = init_weights(net, np.random.default_rng(3))
        image = natural_images(net.input_shape, 1, seed=4)[0]
        report = validate_network(
            net, store, image, layers=["conv2"], max_spatial=5, max_filters=4
        )
        text = report.summary()
        assert "conv2" in text and "ok" in text

"""Area/energy model tests (repro.power)."""

import pytest

from repro.hw.counters import ActivityCounters
from repro.power.area import area_breakdown, cnv_area_overhead
from repro.power.components import BASELINE, CNV, COMPONENTS, COUNTER_COMPONENT
from repro.power.energy import energy_report, model_for
from repro.power.metrics import EfficiencyMetrics, ed2p, edp, improvement


class TestArea:
    def test_total_overhead_matches_paper(self):
        """Section V-C: CNV increases total area by 4.49%."""
        assert cnv_area_overhead() == pytest.approx(0.0449, abs=0.001)

    def test_component_deltas_match_paper(self):
        assert CNV.area_mm2["nm"] / BASELINE.area_mm2["nm"] == pytest.approx(1.34)
        assert CNV.area_mm2["sram"] / BASELINE.area_mm2["sram"] == pytest.approx(1.158)
        assert CNV.area_mm2["sb"] == BASELINE.area_mm2["sb"]

    def test_sb_dominates(self):
        """'The filter storage (SB) dominates total area for both'."""
        for model in (BASELINE, CNV):
            breakdown = area_breakdown(model)
            assert breakdown.fraction("sb") > 0.5

    def test_fractions_sum_to_one(self):
        fractions = area_breakdown(BASELINE).fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestEnergyReport:
    def _counters(self):
        c = ActivityCounters()
        c.add("mults", 1e9)
        c.add("sb_reads", 1e8)
        c.add("nm_reads", 1e6)
        return c

    def test_static_scales_with_time(self):
        short = energy_report(self._counters(), 0.001, "dadiannao")
        long = energy_report(self._counters(), 0.002, "dadiannao")
        assert long.total_static_j == pytest.approx(2 * short.total_static_j)
        assert long.total_dynamic_j == pytest.approx(short.total_dynamic_j)

    def test_dynamic_scales_with_activity(self):
        c2 = self._counters()
        c2.add("mults", 1e9)  # doubled
        base = energy_report(self._counters(), 0.001, "dadiannao")
        more = energy_report(c2, 0.001, "dadiannao")
        assert more.dynamic_j["logic"] > base.dynamic_j["logic"]

    def test_every_counter_mapped_to_a_component(self):
        for component in COUNTER_COMPONENT.values():
            assert component in COMPONENTS

    def test_unmapped_counters_ignored(self):
        c = ActivityCounters()
        c.add("cycles", 1e6)
        c.add("lane_stall", 1e6)
        report = energy_report(c, 0.001, "cnvlutin")
        assert report.total_dynamic_j == 0.0

    def test_model_for_names(self):
        assert model_for("dadiannao") is BASELINE
        assert model_for("cnvlutin") is CNV
        with pytest.raises(KeyError):
            model_for("tpu")

    def test_average_power(self):
        report = energy_report(self._counters(), 0.01, "dadiannao")
        assert report.average_power_w == pytest.approx(report.total_j / 0.01)

    def test_cnv_nm_access_is_pricier(self):
        """Wider (offset-carrying) banked NM reads cost more per access."""
        assert CNV.dynamic_energy_pj["nm_reads"] > BASELINE.dynamic_energy_pj["nm_reads"]


class TestMetrics:
    def test_edp_and_ed2p(self):
        assert edp(2.0, 3.0) == 6.0
        assert ed2p(2.0, 3.0) == 18.0

    def test_improvement_ratios(self):
        base = EfficiencyMetrics(energy_j=1.0, delay_s=1.0)
        cnv = EfficiencyMetrics(energy_j=0.93, delay_s=1 / 1.37)
        ratios = improvement(base, cnv)
        assert ratios["speedup"] == pytest.approx(1.37)
        assert ratios["energy"] == pytest.approx(1 / 0.93)
        # The paper's arithmetic: E ratio 0.93 and 1.37x speedup give
        # EDP 1.47x and ED2P 2.01x.
        assert ratios["edp"] == pytest.approx(1.47, abs=0.01)
        assert ratios["ed2p"] == pytest.approx(2.01, abs=0.02)

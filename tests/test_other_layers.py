"""Non-conv layer timing tests (repro.baseline.other_layers)."""

import pytest

from repro.baseline.other_layers import other_layer_timing, other_layers_timing
from repro.hw.config import PAPER_CONFIG
from repro.nn.models import build_network
from repro.nn.network import LayerSpec, Network


def fc_net(fc_width=1000, offchip=None):
    net = Network(
        name="t",
        input_shape=(64, 8, 8),
        layers=[
            LayerSpec(name="pool", kind="maxpool", kernel=2, stride=2),
            LayerSpec(name="norm", kind="lrn"),
            LayerSpec(name="fc", kind="fc", num_filters=fc_width),
            LayerSpec(name="drop", kind="dropout"),
            LayerSpec(name="prob", kind="softmax"),
        ],
    )
    return net


class TestPooling:
    def test_streaming_throughput(self):
        net = fc_net()
        timing = other_layer_timing(net, "pool", PAPER_CONFIG)
        neurons = 64 * 8 * 8
        assert timing.cycles == -(-neurons // (16 * 16))
        assert timing.kind == "maxpool"

    def test_events_are_other_category(self):
        net = fc_net()
        timing = other_layer_timing(net, "pool", PAPER_CONFIG)
        assert set(timing.lane_events) == {"other"}
        assert timing.lane_events["other"] == timing.cycles * 16 * 16


class TestLrn:
    def test_double_cost(self):
        net = fc_net()
        pool = other_layer_timing(net, "pool", PAPER_CONFIG)
        norm = other_layer_timing(net, "norm", PAPER_CONFIG)
        # norm sees the pooled (quarter-size) map but costs 2x per neuron.
        assert norm.cycles == 2 * -(-64 * 4 * 4 // 256)


class TestFc:
    def test_compute_bound_by_default(self):
        net = fc_net()
        timing = other_layer_timing(net, "fc", PAPER_CONFIG)
        inputs = 64 * 4 * 4
        assert timing.cycles == -(-inputs // 16) * -(-1000 // 256)

    def test_offchip_bound_when_configured(self):
        """With finite off-chip bandwidth and synapses beyond SB capacity,
        streaming bounds the layer."""
        net = build_network("alex", input_size=227)
        cfg = PAPER_CONFIG.with_(offchip_gbytes_per_sec=25.6)
        slow = other_layer_timing(net, "fc6", cfg)
        fast = other_layer_timing(net, "fc6", PAPER_CONFIG)
        assert slow.cycles > fast.cycles  # 75 MB of synapses > 32 MB SB

    def test_small_fc_unaffected_by_bandwidth_cap(self):
        net = fc_net(fc_width=10)
        cfg = PAPER_CONFIG.with_(offchip_gbytes_per_sec=25.6)
        assert (
            other_layer_timing(net, "fc", cfg).cycles
            == other_layer_timing(net, "fc", PAPER_CONFIG).cycles
        )


class TestFreeLayers:
    def test_softmax_and_dropout_cost_nothing(self):
        net = fc_net()
        assert other_layer_timing(net, "prob", PAPER_CONFIG) is None
        assert other_layer_timing(net, "drop", PAPER_CONFIG) is None

    def test_network_sweep_skips_conv_and_free(self):
        net = build_network("alex", input_size=67)
        timings = other_layers_timing(net, PAPER_CONFIG)
        names = {t.name for t in timings}
        assert "conv1" not in names
        assert "prob" not in names
        assert {"pool1", "norm1", "fc6"} <= names

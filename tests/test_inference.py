"""Inference-engine tests (repro.nn.inference)."""

import numpy as np
import pytest

from repro.nn.datasets import natural_images
from repro.nn.inference import init_weights, run_forward
from repro.nn.models import build_network
from repro.nn.network import LayerSpec, Network
from repro.nn.tensor import DEFAULT_FORMAT


def tiny_net() -> Network:
    return Network(
        name="t",
        input_shape=(3, 8, 8),
        layers=[
            LayerSpec(name="conv1", kind="conv", num_filters=4, kernel=3, pad=1, fused_relu=True),
            LayerSpec(name="pool1", kind="maxpool", kernel=2, stride=2),
            LayerSpec(name="conv2", kind="conv", num_filters=6, kernel=3, pad=1, fused_relu=True),
            LayerSpec(name="fc", kind="fc", num_filters=5, fused_relu=False),
            LayerSpec(name="prob", kind="softmax"),
        ],
    )


class TestForward:
    def test_shapes_follow_network(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        image = rng.uniform(size=net.input_shape)
        result = run_forward(net, store, image)
        for layer in net.layers:
            assert result.outputs[layer.name].shape == net.output_shape(layer.name)

    def test_conv_inputs_recorded(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        result = run_forward(net, store, rng.uniform(size=net.input_shape))
        assert set(result.conv_inputs) == {"conv1", "conv2"}
        assert result.conv_inputs["conv2"].shape == (4, 4, 4)

    def test_logits_and_prob(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        result = run_forward(net, store, rng.uniform(size=net.input_shape))
        assert result.logits.shape == (5,)
        assert result.prob().sum() == pytest.approx(1.0)

    def test_relu_applied_to_fused_layers(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        result = run_forward(net, store, rng.uniform(size=net.input_shape))
        assert np.all(result.outputs["conv1"] >= 0)

    def test_wrong_image_shape_rejected(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        with pytest.raises(ValueError):
            run_forward(net, store, np.zeros((3, 4, 4)))

    def test_keep_outputs_false_still_returns_conv_inputs(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        result = run_forward(
            net, store, rng.uniform(size=net.input_shape), keep_outputs=False
        )
        assert result.outputs == {}
        assert set(result.conv_inputs) == {"conv1", "conv2"}
        assert result.logits is not None


class TestDtypePolicy:
    def test_float32_stays_float32_end_to_end(self, rng):
        """Regression: run_forward used to upcast every image to float64."""
        net = tiny_net()
        store = init_weights(net, rng)
        store.weights = {k: v.astype(np.float32) for k, v in store.weights.items()}
        store.biases = {k: v.astype(np.float32) for k, v in store.biases.items()}
        image = rng.uniform(size=net.input_shape).astype(np.float32)
        result = run_forward(net, store, image)
        assert result.outputs["conv1"].dtype == np.float32
        assert result.outputs["conv2"].dtype == np.float32
        assert result.conv_inputs["conv2"].dtype == np.float32
        assert result.logits.dtype == np.float32

    def test_float64_preserved(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        image = rng.uniform(size=net.input_shape)  # float64
        result = run_forward(net, store, image)
        assert result.outputs["conv1"].dtype == np.float64

    def test_integer_image_promoted_to_float64(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        image = rng.integers(0, 255, size=net.input_shape)
        result = run_forward(net, store, image)
        assert result.outputs["conv1"].dtype == np.float64


class TestThresholds:
    def test_threshold_increases_zeros_downstream(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        image = rng.uniform(size=net.input_shape)
        clean = run_forward(net, store, image)
        pruned = run_forward(net, store, image, thresholds={"conv1": 0.3})
        z_clean = (clean.conv_inputs["conv2"] == 0).mean()
        z_pruned = (pruned.conv_inputs["conv2"] == 0).mean()
        assert z_pruned >= z_clean

    def test_zero_threshold_is_noop(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        image = rng.uniform(size=net.input_shape)
        clean = run_forward(net, store, image)
        pruned = run_forward(net, store, image, thresholds={"conv1": 0.0})
        assert np.array_equal(clean.logits, pruned.logits)

    def test_threshold_only_affects_named_layer_onward(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        image = rng.uniform(size=net.input_shape)
        clean = run_forward(net, store, image)
        pruned = run_forward(net, store, image, thresholds={"conv2": 10.0})
        assert np.array_equal(
            clean.conv_inputs["conv2"], pruned.conv_inputs["conv2"]
        )
        assert not np.array_equal(clean.logits, pruned.logits)


class TestQuantizedForward:
    def test_quantized_close_to_float(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        image = rng.uniform(size=net.input_shape)
        float_result = run_forward(net, store, image)
        fixed_result = run_forward(net, store, image, fmt=DEFAULT_FORMAT)
        assert np.allclose(float_result.logits, fixed_result.logits, atol=0.5)

    def test_quantized_values_on_grid(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        image = rng.uniform(size=net.input_shape)
        result = run_forward(net, store, image, fmt=DEFAULT_FORMAT)
        out = result.outputs["conv1"]
        assert np.allclose(out * DEFAULT_FORMAT.scale, np.round(out * DEFAULT_FORMAT.scale))


class TestShiftFn:
    def test_shift_fn_overrides_store(self, rng):
        net = tiny_net()
        store = init_weights(net, rng)
        store.shifts["conv1"] = 100.0  # would saturate everything positive
        image = rng.uniform(size=net.input_shape)
        recorded = {}

        def shift_fn(name, pre):
            recorded[name] = pre.shape
            return 0.0

        result = run_forward(net, store, image, shift_fn=shift_fn)
        assert "conv1" in recorded and "fc" in recorded
        assert result.outputs["conv1"].max() < 100.0


class TestFullNetworks:
    @pytest.mark.parametrize("name", ["alex", "nin"])
    def test_tiny_scale_forward(self, rng, name):
        net = build_network(name, input_size=67 if name == "alex" else 64)
        store = init_weights(net, rng)
        image = natural_images(net.input_shape, 1, seed=3)[0]
        result = run_forward(net, store, image, keep_outputs=False)
        assert result.logits.shape == (1000,)
        assert len(result.conv_inputs) == net.num_conv_layers

    def test_google_branching_forward(self, rng):
        net = build_network("google", input_size=64)
        store = init_weights(net, rng)
        image = natural_images(net.input_shape, 1, seed=3)[0]
        result = run_forward(net, store, image, keep_outputs=True)
        # Aux branches computed, trunk unaffected by them.
        assert "loss1/conv" in result.conv_inputs
        assert result.outputs["prob"].sum() == pytest.approx(1.0)

"""Reusable differential harness: dense vs sparse bit-identity.

The contract under test is the strongest one the repo makes: the
``CNVLUTIN_SPARSE`` compute path (``never`` / ``always`` / ``auto``)
changes wall-clock time but **never a single output byte** — at the
kernel level (``conv2d`` / ``fully_connected``), through a whole
``run_forward`` pass, and for every byte a serving response serializes.

This module is a library, not a test file (pytest does not collect it):
both the hypothesis property suites and the fixed regression cases in
``tests/test_sparse_kernels.py`` drive these helpers, and new suites can
import them to get the same byte-level comparison semantics.  The grid
spans dtype x stride x pad x groups x batch x pruning threshold.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.nn import sparse as zskip
from repro.nn.inference import run_forward

#: The modes every assertion compares; identity must hold pairwise.
MODES = ("never", "always", "auto")


@contextlib.contextmanager
def sparse_env(mode: str | None = None, cutoff: float | None = None):
    """Temporarily pin ``CNVLUTIN_SPARSE`` / ``CNVLUTIN_SPARSE_CUTOFF``."""
    saved = {
        name: os.environ.get(name)
        for name in (zskip.MODE_ENV, zskip.CUTOFF_ENV)
    }
    try:
        if mode is None:
            os.environ.pop(zskip.MODE_ENV, None)
        else:
            os.environ[zskip.MODE_ENV] = mode
        if cutoff is None:
            os.environ.pop(zskip.CUTOFF_ENV, None)
        else:
            os.environ[zskip.CUTOFF_ENV] = repr(cutoff)
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def prune(activations: np.ndarray, threshold: float) -> np.ndarray:
    """Zero all entries below ``threshold`` in magnitude (grid inputs)."""
    out = np.array(activations, copy=True)
    if threshold > 0:
        out[np.abs(out) < threshold] = 0.0
    return out


def _describe(case: str, outputs: dict[str, np.ndarray]) -> str:
    reference = outputs["never"]
    lines = [case]
    for mode, arr in outputs.items():
        if mode == "never":
            continue
        if arr.shape != reference.shape or arr.dtype != reference.dtype:
            lines.append(
                f"  {mode}: shape/dtype {arr.shape}/{arr.dtype} != "
                f"{reference.shape}/{reference.dtype}"
            )
        elif arr.tobytes() != reference.tobytes():
            bad = np.flatnonzero(
                arr.view(np.uint8) != reference.view(np.uint8)
            )
            lines.append(f"  {mode}: first differing byte at {bad[0]}")
    return "\n".join(lines)


def assert_modes_identical(compute, case: str = "") -> np.ndarray:
    """Run ``compute(mode)`` for every mode; assert byte-identical output.

    ``compute`` maps a mode string to an ndarray.  Returns the reference
    (``never``-mode) array so callers can chain further checks.
    """
    outputs = {mode: np.ascontiguousarray(compute(mode)) for mode in MODES}
    reference = outputs["never"]
    identical = all(
        arr.shape == reference.shape
        and arr.dtype == reference.dtype
        and arr.tobytes() == reference.tobytes()
        for arr in outputs.values()
    )
    assert identical, _describe(case or "dense/sparse mismatch", outputs)
    return reference


def assert_conv_identical(
    activations: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    case: str = "",
) -> np.ndarray:
    from repro.nn.layers import conv2d

    return assert_modes_identical(
        lambda mode: conv2d(
            activations, weights, bias,
            stride=stride, pad=pad, groups=groups, sparse_mode=mode,
        ),
        case or f"conv stride={stride} pad={pad} groups={groups} "
        f"shape={activations.shape} dtype={activations.dtype}",
    )


def assert_fc_identical(
    activations: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    case: str = "",
) -> np.ndarray:
    from repro.nn.layers import fully_connected

    return assert_modes_identical(
        lambda mode: fully_connected(
            activations, weights, bias, sparse_mode=mode
        ),
        case or f"fc shape={activations.shape} dtype={activations.dtype}",
    )


def forward_fingerprint(
    network, store, image, thresholds=None
) -> dict[str, bytes]:
    """Byte fingerprint of every layer output (+ logits) of one forward."""
    result = run_forward(
        network, store, image, thresholds=thresholds, keep_outputs=True
    )
    fingerprint = {
        name: arr.tobytes() for name, arr in result.outputs.items()
    }
    if result.logits is not None:
        fingerprint["__logits__"] = result.logits.tobytes()
    return fingerprint


def assert_forward_identical(network, store, image, thresholds=None) -> None:
    """Whole-network differential: every layer byte-identical across modes."""
    fingerprints = {}
    for mode in MODES:
        with sparse_env(mode):
            fingerprints[mode] = forward_fingerprint(
                network, store, image, thresholds
            )
    reference = fingerprints["never"]
    for mode, fingerprint in fingerprints.items():
        assert fingerprint.keys() == reference.keys(), mode
        differing = [
            name for name, blob in fingerprint.items()
            if blob != reference[name]
        ]
        assert not differing, (
            f"{network.name}: mode {mode} differs from never at {differing}"
        )


@dataclass(frozen=True)
class GridCase:
    """One coordinate of the differential grid."""

    dtype: str
    stride: int
    pad: int
    groups: int
    batch: int
    threshold: float


def grid_cases(
    dtypes=("float64", "float32"),
    strides=(1, 2, 3),
    pads=(0, 1, 2),
    groups=(1, 2),
    batches=(1, 3),
    thresholds=(0.0, 0.3, 0.8),
):
    """The full dtype x stride x pad x groups x batch x threshold grid."""
    for combo in product(dtypes, strides, pads, groups, batches, thresholds):
        yield GridCase(*combo)


def run_conv_grid(rng: np.random.Generator, cases=None) -> int:
    """Assert conv bit-identity across the grid; returns cases checked.

    Inputs are positive-mean random activations pruned at the case's
    threshold (higher thresholds drive up the dead-column fraction, so
    the grid crosses the ``auto`` cutoff in both directions), with
    channel count chosen to exercise ``depth % 16 != 0``.
    """
    checked = 0
    for case in cases if cases is not None else grid_cases():
        depth = 8 if case.groups == 2 else 7
        kernel = 3
        size = kernel + 2 * case.stride + 2  # a few windows per axis
        shape = (case.batch, depth, size, size + case.stride)
        activations = prune(
            np.maximum(rng.normal(0.3, 1.0, size=shape), 0.0),
            case.threshold,
        ).astype(case.dtype)
        if case.batch == 1:
            activations = activations[0]
        weights = rng.normal(
            size=(4, depth // case.groups, kernel, kernel)
        ).astype(case.dtype)
        bias = rng.normal(size=4).astype(case.dtype)
        assert_conv_identical(
            activations, weights, bias,
            stride=case.stride, pad=case.pad, groups=case.groups,
            case=str(case),
        )
        checked += 1
    return checked


def run_fc_grid(rng: np.random.Generator, cases=None) -> int:
    """Assert FC bit-identity across the (dtype x batch x threshold) grid."""
    checked = 0
    seen = set()
    for case in cases if cases is not None else grid_cases():
        key = (case.dtype, case.batch, case.threshold)
        if key in seen:
            continue
        seen.add(key)
        shape = (case.batch, 5, 4, 4)
        activations = prune(
            np.maximum(rng.normal(0.3, 1.0, size=shape), 0.0),
            case.threshold,
        ).astype(case.dtype)
        if case.batch == 1:
            activations = activations[0]
        weights = rng.normal(size=(9, 5 * 4 * 4)).astype(case.dtype)
        bias = rng.normal(size=9).astype(case.dtype)
        assert_fc_identical(activations, weights, bias, case=str(case))
        checked += 1
    return checked

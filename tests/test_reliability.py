"""Chaos suite: the pipeline converges under injected faults.

The acceptance contract of the reliability subsystem: with injected
worker crashes, cache corruption, unit exceptions, and hangs, a
``run_all --jobs 2`` still completes via retries and produces tables
byte-identical to a fault-free serial run; a run that recorded failures
can be ``--resume``\\ d and re-executes only the incomplete units; and a
damaged artifact cache costs recomputation, never correctness.
"""

import json
import multiprocessing
import os

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.manifest import ArtifactCache, RunManifest, UnitRecord, stable_hash
from repro.experiments.parallel import WorkUnit, execute_units, plan_units, run_unit
from repro.experiments.report import results_to_json_doc
from repro.experiments.runner import EXPERIMENTS, run_all_with_manifest
from repro.reliability import (
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    parse_faults,
)

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def tiny_config(tmp_path, **overrides):
    kwargs = {
        "scale": "tiny",
        "networks": ["alex", "cnnS"],
        "num_images": 1,
        "smallcnn": False,
    }
    kwargs.update(overrides)
    return PaperConfig(cache_dir=tmp_path, **kwargs)


def fast_policy(**overrides):
    kwargs = {"max_attempts": 3, "backoff_base": 0.01, "backoff_max": 0.05}
    kwargs.update(overrides)
    return RetryPolicy(**kwargs)


def set_faults(monkeypatch, tmp_path, spec):
    monkeypatch.setenv("CNVLUTIN_FAULTS", spec)
    state = tmp_path / "fault-state"
    monkeypatch.setenv("CNVLUTIN_FAULT_STATE", str(state))
    return state


# ---------------------------------------------------------------------------
# fault spec grammar
# ---------------------------------------------------------------------------
class TestFaultSpecGrammar:
    def test_full_grammar(self):
        rules = parse_faults(
            "unit:fig9/nin=raise@0; pool:worker=crash@1,3;"
            "cache:read=corrupt@*; unit:fig1/alex=delay:2.5"
        )
        assert [r.site for r in rules] == [
            "unit:fig9/nin", "pool:worker", "cache:read", "unit:fig1/alex",
        ]
        assert rules[0].action.kind == "raise"
        assert rules[0].trials == frozenset({0})
        assert rules[1].trials == frozenset({1, 3})
        assert rules[2].trials is None  # every trial
        assert rules[3].action.kind == "delay"
        assert rules[3].action.seconds == 2.5

    def test_probability_suffix(self):
        (rule,) = parse_faults("cache:read=raise~0.5@*")
        assert rule.action.probability == 0.5

    @pytest.mark.parametrize(
        "bad",
        [
            "unit:fig9/nin",  # no action
            "=raise",  # empty site
            "cache:read=explode",  # unknown action
            "cache:read=delay:x",  # bad delay
            "cache:read=delay:-1",  # negative delay
            "cache:read=raise@x",  # bad trial list
            "cache:read=raise@-1",  # negative trial
            "cache:read=raise~2",  # probability out of range
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_faults(bad)

    def test_empty_spec_is_a_noop_injector(self, monkeypatch):
        monkeypatch.delenv("CNVLUTIN_FAULTS", raising=False)
        injector = FaultInjector.from_env()
        assert not injector.enabled
        assert injector.fire("unit:fig9/nin", trial=0) is None


class TestFaultInjector:
    def test_unmatched_site_never_counts_a_trial(self, tmp_path):
        injector = FaultInjector(
            rules=parse_faults("cache:read=raise@0"), state_dir=tmp_path
        )
        injector.fire("cache:write")
        assert not any(tmp_path.iterdir())

    def test_trial_counter_shared_across_instances(self, tmp_path):
        """Two injectors over the same state dir model two processes: the
        hit counter is global, so a ``@0`` rule fires exactly once."""
        rules = parse_faults("pool:worker=raise@0")
        first = FaultInjector(rules=rules, state_dir=tmp_path)
        second = FaultInjector(rules=rules, state_dir=tmp_path)
        with pytest.raises(InjectedFault):
            first.fire("pool:worker")
        assert second.fire("pool:worker") is None  # trial 1: clean
        assert first.fire("pool:worker") is None  # trial 2: clean

    def test_probability_deterministic_in_seed(self):
        rules = parse_faults("cache:read=raise~0.5@*")
        outcomes = []
        for seed in (0, 1):
            fired = []
            for trial in range(32):
                injector = FaultInjector(rules=rules, seed=seed)
                try:
                    injector.fire("cache:read", trial=trial)
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            outcomes.append(fired)
        # Same seed reproduces exactly; roughly half the trials fire.
        repeat = []
        for trial in range(32):
            injector = FaultInjector(rules=rules, seed=0)
            try:
                injector.fire("cache:read", trial=trial)
                repeat.append(False)
            except InjectedFault:
                repeat.append(True)
        assert repeat == outcomes[0]
        assert outcomes[0] != outcomes[1]
        assert 4 < sum(outcomes[0]) < 28

    def test_corrupt_action_is_returned_to_the_call_site(self):
        injector = FaultInjector(rules=parse_faults("cache:read=corrupt@0"))
        assert injector.fire("cache:read", trial=0) == "corrupt"
        assert injector.fire("cache:read", trial=1) is None


class TestRetryPolicy:
    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_max=4.0, jitter=0.1, seed=3)
        delays = [policy.delay("fig9:alex", attempt) for attempt in range(6)]
        assert delays == [policy.delay("fig9:alex", a) for a in range(6)]
        for attempt, delay in enumerate(delays):
            nominal = min(4.0, 0.5 * 2.0**attempt)
            assert nominal * 0.9 <= delay <= nominal * 1.1
        assert policy.delay("fig9:alex", 0) != policy.delay("fig9:nin", 0)

    def test_chain_timeout_scales_with_units(self):
        assert RetryPolicy(unit_timeout=2.0).chain_timeout(3) == 6.0
        assert RetryPolicy().chain_timeout(3) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(unit_timeout=0.0)


# ---------------------------------------------------------------------------
# cache integrity and quarantine
# ---------------------------------------------------------------------------
class TestCacheIntegrity:
    @pytest.fixture
    def cache(self, tmp_path):
        return ArtifactCache(tmp_path, {"seed": 7}, injector=FaultInjector())

    def test_objects_carry_a_payload_checksum(self, cache):
        cache.store("calib", {"conv1": 3}, network="alex")
        document = json.loads(cache.path("calib", network="alex").read_text())
        assert document["sha256"] == stable_hash({"conv1": 3})

    @pytest.mark.parametrize(
        "damage",
        [
            lambda path: path.write_text("{not json"),
            lambda path: path.write_text(path.read_text()[: len(path.read_text()) // 2]),
            lambda path: path.write_text(json.dumps({"payload": 1})),  # no checksum
            lambda path: path.write_text(
                json.dumps({"kind": "calib", "payload": {"conv1": 99},
                            "sha256": stable_hash({"conv1": 3})})
            ),  # checksum mismatch
            lambda path: path.write_text(json.dumps([1, 2, 3])),  # wrong shape
            lambda path: path.write_bytes(b"\xff\xfe\x00garbage"),
        ],
    )
    def test_damaged_object_is_quarantined_miss(self, cache, damage):
        cache.store("calib", {"conv1": 3}, network="alex")
        path = cache.path("calib", network="alex")
        damage(path)
        assert cache.load("calib", network="alex") is None
        assert not path.exists()
        assert (cache.quarantine_dir / path.name).exists()
        assert cache.quarantined == 1
        assert cache.misses == 1
        # The slot is recomputable: a fresh store round-trips again.
        cache.store("calib", {"conv1": 3}, network="alex")
        assert cache.load("calib", network="alex") == {"conv1": 3}

    def test_wrong_kind_in_document_is_rejected(self, cache):
        cache.store("calib", {"x": 1}, network="alex")
        path = cache.path("calib", network="alex")
        document = json.loads(path.read_text())
        document["kind"] = "sparsity"
        path.write_text(json.dumps(document))
        assert cache.load("calib", network="alex") is None
        assert cache.quarantined == 1

    def test_plain_miss_is_not_quarantined(self, cache):
        assert cache.load("calib", network="nin") is None
        assert cache.quarantined == 0
        assert not cache.quarantine_dir.exists()

    def test_injected_read_corruption_recovers(self, tmp_path):
        injector = FaultInjector(rules=parse_faults("cache:read=corrupt@0"))
        cache = ArtifactCache(tmp_path, {"seed": 7}, injector=injector)
        cache.store("calib", {"conv1": 3}, network="alex")
        assert cache.load("calib", network="alex") is None  # trial 0: corrupted
        assert cache.quarantined == 1
        cache.store("calib", {"conv1": 3}, network="alex")
        assert cache.load("calib", network="alex") == {"conv1": 3}


def _hammer_store(root, barrier, iterations):
    cache = ArtifactCache(root, {"seed": 7}, injector=FaultInjector())
    payload = {"values": [float(i) for i in range(20000)]}
    barrier.wait()
    for _ in range(iterations):
        cache.store("sparsity", payload, network="alex")
    if cache.load("sparsity", network="alex") != payload:
        raise SystemExit(3)


class TestConcurrentColdWriters:
    def test_two_processes_storing_the_same_artifact(self, tmp_path):
        """Two cold-cache writers race on one object: both must succeed
        via the temp-file + os.replace path, and no reader may ever
        observe a partial object."""
        mp = multiprocessing.get_context("fork")
        barrier = mp.Barrier(3)
        writers = [
            mp.Process(target=_hammer_store, args=(tmp_path, barrier, 60))
            for _ in range(2)
        ]
        for writer in writers:
            writer.start()
        reader = ArtifactCache(tmp_path, {"seed": 7}, injector=FaultInjector())
        path = reader.path("sparsity", network="alex")
        barrier.wait()
        observations = 0
        while any(writer.is_alive() for writer in writers):
            if path.exists():
                document = json.loads(path.read_text())
                assert document["sha256"] == stable_hash(document["payload"])
                observations += 1
        for writer in writers:
            writer.join()
            assert writer.exitcode == 0
        assert observations > 0  # the race was actually exercised
        assert reader.load("sparsity", network="alex") is not None
        assert reader.quarantined == 0
        # No orphaned temp file is left behind as a visible object.
        leftovers = [p for p in path.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


# ---------------------------------------------------------------------------
# engine cache budget validation
# ---------------------------------------------------------------------------
class TestEngineCacheBudgetEnv:
    def test_default_when_unset(self, monkeypatch):
        from repro.nn.engine import DEFAULT_CACHE_MB, _cache_budget_bytes

        monkeypatch.delenv("CNVLUTIN_ENGINE_CACHE_MB", raising=False)
        assert _cache_budget_bytes() == int(DEFAULT_CACHE_MB * 1024 * 1024)

    def test_valid_value_used(self, monkeypatch):
        from repro.nn.engine import _cache_budget_bytes

        monkeypatch.setenv("CNVLUTIN_ENGINE_CACHE_MB", "1.5")
        assert _cache_budget_bytes() == int(1.5 * 1024 * 1024)

    @pytest.mark.parametrize("bad", ["banana", "-5", "nan", "inf", ""])
    def test_invalid_value_warns_and_falls_back(self, monkeypatch, bad):
        from repro.nn.engine import DEFAULT_CACHE_MB, _cache_budget_bytes

        monkeypatch.setenv("CNVLUTIN_ENGINE_CACHE_MB", bad)
        with pytest.warns(RuntimeWarning, match="CNVLUTIN_ENGINE_CACHE_MB"):
            assert _cache_budget_bytes() == int(DEFAULT_CACHE_MB * 1024 * 1024)

    def test_engine_builds_under_bad_env(self, monkeypatch):
        import numpy as np

        from repro.nn.engine import IncrementalForwardEngine
        from repro.nn.inference import init_weights
        from repro.nn.models import build_network

        monkeypatch.setenv("CNVLUTIN_ENGINE_CACHE_MB", "not-a-number")
        network = build_network("cnnS", input_size=64)
        store = init_weights(network, np.random.default_rng(0))
        images = np.zeros((1,) + network.input_shape, dtype=np.float32)
        with pytest.warns(RuntimeWarning):
            engine = IncrementalForwardEngine(network, store, images)
        assert engine.cache_bytes > 0


# ---------------------------------------------------------------------------
# retries, crashes, timeouts
# ---------------------------------------------------------------------------
class TestUnitRetries:
    def test_transient_unit_fault_retries_to_success(self, tmp_path, monkeypatch):
        set_faults(monkeypatch, tmp_path, "unit:table1/alex=raise@0")
        config = tiny_config(tmp_path / "cache")
        units = plan_units(config, ["table1"])
        records = execute_units(config, units, jobs=2, policy=fast_policy())
        by_label = {record.unit: record for record in records}
        assert by_label["table1:alex"].status == "ok"
        assert by_label["table1:alex"].attempts == 2
        assert by_label["table1:cnnS"].attempts == 1

    def test_exhausted_attempts_record_error_with_traceback(
        self, tmp_path, monkeypatch
    ):
        set_faults(monkeypatch, tmp_path, "unit:table1/alex=raise@*")
        config = tiny_config(tmp_path / "cache")
        units = plan_units(config, ["table1"])
        records = execute_units(
            config, units, jobs=2, policy=fast_policy(max_attempts=2)
        )
        by_label = {record.unit: record for record in records}
        failed = by_label["table1:alex"]
        assert failed.status == "error"
        assert failed.attempts == 2
        assert "InjectedFault" in failed.error
        assert "InjectedFault" in failed.traceback  # full traceback captured
        assert by_label["table1:cnnS"].status == "ok"

    def test_traceback_surfaces_in_profile_and_manifest(self, tmp_path):
        config = tiny_config(tmp_path, networks=["alex"])
        ctx = ExperimentContext(config)
        record = run_unit(ctx, WorkUnit("fig9", "nosuchnet", kind="timings"))
        assert record.status == "error"
        assert record.traceback  # satellite: not just the one-line repr
        assert "Traceback" in record.traceback
        manifest = RunManifest(
            scale="tiny", seed=7, networks=["alex"], jobs=1, config_hash="x"
        )
        manifest.add_unit(record)
        profile = manifest.profile_table()
        assert "Traceback" in profile
        assert record.error.split(":")[0] in profile
        payload = manifest.to_dict()
        assert payload["units"][0]["traceback"] == record.traceback

    def test_serial_path_retries_too(self, tmp_path, monkeypatch):
        set_faults(monkeypatch, tmp_path, "unit:table1/alex=raise@0")
        config = tiny_config(tmp_path / "cache", networks=["alex"])
        units = plan_units(config, ["table1"])
        records = execute_units(config, units, jobs=1, policy=fast_policy())
        assert records[0].status == "ok"
        assert records[0].attempts == 2


class TestWorkerCrash:
    def test_broken_pool_respawns_and_completes(self, tmp_path, monkeypatch):
        set_faults(monkeypatch, tmp_path, "pool:worker=crash@0")
        config = tiny_config(tmp_path / "cache")
        units = plan_units(config, ["table1", "fig1"])
        records = execute_units(config, units, jobs=2, policy=fast_policy())
        assert len(records) == len(units)
        assert all(record.status == "ok" for record in records)
        assert any(record.attempts > 1 for record in records)


class TestUnitTimeout:
    def test_hung_unit_is_killed_and_retried(self, tmp_path, monkeypatch):
        set_faults(monkeypatch, tmp_path, "unit:table1/alex=delay:60@0")
        config = tiny_config(tmp_path / "cache")
        units = plan_units(config, ["table1"])
        records = execute_units(
            config, units, jobs=2, policy=fast_policy(unit_timeout=3.0)
        )
        by_label = {record.unit: record for record in records}
        assert by_label["table1:alex"].status == "ok"
        assert by_label["table1:alex"].attempts == 2
        assert by_label["table1:cnnS"].status == "ok"

    def test_permanent_hang_finalizes_as_timeout(self, tmp_path, monkeypatch):
        set_faults(monkeypatch, tmp_path, "unit:table1/alex=delay:60@*")
        config = tiny_config(tmp_path / "cache", networks=["alex", "cnnS"])
        units = plan_units(config, ["table1"])
        records = execute_units(
            config, units, jobs=2,
            policy=fast_policy(max_attempts=2, unit_timeout=2.0),
        )
        by_label = {record.unit: record for record in records}
        assert by_label["table1:alex"].status == "timeout"
        assert by_label["table1:alex"].attempts == 2
        assert "wall-clock" in by_label["table1:alex"].error
        assert by_label["table1:cnnS"].status == "ok"


# ---------------------------------------------------------------------------
# end-to-end chaos: byte-identical convergence, checkpoints, resume
# ---------------------------------------------------------------------------
CHAOS_EXPERIMENTS = ["fig1", "table1", "fig9"]


class TestChaosConvergence:
    def test_faulted_parallel_run_matches_clean_serial_run(
        self, tmp_path, monkeypatch
    ):
        """The headline acceptance test: worker crashes + a transient unit
        exception + on-disk cache corruption, and ``--jobs 2`` still
        produces byte-identical tables from an independent cold cache."""
        clean_cfg = tiny_config(tmp_path / "clean")
        clean_results, _ = run_all_with_manifest(
            clean_cfg, only=CHAOS_EXPERIMENTS, verbose=False
        )

        set_faults(
            monkeypatch,
            tmp_path,
            "pool:worker=crash@0; unit:fig9/alex=raise@0; cache:read=corrupt@1",
        )
        chaos_cfg = tiny_config(tmp_path / "chaos")
        chaos_results, chaos_manifest = run_all_with_manifest(
            chaos_cfg, only=CHAOS_EXPERIMENTS, verbose=False, jobs=2,
            policy=fast_policy(max_attempts=4),
        )

        assert results_to_json_doc(chaos_results) == results_to_json_doc(
            clean_results
        )
        for clean, chaos in zip(clean_results, chaos_results):
            assert chaos.to_table() == clean.to_table()
        parallel_units = [
            unit for unit in chaos_manifest.units if unit.phase == "parallel"
        ]
        assert all(unit.status == "ok" for unit in parallel_units)
        assert any(unit.attempts > 1 for unit in parallel_units)

    def test_checkpoint_written_incrementally(self, tmp_path):
        config = tiny_config(tmp_path / "cache")
        seen = []
        units = plan_units(config, ["table1"])
        execute_units(
            config, units, jobs=2, policy=fast_policy(),
            checkpoint=lambda records: seen.append(len(records)),
        )
        assert seen == [1, 2]  # one call per finalized unit, growing

    def test_checkpoint_path_persists_manifest_during_run(self, tmp_path):
        config = tiny_config(tmp_path / "cache")
        checkpoint_path = tmp_path / "manifests" / "latest.json"
        run_all_with_manifest(
            config, only=["table1"], verbose=False, jobs=2,
            policy=fast_policy(), checkpoint_path=checkpoint_path,
        )
        manifest = RunManifest.load(checkpoint_path)
        assert {unit.unit for unit in manifest.units} == {
            "table1:alex", "table1:cnnS",
        }


class TestResume:
    def test_resume_reexecutes_only_incomplete_units(self, tmp_path, monkeypatch):
        """A run with one permanently-failing unit, resumed after the
        fault clears, re-executes exactly that unit (asserted from the
        manifest's unit records) and matches the clean tables."""
        clean_cfg = tiny_config(tmp_path / "clean")
        clean_results, _ = run_all_with_manifest(
            clean_cfg, only=CHAOS_EXPERIMENTS, verbose=False
        )

        set_faults(monkeypatch, tmp_path, "unit:fig9/cnnS=raise@*")
        config = tiny_config(tmp_path / "cache")
        _, first_manifest = run_all_with_manifest(
            config, only=CHAOS_EXPERIMENTS, verbose=False, jobs=2,
            policy=fast_policy(max_attempts=2),
        )
        failed = [u for u in first_manifest.units if u.status != "ok"]
        assert [u.unit for u in failed] == ["fig9:cnnS"]
        manifest_path = tmp_path / "first.json"
        first_manifest.save(manifest_path)

        monkeypatch.delenv("CNVLUTIN_FAULTS")
        resumed_results, resumed_manifest = run_all_with_manifest(
            config, only=CHAOS_EXPERIMENTS, verbose=False, jobs=2,
            policy=fast_policy(), resume=manifest_path,
        )
        executed = [
            unit for unit in resumed_manifest.units if unit.phase == "parallel"
        ]
        carried = [
            unit for unit in resumed_manifest.units if unit.phase == "carried"
        ]
        assert [unit.unit for unit in executed] == ["fig9:cnnS"]
        assert executed[0].status == "ok"
        assert {unit.unit for unit in carried} == {
            "fig1:alex", "fig1:cnnS", "table1:alex", "table1:cnnS", "fig9:alex",
        }
        assert results_to_json_doc(resumed_results) == results_to_json_doc(
            clean_results
        )

    def test_resume_rejects_mismatched_config(self, tmp_path):
        config = tiny_config(tmp_path / "cache")
        _, manifest = run_all_with_manifest(
            config, only=["table1"], verbose=False, jobs=2, policy=fast_policy()
        )
        manifest_path = tmp_path / "m.json"
        manifest.save(manifest_path)
        other = tiny_config(tmp_path / "cache", seed=8)
        with pytest.raises(ValueError, match="different configuration"):
            run_all_with_manifest(
                other, only=["table1"], verbose=False, resume=manifest_path
            )

    def test_resume_defaults_to_the_manifests_experiments(self, tmp_path):
        config = tiny_config(tmp_path / "cache")
        _, manifest = run_all_with_manifest(
            config, only=["table1", "fig1"], verbose=False, jobs=2,
            policy=fast_policy(),
        )
        manifest_path = tmp_path / "m.json"
        manifest.save(manifest_path)
        results, resumed = run_all_with_manifest(
            config, verbose=False, resume=manifest_path
        )
        assert [result.experiment for result in results] == ["table1", "fig1"]
        assert resumed.experiments == ["table1", "fig1"]


class TestGracefulAssembly:
    def test_strict_false_emits_failed_table_and_continues(
        self, tmp_path, monkeypatch
    ):
        def explode(ctx):
            raise RuntimeError("synthetic assembly failure")

        monkeypatch.setitem(EXPERIMENTS, "table1", explode)
        config = tiny_config(tmp_path, networks=["alex"])
        results, manifest = run_all_with_manifest(
            config, only=["table1", "fig11"], verbose=False, strict=False
        )
        assert [result.experiment for result in results] == ["table1", "fig11"]
        assert "FAILED" in results[0].title
        assert "RuntimeError" in results[0].rows[0]["error"]
        assert results[1].rows  # later experiments still assembled
        statuses = {unit.experiment: unit.status for unit in manifest.units}
        assert statuses["table1"] == "error"
        assert statuses["fig11"] == "ok"

    def test_strict_true_restores_fail_fast(self, tmp_path, monkeypatch):
        def explode(ctx):
            raise RuntimeError("synthetic assembly failure")

        monkeypatch.setitem(EXPERIMENTS, "table1", explode)
        config = tiny_config(tmp_path, networks=["alex"])
        with pytest.raises(RuntimeError, match="synthetic"):
            run_all_with_manifest(
                config, only=["table1"], verbose=False, strict=True
            )


class TestManifestCompat:
    def test_version1_manifest_without_new_fields_loads(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "version": 1,
            "scale": "tiny", "seed": 7, "networks": ["alex"], "jobs": 2,
            "config_hash": "abc", "experiments": ["table1"],
            "wall_seconds": 1.0,
            "cache": {"hits": 1, "misses": 0, "stores": 1, "hit_rate": 1.0},
            "units": [{
                "unit": "table1:alex", "experiment": "table1",
                "network": "alex", "phase": "parallel", "worker": 1,
                "seconds": 0.5, "cache_hits": 1, "cache_misses": 0,
                "status": "ok", "error": "",
            }],
        }))
        manifest = RunManifest.load(path)
        assert manifest.units[0].attempts == 1
        assert manifest.units[0].traceback == ""
        assert manifest.completed_units() == {"table1:alex"}

"""Sharded integrity chaos: detect → quarantine → republish → respawn.

The silent-data-corruption guarantees of the serving tier, end to end:

* **Weight flips** (``mem:weights=corrupt@N`` flips a shared-arena bit
  mid-run): zero corrupted response bytes are ever accepted (every ok
  response is canonical-byte-identical to direct inference), the flip
  is detected by the shard's pre-reply CRC recheck, the shard is
  quarantined, the arena republished from calibrated stores, and the
  shard respawned — all without manual intervention.
* **Activation flips** (``mem:activations=corrupt@N`` perturbs a kernel
  output): the ABFT checksum catches it before the response forms; the
  service-level retry recomputes cleanly, so the response is *still*
  byte-identical — a transient heals in place, no quarantine.
* **Canary**: a shard serving wrong bytes with no self-detection (CRC
  gate off) is caught by the router's golden-request sweep and healed
  through the same quarantine path.
* **Graceful drain**: SIGTERM on ``repro-serve serve`` stops accepting,
  completes and flushes every accepted request, and exits 0.

Faults travel via ``ShardTierConfig.faults`` (shard env only) — the
router process stays clean, so its direct-inference reference and its
calibration can never be corrupted by the injection itself.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.nn.shm import ARENA_PREFIX
from repro.reliability import RetryPolicy
from repro.serve import (
    ServeConfig,
    ServeRequest,
    ShardTierConfig,
    ShardedService,
    build_sweep_requests,
    canonical_response_bytes,
    direct_response,
    run_load,
)

SERVE_NETWORKS = ("alex",)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("integrity-artifacts")


@pytest.fixture(scope="module")
def warm_cache(cache_dir):
    """Populate the calibration artifact cache with no faults in any
    environment, so later faulted runs load calibration instead of
    computing it (the injection must never corrupt the reference)."""
    from repro.experiments.context import ExperimentContext
    from repro.serve.models import ModelRepository

    context = ExperimentContext(det_config().paper_config(cache_dir))
    repo = ModelRepository(context=context)
    for name in repo.networks:
        repo.entry(name)
    return cache_dir


def det_config(**overrides) -> ServeConfig:
    kwargs = dict(
        scale="tiny", networks=SERVE_NETWORKS, deterministic=True,
        queue_limit=256,
    )
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


def heal_policy() -> RetryPolicy:
    """Forward retries generous enough to ride out quarantine+respawn."""
    return RetryPolicy(
        max_attempts=12, backoff_base=0.05, backoff_max=2.0, seed=0
    )


def drive(tier, requests, cache_dir, policy=None):
    async def _go():
        service = ShardedService(
            det_config(), tier=tier, policy=policy, cache_dir=cache_dir,
        )
        await service.start()
        try:
            result = await run_load(service, requests)
        finally:
            await service.stop()
        return result, service

    return asyncio.run(_go())


def assert_all_ok_and_byte_identical(result, service, requests):
    by_id = {}
    for request in requests:
        by_id.setdefault(request.id, request)
    for rid, response in result.responses.items():
        assert response.status == "ok", (rid, response.payload)
        direct = direct_response(service.repo, by_id[rid])
        assert canonical_response_bytes(response) == (
            canonical_response_bytes(direct)
        ), f"corrupted bytes accepted for {rid}"


def integrity_counters():
    counters = obs.get_metrics().snapshot()["counters"]
    return {
        name: value for name, value in counters.items()
        if name.startswith(("integrity.", "router."))
    }


class TestWeightFlipHealing:
    def test_flip_detected_quarantined_republished_respawned(
        self, warm_cache, tmp_path
    ):
        obs.reset_metrics()
        # A stale segment from a "dead" process: start() must sweep it.
        stale = Path("/dev/shm") / f"{ARENA_PREFIX}999999999-feedface"
        stale.write_bytes(b"x")
        state = tmp_path / "fault-state"
        state.mkdir()
        tier = ShardTierConfig(
            shards=2,
            faults="mem:weights=corrupt@3",
            fault_state=str(state),
            integrity="always",
            integrity_recheck_s=0.0,
        )
        requests = build_sweep_requests(
            20, networks=list(SERVE_NETWORKS), variants_per_network=2,
        )
        result, service = drive(
            tier, requests, warm_cache, policy=heal_policy()
        )
        assert not stale.exists(), "start() did not sweep the stale arena"
        assert_all_ok_and_byte_identical(result, service, requests)
        counters = integrity_counters()
        assert counters.get("integrity.detected.crc", 0) >= 1
        assert counters.get("integrity.quarantines", 0) >= 1
        assert counters.get("integrity.quarantines.crc", 0) >= 1
        assert counters.get("integrity.republishes", 0) >= 1
        assert counters.get("router.respawns", 0) >= 1
        assert counters.get("integrity.arena.swept", 0) >= 1


class TestActivationFlipTransient:
    def test_abft_detects_and_retry_heals_in_place(
        self, warm_cache, tmp_path
    ):
        obs.reset_metrics()
        state = tmp_path / "fault-state"
        state.mkdir()
        tier = ShardTierConfig(
            shards=2,
            faults="mem:activations=corrupt@6",
            fault_state=str(state),
            integrity="always",
            integrity_recheck_s=0.0,
        )
        requests = build_sweep_requests(
            16, networks=list(SERVE_NETWORKS), variants_per_network=2,
        )
        result, service = drive(
            tier, requests, warm_cache, policy=heal_policy()
        )
        assert_all_ok_and_byte_identical(result, service, requests)
        counters = integrity_counters()
        assert counters.get("integrity.detected.abft", 0) >= 1
        # A transient heals via the service retry: no quarantine churn.
        assert counters.get("integrity.quarantines", 0) == 0
        assert counters.get("integrity.republishes", 0) == 0


class TestCanarySweep:
    def test_canary_catches_undetected_corruption(self, warm_cache):
        from repro.serve.shard import _corrupt_arena

        obs.reset_metrics()
        # No shard-side integrity: the shards serve corrupt bytes with
        # no self-detection — only the router's canary can catch them.
        tier = ShardTierConfig(shards=2)

        async def _go():
            service = ShardedService(
                det_config(), tier=tier, policy=heal_policy(),
                cache_dir=warm_cache,
            )
            await service.start()
            try:
                _corrupt_arena(service.arena)  # shared pages: all shards
                probes = await service.run_canary()
                assert probes >= 1
                counters = integrity_counters()
                assert counters.get("integrity.detected.canary", 0) >= 1
                assert counters.get("integrity.quarantines.canary", 0) >= 1
                assert counters.get("integrity.republishes", 0) == 1
                # The healed tier answers clean bytes again.
                request = ServeRequest(
                    id="post-heal", kind="classify",
                    network=SERVE_NETWORKS[0], image_index=0,
                )
                response = await service.submit(request)
                assert response.status == "ok"
                direct = direct_response(service.repo, request)
                assert canonical_response_bytes(response) == (
                    canonical_response_bytes(direct)
                )
            finally:
                await service.stop()

        asyncio.run(_go())


class TestSpecPassthrough:
    def test_tier_integrity_fields_reach_the_spec(self, tmp_path):
        service = ShardedService(
            det_config(use_cache=False),
            tier=ShardTierConfig(
                shards=1, integrity="sample:0.5", integrity_recheck_s=2.5,
            ),
            cache_dir=tmp_path,
        )
        service._socket_dir = str(tmp_path)

        class FakeArena:
            manifest = {"networks": {}}

        service.arena = FakeArena()
        spec = service._spec(0)
        assert spec.integrity == "sample:0.5"
        assert spec.integrity_recheck_s == 2.5


class TestGracefulDrain:
    def test_sigterm_completes_inflight_and_exits_zero(self, tmp_path):
        """SIGTERM mid-request: all accepted responses arrive, exit 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src"
        )
        env["CNVLUTIN_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve.cli", "serve",
                "--port", "0", "--scale", "tiny", "--networks", "alex",
                "--no-cache",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            port = int(re.search(r":(\d+) ", banner).group(1))
            with socket.create_connection(
                ("127.0.0.1", port), timeout=30
            ) as sock:
                sock.settimeout(60)
                reader = sock.makefile("r")
                for index in range(4):
                    sock.sendall(
                        (json.dumps({
                            "id": f"d{index}", "kind": "classify",
                            "network": "alex", "image_seed": index,
                        }) + "\n").encode()
                    )
                time.sleep(0.1)  # requests are in flight
                proc.send_signal(signal.SIGTERM)
                docs = [json.loads(reader.readline()) for _ in range(4)]
            assert {doc["id"] for doc in docs} == {"d0", "d1", "d2", "d3"}
            assert all(doc["status"] == "ok" for doc in docs)
            assert proc.wait(timeout=60) == 0, proc.stderr.read()
            tail = proc.stdout.read()
            assert "drained" in tail, tail
            # The listener is gone: new connections are refused.
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", port), timeout=2)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

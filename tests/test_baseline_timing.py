"""Analytic baseline timing tests (repro.baseline.timing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.timing import baseline_conv_timing, baseline_network_timing
from repro.baseline.workload import ConvWork, ceil_div, window_sums
from repro.hw.config import PAPER_CONFIG, small_config
from repro.nn.activations import sparse_activations

from conftest import make_conv_work


class TestWindowSums:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(3, 10),
        st.integers(3, 10),
        st.integers(1, 3),
        st.integers(1, 3),
        st.integers(0, 2**32 - 1),
    )
    def test_matches_direct_sums(self, height, width, kernel, stride, seed):
        if height < kernel or width < kernel:
            return
        rng = np.random.default_rng(seed)
        plane = rng.normal(size=(height, width))
        out_y = (height - kernel) // stride + 1
        out_x = (width - kernel) // stride + 1
        fast = window_sums(plane, kernel, kernel, stride, out_y, out_x)
        for oy in range(out_y):
            for ox in range(out_x):
                direct = plane[
                    oy * stride : oy * stride + kernel,
                    ox * stride : ox * stride + kernel,
                ].sum()
                assert fast[oy, ox] == pytest.approx(direct)


class TestBaselineCycles:
    def test_cycles_are_value_independent(self, rng):
        """The baseline cannot skip zeros: cycles depend on geometry only."""
        work_dense, _ = make_conv_work(rng, zero_fraction=0.0)
        work_sparse, _ = make_conv_work(rng, zero_fraction=0.8)
        cfg = small_config()
        assert (
            baseline_conv_timing(work_dense, cfg).cycles
            == baseline_conv_timing(work_sparse, cfg).cycles
        )

    def test_closed_form(self, rng):
        """cycles = windows * ceil(Fy*Fx*i / lanes) * passes."""
        work, _ = make_conv_work(
            rng, in_depth=8, in_y=6, in_x=6, num_filters=4, kernel=3, pad=1
        )
        cfg = small_config()  # 4 lanes, 4 filters/pass
        timing = baseline_conv_timing(work, cfg)
        assert timing.cycles == 36 * ceil_div(3 * 3 * 8, 4) * 1

    def test_row_packing_closed_form(self, rng):
        """fetch_packing='row': cycles = windows * Fy * ceil(Fx*i/lanes)."""
        work, _ = make_conv_work(
            rng, in_depth=6, in_y=6, in_x=6, num_filters=4, kernel=3, pad=1
        )
        cfg = small_config().with_(fetch_packing="row")
        timing = baseline_conv_timing(work, cfg)
        assert timing.cycles == 36 * 3 * ceil_div(3 * 6, 4)

    def test_filter_passes(self, rng):
        """More filters than the node handles -> extra passes."""
        work4, w4 = make_conv_work(rng, num_filters=4)
        work8, w8 = make_conv_work(rng, num_filters=8)
        cfg = small_config()  # filters_per_pass = 4
        assert (
            baseline_conv_timing(work8, cfg).cycles
            == 2 * baseline_conv_timing(work4, cfg).cycles
        )

    def test_groups_sum(self, rng):
        """Grouped convolution runs groups sequentially at reduced depth."""
        work, _ = make_conv_work(rng, in_depth=8, num_filters=4, groups=2)
        cfg = small_config()
        timing = baseline_conv_timing(work, cfg)
        # Each group: depth 4, 2 filters -> 1 pass; window cost ceil(9*4/4)=9.
        assert timing.cycles == 2 * 36 * 9

    def test_first_layer_packs_shallow_input(self):
        """conv1 (depth 3) packs densely along the window traversal —
        Section II's 'time increases mostly linearly with the number of
        elements' — so alex conv1 takes ceil(11*11*3/16) = 23 cycles per
        window (one 16-wide brick per (x, y) would be 121)."""
        rng = np.random.default_rng(0)
        act = np.abs(rng.normal(size=(3, 227, 227)))
        geometry = {
            "in_depth": 3, "in_y": 227, "in_x": 227, "num_filters": 96,
            "kernel": 11, "stride": 4, "pad": 0, "groups": 1,
            "out_y": 55, "out_x": 55,
        }
        work = ConvWork("conv1", geometry, act, is_first=True)
        timing = baseline_conv_timing(work, PAPER_CONFIG)
        assert timing.cycles == 55 * 55 * 23
        row = baseline_conv_timing(work, PAPER_CONFIG.with_(fetch_packing="row"))
        assert row.cycles == 55 * 55 * 11 * 3

    def test_brick_aligned_depth_same_under_both_packings(self, rng):
        """For lane-multiple depths the two packings agree."""
        work, _ = make_conv_work(rng, in_depth=8, kernel=3, pad=0)
        window_cfg = small_config()
        row_cfg = small_config().with_(fetch_packing="row")
        assert (
            baseline_conv_timing(work, window_cfg).cycles
            == baseline_conv_timing(work, row_cfg).cycles
        )


class TestBaselineEvents:
    def test_event_total_is_units_lanes_cycles(self, rng):
        work, _ = make_conv_work(rng)
        cfg = small_config()
        timing = baseline_conv_timing(work, cfg)
        total = sum(timing.lane_events.values())
        assert total == timing.cycles * cfg.num_units * cfg.neuron_lanes

    def test_zero_events_track_sparsity(self, rng):
        sparse, _ = make_conv_work(rng, zero_fraction=0.7, pad=0)
        dense, _ = make_conv_work(rng, zero_fraction=0.0, pad=0)
        cfg = small_config()
        assert (
            baseline_conv_timing(sparse, cfg).lane_events["zero"]
            > baseline_conv_timing(dense, cfg).lane_events["zero"]
        )

    def test_dense_unpadded_has_no_zero_events(self, rng):
        """With no zeros and depth a lane multiple, every slot is non-zero."""
        work, _ = make_conv_work(rng, in_depth=8, zero_fraction=0.0, pad=0)
        timing = baseline_conv_timing(work, small_config())
        assert timing.lane_events["zero"] == 0

    def test_first_layer_events_are_conv1(self, rng):
        work, _ = make_conv_work(rng, is_first=True)
        timing = baseline_conv_timing(work, small_config())
        assert set(timing.lane_events) == {"conv1"}

    def test_stall_never_appears(self, rng):
        """Lock-step lanes never stall on the baseline."""
        work, _ = make_conv_work(rng)
        timing = baseline_conv_timing(work, small_config())
        assert timing.lane_events.get("stall", 0) == 0


class TestBaselineNetwork:
    def test_network_timing_covers_all_conv_layers(self, rng):
        from repro.nn.models import build_network
        from repro.nn.inference import init_weights, run_forward
        from repro.nn.datasets import natural_images

        net = build_network("alex", input_size=67)
        store = init_weights(net, rng)
        image = natural_images(net.input_shape, 1, seed=0)[0]
        fwd = run_forward(net, store, image)
        timing = baseline_network_timing(net, fwd.conv_inputs, PAPER_CONFIG)
        conv_names = {l.name for l in timing.layers if l.kind == "conv"}
        assert conv_names == {l.name for l in net.conv_layers}
        assert timing.total_cycles > 0
        assert timing.conv_cycles < timing.total_cycles  # other layers cost

    def test_missing_input_raises(self):
        from repro.nn.models import build_network

        net = build_network("alex", input_size=67)
        with pytest.raises(KeyError):
            baseline_network_timing(net, {}, PAPER_CONFIG)

"""Parallel runner, artifact cache, and run-manifest tests.

Covers the contract that makes ``--jobs N`` safe to use for paper
results: content-addressed artifacts agree between workers and parent,
the parallel path reproduces the serial output byte-for-byte, and the
manifest faithfully records where time and cache traffic went.
"""

import json

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.manifest import (
    ArtifactCache,
    RunManifest,
    UnitRecord,
    config_fingerprint,
    stable_hash,
)
from repro.experiments.parallel import (
    WorkUnit,
    execute_units,
    plan_units,
    run_unit,
)
from repro.experiments.report import diff_result_docs, results_to_json_doc
from repro.experiments.runner import EXPERIMENTS, run_all, run_all_with_manifest
from repro.hw.config import PAPER_CONFIG


def tiny_config(tmp_path, **overrides):
    kwargs = {
        "scale": "tiny",
        "networks": ["alex", "cnnS"],
        "num_images": 1,
        "smallcnn": False,
    }
    kwargs.update(overrides)
    return PaperConfig(cache_dir=tmp_path, **kwargs)


class TestStableHash:
    def test_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_sensitivity(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})


class TestConfigFingerprint:
    def test_excludes_networks_and_cache_location(self, tmp_path):
        """A single-network worker config must address the same artifacts
        as the full-sweep parent — otherwise workers warm a cache the
        assembly pass never reads."""
        parent = tiny_config(tmp_path / "a")
        worker = tiny_config(tmp_path / "b", networks=["alex"], use_cache=False)
        assert config_fingerprint(parent, PAPER_CONFIG) == config_fingerprint(
            worker, PAPER_CONFIG
        )

    def test_sensitive_to_seed_scale_and_arch(self, tmp_path):
        base = config_fingerprint(tiny_config(tmp_path), PAPER_CONFIG)
        assert base != config_fingerprint(tiny_config(tmp_path, seed=8), PAPER_CONFIG)
        assert base != config_fingerprint(
            tiny_config(tmp_path, scale="reduced"), PAPER_CONFIG
        )
        from repro.hw.config import small_config

        assert base != config_fingerprint(tiny_config(tmp_path), small_config())


class TestArtifactCache:
    @pytest.fixture
    def cache(self, tmp_path):
        return ArtifactCache(tmp_path, {"seed": 7})

    def test_roundtrip(self, cache):
        cache.store("calib", {"conv1": 3}, network="alex")
        assert cache.load("calib", network="alex") == {"conv1": 3}

    def test_miss_returns_none(self, cache):
        assert cache.load("calib", network="nin") is None

    def test_content_addressing_layout(self, cache):
        cache.store("calib", {"x": 1}, network="alex")
        path = cache.path("calib", network="alex")
        assert path.exists()
        assert path.parent.name == path.stem[:2]
        assert path.parent.parent.name == "objects"

    def test_params_change_the_address(self, cache):
        assert cache.key("calib", network="alex") != cache.key(
            "calib", network="nin"
        )
        assert cache.key("calib", network="alex") != cache.key(
            "sparsity", network="alex"
        )

    def test_fingerprint_changes_the_address(self, tmp_path):
        a = ArtifactCache(tmp_path, {"seed": 7})
        b = ArtifactCache(tmp_path, {"seed": 8})
        assert a.key("calib", network="alex") != b.key("calib", network="alex")

    def test_disabled_never_touches_disk(self, tmp_path):
        cache = ArtifactCache(tmp_path, {"seed": 7}, enabled=False)
        cache.store("calib", {"x": 1}, network="alex")
        assert cache.load("calib", network="alex") is None
        assert not (tmp_path / "objects").exists()

    def test_counters(self, cache):
        snapshot = cache.counters()
        cache.load("calib", network="alex")  # miss
        cache.store("calib", {"x": 1}, network="alex")
        cache.load("calib", network="alex")  # hit
        assert cache.delta_since(snapshot) == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "quarantined": 0,
        }

    def test_get_or_compute(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"v": 2.5}

        assert cache.get_or_compute("sparsity", compute, network="alex") == {
            "v": 2.5
        }
        assert cache.get_or_compute("sparsity", compute, network="alex") == {
            "v": 2.5
        }
        assert len(calls) == 1

    def test_corrupt_object_is_a_miss(self, cache):
        cache.store("calib", {"x": 1}, network="alex")
        cache.path("calib", network="alex").write_text("{truncated")
        assert cache.load("calib", network="alex") is None


class TestPlanUnits:
    def test_per_network_decomposition_in_paper_order(self, tmp_path):
        config = tiny_config(tmp_path)
        units = plan_units(config, ["fig1", "fig9"])
        assert [u.label for u in units] == [
            "fig1:alex", "fig1:cnnS", "fig9:alex", "fig9:cnnS",
        ]

    def test_fig11_is_a_singleton(self, tmp_path):
        units = plan_units(tiny_config(tmp_path), ["fig11"])
        assert [u.label for u in units] == ["fig11:all"]
        assert units[0].network is None

    def test_fig14_sweep_units_plus_optional_smallcnn(self, tmp_path):
        with_cnn = plan_units(tiny_config(tmp_path, smallcnn=True), ["fig14"])
        assert [u.label for u in with_cnn] == [
            "fig14:alex", "fig14:cnnS", "fig14:smallcnn",
        ]
        assert [u.kind for u in with_cnn] == ["sweep", "sweep", "smallcnn"]
        without = plan_units(tiny_config(tmp_path), ["fig14"])
        assert [u.label for u in without] == ["fig14:alex", "fig14:cnnS"]

    def test_affinity_groups_by_network(self, tmp_path):
        units = plan_units(tiny_config(tmp_path), ["fig1", "fig9", "fig11"])
        assert units[0].affinity == units[2].affinity == "alex"
        assert units[4].affinity.startswith("@")


class TestOnlyValidation:
    def test_unknown_name_rejected_before_anything_runs(self, tmp_path, monkeypatch):
        """A typo anywhere in --only must not execute the experiments that
        precede it (the old behaviour was a KeyError mid-run)."""
        executed = []
        real = EXPERIMENTS["table1"]
        monkeypatch.setitem(
            EXPERIMENTS, "table1", lambda ctx: executed.append(1) or real(ctx)
        )
        config = tiny_config(tmp_path, networks=["alex"])
        with pytest.raises(KeyError, match="fig99"):
            run_all(config, only=["table1", "fig99"], verbose=False)
        assert executed == []

    def test_error_lists_valid_choices(self, tmp_path):
        with pytest.raises(KeyError, match="fig1"):
            run_all(tiny_config(tmp_path), only=["bogus"], verbose=False)


class TestUnitExecution:
    def test_failed_unit_records_error_instead_of_raising(self, tmp_path):
        config = tiny_config(tmp_path, networks=["alex"])
        ctx = ExperimentContext(config)
        record = run_unit(ctx, WorkUnit("fig9", "nosuchnet", kind="timings"))
        assert record.status == "error"
        assert record.error
        assert record.unit == "fig9:nosuchnet"

    def test_pool_and_serial_paths_return_planning_order(self, tmp_path):
        config = tiny_config(tmp_path)
        units = plan_units(config, ["table1"])
        for jobs in (1, 2):
            records = execute_units(config, units, jobs=jobs)
            assert [r.unit for r in records] == ["table1:alex", "table1:cnnS"]
            assert all(r.status == "ok" for r in records)


DETERMINISM_EXPERIMENTS = ["fig1", "table1", "fig9", "fig9_backends", "fig14"]


class TestParallelDeterminism:
    def test_jobs4_matches_serial_byte_for_byte_and_warm_cache_hits_100(
        self, tmp_path
    ):
        """The acceptance criterion: parallel output (tables + JSON) is
        byte-identical to serial from independent cold caches, and a warm
        rerun records a 100% artifact hit rate in its manifest."""
        serial_cfg = tiny_config(tmp_path / "serial")
        parallel_cfg = tiny_config(tmp_path / "parallel")

        serial_results, serial_manifest = run_all_with_manifest(
            serial_cfg, only=DETERMINISM_EXPERIMENTS, verbose=False
        )
        parallel_results, parallel_manifest = run_all_with_manifest(
            parallel_cfg, only=DETERMINISM_EXPERIMENTS, verbose=False, jobs=4
        )

        assert results_to_json_doc(parallel_results) == results_to_json_doc(
            serial_results
        )
        for serial, parallel in zip(serial_results, parallel_results):
            assert parallel.to_table() == serial.to_table()

        assert serial_manifest.jobs == 1
        assert parallel_manifest.jobs == 4
        assert parallel_manifest.config_hash == serial_manifest.config_hash
        phases = {u.phase for u in parallel_manifest.units}
        assert phases == {"parallel", "assembly"}

        # Warm rerun: every artifact comes from the cache.
        warm_results, warm_manifest = run_all_with_manifest(
            parallel_cfg, only=DETERMINISM_EXPERIMENTS, verbose=False, jobs=4
        )
        assert results_to_json_doc(warm_results) == results_to_json_doc(
            serial_results
        )
        assert warm_manifest.cache_misses == 0
        assert warm_manifest.cache_hits > 0
        assert warm_manifest.hit_rate == 1.0


class TestRunManifest:
    def make_manifest(self):
        manifest = RunManifest(
            scale="tiny",
            seed=7,
            networks=["alex"],
            jobs=2,
            config_hash="abc123",
            experiments=["fig1"],
        )
        manifest.add_unit(
            UnitRecord(
                unit="fig1:alex", experiment="fig1", network="alex",
                phase="parallel", worker=41, seconds=1.5,
                cache_hits=2, cache_misses=3,
            )
        )
        manifest.add_unit(
            UnitRecord(
                unit="fig1:assembly", experiment="fig1", network=None,
                phase="assembly", worker=40, seconds=0.25,
                cache_hits=5, cache_misses=0,
            )
        )
        manifest.wall_seconds = 2.0
        manifest.cache_stores = 3
        return manifest

    def test_totals_and_hit_rate(self):
        manifest = self.make_manifest()
        assert manifest.cache_hits == 7
        assert manifest.cache_misses == 3
        assert manifest.hit_rate == pytest.approx(0.7)

    def test_save_load_roundtrip(self, tmp_path):
        manifest = self.make_manifest()
        path = tmp_path / "manifests" / "latest.json"
        manifest.save(path)
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        payload = json.loads(path.read_text())
        assert payload["version"] == 4
        assert payload["cache"]["hit_rate"] == pytest.approx(0.7)

    def test_profile_table_sorted_by_wall_time(self):
        table = self.make_manifest().profile_table()
        lines = table.splitlines()
        assert "jobs=2" in lines[0]
        assert "70% hit rate" in lines[0]
        body = [line for line in lines if "fig1:" in line]
        assert body[0].startswith("fig1:alex")  # slowest first


class TestCliFlags:
    def test_jobs_profile_and_manifest_paths(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.runner import main

        monkeypatch.setenv("CNVLUTIN_CACHE_DIR", str(tmp_path / "cache"))
        json_path = tmp_path / "results.json"
        manifest_path = tmp_path / "manifest.json"
        code = main([
            "--scale", "tiny", "--networks", "alex", "--only", "table1,fig11",
            "--jobs", "2", "--no-smallcnn", "--profile",
            "--manifest", str(manifest_path), "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "== run profile:" in out
        manifest = RunManifest.load(manifest_path)
        assert manifest.jobs == 2
        assert manifest.experiments == ["table1", "fig11"]
        doc = json.loads(json_path.read_text())
        assert [entry["experiment"] for entry in doc] == ["table1", "fig11"]

    def test_default_manifest_path_with_jobs(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.runner import main

        monkeypatch.setenv("CNVLUTIN_CACHE_DIR", str(tmp_path / "cache"))
        code = main([
            "--scale", "tiny", "--networks", "alex", "--only", "table1",
            "--jobs", "2", "--no-smallcnn",
        ])
        assert code == 0
        assert (tmp_path / "cache" / "manifests" / "latest.json").exists()

    def test_bad_only_exits_2_with_message(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.runner import main

        monkeypatch.setenv("CNVLUTIN_CACHE_DIR", str(tmp_path / "cache"))
        code = main(["--scale", "tiny", "--only", "fig99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_network_exits_2_with_message(self, tmp_path, capsys, monkeypatch):
        # An unknown network is an input error: it must exit 2 before any
        # experiment runs, not degrade into FAILED tables (exit 1).
        from repro.experiments.runner import main

        monkeypatch.setenv("CNVLUTIN_CACHE_DIR", str(tmp_path / "cache"))
        code = main(["--scale", "tiny", "--networks", "bogus"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown network" in captured.err
        assert captured.out == ""

    def test_bad_network_exits_2_on_sim_cli(self, tmp_path, capsys, monkeypatch):
        # cnvlutin-sim validates the positional via argparse choices.
        from repro.cli import main

        monkeypatch.setenv("CNVLUTIN_CACHE_DIR", str(tmp_path / "cache"))
        with pytest.raises(SystemExit) as excinfo:
            main(["network", "bogus", "--scale", "tiny"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestDiffResultDocs:
    def test_identical_docs_have_no_diff(self, tmp_path):
        config = tiny_config(tmp_path, networks=["alex"])
        results = run_all(config, only=["table1"], verbose=False)
        doc = json.loads(results_to_json_doc(results))
        assert diff_result_docs(doc, doc) == []

    def test_cell_change_is_reported(self, tmp_path):
        config = tiny_config(tmp_path, networks=["alex"])
        results = run_all(config, only=["table1"], verbose=False)
        doc = json.loads(results_to_json_doc(results))
        tampered = json.loads(json.dumps(doc))
        tampered[0]["rows"][0]["conv_layers"] += 1
        mismatches = diff_result_docs(doc, tampered)
        assert mismatches
        assert any("conv_layers" in m for m in mismatches)

"""Sparsity-calibration tests (repro.nn.calibration)."""

import numpy as np
import pytest

from repro.nn.calibration import (
    PAPER_ZERO_FRACTIONS,
    calibrate_network,
    layer_targets,
    measure_zero_fractions,
)
from repro.nn.datasets import natural_images
from repro.nn.inference import init_weights
from repro.nn.models import build_network


class TestLayerTargets:
    def test_weighted_mean_hits_target(self):
        net = build_network("vgg19", input_size=64)
        targets = layer_targets(net, 0.45)
        macs = net.macs_per_layer()
        weights = {l.name: macs[l.name] for l in net.conv_layers}
        total = sum(weights.values())
        mean = sum(weights[k] * v for k, v in targets.items()) / total
        assert mean == pytest.approx(0.45, abs=0.02)

    def test_first_layer_pinned_to_zero(self):
        net = build_network("alex", input_size=67)
        targets = layer_targets(net, 0.44)
        assert targets["conv1"] == 0.0

    def test_later_layers_sparser(self):
        net = build_network("vgg19", input_size=64)
        targets = layer_targets(net, 0.45)
        convs = [l.name for l in net.conv_layers]
        assert targets[convs[-1]] > targets[convs[1]]


class TestCalibration:
    @pytest.mark.parametrize("name", ["alex", "nin"])
    def test_achieves_network_target(self, name):
        net = build_network(name, input_size=67 if name == "alex" else 64)
        rng = np.random.default_rng(7)
        store = init_weights(net, rng)
        images = natural_images(net.input_shape, 2, seed=8)
        calibrate_network(net, store, images[0])
        report = measure_zero_fractions(net, store, images)
        assert report.mac_weighted_mean == pytest.approx(
            PAPER_ZERO_FRACTIONS[name], abs=0.08
        )

    def test_sparsity_stable_across_inputs(self):
        """Fig. 1's error bars: zero fractions barely vary across images."""
        net = build_network("alex", input_size=67)
        rng = np.random.default_rng(7)
        store = init_weights(net, rng)
        images = natural_images(net.input_shape, 4, seed=9)
        calibrate_network(net, store, images[0])
        report = measure_zero_fractions(net, store, images)
        assert report.std_across_images < 0.05

    def test_first_layer_input_stays_dense(self):
        net = build_network("alex", input_size=67)
        rng = np.random.default_rng(7)
        store = init_weights(net, rng)
        images = natural_images(net.input_shape, 1, seed=10)
        calibrate_network(net, store, images[0])
        report = measure_zero_fractions(net, store, images)
        assert report.per_layer["conv1"] < 0.05

    def test_calibration_sets_shifts(self):
        net = build_network("alex", input_size=67)
        rng = np.random.default_rng(7)
        store = init_weights(net, rng)
        images = natural_images(net.input_shape, 1, seed=10)
        assert not store.shifts
        calibrate_network(net, store, images[0])
        assert store.shifts  # one per ReLU'd layer
        assert all(np.isfinite(v) for v in store.shifts.values())


class TestPerChannelMode:
    def test_per_channel_keeps_channels_alive(self):
        """per_channel=True gives every unit its own operating point:
        far fewer channels stay dead across inputs."""
        import numpy as np
        from repro.nn.inference import run_forward

        def dead_channel_fraction(per_channel):
            net = build_network("alex", input_size=67)
            store = init_weights(net, np.random.default_rng(7))
            images = natural_images(net.input_shape, 3, seed=12)
            calibrate_network(net, store, images, per_channel=per_channel)
            dead = total = 0
            for layer in ("conv3", "conv4", "conv5"):
                counts = None
                for image in images:
                    fwd = run_forward(net, store, image, keep_outputs=False)
                    mask = (fwd.conv_inputs[layer] == 0).all(axis=(1, 2))
                    counts = mask if counts is None else counts & mask
                dead += int(counts.sum())
                total += counts.size
            return dead / total

        assert dead_channel_fraction(True) < dead_channel_fraction(False)

    def test_multi_image_calibration_accepted(self):
        import numpy as np

        net = build_network("alex", input_size=67)
        store = init_weights(net, np.random.default_rng(7))
        images = natural_images(net.input_shape, 2, seed=13)
        calibrate_network(net, store, images)
        report = measure_zero_fractions(net, store, images)
        assert 0.3 < report.mac_weighted_mean < 0.6


class TestMeasurement:
    def test_thresholds_raise_measured_sparsity(self):
        net = build_network("alex", input_size=67)
        rng = np.random.default_rng(7)
        store = init_weights(net, rng)
        images = natural_images(net.input_shape, 1, seed=11)
        calibrate_network(net, store, images[0])
        clean = measure_zero_fractions(net, store, images)
        pruned = measure_zero_fractions(
            net, store, images, thresholds={"conv1": 0.2, "conv2": 0.2}
        )
        assert pruned.mac_weighted_mean > clean.mac_weighted_mean

"""ZFNAf format tests (repro.core.zfnaf)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.zfnaf import ZfnafArray, decode, decode_brick, encode, encode_brick
from repro.nn.activations import brick_nonzero_counts, sparse_activations


class TestEncodeBrick:
    def test_paper_example(self):
        """Section III-C: (1,0,0,3) encodes as ((1,0),(3,3))."""
        values, offsets = encode_brick(np.array([1.0, 0.0, 0.0, 3.0]))
        assert list(values) == [1.0, 3.0]
        assert list(offsets) == [0, 3]

    def test_all_zero_brick(self):
        values, offsets = encode_brick(np.zeros(16))
        assert values.size == 0 and offsets.size == 0

    def test_dense_brick(self):
        values, offsets = encode_brick(np.arange(1, 17, dtype=float))
        assert list(offsets) == list(range(16))

    def test_decode_brick_roundtrip(self):
        brick = np.array([0.0, 2.0, 0.0, -1.0])
        values, offsets = encode_brick(brick)
        assert np.array_equal(decode_brick(values, offsets, 4), brick)

    def test_decode_brick_offset_out_of_range(self):
        with pytest.raises(ValueError):
            decode_brick(np.array([1.0]), np.array([4]), 4)


class TestEncodeArray:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 40),  # depth
        st.integers(1, 6),  # height
        st.integers(1, 6),  # width
        st.sampled_from([4, 8, 16]),
        st.floats(0.0, 0.9),
        st.integers(0, 2**32 - 1),
    )
    def test_roundtrip(self, depth, height, width, brick, zero_frac, seed):
        rng = np.random.default_rng(seed)
        a = sparse_activations((depth, height, width), zero_frac, rng, correlation=0.5)
        z = encode(a, brick_size=brick)
        assert np.allclose(decode(z), a)

    def test_counts_match_nonzeros(self, rng):
        a = sparse_activations((32, 5, 5), 0.5, rng)
        z = encode(a)
        assert z.total_nonzero == int((a != 0).sum())

    def test_brick_accessor_direct_indexing(self, rng):
        """Brick-granularity indexing from coordinates — the property ZFNAf
        keeps and CSR gives up (Section IV-B1)."""
        a = sparse_activations((32, 4, 4), 0.5, rng)
        z = encode(a)
        values, offsets = z.brick(2, 3, 1)
        expected = a[16:32, 2, 3]
        rebuilt = np.zeros(16)
        rebuilt[offsets] = values
        assert np.array_equal(rebuilt, expected)

    def test_offsets_strictly_increasing_within_brick(self, rng):
        a = sparse_activations((16, 3, 3), 0.4, rng)
        z = encode(a)
        for y in range(3):
            for x in range(3):
                _, offsets = z.brick(y, x, 0)
                assert np.all(np.diff(offsets) > 0)

    def test_depth_padding(self):
        a = np.ones((5, 2, 2))  # depth 5 pads to one brick of 16
        z = encode(a, brick_size=16)
        assert z.bricks_per_column == 1
        assert z.total_nonzero == 5 * 4
        assert np.allclose(decode(z), a)

    def test_storage_overhead_is_25_percent(self, rng):
        """16-bit values + 4-bit offsets: +25% NM capacity (Section IV-B1)."""
        a = sparse_activations((32, 4, 4), 0.5, rng)
        z = encode(a, brick_size=16)
        assert z.storage_bits() == int(z.dense_storage_bits() * 1.25)

    def test_no_footprint_savings_even_when_sparse(self, rng):
        """ZFNAf reserves every slot regardless of sparsity."""
        dense = encode(np.ones((16, 4, 4)))
        sparse = encode(np.zeros((16, 4, 4)))
        assert dense.storage_bits() == sparse.storage_bits()

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            encode(np.ones((4, 4)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ZfnafArray(
                values=np.zeros((2, 2, 1, 4)),
                offsets=np.zeros((2, 2, 1, 3)),
                counts=np.zeros((2, 2, 1)),
                brick_size=4,
                original_depth=4,
            )


# ---------------------------------------------------------------------------
# Property-based suite over explicit brick patterns
# ---------------------------------------------------------------------------

#: Finite nonzero activation values (ZFNAf never rounds, so identity must
#: be exact even for awkward magnitudes).
_nonzero_values = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6,
    width=32,
).filter(lambda value: value != 0.0)


@st.composite
def brick_pattern(draw, brick_size: int) -> np.ndarray:
    """One brick drawn from the interesting corners of the format.

    Explicitly weights the shapes the encoder must not fumble: all-zero
    bricks (empty value list), fully dense bricks (offsets 0..B-1), a
    single nonzero at the *last* offset (the 4-bit offset's max value),
    and arbitrary sparse masks.
    """
    kind = draw(
        st.sampled_from(["all_zero", "dense", "single_last", "random"])
    )
    brick = np.zeros(brick_size, dtype=np.float64)
    if kind == "all_zero":
        return brick
    if kind == "dense":
        for index in range(brick_size):
            brick[index] = draw(_nonzero_values)
        return brick
    if kind == "single_last":
        brick[brick_size - 1] = draw(_nonzero_values)
        return brick
    mask = draw(
        st.lists(st.booleans(), min_size=brick_size, max_size=brick_size)
    )
    for index, hit in enumerate(mask):
        if hit:
            brick[index] = draw(_nonzero_values)
    return brick


@st.composite
def brick_volume(draw) -> tuple[np.ndarray, int]:
    """(activations, brick_size) assembled brick by brick.

    ``trim`` shaves the last brick so depth is frequently *not* a
    multiple of the brick size, exercising the zero-padding path.
    """
    brick_size = draw(st.sampled_from([4, 8, 16]))
    depth_bricks = draw(st.integers(1, 3))
    trim = draw(st.integers(0, brick_size - 1))
    depth = depth_bricks * brick_size - trim
    height = draw(st.integers(1, 3))
    width = draw(st.integers(1, 3))
    column = st.lists(
        brick_pattern(brick_size),
        min_size=depth_bricks, max_size=depth_bricks,
    )
    volume = np.zeros((depth_bricks * brick_size, height, width))
    for y in range(height):
        for x in range(width):
            volume[:, y, x] = np.concatenate(draw(column))
    return volume[:depth], brick_size


class TestZfnafProperties:
    @given(brick_volume())
    def test_encode_decode_identity(self, drawn):
        """decode(encode(a)) == a exactly, for every brick pattern."""
        activations, brick_size = drawn
        restored = decode(encode(activations, brick_size=brick_size))
        assert np.array_equal(restored, activations)

    @given(brick_volume())
    def test_counts_match_brute_force(self, drawn):
        """`brick_nonzero_counts` agrees with a per-brick python loop."""
        activations, brick_size = drawn
        counts = brick_nonzero_counts(activations, brick_size=brick_size)
        depth, height, width = activations.shape
        depth_bricks = -(-depth // brick_size)
        assert counts.shape == (height, width, depth_bricks)
        for y in range(height):
            for x in range(width):
                for b in range(depth_bricks):
                    lo = b * brick_size
                    hi = min(lo + brick_size, depth)
                    expected = int(
                        np.count_nonzero(activations[lo:hi, y, x])
                    )
                    assert counts[y, x, b] == expected

    @given(brick_volume())
    def test_encoder_counts_agree_with_brick_counts(self, drawn):
        """The ZFNAf per-brick counts are the same statistic."""
        activations, brick_size = drawn
        z = encode(activations, brick_size=brick_size)
        counts = brick_nonzero_counts(activations, brick_size=brick_size)
        assert z.total_nonzero == int(counts.sum())
        assert np.array_equal(np.asarray(z.counts), counts)

    @given(st.sampled_from([4, 8, 16]), st.data())
    def test_single_nonzero_at_last_offset(self, brick_size, data):
        """The max offset value (brick_size-1) survives the round trip."""
        value = data.draw(_nonzero_values)
        brick = np.zeros(brick_size)
        brick[brick_size - 1] = value
        values, offsets = encode_brick(brick)
        assert list(offsets) == [brick_size - 1]
        assert values[0] == value
        assert np.array_equal(
            decode_brick(values, offsets, brick_size), brick
        )

    @given(st.integers(1, 47))
    def test_all_zero_volume_encodes_empty(self, depth):
        z = encode(np.zeros((depth, 2, 2)), brick_size=16)
        assert z.total_nonzero == 0
        assert np.array_equal(decode(z), np.zeros((depth, 2, 2)))

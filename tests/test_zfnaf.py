"""ZFNAf format tests (repro.core.zfnaf)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.zfnaf import ZfnafArray, decode, decode_brick, encode, encode_brick
from repro.nn.activations import sparse_activations


class TestEncodeBrick:
    def test_paper_example(self):
        """Section III-C: (1,0,0,3) encodes as ((1,0),(3,3))."""
        values, offsets = encode_brick(np.array([1.0, 0.0, 0.0, 3.0]))
        assert list(values) == [1.0, 3.0]
        assert list(offsets) == [0, 3]

    def test_all_zero_brick(self):
        values, offsets = encode_brick(np.zeros(16))
        assert values.size == 0 and offsets.size == 0

    def test_dense_brick(self):
        values, offsets = encode_brick(np.arange(1, 17, dtype=float))
        assert list(offsets) == list(range(16))

    def test_decode_brick_roundtrip(self):
        brick = np.array([0.0, 2.0, 0.0, -1.0])
        values, offsets = encode_brick(brick)
        assert np.array_equal(decode_brick(values, offsets, 4), brick)

    def test_decode_brick_offset_out_of_range(self):
        with pytest.raises(ValueError):
            decode_brick(np.array([1.0]), np.array([4]), 4)


class TestEncodeArray:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 40),  # depth
        st.integers(1, 6),  # height
        st.integers(1, 6),  # width
        st.sampled_from([4, 8, 16]),
        st.floats(0.0, 0.9),
        st.integers(0, 2**32 - 1),
    )
    def test_roundtrip(self, depth, height, width, brick, zero_frac, seed):
        rng = np.random.default_rng(seed)
        a = sparse_activations((depth, height, width), zero_frac, rng, correlation=0.5)
        z = encode(a, brick_size=brick)
        assert np.allclose(decode(z), a)

    def test_counts_match_nonzeros(self, rng):
        a = sparse_activations((32, 5, 5), 0.5, rng)
        z = encode(a)
        assert z.total_nonzero == int((a != 0).sum())

    def test_brick_accessor_direct_indexing(self, rng):
        """Brick-granularity indexing from coordinates — the property ZFNAf
        keeps and CSR gives up (Section IV-B1)."""
        a = sparse_activations((32, 4, 4), 0.5, rng)
        z = encode(a)
        values, offsets = z.brick(2, 3, 1)
        expected = a[16:32, 2, 3]
        rebuilt = np.zeros(16)
        rebuilt[offsets] = values
        assert np.array_equal(rebuilt, expected)

    def test_offsets_strictly_increasing_within_brick(self, rng):
        a = sparse_activations((16, 3, 3), 0.4, rng)
        z = encode(a)
        for y in range(3):
            for x in range(3):
                _, offsets = z.brick(y, x, 0)
                assert np.all(np.diff(offsets) > 0)

    def test_depth_padding(self):
        a = np.ones((5, 2, 2))  # depth 5 pads to one brick of 16
        z = encode(a, brick_size=16)
        assert z.bricks_per_column == 1
        assert z.total_nonzero == 5 * 4
        assert np.allclose(decode(z), a)

    def test_storage_overhead_is_25_percent(self, rng):
        """16-bit values + 4-bit offsets: +25% NM capacity (Section IV-B1)."""
        a = sparse_activations((32, 4, 4), 0.5, rng)
        z = encode(a, brick_size=16)
        assert z.storage_bits() == int(z.dense_storage_bits() * 1.25)

    def test_no_footprint_savings_even_when_sparse(self, rng):
        """ZFNAf reserves every slot regardless of sparsity."""
        dense = encode(np.ones((16, 4, 4)))
        sparse = encode(np.zeros((16, 4, 4)))
        assert dense.storage_bits() == sparse.storage_bits()

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            encode(np.ones((4, 4)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ZfnafArray(
                values=np.zeros((2, 2, 1, 4)),
                offsets=np.zeros((2, 2, 1, 3)),
                counts=np.zeros((2, 2, 1)),
                brick_size=4,
                original_depth=4,
            )

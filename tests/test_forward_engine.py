"""Differential tests for the batched + incremental forward engine.

The engine's contract is *bit-identity*: a batched pass must equal
stacking per-image ``run_forward`` results, and an incremental pass under
any sequence of threshold mutations must equal a from-scratch forward —
exactly, including ``conv_inputs`` and logits.  Hypothesis drives random
weights, images, and threshold-mutation sequences through both a linear
network and a GoogLeNet-style branching/concat network.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.engine import (
    IncrementalForwardEngine,
    slice_result,
    threshold_scopes,
)
from repro.nn.inference import init_weights, run_forward
from repro.nn.network import LayerSpec, Network


def linear_net() -> Network:
    """Conv/pool/LRN/conv/FC/softmax chain — every batched layer kind."""
    return Network(
        name="lin",
        input_shape=(3, 10, 10),
        layers=[
            LayerSpec(name="conv1", kind="conv", num_filters=4, kernel=3, pad=1, fused_relu=True),
            LayerSpec(name="pool1", kind="maxpool", kernel=2, stride=2),
            LayerSpec(name="norm1", kind="lrn", lrn_size=3),
            LayerSpec(name="conv2", kind="conv", num_filters=6, kernel=3, pad=1, fused_relu=True),
            LayerSpec(name="pool2", kind="avgpool", kernel=2, stride=2),
            LayerSpec(name="fc", kind="fc", num_filters=5, fused_relu=True),
            LayerSpec(name="prob", kind="softmax"),
        ],
    )


def branching_net() -> Network:
    """Two conv branches re-joined by a concat (inception-style edges)."""
    return Network(
        name="branchy",
        input_shape=(3, 8, 8),
        layers=[
            LayerSpec(name="stem", kind="conv", num_filters=4, kernel=3, pad=1, fused_relu=True),
            LayerSpec(name="br_a", kind="conv", num_filters=4, kernel=1, fused_relu=True, input_from=("stem",)),
            LayerSpec(name="br_b", kind="conv", num_filters=6, kernel=3, pad=1, fused_relu=True, input_from=("stem",)),
            LayerSpec(name="join", kind="concat", input_from=("br_a", "br_b")),
            LayerSpec(name="head", kind="conv", num_filters=5, kernel=3, pad=1, fused_relu=True, input_from=("join",)),
            LayerSpec(name="fc", kind="fc", num_filters=4, fused_relu=False),
            LayerSpec(name="prob", kind="softmax"),
        ],
    )


NETWORKS = {"linear": linear_net, "branching": branching_net}


def make_fixture(net_name: str, seed: int, batch: int, dtype=np.float32):
    network = NETWORKS[net_name]()
    rng = np.random.default_rng(seed)
    store = init_weights(network, rng)
    store.weights = {k: v.astype(dtype) for k, v in store.weights.items()}
    store.biases = {k: v.astype(dtype) for k, v in store.biases.items()}
    images = rng.normal(size=(batch, *network.input_shape)).astype(dtype)
    return network, store, images


def prunable_layers(network: Network) -> list[str]:
    return [
        layer.name
        for layer in network.layers
        if layer.fused_relu and layer.kind in ("conv", "fc")
    ]


def assert_results_equal(got, expected):
    assert set(got.conv_inputs) == set(expected.conv_inputs)
    for name in expected.conv_inputs:
        assert np.array_equal(got.conv_inputs[name], expected.conv_inputs[name]), name
    for name in expected.outputs:
        assert np.array_equal(got.outputs[name], expected.outputs[name]), name
    if expected.logits is None:
        assert got.logits is None
    else:
        assert np.array_equal(got.logits, expected.logits)


class TestBatchedForward:
    """run_forward on a (batch, ...) stack ≡ per-image run_forward."""

    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from(sorted(NETWORKS)),
        st.integers(1, 4),
        st.integers(0, 2**32 - 1),
    )
    def test_batched_equals_per_image(self, net_name, batch, seed):
        network, store, images = make_fixture(net_name, seed, batch)
        batched = run_forward(network, store, images, keep_outputs=True)
        for index in range(batch):
            single = run_forward(network, store, images[index], keep_outputs=True)
            assert_results_equal(slice_result(batched, index), single)

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(sorted(NETWORKS)), st.integers(0, 2**32 - 1))
    def test_batched_equals_per_image_with_thresholds(self, net_name, seed):
        network, store, images = make_fixture(net_name, seed, batch=3)
        thresholds = {name: 0.05 for name in prunable_layers(network)}
        batched = run_forward(
            network, store, images, thresholds=thresholds, keep_outputs=True
        )
        for index in range(3):
            single = run_forward(
                network, store, images[index], thresholds=thresholds, keep_outputs=True
            )
            assert_results_equal(slice_result(batched, index), single)

    def test_batched_float64(self):
        network, store, images = make_fixture("linear", 7, batch=2, dtype=np.float64)
        batched = run_forward(network, store, images, keep_outputs=True)
        single = run_forward(network, store, images[1], keep_outputs=True)
        assert_results_equal(slice_result(batched, 1), single)


class TestIncrementalEngine:
    """Engine runs under threshold mutations ≡ from-scratch forwards."""

    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from(sorted(NETWORKS)),
        st.integers(0, 2**32 - 1),
        st.lists(
            st.tuples(st.integers(0, 10), st.sampled_from([0.0, 0.02, 0.05, 0.2])),
            min_size=1,
            max_size=6,
        ),
    )
    def test_mutation_sequence_matches_scratch(self, net_name, seed, mutations):
        network, store, images = make_fixture(net_name, seed, batch=2)
        engine = IncrementalForwardEngine(network, store, images)
        prunable = prunable_layers(network)
        thresholds: dict[str, float] = {}
        for layer_pick, value in mutations:
            thresholds = dict(thresholds)
            thresholds[prunable[layer_pick % len(prunable)]] = value
            got = engine.run(thresholds=thresholds, keep_outputs=True)
            for index in range(2):
                scratch = run_forward(
                    network,
                    store,
                    images[index],
                    thresholds=thresholds,
                    keep_outputs=True,
                )
                assert_results_equal(slice_result(got, index), scratch)

    def test_prefix_reuse_hits_upstream_layers(self):
        network, store, images = make_fixture("linear", 3, batch=2)
        engine = IncrementalForwardEngine(network, store, images)
        engine.run()
        misses_before = engine.stats.misses
        assert engine.stats.hits == 0
        # Re-running the same config replays everything from cache.
        engine.run()
        assert engine.stats.misses == misses_before
        assert engine.stats.hits == len(network.layers)
        # Perturbing conv2 reuses the whole prefix above it.
        engine.run(thresholds={"conv2": 0.1})
        prefix = ["conv1", "pool1", "norm1"]
        assert engine.stats.misses == misses_before + (len(network.layers) - len(prefix))

    def test_single_image_promoted_to_batch(self):
        network, store, images = make_fixture("linear", 5, batch=1)
        engine = IncrementalForwardEngine(network, store, images[0])
        result = engine.run(keep_outputs=True)
        single = run_forward(network, store, images[0], keep_outputs=True)
        assert_results_equal(slice_result(result, 0), single)

    def test_incompatible_stack_rejected(self):
        network, store, _ = make_fixture("linear", 5, batch=1)
        with pytest.raises(ValueError):
            IncrementalForwardEngine(network, store, np.zeros((2, 3, 4, 4)))

    def test_cache_budget_evicts_but_stays_correct(self):
        network, store, images = make_fixture("linear", 9, batch=2)
        engine = IncrementalForwardEngine(
            network, store, images, cache_bytes=1  # force constant eviction
        )
        clean = engine.run(keep_outputs=True)
        again = engine.run(keep_outputs=True)
        assert engine.stats.evictions > 0
        for index in range(2):
            assert_results_equal(
                slice_result(again, index), slice_result(clean, index)
            )

    def test_cache_budget_env_var(self, monkeypatch):
        monkeypatch.setenv("CNVLUTIN_ENGINE_CACHE_MB", "2")
        network, store, images = make_fixture("linear", 9, batch=1)
        engine = IncrementalForwardEngine(network, store, images)
        assert engine.cache_bytes == 2 * 1024 * 1024


class TestThresholdScopes:
    def test_scopes_walk_branches_and_concat(self):
        network = branching_net()
        scopes = threshold_scopes(network)
        assert scopes["stem"] == ("stem",)
        assert scopes["br_a"] == ("br_a", "stem")
        assert scopes["join"] == ("br_a", "br_b", "stem")
        assert scopes["head"] == ("br_a", "br_b", "head", "stem")
        # fc has no fused ReLU: it inherits head's scope without itself.
        assert scopes["fc"] == ("br_a", "br_b", "head", "stem")

    def test_non_prunable_layers_excluded(self):
        network = linear_net()
        scopes = threshold_scopes(network)
        assert scopes["pool1"] == ("conv1",)
        assert scopes["fc"] == ("conv1", "conv2", "fc")

    def test_signature_ignores_zero_and_unscoped_thresholds(self):
        network, store, images = make_fixture("linear", 3, batch=1)
        engine = IncrementalForwardEngine(network, store, images)
        base = engine._signature("pool1", {})
        assert engine._signature("pool1", {"conv1": 0.0}) == base
        assert engine._signature("pool1", {"conv2": 0.5}) == base
        assert engine._signature("pool1", {"conv1": 0.5}) != base

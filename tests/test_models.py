"""Tests of the six Table I network definitions (repro.nn.models)."""

import pytest

from repro.nn.models import TABLE1_SOURCES, build_network, network_names

#: Conv-layer counts from the paper's Table I.
TABLE1 = {"alex": 5, "google": 59, "nin": 12, "vgg19": 16, "cnnM": 5, "cnnS": 5}


class TestTable1:
    @pytest.mark.parametrize("name", network_names())
    def test_conv_layer_counts(self, name):
        assert build_network(name).num_conv_layers == TABLE1[name]

    def test_all_networks_have_sources(self):
        for name in network_names():
            assert name in TABLE1_SOURCES

    def test_unknown_network(self):
        with pytest.raises(KeyError):
            build_network("resnet")


class TestAlexGeometry:
    def test_published_feature_map_sizes(self):
        net = build_network("alex")
        assert net.output_shape("conv1") == (96, 55, 55)
        assert net.output_shape("conv2") == (256, 27, 27)
        assert net.output_shape("conv5") == (256, 13, 13)
        assert net.output_shape("pool5") == (256, 6, 6)
        assert net.output_shape("fc8") == (1000, 1, 1)

    def test_grouped_layers(self):
        net = build_network("alex")
        groups = {l.name: l.groups for l in net.conv_layers}
        assert groups == {"conv1": 1, "conv2": 2, "conv3": 1, "conv4": 2, "conv5": 2}


class TestGoogleGeometry:
    def test_inception_output_depths(self):
        net = build_network("google")
        assert net.output_shape("inception_3a/output")[0] == 256
        assert net.output_shape("inception_4e/output")[0] == 832
        assert net.output_shape("inception_5b/output")[0] == 1024

    def test_spatial_pyramid(self):
        net = build_network("google")
        assert net.output_shape("pool2/3x3_s2")[1] == 28
        assert net.output_shape("pool3/3x3_s2")[1] == 14
        assert net.output_shape("pool4/3x3_s2")[1] == 7
        assert net.output_shape("pool5/7x7_s1")[1:] == (1, 1)

    def test_aux_classifier_convs_counted(self):
        net = build_network("google")
        names = {l.name for l in net.conv_layers}
        assert "loss1/conv" in names and "loss2/conv" in names


class TestVgg19Geometry:
    def test_blocks(self):
        net = build_network("vgg19")
        assert net.output_shape("conv1_2") == (64, 224, 224)
        assert net.output_shape("conv5_4") == (512, 14, 14)
        assert net.output_shape("pool5") == (512, 7, 7)

    def test_all_convs_are_3x3_same_pad(self):
        for layer in build_network("vgg19").conv_layers:
            assert layer.kernel == 3 and layer.pad == 1 and layer.stride == 1


class TestNinGeometry:
    def test_mlpconv_structure(self):
        net = build_network("nin")
        kernels = [l.kernel for l in net.conv_layers]
        assert kernels == [11, 1, 1, 5, 1, 1, 3, 1, 1, 3, 1, 1]

    def test_global_average_pool(self):
        net = build_network("nin")
        assert net.output_shape("pool4") == (1000, 1, 1)


class TestScaledBuilds:
    @pytest.mark.parametrize("name", network_names())
    @pytest.mark.parametrize("size", [64, 112])
    def test_reduced_resolution_builds(self, name, size):
        net = build_network(name, input_size=size)
        assert net.num_conv_layers == TABLE1[name]
        assert net.input_shape[1] == size

    def test_scaling_preserves_filter_counts(self):
        full = build_network("vgg19")
        small = build_network("vgg19", input_size=64)
        assert [l.num_filters for l in full.conv_layers] == [
            l.num_filters for l in small.conv_layers
        ]

    def test_default_size_unchanged(self):
        assert build_network("alex").input_shape == (3, 227, 227)
        assert build_network("alex", input_size=227).input_shape == (3, 227, 227)


class TestEncodedDepthAssumption:
    def test_google_has_unaligned_depths(self):
        """GoogLeNet's 5x5 convolutions read depth-24 inputs — not a
        multiple of the 16-neuron brick — so ZFNAf's final-brick zero
        padding is exercised by a real evaluated network."""
        net = build_network("google")
        depths = {
            net.input_shape_of(l.name)[0] // l.groups for l in net.conv_layers
        }
        assert 24 in depths
        assert any(d % 16 for d in depths)

    @pytest.mark.parametrize("name", network_names())
    def test_most_depths_brick_aligned(self, name):
        """The bulk of each network's conv input depths are 16-aligned
        (the regime the paper's vertical-slice assignment targets)."""
        net = build_network(name)
        first = net.first_conv_layers()
        aligned = 0
        total = 0
        for layer in net.conv_layers:
            if layer.name in first:
                continue
            total += 1
            depth = net.input_shape_of(layer.name)[0] // layer.groups
            aligned += depth % 16 == 0
        assert aligned / total > 0.5

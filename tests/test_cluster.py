"""Multi-node scaling tests (repro.cluster)."""

import pytest

from repro.cluster import (
    ClusterConfig,
    capacity_report,
    cluster_network_timing,
    nodes_required,
)
from repro.hw.config import PAPER_CONFIG, small_config
from repro.nn.datasets import natural_images
from repro.nn.inference import init_weights, run_forward
from repro.nn.models import build_network


@pytest.fixture(scope="module")
def alex_run():
    net = build_network("alex", input_size=67)
    import numpy as np

    store = init_weights(net, np.random.default_rng(5))
    image = natural_images(net.input_shape, 1, seed=6)[0]
    fwd = run_forward(net, store, image, keep_outputs=False)
    return net, fwd


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(broadcast_overlap=1.5)

    def test_bytes_per_cycle(self):
        cfg = ClusterConfig(link_gbytes_per_sec=25.6)
        assert cfg.bytes_per_cycle == pytest.approx(25.6)


class TestClusterTiming:
    def test_single_node_matches_node_timing(self, alex_run):
        from repro.baseline.timing import baseline_network_timing

        net, fwd = alex_run
        single = cluster_network_timing(
            net, fwd.conv_inputs, ClusterConfig(num_nodes=1)
        )
        node = baseline_network_timing(net, fwd.conv_inputs, PAPER_CONFIG)
        assert single.total_cycles == node.total_cycles

    def test_more_nodes_never_slower(self, alex_run):
        net, fwd = alex_run
        one = cluster_network_timing(net, fwd.conv_inputs, ClusterConfig(num_nodes=1))
        four = cluster_network_timing(net, fwd.conv_inputs, ClusterConfig(num_nodes=4))
        assert four.total_cycles <= one.total_cycles

    def test_scaling_sublinear_due_to_broadcast(self, alex_run):
        """Broadcast cost keeps multi-node scaling below ideal."""
        net, fwd = alex_run
        cfg = ClusterConfig(num_nodes=4, broadcast_overlap=0.0)
        four = cluster_network_timing(net, fwd.conv_inputs, cfg)
        overlapped = cluster_network_timing(
            net, fwd.conv_inputs, ClusterConfig(num_nodes=4, broadcast_overlap=1.0)
        )
        assert four.total_cycles > overlapped.total_cycles

    def test_cnv_cluster_faster_than_baseline_cluster(self, alex_run):
        net, fwd = alex_run
        cfg = ClusterConfig(num_nodes=2)
        base = cluster_network_timing(net, fwd.conv_inputs, cfg, "dadiannao")
        cnv = cluster_network_timing(net, fwd.conv_inputs, cfg, "cnvlutin")
        assert cnv.total_cycles < base.total_cycles

    def test_nodes_used_recorded(self, alex_run):
        net, fwd = alex_run
        timing = cluster_network_timing(
            net, fwd.conv_inputs, ClusterConfig(num_nodes=4)
        )
        conv_layers = [l for l in timing.layers if l.kind == "conv"]
        assert all(1 <= l.nodes_used <= 4 for l in conv_layers)


class TestCapacity:
    def test_alexnet_fc_exceeds_one_node(self):
        """alex fc6 holds ~75 MB of synapses: more than one 32 MB SB —
        the scenario Section IV-A's multi-node support exists for."""
        net = build_network("alex")  # full size
        assert nodes_required(net, PAPER_CONFIG) >= 2

    def test_small_network_fits_one_node(self):
        net = build_network("nin", input_size=64)
        assert nodes_required(net, PAPER_CONFIG) == 1

    def test_tiny_node_needs_more(self):
        net = build_network("vgg19", input_size=112)
        small = small_config()
        assert nodes_required(net, small) > nodes_required(net, PAPER_CONFIG)

    def test_capacity_report_fields(self):
        net = build_network("alex", input_size=67)
        report = capacity_report(net, PAPER_CONFIG)
        assert report["sb_capacity_mb"] == 32.0
        assert report["nm_capacity_mb"] == 4.0
        assert report["nodes_required"] >= 1

"""Subunit and CNV-unit tests (repro.core.subunit / repro.core.unit)."""

import numpy as np
import pytest

from repro.core.dispatcher import LaneSlot
from repro.core.subunit import Subunit, build_subunit_sb
from repro.core.unit import CnvUnit
from repro.hw.config import ArchConfig


def _cfg(lanes=2, filters=2, brick=4):
    return ArchConfig(
        num_units=1, neuron_lanes=lanes, filters_per_unit=filters, brick_size=brick
    )


class TestBuildSubunitSb:
    def test_transposed_store_order(self):
        """Section IV-B2: the SB store order is transposed per subunit so
        the offset directly indexes the right synapse column."""
        weights = np.arange(2 * 8 * 2 * 2, dtype=float).reshape(2, 8, 2, 2)
        positions = [(0, 1, 0), (1, 0, 1)]  # (fy, fx, bz) bricks of this lane
        sb = build_subunit_sb(weights, positions, brick_size=4)
        assert sb.shape == (8, 2)
        # Brick 0 (fy=0, fx=1, bz=0): column k holds weights[:, k, 0, 1].
        for k in range(4):
            assert np.array_equal(sb[k], weights[:, k, 0, 1])
        # Brick 1 (fy=1, fx=0, bz=1): column k holds weights[:, 4+k, 1, 0].
        for k in range(4):
            assert np.array_equal(sb[4 + k], weights[:, 4 + k, 1, 0])

    def test_depth_padding_zero_synapses(self):
        weights = np.ones((1, 6, 1, 1))
        sb = build_subunit_sb(weights, [(0, 0, 0), (0, 0, 1)], brick_size=4)
        assert sb[5, 0] == 1.0  # z=5 real
        assert sb[6, 0] == 0.0  # z=6 padding
        assert sb[7, 0] == 0.0


class TestSubunit:
    def test_offset_selects_synapse_column(self):
        cfg = _cfg()
        sb = np.arange(8, dtype=float).reshape(4, 2)  # 1 brick block
        sub = Subunit(cfg, sb)
        products = sub.process(value=2.0, offset=3, seq=0)
        assert list(products) == [12.0, 14.0]  # 2 * sb[3]

    def test_seq_selects_brick_block(self):
        cfg = _cfg()
        sb = np.arange(16, dtype=float).reshape(8, 2)  # 2 brick blocks
        sub = Subunit(cfg, sb)
        products = sub.process(value=1.0, offset=1, seq=1)
        assert list(products) == [10.0, 11.0]  # row 4+1

    def test_offset_out_of_range(self):
        sub = Subunit(_cfg(), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            sub.process(1.0, offset=4, seq=0)

    def test_activity_counted(self):
        sub = Subunit(_cfg(), np.ones((4, 2)))
        sub.process(1.0, 0, 0)
        assert sub.counters["mults"] == 2
        assert sub.counters["sb_reads"] == 1
        assert sub.counters["offset_reads"] == 1


class TestCnvUnit:
    def _unit(self):
        cfg = _cfg()
        sbs = [np.ones((4, 2)), 2 * np.ones((4, 2))]
        return CnvUnit(cfg, sbs), cfg

    def test_accumulates_products_per_filter(self):
        unit, _ = self._unit()
        slots = [
            LaneSlot(kind="pair", value=3.0, offset=0, seq=0),
            LaneSlot(kind="pair", value=1.0, offset=2, seq=0),
        ]
        unit.consume(slots)
        out = unit.window_outputs()
        # filter sums: 3*1 + 1*2 = 5 per filter.
        assert list(out) == [5.0, 5.0]

    def test_stalled_lanes_contribute_nothing(self):
        unit, _ = self._unit()
        unit.consume([
            LaneSlot(kind="pair", value=2.0, offset=1, seq=0),
            LaneSlot(kind="idle"),
        ])
        assert list(unit.window_outputs()) == [2.0, 2.0]

    def test_all_idle_cycle_touches_nothing(self):
        unit, _ = self._unit()
        unit.consume([LaneSlot(kind="idle"), LaneSlot(kind="bubble")])
        assert unit.counters["mults"] == 0
        assert unit.counters["nbout_writes"] == 0

    def test_reset_window_clears_sums(self):
        unit, _ = self._unit()
        unit.consume([
            LaneSlot(kind="pair", value=1.0, offset=0, seq=0),
            LaneSlot(kind="idle"),
        ])
        unit.reset_window()
        assert list(unit.window_outputs()) == [0.0, 0.0]

    def test_requires_one_sb_per_lane(self):
        with pytest.raises(ValueError):
            CnvUnit(_cfg(), [np.ones((4, 2))])

    def test_tick_requires_attachment(self):
        unit, _ = self._unit()
        with pytest.raises(RuntimeError):
            unit.tick(0)

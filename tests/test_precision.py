"""Variable-precision extension tests (repro.extensions.precision)."""

import numpy as np
import pytest

from repro.baseline.timing import baseline_network_timing
from repro.core.timing import cnv_network_timing
from repro.extensions.precision import (
    _format_for,
    combined_cnv_precision_timing,
    minimal_precisions,
    precision_speedup_factor,
)
from repro.hw.config import PAPER_CONFIG
from repro.nn.datasets import natural_images
from repro.nn.calibration import calibrate_network
from repro.nn.inference import init_weights, run_forward
from repro.nn.models import build_network


@pytest.fixture(scope="module")
def calibrated_alex():
    net = build_network("alex", input_size=67)
    store = init_weights(net, np.random.default_rng(9))
    images = natural_images(net.input_shape, 2, seed=10)
    calibrate_network(net, store, images)
    return net, store, images


class TestFormats:
    def test_format_keeps_dynamic_range(self):
        fmt = _format_for(8)
        assert fmt.total_bits == 8
        assert fmt.max_value >= 7.9  # 4 integer bits

    def test_minimum_width(self):
        assert _format_for(2).total_bits == 2


class TestMinimalPrecisions:
    def test_profile_is_stable_and_below_16(self, calibrated_alex):
        net, store, images = calibrated_alex
        profile = minimal_precisions(net, store, images)
        assert profile.stable
        assert set(profile.bits) == {l.name for l in net.conv_layers}
        # Random-calibrated networks tolerate meaningful reduction.
        assert profile.mean_bits < 16

    def test_quantized_forward_respects_formats(self, calibrated_alex):
        net, store, images = calibrated_alex
        fmt = _format_for(6)
        result = run_forward(
            net, store, images[0], formats={"conv2": fmt}, keep_outputs=True
        )
        out = result.outputs["conv2"]
        grid = out * fmt.scale
        assert np.allclose(grid, np.round(grid))


class TestSpeedupFactor:
    def test_full_precision_factor_is_one(self):
        assert precision_speedup_factor({"a": 16, "b": 16}) == 1.0

    def test_half_precision_doubles(self):
        assert precision_speedup_factor({"a": 8}) == 2.0

    def test_empty_profile(self):
        assert precision_speedup_factor({}) == 1.0


class TestCombinedTiming:
    def test_full_precision_reduces_to_plain_cnv(self, calibrated_alex):
        net, store, images = calibrated_alex
        fwd = run_forward(net, store, images[0], keep_outputs=False)
        plain = cnv_network_timing(net, fwd.conv_inputs, PAPER_CONFIG)
        combined = combined_cnv_precision_timing(
            net, fwd.conv_inputs, PAPER_CONFIG, {l.name: 16 for l in net.conv_layers}
        )
        assert combined.total_cycles == plain.total_cycles

    def test_lower_precision_compounds_with_skipping(self, calibrated_alex):
        net, store, images = calibrated_alex
        fwd = run_forward(net, store, images[0], keep_outputs=False)
        base = baseline_network_timing(net, fwd.conv_inputs, PAPER_CONFIG)
        plain = cnv_network_timing(net, fwd.conv_inputs, PAPER_CONFIG)
        combined = combined_cnv_precision_timing(
            net, fwd.conv_inputs, PAPER_CONFIG, {l.name: 8 for l in net.conv_layers}
        )
        assert combined.total_cycles < plain.total_cycles < base.total_cycles

    def test_first_layer_unscaled(self, calibrated_alex):
        """conv1 runs unencoded full-precision, as in plain CNV."""
        net, store, images = calibrated_alex
        fwd = run_forward(net, store, images[0], keep_outputs=False)
        plain = cnv_network_timing(net, fwd.conv_inputs, PAPER_CONFIG)
        combined = combined_cnv_precision_timing(
            net, fwd.conv_inputs, PAPER_CONFIG, {l.name: 4 for l in net.conv_layers}
        )
        assert (
            combined.cycles_by_layer()["conv1"] == plain.cycles_by_layer()["conv1"]
        )

"""Property tests for the consistent-hash ring (repro.serve.hashring).

The two properties the sharded tier leans on:

* **Balance**: with the default 64 vnodes, no shard owns more than 2×
  its fair share of a large key population (the ISSUE's ≤2×-of-uniform
  criterion).
* **Stability**: removing a node remaps *only* that node's keys — every
  surviving shard keeps exactly the keys it had, which is what keeps
  their engine caches hot through a shard death.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.hashring import HashRing, request_key


def keys(count: int, salt: str = "") -> list[str]:
    return [f"key{salt}:{index}" for index in range(count)]


class TestRequestKey:
    def test_network_only(self):
        assert request_key("alex") == "alex"
        assert request_key("alex", ()) == "alex"

    def test_thresholds_render_repr_exact(self):
        key = request_key("cnnS", (("conv2", 0.02), ("conv3", 0.1)))
        assert key == "cnnS|conv2=0.02|conv3=0.1"

    def test_distinct_configs_distinct_keys(self):
        a = request_key("alex", (("conv2", 0.02),))
        b = request_key("alex", (("conv2", 0.04),))
        c = request_key("cnnS", (("conv2", 0.02),))
        assert len({a, b, c, request_key("alex")}) == 4


class TestBalance:
    @given(nodes=st.integers(min_value=2, max_value=8))
    @settings(max_examples=7, deadline=None)
    def test_within_two_of_uniform(self, nodes):
        ring = HashRing(range(nodes))
        counts = {node: 0 for node in range(nodes)}
        population = keys(2000)
        for key in population:
            counts[ring.owner(key)] += 1
        fair = len(population) / nodes
        assert max(counts.values()) <= 2 * fair
        assert min(counts.values()) > 0

    def test_real_request_keys_spread(self):
        ring = HashRing(range(4))
        real = [
            request_key(network, (("conv2", 0.02 * step),))
            for network in ("alex", "cnnS", "nin", "goog")
            for step in range(1, 13)
        ]
        counts = {node: 0 for node in range(4)}
        for key in real:
            counts[ring.owner(key)] += 1
        assert max(counts.values()) <= 2 * len(real) / 4
        assert all(count > 0 for count in counts.values())


class TestStability:
    @given(dead=st.integers(min_value=0, max_value=4))
    @settings(max_examples=5, deadline=None)
    def test_removal_remaps_only_dead_nodes_keys(self, dead):
        ring = HashRing(range(5))
        population = keys(800)
        before = ring.assignments(population)
        ring.remove(dead)
        after = ring.assignments(population)
        for key in population:
            if before[key] != dead:
                assert after[key] == before[key]
            else:
                assert after[key] != dead

    def test_add_back_restores_assignments(self):
        ring = HashRing(range(4))
        population = keys(500)
        before = ring.assignments(population)
        ring.remove(2)
        ring.add(2)
        assert ring.assignments(population) == before

    def test_cross_process_determinism(self):
        # SHA-256 points: two independently built rings agree (the
        # router, a respawned shard, and the tests share ownership).
        a = HashRing([0, 1, 2])
        b = HashRing([2, 1, 0])
        for key in keys(200):
            assert a.owner(key) == b.owner(key)


class TestPreference:
    def test_owner_first_distinct_full(self):
        ring = HashRing(range(4))
        for key in keys(50):
            preference = ring.preference(key)
            assert preference[0] == ring.owner(key)
            assert len(preference) == 4
            assert len(set(preference)) == 4

    def test_limit(self):
        ring = HashRing(range(6))
        assert len(ring.preference("k", limit=2)) == 2
        assert len(ring.preference("k", limit=99)) == 6

    def test_successor_takes_over_after_removal(self):
        ring = HashRing(range(3))
        key = "some-key"
        first, second = ring.preference(key, limit=2)
        ring.remove(first)
        assert ring.owner(key) == second

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.preference("k") == []
        try:
            ring.owner("k")
        except LookupError:
            pass
        else:  # pragma: no cover
            raise AssertionError("owner() on an empty ring must raise")

    def test_membership_len(self):
        ring = HashRing([3, 1])
        assert len(ring) == 2 and 3 in ring and 0 not in ring
        ring.remove(3)
        assert len(ring) == 1 and 3 not in ring
        ring.remove(3)  # idempotent
        assert ring.nodes() == [1]

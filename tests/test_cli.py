"""CLI tests (repro.cli)."""

import pytest

from repro.cli import main


class TestLayerCommand:
    def test_basic_layer(self, capsys):
        code = main(["layer", "--depth", "32", "--size", "6", "--filters", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "baseline cycles" in out

    def test_structural_check_small(self, capsys):
        code = main([
            "layer", "--depth", "8", "--size", "5", "--filters", "2",
            "--kernel", "2", "--pad", "0", "--structural",
            "--units", "1", "--lanes", "2", "--filters-per-unit", "2",
            "--brick-size", "2",
        ])
        assert code == 0
        assert "structural check: ok" in capsys.readouterr().out

    def test_first_layer_not_accelerated(self, capsys):
        code = main([
            "layer", "--depth", "3", "--size", "8", "--filters", "4",
            "--first-layer",
        ])
        assert code == 0
        assert "speedup:         1.000x" in capsys.readouterr().out

    def test_invalid_geometry(self, capsys):
        code = main(["layer", "--size", "2", "--kernel", "5", "--pad", "0"])
        assert code == 2

    def test_free_empty_bricks_flag(self, capsys):
        code = main([
            "layer", "--depth", "16", "--size", "5", "--filters", "4",
            "--sparsity", "0.8", "--free-empty-bricks",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "zero     events: 0.0%" in out


class TestNetworkCommand:
    def test_network_table(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("CNVLUTIN_CACHE_DIR", str(tmp_path))
        code = main(["network", "alex", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "total speedup" in out

    def test_network_with_custom_node_geometry(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("CNVLUTIN_CACHE_DIR", str(tmp_path))
        code = main([
            "network", "alex", "--scale", "tiny",
            "--units", "8", "--brick-size", "8",
        ])
        assert code == 0
        assert "total speedup" in capsys.readouterr().out

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            main(["network", "resnet50"])

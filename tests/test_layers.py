"""Golden-model layer tests (repro.nn.layers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import layers as F


class TestConvOutputSize:
    def test_paper_formula(self):
        # O = (I - F)/S + 1 from Section III-A.
        assert F.conv_output_size(3, 2, 1, 0) == 2  # the Fig. 2 example
        assert F.conv_output_size(227, 11, 4, 0) == 55  # alex conv1
        assert F.conv_output_size(224, 3, 1, 1) == 224  # vgg same-pad

    def test_rejects_nonpositive_output(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestPadInput:
    def test_zero_pad_shape_and_values(self):
        a = np.ones((2, 3, 3))
        padded = F.pad_input(a, 1)
        assert padded.shape == (2, 5, 5)
        assert padded[:, 0, :].sum() == 0
        assert padded[:, 1:4, 1:4].sum() == a.sum()

    def test_pad_zero_is_identity(self):
        a = np.ones((2, 3, 3))
        assert F.pad_input(a, 0) is a

    def test_negative_pad_rejected(self):
        with pytest.raises(ValueError):
            F.pad_input(np.ones((1, 2, 2)), -1)


conv_cases = st.tuples(
    st.integers(1, 6),  # depth
    st.integers(3, 8),  # in_y
    st.integers(3, 8),  # in_x
    st.integers(1, 4),  # filters
    st.integers(1, 3),  # kernel
    st.integers(1, 2),  # stride
    st.integers(0, 1),  # pad
)


class TestConv2d:
    @settings(max_examples=30, deadline=None)
    @given(conv_cases, st.integers(0, 2**32 - 1))
    def test_matches_naive_reference(self, case, seed):
        depth, in_y, in_x, filters, kernel, stride, pad = case
        if in_y - kernel + 2 * pad < 0 or in_x - kernel + 2 * pad < 0:
            return
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(depth, in_y, in_x))
        w = rng.normal(size=(filters, depth, kernel, kernel))
        b = rng.normal(size=filters)
        fast = F.conv2d(a, w, b, stride=stride, pad=pad)
        slow = F.conv2d_naive(a, w, b, stride=stride, pad=pad)
        assert np.allclose(fast, slow)

    def test_grouped_matches_naive(self, rng):
        a = rng.normal(size=(6, 5, 5))
        w = rng.normal(size=(4, 3, 3, 3))
        fast = F.conv2d(a, w, stride=1, pad=1, groups=2)
        slow = F.conv2d_naive(a, w, stride=1, pad=1, groups=2)
        assert np.allclose(fast, slow)

    def test_identity_kernel(self):
        a = np.arange(9, dtype=float).reshape(1, 3, 3)
        w = np.ones((1, 1, 1, 1))
        assert np.allclose(F.conv2d(a, w), a)

    def test_figure2_example_geometry(self, rng):
        """The paper's Fig. 2: 3x3x2 input, one 2x2x2 filter -> 2x2x1."""
        a = rng.normal(size=(2, 3, 3))
        w = rng.normal(size=(1, 2, 2, 2))
        out = F.conv2d(a, w)
        assert out.shape == (1, 2, 2)
        # o(0,0,0) is the inner product over the window at origin.
        expected = (a[:, 0:2, 0:2] * w[0]).sum()
        assert out[0, 0, 0] == pytest.approx(expected)

    def test_depth_group_mismatch_rejected(self, rng):
        a = rng.normal(size=(6, 5, 5))
        w = rng.normal(size=(4, 2, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d(a, w, groups=1)

    def test_zero_neurons_contribute_nothing(self, rng):
        """The motivating identity: zeroing a zero-product operand changes
        nothing (Section II)."""
        a = rng.normal(size=(4, 5, 5))
        a[a < 0] = 0.0
        w = rng.normal(size=(2, 4, 3, 3))
        dense = F.conv2d(a, w)
        # Recompute with the zeros explicitly removed from the sum: same.
        assert np.allclose(dense, F.conv2d_naive(a, w))


class TestRelu:
    def test_positive_pass_negative_zero(self):
        a = np.array([-2.0, 0.0, 3.5])
        assert list(F.relu(a)) == [0.0, 0.0, 3.5]

    def test_threshold_relu_prunes_near_zero(self):
        a = np.array([-2.0, 0.05, 0.2, 1.0])
        out = F.threshold_relu(a, 0.1)
        assert list(out) == [0.0, 0.0, 0.2, 1.0]

    def test_threshold_zero_is_plain_relu(self, rng):
        a = rng.normal(size=100)
        assert np.array_equal(F.threshold_relu(a, 0.0), F.relu(a))


class TestPooling:
    def test_max_pool_basic(self):
        a = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = F.max_pool2d(a, kernel=2, stride=2)
        assert out.shape == (1, 2, 2)
        assert list(out.reshape(-1)) == [5, 7, 13, 15]

    def test_max_pool_overlapping(self):
        a = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = F.max_pool2d(a, kernel=3, stride=1)
        assert out.shape == (1, 2, 2)
        assert out[0, 0, 0] == 10

    def test_avg_pool(self):
        a = np.ones((2, 4, 4))
        out = F.avg_pool2d(a, kernel=2, stride=2)
        assert np.allclose(out, 1.0)

    def test_max_pool_preserves_all_zero_windows(self):
        a = np.zeros((1, 4, 4))
        assert F.max_pool2d(a, 2, 2).sum() == 0.0


def _pool_reference(a, kernel, stride, pad, reducer):
    """The pre-vectorization per-output-pixel pooling loop."""
    padded = F.pad_input(a, pad)
    out_y = F.conv_output_size(a.shape[1], kernel, stride, pad)
    out_x = F.conv_output_size(a.shape[2], kernel, stride, pad)
    out = np.empty((a.shape[0], out_y, out_x), dtype=a.dtype)
    for oy in range(out_y):
        y0 = oy * stride
        y1 = min(y0 + kernel, padded.shape[1])
        for ox in range(out_x):
            x0 = ox * stride
            x1 = min(x0 + kernel, padded.shape[2])
            out[:, oy, ox] = reducer(padded[:, y0:y1, x0:x1])
    return out


def _lrn_reference(a, local_size=5, alpha=1e-4, beta=0.75, k=1.0):
    """The pre-vectorization per-channel LRN loop."""
    depth = a.shape[0]
    half = local_size // 2
    squared = a**2
    sums = np.empty_like(a)
    for z in range(depth):
        lo = max(0, z - half)
        hi = min(depth, z + half + 1)
        sums[z] = squared[lo:hi].sum(axis=0)
    return a / (k + (alpha / local_size) * sums) ** beta


pool_cases = st.tuples(
    st.integers(1, 5),  # depth
    st.integers(3, 9),  # in_y
    st.integers(3, 9),  # in_x
    st.integers(1, 3),  # kernel
    st.integers(1, 3),  # stride
    st.integers(0, 1),  # pad
)


class TestPoolingVectorization:
    """The stride-tricks pooling path is bit-identical to the old loop."""

    @settings(max_examples=30, deadline=None)
    @given(pool_cases, st.integers(0, 2**32 - 1))
    def test_max_pool_matches_loop_reference(self, case, seed):
        depth, in_y, in_x, kernel, stride, pad = case
        if in_y - kernel + 2 * pad < 0 or in_x - kernel + 2 * pad < 0:
            return
        a = np.random.default_rng(seed).normal(size=(depth, in_y, in_x))
        expected = _pool_reference(
            a, kernel, stride, pad, lambda w: w.reshape(w.shape[0], -1).max(axis=1)
        )
        assert np.array_equal(F.max_pool2d(a, kernel, stride, pad), expected)

    @settings(max_examples=30, deadline=None)
    @given(pool_cases, st.integers(0, 2**32 - 1))
    def test_avg_pool_matches_loop_reference(self, case, seed):
        depth, in_y, in_x, kernel, stride, pad = case
        if in_y - kernel + 2 * pad < 0 or in_x - kernel + 2 * pad < 0:
            return
        a = np.random.default_rng(seed).normal(size=(depth, in_y, in_x))
        expected = _pool_reference(
            a, kernel, stride, pad, lambda w: w.reshape(w.shape[0], -1).mean(axis=1)
        )
        assert np.array_equal(F.avg_pool2d(a, kernel, stride, pad), expected)

    def test_batched_pool_matches_per_image(self, rng):
        a = rng.normal(size=(3, 4, 6, 6))
        batched = F.max_pool2d(a, 3, 2, pad=1)
        for b in range(3):
            assert np.array_equal(batched[b], F.max_pool2d(a[b], 3, 2, pad=1))

    def test_float32_pool_keeps_dtype(self, rng):
        a = rng.normal(size=(2, 4, 4)).astype(np.float32)
        assert F.max_pool2d(a, 2, 2).dtype == np.float32
        assert F.avg_pool2d(a, 2, 2).dtype == np.float32


class TestLrn:
    def test_shape_preserved(self, rng):
        a = np.abs(rng.normal(size=(8, 3, 3)))
        out = F.lrn(a)
        assert out.shape == a.shape

    def test_zeros_stay_zero(self):
        a = np.zeros((8, 3, 3))
        a[0] = 1.0
        out = F.lrn(a)
        assert np.all(out[1:] == 0.0)

    def test_normalizes_downward(self, rng):
        a = np.abs(rng.normal(size=(8, 3, 3))) * 10
        assert np.all(F.lrn(a) <= a + 1e-12)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 12), st.sampled_from([3, 5]), st.integers(0, 2**32 - 1))
    def test_matches_per_channel_loop_reference(self, depth, local_size, seed):
        a = np.random.default_rng(seed).normal(size=(depth, 4, 4))
        expected = _lrn_reference(a, local_size=local_size)
        assert np.array_equal(F.lrn(a, local_size=local_size), expected)

    def test_batched_matches_per_image(self, rng):
        a = rng.normal(size=(3, 8, 4, 4))
        batched = F.lrn(a, local_size=5)
        for b in range(3):
            assert np.array_equal(batched[b], F.lrn(a[b], local_size=5))


class TestFullyConnected:
    def test_matches_matmul(self, rng):
        a = rng.normal(size=(4, 2, 2))
        w = rng.normal(size=(5, 16))
        b = rng.normal(size=5)
        assert np.allclose(F.fully_connected(a, w, b), w @ a.reshape(-1) + b)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            F.fully_connected(rng.normal(size=(4, 2, 2)), rng.normal(size=(5, 10)))


class TestSoftmax:
    def test_sums_to_one(self, rng):
        p = F.softmax(rng.normal(size=10))
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_stable_for_large_logits(self):
        p = F.softmax(np.array([1000.0, 1000.0]))
        assert np.allclose(p, [0.5, 0.5])


class TestIm2col:
    def test_column_content(self):
        a = np.arange(18, dtype=float).reshape(2, 3, 3)
        cols = F.im2col(a, 2, 2, 1)
        assert cols.shape == (4, 8)
        window = a[:, 0:2, 0:2].reshape(-1)
        assert np.allclose(cols[0], window)

"""Headline-summary tests (repro.experiments.summary)."""

from repro.experiments.report import ExperimentResult
from repro.experiments.summary import headline_summary


def _results():
    return [
        ExperimentResult(
            experiment="fig1",
            title="t",
            rows=[{"network": "average", "zero_fraction": 0.45}],
        ),
        ExperimentResult(
            experiment="fig9",
            title="t",
            rows=[{"network": "average", "CNV": 1.35, "CNV+Pruning": 1.44}],
        ),
        ExperimentResult(
            experiment="fig11",
            title="t",
            rows=[{"component": "total", "delta": 0.0449}],
        ),
        ExperimentResult(
            experiment="fig13",
            title="t",
            rows=[{"network": "average", "EDP_gain": 1.5, "ED2P_gain": 2.0}],
        ),
    ]


class TestHeadlineSummary:
    def test_all_claims_present_and_ok(self):
        text = headline_summary(_results())
        assert "mean CNV speedup" in text
        assert "DEVIATES" not in text

    def test_deviation_flagged(self):
        results = _results()
        results[1].rows[0]["CNV"] = 3.0  # implausible speedup
        text = headline_summary(results)
        assert "DEVIATES" in text

    def test_empty_when_no_relevant_results(self):
        only_table1 = [ExperimentResult(experiment="table1", title="t", rows=[{}])]
        assert headline_summary(only_table1) == ""

    def test_partial_results_fine(self):
        text = headline_summary(_results()[:1])
        assert "zero-neuron" in text
        assert "EDP" not in text

"""Executable-documentation tests: examples run, exports are well-formed."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.report import ExperimentResult

REPO = Path(__file__).resolve().parents[1]


def _run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["CNVLUTIN_CACHE_DIR"] = str(REPO / ".cache")
    return subprocess.run(
        [sys.executable, str(REPO / "examples" / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "speedup" in result.stdout
        assert "match the structural simulators" in result.stdout

    def test_custom_network(self):
        result = _run_example("custom_network.py")
        assert result.returncode == 0, result.stderr
        assert "paper geometry" in result.stdout

    def test_alexnet_speedup_tiny(self):
        result = _run_example("alexnet_speedup.py", "--scale", "tiny")
        assert result.returncode == 0, result.stderr
        assert "total:" in result.stdout
        assert "EDP gain" in result.stdout

    def test_multinode_scaling(self):
        result = _run_example("multinode_scaling.py")
        assert result.returncode == 0, result.stderr
        assert "nodes_required" in result.stdout


class TestJsonExport:
    def test_to_json_roundtrips(self):
        result = ExperimentResult(
            experiment="fig9",
            title="Speedup",
            rows=[{"network": "alex", "CNV": 1.5, "paper": float("nan")}],
            notes="n",
        )
        payload = json.loads(result.to_json())
        assert payload["experiment"] == "fig9"
        assert payload["rows"][0]["CNV"] == 1.5
        assert payload["rows"][0]["paper"] is None  # NaN -> null

    def test_runner_json_flag(self, tmp_path, monkeypatch):
        from repro.experiments.runner import main

        monkeypatch.setenv("CNVLUTIN_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "results.json"
        code = main([
            "--scale", "tiny", "--networks", "alex",
            "--only", "table1,fig11", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert [p["experiment"] for p in payload] == ["table1", "fig11"]

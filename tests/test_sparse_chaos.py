"""Chaos test: sparse:gemm faults through the experiment pipeline.

A tiny pipeline run with ``CNVLUTIN_SPARSE=always`` and injected
``sparse:gemm`` faults must complete with correct results (every injected
fault falls back to the byte-identical dense path), and the v3 manifest +
``repro-obs report`` must surface both the sparse-kernel activity and the
injections.
"""

import json

import pytest

from repro import obs
from repro.experiments.config import PaperConfig
from repro.experiments.report import results_to_json_doc
from repro.experiments.runner import run_all, run_all_with_manifest
from repro.obs.report import metrics_report


def tiny_config(tmp_path, **overrides):
    kwargs = {
        "scale": "tiny",
        "networks": ["alex"],
        "num_images": 1,
        "smallcnn": False,
        "use_cache": False,
    }
    kwargs.update(overrides)
    return PaperConfig(cache_dir=tmp_path, **kwargs)


class TestSparseChaosPipeline:
    @pytest.fixture()
    def chaos_env(self, monkeypatch):
        # A spec distinct from the other tests': the process-wide injector
        # is rebuilt (trial counts reset) whenever CNVLUTIN_FAULTS changes.
        monkeypatch.setenv("CNVLUTIN_SPARSE", "always")
        monkeypatch.setenv("CNVLUTIN_FAULTS", "sparse:gemm=raise@1,4")

    def test_faulted_run_matches_clean_run(self, tmp_path, monkeypatch):
        """Injected sparse:gemm faults never change a result byte."""
        monkeypatch.setenv("CNVLUTIN_SPARSE", "always")
        monkeypatch.delenv("CNVLUTIN_FAULTS", raising=False)
        clean = run_all(
            tiny_config(tmp_path / "clean"), only=["fig1"], verbose=False
        )
        monkeypatch.setenv("CNVLUTIN_FAULTS", "sparse:gemm=raise@0,3,7")
        faulted = run_all(
            tiny_config(tmp_path / "faulted"), only=["fig1"], verbose=False
        )
        assert results_to_json_doc(faulted) == results_to_json_doc(clean)

    def test_manifest_and_report_surface_sparse_counters(
        self, tmp_path, chaos_env
    ):
        obs.reset_metrics()
        _, manifest = run_all_with_manifest(
            tiny_config(tmp_path), only=["fig1"], verbose=False
        )
        payload = manifest.to_dict()
        assert json.loads(json.dumps(payload))["version"] == 4

        counters = payload["metrics"]["counters"]
        assert counters["engine.sparse.gemms.sparse"] >= 1
        assert "engine.sparse.macs.total" in counters
        assert counters["engine.sparse.macs.skipped"] >= 1
        assert counters["engine.sparse.fallbacks"] >= 1
        assert counters["faults.injected"] >= 1
        assert counters["faults.injected.sparse:gemm"] >= 1
        # Every fallback corresponds to an injection that fired here.
        assert (
            counters["engine.sparse.fallbacks"]
            <= counters["faults.injected.sparse:gemm"]
        )

        report = metrics_report(payload)
        assert "-- sparse kernels --" in report
        assert "fallbacks:" in report
        assert "sparse:gemm:" in report

    def test_clean_sparse_run_reports_zero_fallbacks(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CNVLUTIN_SPARSE", "always")
        monkeypatch.delenv("CNVLUTIN_FAULTS", raising=False)
        obs.reset_metrics()
        _, manifest = run_all_with_manifest(
            tiny_config(tmp_path), only=["fig1"], verbose=False
        )
        counters = manifest.to_dict()["metrics"]["counters"]
        assert counters["engine.sparse.gemms.sparse"] >= 1
        assert counters.get("engine.sparse.fallbacks", 0) == 0
        report = metrics_report(manifest.to_dict())
        assert "-- sparse kernels --" in report
        assert "fallbacks: 0" in report

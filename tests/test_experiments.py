"""Experiment-harness tests (repro.experiments) at smoke scale."""

import numpy as np
import pytest

from repro.experiments import (
    fig1_zero_fraction,
    fig9_speedup,
    fig10_breakdown,
    fig11_area,
    fig12_power,
    fig13_edp,
    table1_networks,
    table2_thresholds,
)
from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext, thresholds_key
from repro.experiments.report import ExperimentResult, format_table, geometric_mean
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.experiments.thresholds import (
    lossless_thresholds,
    quantile_thresholds,
    sweep_deltas,
    threshold_groups,
)


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    config = PaperConfig(
        scale="tiny",
        networks=["alex", "nin"],
        cache_dir=tmp_path_factory.mktemp("cache"),
        num_images=2,
    )
    return ExperimentContext(config)


class TestConfig:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            PaperConfig(scale="huge")

    def test_input_sizes(self):
        cfg = PaperConfig(scale="reduced")
        assert cfg.input_size("alex") == 115
        assert cfg.input_size("vgg19") == 112

    def test_cache_roundtrip(self, tmp_path):
        cfg = PaperConfig(scale="tiny", cache_dir=tmp_path)
        cfg.cache_store("calib", "x", {"a": 1.5})
        assert cfg.cache_load("calib", "x") == {"a": 1.5}
        assert cfg.cache_load("calib", "y") is None

    def test_cache_disabled(self, tmp_path):
        cfg = PaperConfig(scale="tiny", cache_dir=tmp_path, use_cache=False)
        cfg.cache_store("calib", "x", {"a": 1})
        assert cfg.cache_load("calib", "x") is None


class TestContext:
    def test_thresholds_key_normalizes(self):
        assert thresholds_key(None) == ()
        assert thresholds_key({"b": 1.0, "a": 2.0}) == (("a", 2.0), ("b", 1.0))
        assert thresholds_key({"a": 0.0}) == ()  # zero thresholds drop out

    def test_calibration_cached_on_disk(self, ctx):
        ctx.network_ctx("alex")
        path = ctx.artifacts.path("calib", network="alex")
        assert path.exists()

    def test_speedup_above_one(self, ctx):
        assert ctx.speedup("alex") > 1.0

    def test_baseline_timing_memoized(self, ctx):
        assert ctx.baseline_timing("alex") is ctx.baseline_timing("alex")

    def test_prediction_stability_of_unpruned_is_one(self, ctx):
        assert ctx.prediction_stability("alex", None) == 1.0


class TestThresholdDerivation:
    def test_quantile_thresholds_are_powers_of_two(self, ctx):
        raw = quantile_thresholds(ctx, "alex", 0.3)
        for value in raw.values():
            assert value == 0 or (value & (value - 1)) == 0

    def test_larger_delta_never_lowers_thresholds(self, ctx):
        small = quantile_thresholds(ctx, "alex", 0.1)
        large = quantile_thresholds(ctx, "alex", 0.5)
        assert all(large[k] >= small[k] for k in small)

    def test_sweep_speedup_monotone_with_delta(self, ctx):
        points = sweep_deltas(ctx, "alex", deltas=(0.1, 0.4))
        assert points[-1].speedup >= points[0].speedup - 1e-9

    def test_lossless_keeps_predictions(self, ctx):
        point = lossless_thresholds(ctx, "alex", deltas=(0.05, 0.2))
        assert point.stability == 1.0

    def test_google_groups_by_module(self, tmp_path):
        config = PaperConfig(
            scale="tiny", networks=["google"], cache_dir=tmp_path, num_images=1
        )
        gctx = ExperimentContext(config)
        groups = threshold_groups(gctx, "google")
        assert groups["inception_3a/1x1"] == "inception_3a"
        assert groups["inception_3a/5x5"] == "inception_3a"
        assert groups["conv1/7x7_s2"] == "conv1/7x7_s2"
        # 11 groups: conv1, conv2 reduce+3x3 (2), 9 modules, 2 aux convs.
        assert len(set(groups.values())) == 14


class TestExperimentModules:
    def test_fig1(self, ctx):
        result = fig1_zero_fraction.run(ctx)
        networks = [r["network"] for r in result.rows]
        assert networks == ["alex", "nin", "average"]
        for row in result.rows[:-1]:
            assert 0.2 < row["zero_fraction"] < 0.7

    def test_table1(self, ctx):
        result = table1_networks.run(ctx)
        assert all(r["conv_layers"] == r["paper"] for r in result.rows)

    def test_fig9(self, ctx):
        result = fig9_speedup.run(ctx, with_pruning=False)
        for row in result.rows:
            assert row["CNV"] > 1.0

    def test_fig10_accounting_identity(self, ctx):
        result = fig10_breakdown.run(ctx)
        by = {(r["network"], r["arch"]): r for r in result.rows}
        for name in ctx.config.networks:
            assert by[(name, "baseline")]["total"] == pytest.approx(1.0)
            assert by[(name, "cnv")]["total"] == pytest.approx(
                1.0 / ctx.speedup(name), rel=1e-6
            )
            # CNV keeps baseline's other/conv1 event counts.
            assert by[(name, "cnv")]["conv1"] == pytest.approx(
                by[(name, "baseline")]["conv1"]
            )

    def test_fig11(self, ctx):
        result = fig11_area.run(ctx)
        total = [r for r in result.rows if r["component"] == "total"][0]
        assert total["delta"] == pytest.approx(0.0449, abs=0.001)

    def test_fig12(self, ctx):
        result = fig12_power.run(ctx)
        total = [r for r in result.rows if r["component"] == "total"][0]
        assert total["delta"] < 0.0  # CNV saves energy
        assert 0.5 < result.extra["energy_ratio"] < 1.0

    def test_fig13(self, ctx):
        result = fig13_edp.run(ctx)
        avg = result.rows[-1]
        assert avg["EDP_gain"] > 1.0
        assert avg["ED2P_gain"] > avg["EDP_gain"]

    def test_table2(self, ctx):
        result = table2_thresholds.run(ctx)
        for row in result.rows:
            assert row["speedup"] >= ctx.speedup(row["network"]) - 1e-9


class TestReport:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 30, "b": 0.125}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "30" in lines[3]

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_to_table_includes_notes(self):
        result = ExperimentResult(
            experiment="figX", title="T", rows=[{"a": 1}], notes="hello"
        )
        assert "hello" in result.to_table()


class TestRunner:
    def test_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "fig1", "table1", "fig9", "fig9_backends", "fig10", "fig11",
            "fig12", "fig13", "table2", "fig14",
        }

    def test_unknown_experiment_rejected(self, tmp_path):
        config = PaperConfig(scale="tiny", networks=["alex"], cache_dir=tmp_path)
        with pytest.raises(KeyError):
            run_all(config, only=["fig99"], verbose=False)

    def test_run_selected(self, tmp_path):
        config = PaperConfig(
            scale="tiny", networks=["alex"], cache_dir=tmp_path, num_images=1
        )
        results = run_all(config, only=["table1", "fig11"], verbose=False)
        assert [r.experiment for r in results] == ["table1", "fig11"]

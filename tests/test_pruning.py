"""Dynamic-pruning machinery tests (repro.core.pruning)."""

import pytest

from repro.core.pruning import (
    PruningPoint,
    ThresholdSearcher,
    pareto_frontier,
    power_of_two_thresholds,
    raw_to_real,
    real_to_raw,
)


class TestLadder:
    def test_power_of_two_ladder(self):
        assert power_of_two_thresholds(4) == (0, 1, 2, 4, 8, 16)

    def test_raw_real_roundtrip(self):
        for raw in (0, 1, 8, 256):
            assert real_to_raw(raw_to_real(raw)) == raw

    def test_raw_to_real_uses_format_resolution(self):
        assert raw_to_real(256) == pytest.approx(1.0)  # Q8.8


def synthetic_evaluate(sensitivities, capacity):
    """A toy pruning landscape: speedup grows with total raw threshold,
    accuracy falls once the sensitivity-weighted sum passes capacity."""

    def evaluate(raw_thresholds):
        load = sum(
            sensitivities[name] * raw for name, raw in raw_thresholds.items()
        )
        speedup = 1.0 + 0.01 * sum(raw_thresholds.values())
        accuracy = 0.9 if load <= capacity else 0.9 - 0.002 * (load - capacity)
        return accuracy, speedup

    return evaluate


class TestSearcher:
    def test_lossless_search_respects_capacity(self):
        sens = {"a": 1.0, "b": 4.0}
        searcher = ThresholdSearcher(
            evaluate=synthetic_evaluate(sens, capacity=20.0),
            layer_names=["a", "b"],
            candidates=(0, 1, 2, 4, 8, 16),
        )
        best = searcher.search(tolerance=0.0)
        load = sum(sens[k] * v for k, v in best.raw_thresholds.items())
        assert load <= 20.0
        assert best.speedup > 1.0

    def test_prefers_insensitive_layer(self):
        sens = {"cheap": 0.1, "expensive": 10.0}
        searcher = ThresholdSearcher(
            evaluate=synthetic_evaluate(sens, capacity=5.0),
            layer_names=["cheap", "expensive"],
            candidates=(0, 1, 2, 4, 8, 16),
        )
        best = searcher.search(tolerance=0.0)
        assert best.raw_thresholds["cheap"] >= best.raw_thresholds["expensive"]

    def test_tolerance_allows_deeper_pruning(self):
        sens = {"a": 1.0}
        make = lambda: ThresholdSearcher(
            evaluate=synthetic_evaluate(sens, capacity=4.0),
            layer_names=["a"],
            candidates=(0, 1, 2, 4, 8, 16, 32),
        )
        lossless = make().search(tolerance=0.0)
        lossy = make().search(tolerance=0.05)
        assert lossy.speedup > lossless.speedup
        assert lossy.accuracy < 0.9

    def test_history_recorded(self):
        searcher = ThresholdSearcher(
            evaluate=synthetic_evaluate({"a": 1.0}, 100.0),
            layer_names=["a"],
            candidates=(0, 1, 2),
        )
        searcher.search()
        assert len(searcher.history) >= 2

    def test_zero_tolerance_never_drops_accuracy(self):
        searcher = ThresholdSearcher(
            evaluate=synthetic_evaluate({"a": 2.0, "b": 3.0}, 10.0),
            layer_names=["a", "b"],
            candidates=(0, 2, 8, 32),
        )
        best = searcher.search(tolerance=0.0)
        assert best.accuracy == pytest.approx(0.9)


class TestMemoization:
    def counting_searcher(self, **kwargs):
        calls = []
        inner = synthetic_evaluate({"a": 1.0, "b": 4.0}, 20.0)

        def evaluate(raw_thresholds):
            calls.append(dict(raw_thresholds))
            return inner(raw_thresholds)

        searcher = ThresholdSearcher(
            evaluate=evaluate,
            layer_names=["a", "b"],
            candidates=(0, 1, 2, 4),
            **kwargs,
        )
        return searcher, calls

    def test_repeated_configs_evaluated_once(self):
        searcher, calls = self.counting_searcher()
        searcher.search(tolerance=0.0)
        searcher.search(tolerance=0.0)
        keys = [searcher._memo_key(c) for c in calls]
        assert len(keys) == len(set(keys))
        assert searcher.cache_hits > 0

    def test_sweep_reuses_overlapping_points(self):
        searcher, calls = self.counting_searcher()
        searcher.sweep([0.0, 0.01, 0.10])
        # Every tolerance re-visits the all-zero baseline, but only the
        # first visit reaches the evaluate callback.
        assert sum(1 for c in calls if not any(c.values())) == 1
        keys = [searcher._memo_key(c) for c in calls]
        assert len(keys) == len(set(keys))

    def test_history_records_cache_hits(self):
        searcher, calls = self.counting_searcher()
        searcher.search(tolerance=0.0)
        evaluations = len(calls)
        visits = len(searcher.history)
        searcher.search(tolerance=0.0)
        assert len(calls) == evaluations  # all replayed from the memo
        assert len(searcher.history) > visits  # but history still grows

    def test_key_ignores_zero_thresholds(self):
        assert ThresholdSearcher._memo_key({"a": 0, "b": 2}) == (
            ThresholdSearcher._memo_key({"b": 2})
        )

    def test_identical_searches_identical_results(self):
        first, _ = self.counting_searcher()
        second, _ = self.counting_searcher()
        a = first.sweep([0.0, 0.05])
        b = second.sweep([0.0, 0.05])
        assert [p.raw_thresholds for p in a] == [p.raw_thresholds for p in b]
        assert [p.speedup for p in a] == [p.speedup for p in b]


class TestPareto:
    def test_dominated_points_removed(self):
        points = [
            PruningPoint({}, accuracy=0.9, speedup=1.0),
            PruningPoint({}, accuracy=0.9, speedup=1.2),  # dominates previous
            PruningPoint({}, accuracy=0.8, speedup=1.1),  # dominated
            PruningPoint({}, accuracy=0.7, speedup=1.5),
        ]
        frontier = pareto_frontier(points)
        speedups = [p.speedup for p in frontier]
        assert speedups == [1.2, 1.5]

    def test_frontier_sorted_ascending_speedup(self):
        points = [
            PruningPoint({}, accuracy=0.5, speedup=2.0),
            PruningPoint({}, accuracy=0.9, speedup=1.0),
        ]
        frontier = pareto_frontier(points)
        assert [p.speedup for p in frontier] == [1.0, 2.0]

"""Edge-case and invariant tests across the simulation stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.accelerator import DaDianNaoNode
from repro.baseline.timing import baseline_conv_timing
from repro.baseline.workload import ConvWork
from repro.core.accelerator import CnvNode
from repro.core.timing import cnv_conv_timing, cnv_network_timing
from repro.hw.config import small_config
from repro.nn.layers import conv2d

from conftest import make_conv_work


def _run_both(work, weights, cfg):
    golden = conv2d(
        work.activations,
        weights,
        stride=work.geometry["stride"],
        pad=work.geometry["pad"],
        groups=work.geometry["groups"],
    )
    base = DaDianNaoNode(cfg).run_conv_layer(work, weights)
    cnv = CnvNode(cfg).run_conv_layer(work, weights)
    assert np.allclose(base.output, golden)
    assert np.allclose(cnv.output, golden)
    assert base.cycles == baseline_conv_timing(work, cfg).cycles
    assert cnv.cycles == cnv_conv_timing(work, cfg).cycles
    return base, cnv


class TestGeometryEdgeCases:
    def test_1x1_convolution(self, rng):
        """google's reduce layers: window = one brick column."""
        work, weights = make_conv_work(
            rng, in_depth=12, in_y=4, in_x=4, num_filters=3, kernel=1, pad=0
        )
        _run_both(work, weights, small_config())

    def test_kernel_equals_input(self, rng):
        """An FC-like convolution: a single window covering everything."""
        work, weights = make_conv_work(
            rng, in_depth=8, in_y=3, in_x=3, num_filters=4, kernel=3, pad=0
        )
        base, cnv = _run_both(work, weights, small_config())
        assert work.geometry["out_y"] == 1

    def test_stride_larger_than_kernel(self, rng):
        """Non-overlapping windows skip input entirely between them."""
        work, weights = make_conv_work(
            rng, in_depth=4, in_y=7, in_x=7, num_filters=2, kernel=2, stride=3, pad=0
        )
        _run_both(work, weights, small_config())

    def test_single_filter(self, rng):
        work, weights = make_conv_work(
            rng, in_depth=8, in_y=5, in_x=5, num_filters=1, kernel=3, pad=1
        )
        _run_both(work, weights, small_config())

    def test_fully_dense_and_fully_sparse(self, rng):
        for zero_fraction in (0.0, 0.95):
            work, weights = make_conv_work(rng, zero_fraction=zero_fraction)
            _run_both(work, weights, small_config())

    def test_depth_one(self, rng):
        work, weights = make_conv_work(
            rng, in_depth=1, in_y=5, in_x=5, num_filters=2, kernel=2, pad=0,
            zero_fraction=0.3,
        )
        _run_both(work, weights, small_config())


class TestThresholdMonotonicity:
    @settings(max_examples=8, deadline=None)
    @given(st.floats(0.01, 0.3), st.integers(0, 2**32 - 1))
    def test_raising_thresholds_never_raises_cnv_cycles(self, threshold, seed):
        """Through the full engine: more pruning -> never more cycles."""
        from repro.nn.datasets import natural_images
        from repro.nn.inference import init_weights, run_forward
        from repro.nn.models import build_network

        rng = np.random.default_rng(seed)
        net = build_network("alex", input_size=67)
        store = init_weights(net, rng)
        image = natural_images(net.input_shape, 1, seed=seed % 1000)[0]
        cfg = small_config()
        low = run_forward(net, store, image, thresholds={"conv2": threshold})
        high = run_forward(net, store, image, thresholds={"conv2": threshold * 2})
        cycles_low = cnv_network_timing(net, low.conv_inputs, cfg).total_cycles
        cycles_high = cnv_network_timing(net, high.conv_inputs, cfg).total_cycles
        assert cycles_high <= cycles_low


class TestCalibrationOnBranchingTopology:
    def test_google_calibrates(self):
        from repro.nn.calibration import calibrate_network, measure_zero_fractions
        from repro.nn.datasets import natural_images
        from repro.nn.inference import init_weights
        from repro.nn.models import build_network

        net = build_network("google", input_size=64)
        store = init_weights(net, np.random.default_rng(11))
        images = natural_images(net.input_shape, 2, seed=12)
        calibrate_network(net, store, images[0])
        report = measure_zero_fractions(net, store, images)
        assert 0.3 < report.mac_weighted_mean < 0.65


class TestFig14Smoke:
    def test_runs_without_smallcnn(self, tmp_path):
        from repro.experiments import fig14_pruning
        from repro.experiments.config import PaperConfig
        from repro.experiments.context import ExperimentContext

        config = PaperConfig(
            scale="tiny", networks=["alex"], cache_dir=tmp_path, num_images=1
        )
        ctx = ExperimentContext(config)
        result = fig14_pruning.run(ctx, deltas=(0.1, 0.3), include_smallcnn=False)
        assert {r["network"] for r in result.rows} == {"alex"}
        speeds = [r["speedup"] for r in result.rows]
        assert speeds == sorted(speeds)

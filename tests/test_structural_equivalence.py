"""Cross-validation: structural simulators vs golden model vs analytic timing.

This is the load-bearing test file of the reproduction: it proves that

1. both structural simulators compute the exact convolution outputs
   (functional correctness, "on-the-fly validation" as in Section V-A);
2. the closed-form timing models predict the structural simulators'
   cycle counts exactly; and
3. the Fig. 10 lane-event accounting agrees between the two levels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.accelerator import DaDianNaoNode
from repro.baseline.timing import baseline_conv_timing
from repro.baseline.workload import ConvWork
from repro.core.accelerator import CnvNode
from repro.core.timing import cnv_conv_timing
from repro.hw.config import ArchConfig, small_config
from repro.nn.activations import sparse_activations
from repro.nn.layers import conv2d

layer_cases = st.tuples(
    st.sampled_from([4, 6, 8, 12]),  # depth
    st.integers(4, 7),  # in_y
    st.integers(4, 7),  # in_x
    st.sampled_from([2, 3, 5]),  # filters
    st.integers(1, 3),  # kernel
    st.integers(1, 2),  # stride
    st.integers(0, 1),  # pad
    st.floats(0.0, 0.9),  # zero fraction
)


def _build(case, seed, groups=1):
    depth, in_y, in_x, filters, kernel, stride, pad, zero_frac = case
    rng = np.random.default_rng(seed)
    out_y = (in_y - kernel + 2 * pad) // stride + 1
    out_x = (in_x - kernel + 2 * pad) // stride + 1
    if out_y <= 0 or out_x <= 0:
        return None
    act = sparse_activations((depth, in_y, in_x), zero_frac, rng, correlation=0.8)
    weights = rng.normal(size=(filters, depth // groups, kernel, kernel))
    geometry = {
        "in_depth": depth, "in_y": in_y, "in_x": in_x, "num_filters": filters,
        "kernel": kernel, "stride": stride, "pad": pad, "groups": groups,
        "out_y": out_y, "out_x": out_x,
    }
    return ConvWork("t", geometry, act), weights


class TestBaselineStructural:
    @settings(max_examples=12, deadline=None)
    @given(layer_cases, st.integers(0, 2**32 - 1))
    def test_functional_and_cycles_match(self, case, seed):
        built = _build(case, seed)
        if built is None:
            return
        work, weights = built
        cfg = small_config()
        result = DaDianNaoNode(cfg).run_conv_layer(work, weights)
        golden = conv2d(
            work.activations, weights,
            stride=work.geometry["stride"], pad=work.geometry["pad"],
        )
        assert np.allclose(result.output, golden)
        assert result.cycles == baseline_conv_timing(work, cfg).cycles

    def test_grouped_layer(self, rng):
        built = _build((8, 6, 6, 4, 3, 1, 1, 0.4), 5, groups=2)
        work, weights = built
        cfg = small_config()
        result = DaDianNaoNode(cfg).run_conv_layer(work, weights)
        golden = conv2d(work.activations, weights, stride=1, pad=1, groups=2)
        assert np.allclose(result.output, golden)
        assert result.cycles == baseline_conv_timing(work, cfg).cycles

    def test_row_packing_structural_matches_analytic(self, rng):
        built = _build((6, 6, 6, 3, 3, 1, 0, 0.4), 41)  # depth 6: packing matters
        work, weights = built
        cfg = small_config().with_(fetch_packing="row")
        result = DaDianNaoNode(cfg).run_conv_layer(work, weights)
        golden = conv2d(work.activations, weights, stride=1, pad=0)
        assert np.allclose(result.output, golden)
        assert result.cycles == baseline_conv_timing(work, cfg).cycles

    def test_multi_pass_filters(self, rng):
        built = _build((4, 5, 5, 5, 2, 1, 0, 0.3), 9)  # 5 filters > 4/pass
        work, weights = built
        cfg = small_config()
        result = DaDianNaoNode(cfg).run_conv_layer(work, weights)
        golden = conv2d(work.activations, weights, stride=1, pad=0)
        assert np.allclose(result.output, golden)
        assert result.cycles == baseline_conv_timing(work, cfg).cycles


class TestCnvStructural:
    @settings(max_examples=12, deadline=None)
    @given(layer_cases, st.integers(0, 2**32 - 1))
    def test_functional_cycles_and_events_match(self, case, seed):
        built = _build(case, seed)
        if built is None:
            return
        work, weights = built
        cfg = small_config()
        node = CnvNode(cfg)
        result = node.run_conv_layer(work, weights)
        golden = conv2d(
            work.activations, weights,
            stride=work.geometry["stride"], pad=work.geometry["pad"],
        )
        assert np.allclose(result.output, golden)
        analytic = cnv_conv_timing(work, cfg)
        assert result.cycles == analytic.cycles
        for category, expected in analytic.lane_events.items():
            got = result.counters[f"lane_{category}"]
            assert got == pytest.approx(expected), category

    def test_first_layer_encoded_flag_structural(self, rng):
        """With the per-layer software flag enabled, even an image-fed
        layer runs through the encoded path — and still matches both the
        golden model and the analytic cycles."""
        built = _build((4, 5, 5, 2, 2, 1, 0, 0.5), 53)
        work, weights = built
        work = ConvWork(
            name=work.name, geometry=work.geometry,
            activations=work.activations, is_first=True,
        )
        cfg = small_config().with_(first_layer_encoded=True)
        result = CnvNode(cfg).run_conv_layer(work, weights)
        golden = conv2d(work.activations, weights, stride=1, pad=0)
        assert np.allclose(result.output, golden)
        assert result.cycles == cnv_conv_timing(work, cfg).cycles

    def test_free_skip_ablation_matches(self, rng):
        built = _build((8, 6, 6, 4, 2, 1, 0, 0.7), 3)
        work, weights = built
        cfg = small_config().with_(empty_brick_cycles=0)
        result = CnvNode(cfg).run_conv_layer(work, weights)
        golden = conv2d(work.activations, weights, stride=1, pad=0)
        assert np.allclose(result.output, golden)
        assert result.cycles == cnv_conv_timing(work, cfg).cycles

    def test_grouped_layer(self, rng):
        built = _build((8, 6, 6, 4, 3, 1, 1, 0.5), 11, groups=2)
        work, weights = built
        cfg = small_config()
        result = CnvNode(cfg).run_conv_layer(work, weights)
        golden = conv2d(work.activations, weights, stride=1, pad=1, groups=2)
        assert np.allclose(result.output, golden)
        assert result.cycles == cnv_conv_timing(work, cfg).cycles

    def test_mults_and_sb_reads_match_analytic(self, rng):
        built = _build((8, 5, 5, 4, 2, 1, 0, 0.5), 17)
        work, weights = built
        cfg = small_config()
        result = CnvNode(cfg).run_conv_layer(work, weights)
        analytic = cnv_conv_timing(work, cfg)
        assert result.counters["mults"] == pytest.approx(analytic.counters["mults"])
        assert result.counters["sb_reads"] == pytest.approx(
            analytic.counters["sb_reads"]
        )

    def test_cnv_never_multiplies_zeros(self, rng):
        """The defining property: every multiplication CNV performs has a
        non-zero neuron operand."""
        built = _build((8, 5, 5, 4, 3, 1, 1, 0.6), 23)
        work, weights = built
        cfg = small_config()
        result = CnvNode(cfg).run_conv_layer(work, weights)
        nonzero_lane_cycles = result.counters["lane_nonzero"] / cfg.num_units
        assert result.counters["mults"] == (
            nonzero_lane_cycles * cfg.num_units * cfg.filters_per_unit
        )


#: Generalized geometries: grouped convolutions, shallow depths below the
#: brick size (partial fetch blocks exercise the brick-interleaved lane
#: assignment), and the full stride/pad range the paper networks use.
general_cases = st.tuples(
    st.sampled_from([1, 2, 3]),  # groups
    st.sampled_from([1, 2, 3, 4, 6]),  # depth per group (1-3: < brick size)
    st.integers(4, 7),  # in_y
    st.integers(4, 7),  # in_x
    st.sampled_from([1, 2, 3]),  # filters per group
    st.integers(1, 3),  # kernel
    st.integers(1, 3),  # stride
    st.integers(0, 2),  # pad
    st.floats(0.0, 0.9),  # zero fraction
)


class TestGeneralizedGeometryDifferential:
    """Property-based differential test: for randomized conv geometries the
    analytic ``cnv_conv_timing`` / ``baseline_conv_timing`` cycle counts
    must equal the cycle-by-cycle structural simulators, and both
    simulators must compute the exact convolution."""

    @settings(max_examples=14, deadline=None)
    @given(general_cases, st.integers(0, 2**32 - 1))
    def test_analytic_equals_structural(self, case, seed):
        groups, dpg, in_y, in_x, fpg, kernel, stride, pad, zero_frac = case
        depth, filters = groups * dpg, groups * fpg
        built = _build(
            (depth, in_y, in_x, filters, kernel, stride, pad, zero_frac),
            seed,
            groups=groups,
        )
        if built is None:
            return
        work, weights = built
        cfg = small_config()
        golden = conv2d(
            work.activations, weights, stride=stride, pad=pad, groups=groups
        )

        base = DaDianNaoNode(cfg).run_conv_layer(work, weights)
        assert np.allclose(base.output, golden)
        assert base.cycles == baseline_conv_timing(work, cfg).cycles

        cnv = CnvNode(cfg).run_conv_layer(work, weights)
        assert np.allclose(cnv.output, golden)
        analytic = cnv_conv_timing(work, cfg)
        assert cnv.cycles == analytic.cycles
        for category, expected in analytic.lane_events.items():
            assert cnv.counters[f"lane_{category}"] == pytest.approx(
                expected
            ), category

    @settings(max_examples=8, deadline=None)
    @given(general_cases, st.integers(0, 2**32 - 1))
    def test_brick_interleaved_lane_assignment_variants(self, case, seed):
        """The same differential property on a lane geometry whose brick
        size differs from the lane count (bricks interleave across lanes
        differently than in the paper's brick_size == neuron_lanes node)."""
        groups, dpg, in_y, in_x, fpg, kernel, stride, pad, zero_frac = case
        depth, filters = groups * dpg, groups * fpg
        built = _build(
            (depth, in_y, in_x, filters, kernel, stride, pad, zero_frac),
            seed,
            groups=groups,
        )
        if built is None:
            return
        work, weights = built
        cfg = ArchConfig(
            num_units=2, neuron_lanes=4, filters_per_unit=2, brick_size=2,
            nbin_entries=8,
        )
        golden = conv2d(
            work.activations, weights, stride=stride, pad=pad, groups=groups
        )
        base = DaDianNaoNode(cfg).run_conv_layer(work, weights)
        cnv = CnvNode(cfg).run_conv_layer(work, weights)
        assert np.allclose(base.output, golden)
        assert np.allclose(cnv.output, golden)
        assert base.cycles == baseline_conv_timing(work, cfg).cycles
        assert cnv.cycles == cnv_conv_timing(work, cfg).cycles


class TestArchitectureVariants:
    @pytest.mark.parametrize(
        "units,lanes,filters,brick",
        [(1, 2, 2, 2), (2, 2, 4, 2), (4, 4, 2, 4), (1, 8, 1, 8)],
    )
    def test_other_geometries(self, rng, units, lanes, filters, brick):
        cfg = ArchConfig(
            num_units=units,
            neuron_lanes=lanes,
            filters_per_unit=filters,
            brick_size=brick,
        )
        built = _build((8, 5, 5, 3, 2, 1, 0, 0.5), 31)
        work, weights = built
        base = DaDianNaoNode(cfg).run_conv_layer(work, weights)
        cnv = CnvNode(cfg).run_conv_layer(work, weights)
        golden = conv2d(work.activations, weights, stride=1, pad=0)
        assert np.allclose(base.output, golden)
        assert np.allclose(cnv.output, golden)
        assert base.cycles == baseline_conv_timing(work, cfg).cycles
        assert cnv.cycles == cnv_conv_timing(work, cfg).cycles

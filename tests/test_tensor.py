"""Fixed-point arithmetic tests (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn.tensor import (
    DEFAULT_FORMAT,
    FixedPointFormat,
    dequantize,
    fixed_point_mac,
    quantize,
    rescale_accumulator,
    saturate,
)


class TestFixedPointFormat:
    def test_default_is_16_bit(self):
        assert DEFAULT_FORMAT.total_bits == 16
        assert DEFAULT_FORMAT.scale == 256

    def test_ranges(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=8)
        assert fmt.raw_min == -32768
        assert fmt.raw_max == 32767
        assert fmt.min_value == -128.0
        assert fmt.resolution == pytest.approx(1 / 256)

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=1, frac_bits=0)
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=8, frac_bits=8)

    def test_frac_bits_zero_allowed(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=0)
        assert fmt.scale == 1
        assert fmt.resolution == 1.0


class TestQuantize:
    def test_roundtrip_on_representable_values(self):
        values = np.array([0.0, 1.0, -1.0, 0.5, -0.5, 100.0])
        assert np.allclose(dequantize(quantize(values)), values)

    def test_rounding_to_nearest(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=0)
        assert quantize(np.array([0.4]), fmt)[0] == 0
        assert quantize(np.array([0.6]), fmt)[0] == 1
        assert quantize(np.array([-0.6]), fmt)[0] == -1

    def test_ties_round_away_from_zero(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=0)
        assert quantize(np.array([0.5]), fmt)[0] == 1
        assert quantize(np.array([-0.5]), fmt)[0] == -1

    def test_saturation(self):
        assert quantize(np.array([1e9]))[0] == DEFAULT_FORMAT.raw_max
        assert quantize(np.array([-1e9]))[0] == DEFAULT_FORMAT.raw_min

    def test_zero_stays_exactly_zero(self):
        # Critical for CNV: quantization must not create or destroy zeros
        # at the zero point itself.
        assert quantize(np.array([0.0]))[0] == 0

    @given(st.floats(min_value=-100, max_value=100))
    def test_quantization_error_bounded(self, value):
        err = abs(dequantize(quantize(np.array([value])))[0] - value)
        assert err <= DEFAULT_FORMAT.resolution / 2 + 1e-12


class TestSaturate:
    def test_clamps_to_range(self):
        raw = np.array([100000, -100000, 5])
        out = saturate(raw)
        assert list(out) == [32767, -32768, 5]


class TestMac:
    def test_product_widens(self):
        n = quantize(np.array([2.0]))
        s = quantize(np.array([3.0]))
        acc = fixed_point_mac(n, s)
        assert acc.dtype == np.int64
        assert rescale_accumulator(acc)[0] == quantize(np.array([6.0]))[0]

    def test_matches_float_mac_within_resolution(self, rng):
        n = rng.uniform(-2, 2, size=32)
        s = rng.uniform(-2, 2, size=32)
        acc = fixed_point_mac(quantize(n), quantize(s)).sum()
        got = rescale_accumulator(np.array([acc]))[0] / DEFAULT_FORMAT.scale
        assert got == pytest.approx(float((n * s).sum()), abs=0.15)

    def test_rescale_saturates(self):
        big = np.array([2**40])
        assert rescale_accumulator(big)[0] == DEFAULT_FORMAT.raw_max

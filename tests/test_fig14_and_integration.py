"""End-to-end tests: the pruning trade-off experiment and full-stack runs."""

import numpy as np
import pytest

from repro.baseline.accelerator import DaDianNaoNode
from repro.baseline.timing import baseline_network_timing
from repro.baseline.workload import ConvWork
from repro.core.accelerator import CnvNode, encode_layer_output
from repro.core.timing import cnv_network_timing
from repro.core.zfnaf import decode, encode
from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.fig14_pruning import SmallCnnEvaluator
from repro.hw.config import small_config
from repro.nn.layers import conv2d, relu
from repro.nn.training import train_small_cnn


@pytest.fixture(scope="module")
def trained():
    return train_small_cnn(train_count=192, test_count=96, epochs=3)


class TestSmallCnnEvaluator:
    def test_unpruned_matches_training_accuracy_regime(self, trained):
        evaluator = SmallCnnEvaluator(trained, small_config(), accuracy_images=64)
        accuracy, speedup = evaluator({})
        assert accuracy > 0.5
        assert speedup > 1.0  # ReLU sparsity alone already helps

    def test_aggressive_pruning_hurts_accuracy(self, trained):
        evaluator = SmallCnnEvaluator(trained, small_config(), accuracy_images=64)
        clean_acc, clean_speedup = evaluator({})
        raw = {name: 256 for name in evaluator.prunable_layers}
        pruned_acc, pruned_speedup = evaluator(raw)
        assert pruned_speedup > clean_speedup
        assert pruned_acc < clean_acc

    def test_paper_shape_lossless_region_exists(self, trained):
        """Fig. 14: an initial region prunes without accuracy loss."""
        evaluator = SmallCnnEvaluator(trained, small_config(), accuracy_images=64)
        clean_acc, clean_speedup = evaluator({})
        raw = {name: 1 for name in evaluator.prunable_layers}
        tiny_acc, tiny_speedup = evaluator(raw)
        assert tiny_acc >= clean_acc - 0.05
        assert tiny_speedup >= clean_speedup - 1e-9


class TestHardwareLayerChaining:
    def test_two_layers_through_cnv_hardware(self, rng):
        """Layer 1's encoder output feeds layer 2's dispatcher — the full
        inter-layer path of Section IV-B4 — and the final outputs match the
        golden model exactly."""
        cfg = small_config()
        act = np.abs(rng.normal(size=(8, 6, 6)))
        act[act < 0.7] = 0.0
        w1 = rng.normal(size=(4, 8, 3, 3))
        w2 = rng.normal(size=(4, 4, 2, 2))

        geom1 = {
            "in_depth": 8, "in_y": 6, "in_x": 6, "num_filters": 4,
            "kernel": 3, "stride": 1, "pad": 0, "groups": 1, "out_y": 4, "out_x": 4,
        }
        work1 = ConvWork("l1", geom1, act)
        out1 = CnvNode(cfg).run_conv_layer(work1, w1)
        golden1 = conv2d(act, w1)
        assert np.allclose(out1.output, golden1)

        # Encode layer 1's output through the hardware encoder (with ReLU).
        encoded = encode_layer_output(out1.output, cfg)
        act2 = relu(golden1)
        assert np.allclose(decode(encoded), act2)

        geom2 = {
            "in_depth": 4, "in_y": 4, "in_x": 4, "num_filters": 4,
            "kernel": 2, "stride": 1, "pad": 0, "groups": 1, "out_y": 3, "out_x": 3,
        }
        work2 = ConvWork("l2", geom2, act2)
        out2 = CnvNode(cfg).run_conv_layer(work2, w2, input_zfnaf={0: encoded})
        assert np.allclose(out2.output, conv2d(act2, w2))

    def test_encoder_threshold_prunes_through_chain(self, rng):
        cfg = small_config()
        out = rng.normal(size=(4, 3, 3))
        encoded = encode_layer_output(out, cfg, threshold=0.5)
        dense = decode(encoded)
        live = dense[dense != 0]
        assert live.size == 0 or np.abs(live).min() >= 0.5


class TestStructuralVsAnalyticOnRealNetwork:
    def test_trained_cnn_layer_on_both_simulators(self, trained, rng):
        """A real (trained) conv layer's activations through the structural
        CNV node match the golden conv and the analytic cycle count."""
        from repro.core.timing import cnv_conv_timing
        from repro.nn.inference import run_forward
        from repro.nn.datasets import ShapeDataset

        images, _ = ShapeDataset().batch(1, seed=42)
        fwd = run_forward(trained.network, trained.store, images[0])
        act = fwd.conv_inputs["conv2"]  # 8 x 12 x 12, post-ReLU sparse
        cfg = small_config()
        geom = trained.network.conv_geometry(
            trained.network.conv_layers[1]
        )
        work = ConvWork("conv2", geom, act)
        weights = trained.store.weights["conv2"]
        result = CnvNode(cfg).run_conv_layer(work, weights)
        golden = conv2d(act, weights, stride=1, pad=1)
        assert np.allclose(result.output, golden)
        assert result.cycles == cnv_conv_timing(work, cfg).cycles

    def test_network_timing_on_trained_cnn(self, trained):
        from repro.nn.datasets import ShapeDataset
        from repro.nn.inference import run_forward

        images, _ = ShapeDataset().batch(1, seed=43)
        fwd = run_forward(trained.network, trained.store, images[0])
        base = baseline_network_timing(trained.network, fwd.conv_inputs, small_config())
        cnv = cnv_network_timing(trained.network, fwd.conv_inputs, small_config())
        assert base.total_cycles > cnv.total_cycles


class TestQuantizedEquivalence:
    def test_simulators_agree_on_quantized_grid_values(self, rng):
        """With activations and weights on the fixed-point grid, both
        simulators produce identical results (no float divergence)."""
        from repro.nn.tensor import DEFAULT_FORMAT, dequantize, quantize

        act = dequantize(quantize(np.abs(rng.normal(size=(4, 5, 5)))))
        act[act < 0.5] = 0.0
        weights = dequantize(quantize(rng.normal(size=(2, 4, 2, 2))))
        geom = {
            "in_depth": 4, "in_y": 5, "in_x": 5, "num_filters": 2,
            "kernel": 2, "stride": 1, "pad": 0, "groups": 1, "out_y": 4, "out_x": 4,
        }
        work = ConvWork("q", geom, act)
        cfg = small_config()
        base = DaDianNaoNode(cfg).run_conv_layer(work, weights)
        cnv = CnvNode(cfg).run_conv_layer(work, weights)
        assert np.allclose(base.output, cnv.output, atol=1e-12)

"""Weight serialization tests (repro.nn.io)."""

import numpy as np

from repro.nn.inference import init_weights, run_forward
from repro.nn.io import load_weights, save_weights
from repro.nn.models import build_network


class TestWeightIo:
    def test_roundtrip(self, tmp_path, rng):
        net = build_network("alex", input_size=67)
        store = init_weights(net, rng)
        store.shifts = {"conv1": -0.25, "conv2": 0.5}
        path = tmp_path / "alex.npz"
        save_weights(store, path)
        loaded = load_weights(path)
        assert set(loaded.weights) == set(store.weights)
        for name in store.weights:
            assert np.array_equal(loaded.weights[name], store.weights[name])
            assert np.array_equal(loaded.biases[name], store.biases[name])
        assert loaded.shifts == store.shifts

    def test_loaded_store_runs_identically(self, tmp_path, rng):
        net = build_network("nin", input_size=64)
        store = init_weights(net, rng)
        path = tmp_path / "nin.npz"
        save_weights(store, path)
        loaded = load_weights(path)
        from repro.nn.datasets import natural_images

        image = natural_images(net.input_shape, 1, seed=1)[0]
        a = run_forward(net, store, image, keep_outputs=False)
        b = run_forward(net, loaded, image, keep_outputs=False)
        assert np.array_equal(a.logits, b.logits)

    def test_empty_shifts(self, tmp_path, rng):
        net = build_network("alex", input_size=67)
        store = init_weights(net, rng)
        path = tmp_path / "w.npz"
        save_weights(store, path)
        assert load_weights(path).shifts == {}

"""Serving-tier backend selection: differential + validation tests.

PR-10 adds a ``backend`` field to timing requests: a registered backend
name routes the request's conv-input activations through that backend's
network simulator instead of the default CNV-vs-baseline pair.  The
guarantees pinned here:

* **Differential**: timing requests naming *every* registered backend,
  driven through the 2-shard consistent-hash tier (micro-batching, wire
  transport, shard-side pruned-weight construction from read-only
  shared-memory views), are byte-identical — canonical bytes — to
  direct single-process simulation of the same request.
* **Validation**: an unregistered backend name answers as a 500-style
  validation error at the router, never reaches a shard, and the tier
  keeps serving valid requests afterwards.
* **Schema**: ``backend`` survives the JSON wire round-trip, is
  rejected on non-timing kinds, and absent fields stay absent (the
  default payload is byte-compatible with the pre-registry wire form).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.backends import backend_names
from repro.serve import (
    ServeRequest,
    ShardTierConfig,
    ShardedService,
    canonical_response_bytes,
    direct_response,
)
from test_serve_sharded import det_config, drive_sharded

SERVE_NETWORKS = ("alex", "cnnS")


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("backend-serve-artifacts")


def backend_workload() -> list[ServeRequest]:
    """One probe and one seeded timing request per registered backend,
    alternating networks, plus a backend-less request per network (the
    legacy payload must keep flowing through the same batches)."""
    requests = []
    for index, name in enumerate(backend_names()):
        network = SERVE_NETWORKS[index % len(SERVE_NETWORKS)]
        requests.append(
            ServeRequest(
                id=f"probe-{name}", kind="timing", network=network,
                image_index=0, backend=name,
            )
        )
        requests.append(
            ServeRequest(
                id=f"seed-{name}", kind="timing", network=network,
                image_seed=7 + index, backend=name,
            )
        )
    for network in SERVE_NETWORKS:
        requests.append(
            ServeRequest(id=f"legacy-{network}", kind="timing",
                         network=network, image_index=0)
        )
    return requests


class TestBackendDifferential:
    def test_sharded_backend_timing_byte_identical_to_direct(self, cache_dir):
        requests = backend_workload()
        result, service = drive_sharded(
            det_config(), ShardTierConfig(shards=2, forward_timeout_s=120),
            requests, cache_dir,
        )
        assert len(result.responses) == len(requests)
        for request in requests:
            response = result.responses[request.id]
            assert response.status == "ok", (request.id, response.payload)
            reference = direct_response(service.repo, request)
            assert canonical_response_bytes(response) == (
                canonical_response_bytes(reference)
            ), request.id

    def test_backend_payload_names_backend_and_beats_nothing_silently(
        self, cache_dir
    ):
        """Responses for backend= requests carry the backend name and
        backend_cycles; backend-less responses keep the legacy keys."""
        requests = backend_workload()
        result, _ = drive_sharded(
            det_config(), ShardTierConfig(shards=2, forward_timeout_s=120),
            requests, cache_dir,
        )
        for request in requests:
            payload = result.responses[request.id].payload
            if request.backend is None:
                assert set(payload) == {
                    "baseline_cycles", "cnv_cycles", "speedup",
                }
            else:
                assert payload["backend"] == request.backend
                assert set(payload) == {
                    "backend", "baseline_cycles", "backend_cycles", "speedup",
                }
                assert payload["speedup"] == pytest.approx(
                    payload["baseline_cycles"] / payload["backend_cycles"]
                )
                if request.backend == "baseline":
                    assert payload["backend_cycles"] == (
                        payload["baseline_cycles"]
                    )


class TestBackendValidation:
    def test_unknown_backend_errors_at_router_and_tier_keeps_serving(
        self, cache_dir
    ):
        async def _go():
            service = ShardedService(
                det_config(), tier=ShardTierConfig(
                    shards=2, forward_timeout_s=120,
                ),
                cache_dir=cache_dir,
            )
            await service.start()
            try:
                bad = await service.submit(
                    ServeRequest(
                        id="bad", kind="timing", network="alex",
                        image_index=0, backend="not-a-backend",
                    )
                )
                # The error must not have crashed or wedged a shard: the
                # very next valid request still answers.
                good = await service.submit(
                    ServeRequest(
                        id="good", kind="timing", network="alex",
                        image_index=0, backend="cnv2",
                    )
                )
            finally:
                await service.stop()
            return bad, good

        bad, good = asyncio.run(_go())
        assert bad.status == "error"
        assert "unknown backend 'not-a-backend'" in bad.payload["error"]
        for name in backend_names():
            assert name in bad.payload["error"]
        assert good.status == "ok"
        assert good.payload["backend"] == "cnv2"


class TestRequestSchema:
    def test_backend_round_trips_through_wire_form(self):
        request = ServeRequest(
            id="r", kind="timing", network="alex", image_index=1,
            backend="scnn",
        )
        payload = request.to_payload()
        assert payload["backend"] == "scnn"
        assert ServeRequest.from_json(request.to_json()) == request

    def test_backend_absent_keeps_legacy_wire_form(self):
        request = ServeRequest(id="r", kind="timing", network="alex")
        assert "backend" not in request.to_payload()
        parsed = ServeRequest.from_payload(request.to_payload())
        assert parsed.backend is None

    @pytest.mark.parametrize("kind", ["classify", "zero_fraction"])
    def test_backend_rejected_on_non_timing_kinds(self, kind):
        with pytest.raises(ValueError, match="timing requests only"):
            ServeRequest(id="r", kind=kind, network="alex", backend="cnv")

    def test_unknown_fields_still_rejected(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            ServeRequest.from_payload(
                {"id": "r", "kind": "timing", "network": "alex",
                 "backned": "cnv"}
            )

"""ASCII chart rendering tests (repro.experiments.charts)."""

from repro.experiments.charts import bar_chart, render, scatter_chart, stacked_bar_chart
from repro.experiments.report import ExperimentResult


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[1].count("█") == 2 * lines[0].count("█")

    def test_reference_marker(self):
        text = bar_chart([("a", 1.0)], width=10, reference=2.0)
        assert "|" in text

    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_value_format(self):
        text = bar_chart([("a", 0.5)], value_format="{:.0%}")
        assert "50%" in text


class TestStackedBarChart:
    def test_legend_and_totals(self):
        text = stacked_bar_chart(
            [("x", {"nonzero": 0.5, "stall": 0.25})], ["nonzero", "stall"]
        )
        assert "0.75" in text
        assert "x=stall" in text

    def test_empty(self):
        assert stacked_bar_chart([], ["a"]) == "(no data)"


class TestScatterChart:
    def test_glyphs_placed(self):
        text = scatter_chart([(1.0, 0.9, "alex"), (2.0, 0.5, "nin")])
        assert "a" in text and "n" in text
        assert "speedup" not in text  # default labels

    def test_axis_ranges_printed(self):
        text = scatter_chart([(1.0, 0.5, "p"), (3.0, 1.0, "q")], x_label="s")
        assert "1.00 .. 3.00" in text

    def test_empty(self):
        assert scatter_chart([]) == "(no data)"


class TestRenderDispatch:
    def test_fig9_renders_bars(self):
        result = ExperimentResult(
            experiment="fig9",
            title="t",
            rows=[{"network": "alex", "CNV": 1.4, "paper_CNV": 1.37}],
        )
        assert "█" in render(result)

    def test_fig14_renders_scatter(self):
        result = ExperimentResult(
            experiment="fig14",
            title="t",
            rows=[
                {"network": "alex", "speedup": 1.3, "relative_accuracy": 1.0},
                {"network": "alex", "speedup": 1.6, "relative_accuracy": 0.8},
            ],
        )
        assert "relative accuracy" in render(result)

    def test_table_only_experiments_return_none(self):
        result = ExperimentResult(experiment="table1", title="t", rows=[{"a": 1}])
        assert render(result) is None

"""Property + regression suite for the sparse compute path (repro.nn.sparse).

Everything here drives the reusable differential harness in
``tests/differential.py``: adversarial zero patterns (all-zero feature
maps, a single non-zero at the last brick offset, channel counts not
divisible by the brick size), grouped and non-square geometries, the
full dtype x stride x pad x groups x batch x threshold grid, the
``auto``-mode cutoff boundary, and the ``sparse:gemm`` fault fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from differential import (
    assert_conv_identical,
    assert_fc_identical,
    assert_forward_identical,
    run_conv_grid,
    run_fc_grid,
    sparse_env,
)
from repro import obs
from repro.nn import sparse as zskip
from repro.nn.layers import conv2d, fully_connected


@pytest.fixture(autouse=True)
def _default_mode_env():
    """Pin the mode env vars to their defaults inside every test."""
    with sparse_env(None, None):
        yield


def sparse_conv_input(
    rng: np.random.Generator, shape, zero_fraction: float
) -> np.ndarray:
    a = np.maximum(rng.normal(0.3, 1.0, size=shape), 0.0)
    if zero_fraction > 0:
        cut = np.quantile(a, zero_fraction)
        a[a < cut] = 0.0
    return a


class TestDifferentialGrid:
    def test_conv_full_grid(self, rng):
        assert run_conv_grid(rng) == 216  # 2 x 3 x 3 x 2 x 2 x 3

    def test_fc_full_grid(self, rng):
        assert run_fc_grid(rng) == 12  # 2 dtypes x 2 batches x 3 thresholds


conv_geometry = st.tuples(
    st.integers(1, 20),  # depth (crosses brick boundaries, % 16 != 0)
    st.integers(4, 9),  # in_y
    st.integers(4, 9),  # in_x
    st.integers(1, 4),  # filters
    st.integers(1, 3),  # kernel
    st.integers(1, 3),  # stride
    st.integers(0, 2),  # pad
)


class TestAdversarialPatterns:
    @settings(max_examples=40, deadline=None)
    @given(conv_geometry, st.floats(0.0, 0.95), st.integers(0, 2**32 - 1))
    def test_random_sparsity_conv(self, geometry, zero_fraction, seed):
        depth, in_y, in_x, filters, kernel, stride, pad = geometry
        if in_y - kernel + 2 * pad < 0 or in_x - kernel + 2 * pad < 0:
            return
        rng = np.random.default_rng(seed)
        a = sparse_conv_input(rng, (depth, in_y, in_x), zero_fraction)
        w = rng.normal(size=(filters, depth, kernel, kernel))
        assert_conv_identical(a, w, rng.normal(size=filters), stride=stride, pad=pad)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 8))
    def test_all_zero_feature_maps(self, seed, dead_channels):
        """Entire channels of zeros — including the whole-input case."""
        rng = np.random.default_rng(seed)
        depth = 8
        a = sparse_conv_input(rng, (depth, 6, 6), 0.3)
        a[:dead_channels] = 0.0
        w = rng.normal(size=(3, depth, 3, 3))
        assert_conv_identical(a, w, rng.normal(size=3), pad=1)

    def test_whole_input_zero(self, rng):
        a = np.zeros((5, 6, 6))
        w = rng.normal(size=(4, 5, 3, 3))
        out = assert_conv_identical(a, w, rng.normal(size=4), pad=1)
        assert np.all(out == np.asarray(out[:, :1, :1]))  # bias only

    def test_single_nonzero_at_brick_offset_15(self, rng):
        """One live neuron at the last offset of the first ZFNAf brick."""
        depth = 16
        a = np.zeros((depth, 5, 5))
        a[15, 2, 3] = 1.5
        w = rng.normal(size=(4, depth, 3, 3))
        out = assert_conv_identical(a, w, None, pad=1)
        reference = conv2d(a, w, None, pad=1, sparse_mode="never")
        assert np.array_equal(out, reference)

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from([7, 15, 17, 18, 33]), st.integers(0, 2**32 - 1))
    def test_depth_not_multiple_of_brick(self, depth, seed):
        rng = np.random.default_rng(seed)
        a = sparse_conv_input(rng, (depth, 6, 6), 0.6)
        w = rng.normal(size=(3, depth, 3, 3))
        assert_conv_identical(a, w, rng.normal(size=3), stride=2, pad=1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.sampled_from([2, 4]))
    def test_grouped_conv(self, seed, groups):
        rng = np.random.default_rng(seed)
        depth, filters = 8, 8
        a = sparse_conv_input(rng, (depth, 7, 7), 0.6)
        a[1] = 0.0  # one dead channel inside group 0
        w = rng.normal(size=(filters, depth // groups, 3, 3))
        assert_conv_identical(
            a, w, rng.normal(size=filters), stride=2, pad=1, groups=groups
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_non_square_kernels_and_inputs(self, seed):
        """Rectangular kernels/inputs exercise asymmetric window strides."""
        rng = np.random.default_rng(seed)
        a = sparse_conv_input(rng, (6, 9, 5), 0.6)
        w = rng.normal(size=(3, 6, 1, 3))  # Fy != Fx
        assert_conv_identical(a, w, rng.normal(size=3), stride=2, pad=1)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 120), st.integers(0, 2**32 - 1))
    def test_fc_sparsity_levels(self, live, seed):
        rng = np.random.default_rng(seed)
        x = np.zeros(120)
        idx = rng.choice(120, size=min(live, 120), replace=False)
        x[idx] = rng.normal(size=idx.size)
        w = rng.normal(size=(7, 120))
        assert_fc_identical(x.reshape(1, 5, 24)[0].reshape(5, 4, 6), w[:, :120])

    def test_fc_all_zero_input(self, rng):
        x = np.zeros((3, 4, 4))
        w = rng.normal(size=(6, 48))
        b = rng.normal(size=6)
        out = assert_fc_identical(x, w, b)
        assert np.array_equal(out, b)


class TestAutoCutoffBoundary:
    """``auto`` picks each path on either side of the density cutoff."""

    def _dead_fraction_case(self, rng, dead_cols: int):
        # K = 4 channels x 1x1 kernel -> each dead channel is one dead
        # column of the patch matrix: dead_fraction = dead_cols / 4.
        a = np.maximum(rng.normal(0.5, 1.0, size=(4, 5, 5)), 0.1)
        a[:dead_cols] = 0.0
        w = rng.normal(size=(3, 4, 1, 1))
        return a, w

    @pytest.mark.parametrize(
        "dead_cols,expected_path", [(1, "dense"), (3, "sparse")]
    )
    def test_auto_picks_path_around_cutoff(self, rng, dead_cols, expected_path):
        a, w = self._dead_fraction_case(rng, dead_cols)
        with sparse_env("auto", cutoff=0.5):
            zskip.pop_records()
            conv2d(a, w, None)
            records = zskip.pop_records()
        assert [r.path for r in records] == [expected_path]
        assert records[0].dead_fraction == pytest.approx(dead_cols / 4)

    def test_exact_cutoff_is_sparse(self, rng):
        a, w = self._dead_fraction_case(rng, 2)  # dead_fraction == cutoff
        with sparse_env("auto", cutoff=0.5):
            zskip.pop_records()
            conv2d(a, w, None)
            (record,) = zskip.pop_records()
        assert record.path == "sparse"

    def test_forced_modes_ignore_cutoff(self, rng):
        a, w = self._dead_fraction_case(rng, 3)
        with sparse_env("never", cutoff=0.0):
            zskip.pop_records()
            conv2d(a, w, None)
            (record,) = zskip.pop_records()
            assert record.path == "dense"
        with sparse_env("always", cutoff=1.0):
            zskip.pop_records()
            conv2d(a, w, None)
            (record,) = zskip.pop_records()
            assert record.path == "sparse"

    def test_bad_env_values_fall_back(self):
        with sparse_env("sometimes", cutoff=None):
            assert zskip.resolve_mode() == "auto"
        import os

        # Non-numeric, out-of-range, and non-finite values all warn and
        # fall back (the CNVLUTIN_ENGINE_CACHE_MB validation pattern) —
        # a bad environment variable never makes a forward pass raise.
        for bad in ("not-a-number", "2.5", "-0.1", "nan", "inf"):
            os.environ[zskip.CUTOFF_ENV] = bad
            try:
                with pytest.warns(RuntimeWarning, match=zskip.CUTOFF_ENV):
                    assert zskip.resolve_cutoff() == zskip.DEFAULT_CUTOFF
            finally:
                del os.environ[zskip.CUTOFF_ENV]
        os.environ[zskip.CUTOFF_ENV] = "0.3"
        try:
            assert zskip.resolve_cutoff() == 0.3
        finally:
            del os.environ[zskip.CUTOFF_ENV]
        with pytest.raises(ValueError):
            zskip.resolve_mode("sometimes")


class TestWholeNetworkDifferential:
    def test_tiny_network_forward_identical(self, rng):
        from repro.nn.inference import init_weights
        from repro.nn.models import build_network

        network = build_network("cnnS", input_size=64)
        store = init_weights(network, rng)
        image = rng.uniform(size=network.input_shape).astype(np.float32)
        for name in store.weights:
            store.weights[name] = store.weights[name].astype(np.float32)
            store.biases[name] = store.biases[name].astype(np.float32)
        assert_forward_identical(
            network, store, image, thresholds={"conv1": 0.2, "conv2": 0.4}
        )


class TestFaultFallback:
    def test_injected_gemm_fault_falls_back_to_dense_bits(self, rng, monkeypatch):
        a = sparse_conv_input(rng, (6, 6, 6), 0.7)
        a[0] = 0.0  # guarantee dead columns so the sparse path is taken
        w = rng.normal(size=(4, 6, 3, 3))
        b = rng.normal(size=4)
        reference = conv2d(a, w, b, pad=1, sparse_mode="never")

        obs.reset_metrics()
        monkeypatch.setenv("CNVLUTIN_FAULTS", "sparse:gemm=raise@*")
        out = conv2d(a, w, b, pad=1, sparse_mode="always")
        assert out.tobytes() == reference.tobytes()
        records = zskip.pop_records()
        assert any(r.fallback for r in records)
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["engine.sparse.fallbacks"] >= 1
        assert counters["faults.injected.sparse:gemm"] >= 1

    def test_limited_trials_recover(self, rng, monkeypatch):
        """Only the first sparse GEMM faults; later ones skip normally."""
        a = sparse_conv_input(rng, (6, 6, 6), 0.7)
        a[0] = 0.0
        w = rng.normal(size=(4, 6, 3, 3))
        reference = conv2d(a, w, None, pad=1, sparse_mode="never")
        monkeypatch.setenv("CNVLUTIN_FAULTS", "sparse:gemm=raise@0")
        zskip.pop_records()
        first = conv2d(a, w, None, pad=1, sparse_mode="always")
        second = conv2d(a, w, None, pad=1, sparse_mode="always")
        records = zskip.pop_records()
        assert first.tobytes() == second.tobytes() == reference.tobytes()
        assert records[0].fallback and not records[1].fallback
        assert records[1].path == "sparse"


class TestMetricsAndRecords:
    def test_macs_accounting(self, rng):
        a = np.maximum(rng.normal(0.5, 1.0, size=(4, 5, 5)), 0.1)
        a[:2] = 0.0
        w = rng.normal(size=(3, 4, 1, 1))
        with sparse_env("always"):
            zskip.pop_records()
            conv2d(a, w, None)
            (record,) = zskip.pop_records()
        assert record.macs_total == 25 * 4 * 3
        assert record.macs_skipped == 25 * 2 * 3
        assert record.kind == "conv"

    def test_transposed_weights_cached_per_array(self, rng):
        w = rng.normal(size=(4, 6, 3, 3))
        first = zskip.transposed_weights(w, 2)
        second = zskip.transposed_weights(w, 2)
        assert all(x is y for x, y in zip(first, second))
        assert first[0].shape == (6 * 9, 4 // 2)

    def test_summarize_records_paths(self):
        make = lambda path: zskip.GemmRecord(
            kind="conv", path=path, dead_fraction=0.5, dead_rows=0.0,
            macs_total=100, macs_skipped=50 if path == "sparse" else 0,
        )
        assert zskip.summarize_records([])["sparse"] == "none"
        assert zskip.summarize_records([make("sparse")])["sparse"] == "sparse"
        mixed = zskip.summarize_records([make("sparse"), make("dense")])
        assert mixed["sparse"] == "mixed"
        assert mixed["macs_skipped"] == 50

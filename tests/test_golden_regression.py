"""Golden regression test: all experiments at a pinned reduced scale.

A checked-in JSON snapshot (``tests/golden/experiments_tiny.json``) pins
every table/figure the pipeline produces at tiny scale for two networks.
Any change to the simulators, timing models, threshold derivation, or
experiment plumbing that shifts a published number fails here with a
per-cell diff; float cells compare within tolerance so platform-level
last-ulp noise does not.

Refresh after an intentional change with::

    CNVLUTIN_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_regression.py -q

and commit the updated file alongside the change that motivated it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.report import diff_result_docs, results_to_json_doc
from repro.experiments.runner import EXPERIMENTS, run_all

GOLDEN_PATH = Path(__file__).parent / "golden" / "experiments_tiny.json"

#: The pinned configuration.  ``smallcnn=False`` keeps fig14 to its
#: deterministic per-network sweep half (the greedy search is exercised
#: by its own tests and is by far the costliest unit).
GOLDEN_NETWORKS = ["alex", "cnnS"]


def golden_config(cache_dir) -> PaperConfig:
    return PaperConfig(
        scale="tiny",
        networks=list(GOLDEN_NETWORKS),
        num_images=1,
        cache_dir=cache_dir,
        smallcnn=False,
    )


def test_all_experiments_match_golden(tmp_path):
    config = golden_config(tmp_path / "cache")
    results = run_all(config, only=list(EXPERIMENTS), verbose=False)
    actual = json.loads(results_to_json_doc(results))

    if os.environ.get("CNVLUTIN_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(actual, indent=2) + "\n")
        pytest.skip(f"updated golden file {GOLDEN_PATH}")

    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; generate it with "
        "CNVLUTIN_UPDATE_GOLDEN=1"
    )
    expected = json.loads(GOLDEN_PATH.read_text())
    mismatches = diff_result_docs(expected, actual, rel_tol=1e-6, abs_tol=1e-9)
    assert not mismatches, (
        "results drifted from the golden snapshot "
        "(refresh with CNVLUTIN_UPDATE_GOLDEN=1 if intentional):\n"
        + "\n".join(mismatches)
    )


def test_golden_covers_every_experiment():
    if not GOLDEN_PATH.exists():
        pytest.skip("golden file not generated yet")
    expected = json.loads(GOLDEN_PATH.read_text())
    assert [doc["experiment"] for doc in expected] == list(EXPERIMENTS)

"""Trainer tests (repro.nn.training): gradients, learning, export."""

import numpy as np
import pytest

from repro.nn.datasets import NUM_SHAPE_CLASSES, ShapeDataset
from repro.nn.inference import run_forward
from repro.nn.training import SmallCNN, train_small_cnn


class TestGradients:
    def _numeric_grad(self, model, x, labels, param, index, eps=1e-5):
        flat = param.reshape(-1)
        orig = flat[index]
        flat[index] = orig + eps

        def loss():
            logits = model.forward(x)
            shifted = logits - logits.max(axis=1, keepdims=True)
            probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
            return -np.log(probs[np.arange(len(labels)), labels] + 1e-12).mean()

        up = loss()
        flat[index] = orig - eps
        down = loss()
        flat[index] = orig
        return (up - down) / (2 * eps)

    @pytest.mark.parametrize("layer_name", ["conv1", "conv2", "conv3", "fc"])
    def test_backprop_matches_numeric(self, layer_name, rng):
        model = SmallCNN(num_classes=4, seed=3, input_size=8)
        x = rng.normal(size=(3, 1, 8, 8))
        labels = np.array([0, 2, 3])
        logits = model.forward(x)
        model.loss_and_backward(logits, labels)
        layer = getattr(model, layer_name)
        analytic = layer.dw.reshape(-1)
        for index in [0, analytic.size // 2, analytic.size - 1]:
            numeric = self._numeric_grad(model, x, labels, layer.w, index)
            assert analytic[index] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_bias_gradients(self, rng):
        model = SmallCNN(num_classes=4, seed=3, input_size=8)
        x = rng.normal(size=(2, 1, 8, 8))
        labels = np.array([1, 3])
        logits = model.forward(x)
        model.loss_and_backward(logits, labels)
        numeric = self._numeric_grad(model, x, labels, model.fc.b, 0)
        assert model.fc.db[0] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


class TestTraining:
    def test_loss_decreases(self):
        result = train_small_cnn(train_count=128, test_count=64, epochs=2)
        first = np.mean(result.losses[:4])
        last = np.mean(result.losses[-4:])
        assert last < first

    def test_learns_above_chance(self):
        result = train_small_cnn(train_count=256, test_count=128, epochs=3)
        chance = 1.0 / NUM_SHAPE_CLASSES
        assert result.test_accuracy > 3 * chance

    def test_deterministic_given_seed(self):
        a = train_small_cnn(train_count=64, test_count=32, epochs=1, seed=5)
        b = train_small_cnn(train_count=64, test_count=32, epochs=1, seed=5)
        assert a.test_accuracy == b.test_accuracy


class TestExport:
    def test_engine_matches_trainer_forward(self, rng):
        """The exported Network/WeightStore must reproduce the trainer's
        own logits — the bridge that lets the accelerator simulators run
        the trained classifier."""
        result = train_small_cnn(train_count=64, test_count=32, epochs=1)
        dataset = ShapeDataset()
        images, _ = dataset.batch(4, seed=99)
        for image in images:
            trainer_logits = result.model.forward(image[np.newaxis])[0]
            engine_logits = run_forward(
                result.network, result.store, image, keep_outputs=False
            ).logits
            assert np.allclose(trainer_logits, engine_logits, atol=1e-9)

    def test_exported_conv_inputs_available(self):
        result = train_small_cnn(train_count=64, test_count=32, epochs=1)
        dataset = ShapeDataset()
        images, _ = dataset.batch(1, seed=98)
        fwd = run_forward(result.network, result.store, images[0])
        assert set(fwd.conv_inputs) == {"conv1", "conv2", "conv3"}
        # conv2 input is post-ReLU: sparse, the substrate pruning exploits.
        assert (fwd.conv_inputs["conv2"] == 0).mean() > 0.1

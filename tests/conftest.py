"""Shared fixtures for the Cnvlutin reproduction test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.baseline.workload import ConvWork
from repro.hw.config import ArchConfig, small_config
from repro.nn.activations import sparse_activations

# Seeded hypothesis profiles: `derandomize` pins every example choice to
# the test function itself, so a failure reproduces without a database
# and CI never flakes on fresh examples.  Locally "dev" keeps runs fast;
# CI (or HYPOTHESIS_PROFILE=ci) searches harder and prints the
# reproduction blob on failure.
settings.register_profile("dev", derandomize=True, deadline=None,
                          max_examples=25)
settings.register_profile("ci", derandomize=True, deadline=None,
                          max_examples=150, print_blob=True)
settings.load_profile(
    os.environ.get(
        "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"
    )
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_arch() -> ArchConfig:
    """2 units x 4 lanes x 2 filters, brick 4 — structural-sim scale."""
    return small_config()


def make_conv_work(
    rng: np.random.Generator,
    in_depth: int = 8,
    in_y: int = 6,
    in_x: int = 6,
    num_filters: int = 4,
    kernel: int = 3,
    stride: int = 1,
    pad: int = 1,
    groups: int = 1,
    zero_fraction: float = 0.45,
    name: str = "layer",
    is_first: bool = False,
) -> tuple[ConvWork, np.ndarray]:
    """A random conv workload plus matching weights."""
    out_y = (in_y - kernel + 2 * pad) // stride + 1
    out_x = (in_x - kernel + 2 * pad) // stride + 1
    activations = sparse_activations(
        (in_depth, in_y, in_x), zero_fraction, rng, correlation=1.0
    )
    weights = rng.normal(size=(num_filters, in_depth // groups, kernel, kernel))
    geometry = {
        "in_depth": in_depth,
        "in_y": in_y,
        "in_x": in_x,
        "num_filters": num_filters,
        "kernel": kernel,
        "stride": stride,
        "pad": pad,
        "groups": groups,
        "out_y": out_y,
        "out_x": out_x,
    }
    return ConvWork(name=name, geometry=geometry, activations=activations, is_first=is_first), weights

"""Network description and shape-inference tests (repro.nn.network)."""

import pytest

from repro.nn.network import LayerKind, LayerSpec, Network


def simple_net() -> Network:
    return Network(
        name="t",
        input_shape=(3, 8, 8),
        layers=[
            LayerSpec(name="conv1", kind="conv", num_filters=4, kernel=3, pad=1, fused_relu=True),
            LayerSpec(name="pool1", kind="maxpool", kernel=2, stride=2),
            LayerSpec(name="conv2", kind="conv", num_filters=8, kernel=3, pad=1, fused_relu=True),
            LayerSpec(name="fc", kind="fc", num_filters=10),
            LayerSpec(name="prob", kind="softmax"),
        ],
    )


class TestLayerSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec(name="x", kind="mystery")

    def test_conv_requires_geometry(self):
        with pytest.raises(ValueError):
            LayerSpec(name="x", kind="conv")

    def test_conv_filters_divisible_by_groups(self):
        with pytest.raises(ValueError):
            LayerSpec(name="x", kind="conv", num_filters=5, kernel=3, groups=2)

    def test_concat_requires_inputs(self):
        with pytest.raises(ValueError):
            LayerSpec(name="x", kind="concat")


class TestShapes:
    def test_chain(self):
        net = simple_net()
        assert net.output_shape("conv1") == (4, 8, 8)
        assert net.output_shape("pool1") == (4, 4, 4)
        assert net.output_shape("conv2") == (8, 4, 4)
        assert net.output_shape("fc") == (10, 1, 1)

    def test_input_shape_of(self):
        net = simple_net()
        assert net.input_shape_of("conv1") == (3, 8, 8)
        assert net.input_shape_of("conv2") == (4, 4, 4)

    def test_concat_shapes(self):
        net = Network(
            name="t",
            input_shape=(4, 6, 6),
            layers=[
                LayerSpec(name="a", kind="conv", num_filters=2, kernel=1, input_from=None),
                LayerSpec(name="b", kind="conv", num_filters=3, kernel=1, input_from=("a",)),
                LayerSpec(name="c", kind="conv", num_filters=5, kernel=1, input_from=("a",)),
                LayerSpec(name="cat", kind="concat", input_from=("b", "c")),
            ],
        )
        assert net.output_shape("cat") == (8, 6, 6)

    def test_concat_spatial_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Network(
                name="t",
                input_shape=(4, 6, 6),
                layers=[
                    LayerSpec(name="a", kind="conv", num_filters=2, kernel=1),
                    LayerSpec(name="b", kind="conv", num_filters=2, kernel=3, input_from=("a",)),
                    LayerSpec(name="cat", kind="concat", input_from=("a", "b")),
                ],
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Network(
                name="t",
                input_shape=(1, 4, 4),
                layers=[
                    LayerSpec(name="x", kind="relu"),
                    LayerSpec(name="x", kind="relu"),
                ],
            )

    def test_group_depth_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Network(
                name="t",
                input_shape=(3, 4, 4),
                layers=[
                    LayerSpec(name="c", kind="conv", num_filters=4, kernel=1, groups=2)
                ],
            )


class TestQueries:
    def test_conv_layers_in_order(self):
        net = simple_net()
        assert [l.name for l in net.conv_layers] == ["conv1", "conv2"]
        assert net.num_conv_layers == 2

    def test_index_of_missing(self):
        with pytest.raises(KeyError):
            simple_net().index_of("nope")

    def test_conv_geometry(self):
        geom = simple_net().conv_geometry(simple_net().conv_layers[1])
        assert geom == {
            "in_depth": 4,
            "in_y": 4,
            "in_x": 4,
            "num_filters": 8,
            "kernel": 3,
            "stride": 1,
            "pad": 1,
            "groups": 1,
            "out_y": 4,
            "out_x": 4,
        }

    def test_macs(self):
        macs = simple_net().macs_per_layer()
        assert macs["conv1"] == 3 * 3 * 3 * 8 * 8 * 4
        assert macs["fc"] == 8 * 4 * 4 * 10

    def test_grouped_macs_divide_by_groups(self):
        net = Network(
            name="g",
            input_shape=(8, 4, 4),
            layers=[
                LayerSpec(
                    name="c", kind="conv", num_filters=4, kernel=1, groups=2
                )
            ],
        )
        # Each filter sees depth 4, not 8.
        assert net.macs_per_layer()["c"] == 4 * 4 * 4 * 4

    def test_conv_producers_and_first(self):
        net = simple_net()
        producers = net.conv_producers()
        assert producers["conv1"] == ""
        assert producers["conv2"] == "pool1"
        assert net.first_conv_layers() == {"conv1"}

    def test_describe_mentions_all_layers(self):
        text = simple_net().describe()
        for layer in simple_net().layers:
            assert layer.name in text

"""Live telemetry plane tests: sketch, plane, SLO, expo, admin, e2e.

The load-bearing guarantees of the telemetry layer:

* **Sketch**: the fixed-boundary log-bucket quantile sketch answers
  p50/p95/p99 within one ~9% bucket step, merges exactly (associative
  and commutative — Hypothesis-checked), and loads pre-sketch (v3)
  payloads tolerantly.
* **Plane**: per-shard deltas aggregate last-write-wins by sequence
  number, window into a rolling view, track gauge high watermarks, and
  fold into the global registry exactly once (no double counting
  against the stop-time ``op: obs`` pull).
* **SLO**: declared latency/error/shed objectives produce burn rates
  from the same sketch buckets, pessimistic by at most one bucket.
* **End to end**: with streaming telemetry on and the admin endpoint
  scraped mid-load, a deterministic sharded run stays byte-identical
  to direct inference, the scrape carries per-shard p50/p99 and SLO
  status, and the Prometheus exposition lints clean.
"""

from __future__ import annotations

import asyncio
import json
import math
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.expo import (
    render_prometheus,
    sanitize_metric_name,
    validate_exposition,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    sketch_boundary,
    sketch_index,
)
from repro.obs.report import metrics_report
from repro.obs.slo import (
    LatencyObjective,
    RateObjective,
    SloTracker,
    default_serving_objectives,
    parse_slo_spec,
    violating_fraction,
)
from repro.obs.timeseries import TelemetryPlane, snapshot_delta
from repro.serve import (
    InferenceService,
    ServeConfig,
    ShardTierConfig,
    ShardedService,
    build_requests,
    canonical_response_bytes,
    direct_response,
    percentile,
    run_load,
    summarize,
)
from repro.serve.admin import AdminServer
from repro.serve.telemetry import TelemetryController, latency_digest

SERVE_NETWORKS = ("alex", "cnnS")


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One artifact cache for the module: calibration runs once."""
    return tmp_path_factory.mktemp("telemetry-artifacts")


def det_config(**overrides) -> ServeConfig:
    kwargs = dict(
        scale="tiny", networks=SERVE_NETWORKS, deterministic=True,
        queue_limit=256,
    )
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


# ---------------------------------------------------------------------------
# quantile sketch
# ---------------------------------------------------------------------------
class TestQuantileSketch:
    def test_boundaries_bracket_every_observation(self):
        for value in (1e-6, 0.003, 1.0, 7.5, 1234.5, 1e15):
            index = sketch_index(value)
            assert sketch_boundary(index) >= value or index == 384
            if -96 < index <= 384:
                assert sketch_boundary(index - 1) < value

    def test_quantiles_within_one_bucket_step(self):
        histogram = Histogram()
        values = [0.5 + 0.01 * i for i in range(1000)]
        for value in values:
            histogram.observe(value)
        for q in (50, 95, 99):
            exact = percentile(sorted(values), q)
            approx = histogram.quantile(q)
            assert exact <= approx <= exact * 2 ** (1 / 8) + 1e-9

    def test_quantiles_clamped_into_observed_range(self):
        histogram = Histogram()
        histogram.observe(7.0)
        assert histogram.quantile(0) == 7.0
        assert histogram.quantile(100) == 7.0
        assert histogram.percentiles() == {"p50": 7.0, "p95": 7.0, "p99": 7.0}

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram().quantile(99) == 0.0
        assert Histogram().percentiles()["p99"] == 0.0

    def test_zero_and_negative_values_share_the_zero_bucket(self):
        histogram = Histogram()
        histogram.observe(0.0)
        histogram.observe(-5.0)
        histogram.observe(100.0)
        assert histogram.quantile(50) == 0.0
        assert histogram.min == -5.0  # extremes still exact
        assert histogram.quantile(100) == 100.0

    def test_to_dict_roundtrip_preserves_sketch(self):
        histogram = Histogram()
        for value in (0.1, 3.0, 3.1, 900.0):
            histogram.observe(value)
        clone = Histogram.from_dict(histogram.to_dict())
        assert clone.count == histogram.count
        assert clone.buckets == histogram.buckets
        assert clone.quantile(99) == histogram.quantile(99)

    def test_pre_sketch_payload_degrades_to_interpolation(self):
        # A v3 manifest's histogram payload: no "buckets" key at all.
        payload = {"count": 10, "total": 55.0, "min": 1.0, "max": 10.0}
        histogram = Histogram.from_dict(payload)
        assert histogram.count == 10
        assert histogram.quantile(0) == 1.0
        assert histogram.quantile(100) == 10.0
        assert histogram.quantile(50) == pytest.approx(5.5)

    def test_merge_dict_tolerates_junk_buckets(self):
        histogram = Histogram()
        histogram.merge_dict({
            "count": 2, "total": 3.0, "min": 1.0, "max": 2.0,
            "buckets": {"0": 1, "bogus": 1, "8": "2", "9": None},
        })
        assert histogram.buckets == {0: 1, 8: 2}

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=1e-3, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=40,
        ),
        st.lists(
            st.floats(
                min_value=1e-3, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=40,
        ),
        st.lists(
            st.floats(
                min_value=1e-3, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=40,
        ),
    )
    def test_merge_is_associative_and_commutative(self, a, b, c):
        def hist(values):
            histogram = Histogram()
            for value in values:
                histogram.observe(value)
            return histogram

        def merged(order):
            out = Histogram()
            for values in order:
                out.merge_dict(hist(values).to_dict())
            return out

        left = merged([a, b, c])
        right = merged([c, a, b])
        nested = Histogram()
        inner = hist(b)
        inner.merge_dict(hist(c).to_dict())
        nested.merge_dict(hist(a).to_dict())
        nested.merge_dict(inner.to_dict())
        for other in (right, nested):
            assert left.buckets == other.buckets
            assert left.count == other.count
            for q in (50, 95, 99):
                assert left.quantile(q) == other.quantile(q)


# ---------------------------------------------------------------------------
# snapshot merge edge cases (satellite)
# ---------------------------------------------------------------------------
class TestSnapshotMergeEdgeCases:
    def test_empty_histogram_payload_merges_as_noop(self):
        registry = MetricsRegistry()
        registry.observe("h", 2.0)
        registry.merge_snapshot({
            "histograms": {"h": Histogram().to_dict()},
        })
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["min"] == 2.0

    def test_gauge_last_wins_across_three_processes(self):
        parent = MetricsRegistry()
        for value in (3.0, 9.0, 5.0):  # three workers report in order
            worker = MetricsRegistry()
            worker.gauge_set("serve.queue_depth", value)
            worker.gauge_max("serve.queue_depth.max", value)
            parent.merge_snapshot(worker.snapshot())
        gauges = parent.snapshot()["gauges"]
        assert gauges["serve.queue_depth"] == 5.0  # last statement wins
        assert gauges["serve.queue_depth.max"] == 9.0  # watermark survives

    def test_gauge_max_never_shrinks_locally(self):
        registry = MetricsRegistry()
        registry.gauge_max("d.max", 4.0)
        registry.gauge_max("d.max", 2.0)
        assert registry.snapshot()["gauges"]["d.max"] == 4.0

    def test_pre_sketch_manifest_renders_report(self):
        # A v3 manifest (histograms without buckets) must keep loading
        # and rendering — without quantile lines, without crashing.
        manifest = {
            "version": 3,
            "scale": "tiny",
            "jobs": 1,
            "wall_seconds": 1.0,
            "units": [],
            "cache": {},
            "metrics": {
                "counters": {
                    "serve.requests": 4.0, "serve.completed": 4.0,
                },
                "gauges": {"serve.queue_depth": 1.0},
                "histograms": {
                    "serve.latency_ms": {
                        "count": 4, "total": 40.0, "min": 5.0, "max": 15.0,
                    },
                    "serve.batch_size": {
                        "count": 2, "total": 4.0, "min": 2.0, "max": 2.0,
                    },
                },
            },
        }
        text = metrics_report(manifest)
        assert "-- serving --" in text
        assert "p99" not in text  # no sketch, no quantile claims
        assert "queue depth last 1" in text

    def test_sketchful_manifest_renders_percentiles_and_watermark(self):
        registry = MetricsRegistry()
        for index in range(20):
            registry.counter_add("serve.requests")
            registry.counter_add("serve.completed")
            registry.observe("serve.latency_ms", 10.0 + index)
            registry.observe("serve.batch_size", 4)
        registry.gauge_set("serve.queue_depth", 2)
        registry.gauge_max("serve.queue_depth.max", 17)
        manifest = {
            "version": 4, "scale": "tiny", "jobs": 1, "wall_seconds": 1.0,
            "units": [], "cache": {}, "metrics": registry.snapshot(),
        }
        text = metrics_report(manifest)
        assert "p50" in text and "p95" in text and "p99" in text
        assert "queue depth last 2 (max 17)" in text


# ---------------------------------------------------------------------------
# snapshot deltas + the telemetry plane
# ---------------------------------------------------------------------------
class TestSnapshotDelta:
    def test_counters_and_buckets_subtract_exactly(self):
        registry = MetricsRegistry()
        registry.counter_add("c", 3)
        registry.observe("h", 1.0)
        before = registry.snapshot()
        registry.counter_add("c", 2)
        registry.observe("h", 1.0)
        registry.observe("h", 64.0)
        registry.gauge_set("g", 7.0)
        after = registry.snapshot()
        delta = snapshot_delta(before, after)
        assert delta["counters"] == {"c": 2.0}
        assert delta["gauges"] == {"g": 7.0}
        histogram = delta["histograms"]["h"]
        assert histogram["count"] == 2
        assert histogram["buckets"] == {str(sketch_index(1.0)): 1,
                                        str(sketch_index(64.0)): 1}

    def test_unchanged_series_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter_add("c", 3)
        registry.observe("h", 1.0)
        snapshot = registry.snapshot()
        delta = snapshot_delta(snapshot, snapshot)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}


class TestTelemetryPlane:
    def _delta(self, **counters):
        return {"counters": counters, "gauges": {}, "histograms": {}}

    def test_stale_seq_is_dropped_last_write_wins(self):
        plane = TelemetryPlane()
        assert plane.ingest("shard0", self._delta(x=1), seq=1)
        assert plane.ingest("shard0", self._delta(x=1), seq=2)
        assert not plane.ingest("shard0", self._delta(x=100), seq=2)
        assert not plane.ingest("shard0", self._delta(x=100), seq=1)
        assert plane.dropped_stale == 2
        assert plane.totals()["counters"]["x"] == 2.0

    def test_window_covers_only_recent_deltas(self):
        clock = {"now": 0.0}
        plane = TelemetryPlane(window_s=10.0, clock=lambda: clock["now"])
        plane.ingest("s", self._delta(x=1))
        clock["now"] = 20.0
        plane.ingest("s", self._delta(x=5))
        span, window = plane.window()
        assert window["counters"]["x"] == 5.0  # old delta aged out
        assert plane.totals()["counters"]["x"] == 6.0  # cumulative keeps both

    def test_gauge_watermarks_survive_restatement(self):
        plane = TelemetryPlane()
        plane.ingest("s", {"counters": {}, "gauges": {"q": 9.0},
                           "histograms": {}})
        plane.ingest("s", {"counters": {}, "gauges": {"q": 0.0},
                           "histograms": {}})
        assert plane.watermarks()["q"] == 9.0
        assert plane.totals()["gauges"]["q"] == 0.0  # last statement

    def test_fold_into_skips_local_sources(self):
        plane = TelemetryPlane()
        plane.ingest("shard0", self._delta(x=2))
        plane.ingest("shard1", self._delta(x=3))
        plane.ingest("router", self._delta(x=50), local=True)
        registry = MetricsRegistry()
        registry.counter_add("x", 50)  # the local source sampled this
        assert plane.fold_into(registry) == 2
        assert registry.snapshot()["counters"]["x"] == 55.0


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------
class TestExposition:
    def test_sanitize(self):
        assert sanitize_metric_name("serve.latency_ms") == "serve_latency_ms"
        assert sanitize_metric_name("9bad-name") == "_9bad_name"

    def test_render_lints_clean_and_has_histogram_family(self):
        registry = MetricsRegistry()
        registry.counter_add("serve.requests", 3)
        registry.gauge_set("router.live_shards", 2)
        for value in (1.0, 5.0, 5.0, 400.0):
            registry.observe("serve.latency_ms", value)
        text = render_prometheus(
            [({"source": "shard0"}, registry.snapshot())]
        )
        assert validate_exposition(text) == []
        assert "cnvlutin_serve_requests_total" in text
        assert 'le="+Inf",source="shard0"} 4' in text
        assert "cnvlutin_serve_latency_ms_count" in text

    def test_lint_catches_missing_type_and_inf(self):
        assert validate_exposition("orphan_metric 1\n")
        broken = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'  # non-monotonic, and no +Inf
        )
        problems = validate_exposition(broken)
        assert any("+Inf" in problem for problem in problems)
        assert any("monotonic" in problem for problem in problems)

    def test_lint_accepts_own_multiseries_output(self):
        registries = []
        for shard in range(3):
            registry = MetricsRegistry()
            registry.observe("serve.latency_ms", 1.0 + shard)
            registries.append(registry)
        text = render_prometheus(
            [({"source": f"shard{i}"}, r.snapshot())
             for i, r in enumerate(registries)]
        )
        assert validate_exposition(text) == []


# ---------------------------------------------------------------------------
# SLO layer
# ---------------------------------------------------------------------------
class TestSlo:
    def _snapshot(self, latencies, requests=0, errors=0, shed=0):
        registry = MetricsRegistry()
        for value in latencies:
            registry.observe("serve.latency_ms", value)
        if requests:
            registry.counter_add("serve.requests", requests)
        if errors:
            registry.counter_add("serve.errors", errors)
        if shed:
            registry.counter_add("serve.shed", shed)
        return registry.snapshot()

    def test_violating_fraction_is_pessimistic_by_one_bucket(self):
        snapshot = self._snapshot([10.0] * 98 + [1000.0] * 2)
        payload = snapshot["histograms"]["serve.latency_ms"]
        assert violating_fraction(payload, 500.0) == pytest.approx(0.02)
        assert violating_fraction(payload, 2000.0) == 0.0
        assert violating_fraction(payload, 5.0) == 1.0

    def test_latency_burn_rate(self):
        tracker = SloTracker([LatencyObjective(
            name="p99", histogram="serve.latency_ms",
            quantile=99.0, threshold=100.0,
        )])
        healthy = tracker.evaluate(self._snapshot([50.0] * 200))[0]
        assert healthy.healthy and healthy.burn_rate == 0.0
        # 5% of observations above threshold vs a 1% budget: burn 5x.
        burning = tracker.evaluate(
            self._snapshot([50.0] * 190 + [900.0] * 10)
        )[0]
        assert not burning.healthy
        assert burning.burn_rate == pytest.approx(5.0)

    def test_rate_burn_and_breach_counter(self):
        tracker = SloTracker([RateObjective(
            name="errors", numerator="serve.errors",
            denominator="serve.requests", target=0.01,
        )])
        registry = MetricsRegistry()
        statuses = tracker.record(
            self._snapshot([], requests=100, errors=5), registry
        )
        assert statuses[0].burn_rate == pytest.approx(5.0)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["slo.errors.value"] == pytest.approx(0.05)
        assert snapshot["counters"]["slo.errors.breaches"] == 1.0

    def test_parse_slo_spec(self):
        objectives = parse_slo_spec("latency_p99_ms=250,shed_rate=0.2")
        by_name = {objective.name: objective for objective in objectives}
        assert by_name["latency_p99_ms"].threshold == 250.0
        assert by_name["shed_rate"].target == 0.2
        assert by_name["error_rate"].target == 0.01  # default kept
        with pytest.raises(ValueError):
            parse_slo_spec("nonsense=1")
        with pytest.raises(ValueError):
            parse_slo_spec("latency_p99_ms=abc")

    def test_default_objectives_unique_names(self):
        names = [o.name for o in default_serving_objectives()]
        assert len(set(names)) == len(names)


# ---------------------------------------------------------------------------
# controller + admin endpoint
# ---------------------------------------------------------------------------
def _http_get(url: str):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.status, response.read().decode("utf-8")


class TestTelemetryController:
    def test_local_sampling_matches_registry_totals(self):
        controller = TelemetryController(interval_s=0.5, source="service")
        obs.counter_add("serve.requests", 4)
        obs.observe("serve.latency_ms", 12.0)
        controller.sample_local()
        obs.counter_add("serve.requests", 2)
        controller.sample_local()
        totals = controller.plane.totals()
        assert totals["counters"]["serve.requests"] == 6.0
        assert totals["histograms"]["serve.latency_ms"]["count"] == 1
        # Local source: folding must not double count.
        before = obs.get_metrics().snapshot()["counters"]["serve.requests"]
        assert controller.plane.fold_into(obs.get_metrics()) == 0
        after = obs.get_metrics().snapshot()["counters"]["serve.requests"]
        assert before == after

    def test_stats_payload_shape(self):
        controller = TelemetryController(interval_s=0.5, source="service")
        for value in (5.0, 9.0, 30.0):
            obs.observe("serve.latency_ms", value)
        obs.counter_add("serve.requests", 3)
        obs.counter_add("serve.completed", 3)
        obs.gauge_max("serve.queue_depth.max", 11)
        stats = controller.stats()
        assert stats["latency_ms"]["p99"] >= 9.0
        assert math.isfinite(stats["latency_ms"]["p99"])
        assert stats["sources"]["service"]["local"] is True
        assert stats["watermarks"]["serve.queue_depth.max"] == 11.0
        assert {s["name"] for s in stats["slo"]} == {
            "latency_p99_ms", "error_rate", "shed_rate",
        }
        # slo.* gauges landed in the global registry for the manifest.
        gauges = obs.get_metrics().snapshot()["gauges"]
        assert "slo.latency_p99_ms.value" in gauges

    def test_latency_digest_prefers_serve_series(self):
        registry = MetricsRegistry()
        registry.observe("router.forward_ms", 3.0)
        digest = latency_digest(registry.snapshot())
        assert digest["series"] == "router.forward_ms"
        registry.observe("serve.latency_ms", 8.0)
        digest = latency_digest(registry.snapshot())
        assert digest["series"] == "serve.latency_ms"
        assert latency_digest({"histograms": {}}) is None


class TestAdminEndpoint:
    def test_stats_metrics_slo_healthz_and_404(self):
        async def _go():
            controller = TelemetryController(interval_s=5.0, source="service")
            for value in (4.0, 8.0, 15.0):
                obs.observe("serve.latency_ms", value)
            obs.counter_add("serve.requests", 3)
            obs.counter_add("serve.completed", 3)
            server = AdminServer(controller, port=0)
            await server.start()
            base = f"http://127.0.0.1:{server.port}"
            try:
                status, body = await asyncio.to_thread(
                    _http_get, f"{base}/stats"
                )
                stats = json.loads(body)
                assert status == 200
                assert math.isfinite(stats["latency_ms"]["p99"])
                status, body = await asyncio.to_thread(
                    _http_get, f"{base}/metrics"
                )
                assert status == 200
                assert validate_exposition(body) == []
                assert "cnvlutin_serve_latency_ms_bucket" in body
                status, body = await asyncio.to_thread(
                    _http_get, f"{base}/slo"
                )
                assert status == 200
                assert json.loads(body)["health"]["live_shards"] == 0
                status, body = await asyncio.to_thread(
                    _http_get, f"{base}/healthz"
                )
                assert status == 200 and json.loads(body)["ok"] is True
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    await asyncio.to_thread(_http_get, f"{base}/nope")
                assert excinfo.value.code == 404
            finally:
                await server.stop()

        asyncio.run(_go())

    def test_healthz_503_when_burning(self):
        async def _go():
            controller = TelemetryController(
                interval_s=5.0, source="service",
                objectives=parse_slo_spec("error_rate=0.01"),
            )
            obs.counter_add("serve.requests", 10)
            obs.counter_add("serve.errors", 5)
            server = AdminServer(controller, port=0)
            await server.start()
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    await asyncio.to_thread(
                        _http_get,
                        f"http://127.0.0.1:{server.port}/healthz",
                    )
                assert excinfo.value.code == 503
                payload = json.loads(excinfo.value.read().decode())
                assert "error_rate" in payload["burning"]
            finally:
                await server.stop()

        asyncio.run(_go())


# ---------------------------------------------------------------------------
# loadgen percentiles vs the server-side sketch (satellite)
# ---------------------------------------------------------------------------
class TestLoadgenPercentiles:
    def test_summary_percentiles_crosscheck_server_sketch(self, cache_dir):
        async def _go():
            service = InferenceService(det_config(), cache_dir=cache_dir)
            await service.start()
            try:
                requests = build_requests(
                    24, networks=list(SERVE_NETWORKS), seed=5
                )
                result = await run_load(service, requests)
            finally:
                await service.stop()
            return result

        result = asyncio.run(_go())
        summary = summarize(result)
        assert summary["ok"] == 24
        assert set(summary["latency_ms"]) >= {"p50", "p95", "p99", "max"}
        payload = obs.get_metrics().snapshot()["histograms"][
            "serve.latency_ms"
        ]
        sketch = Histogram.from_dict(payload)
        assert sketch.count == 24
        # Same observations, same nearest-rank definition: the sketch
        # may only round a quantile *up*, by at most one ~9% bucket
        # (1e-3 slack: the summary rounds to three decimals).
        for q in (50, 95, 99):
            exact = summary["latency_ms"][f"p{q}"]
            approx = sketch.quantile(q)
            assert exact <= approx + 1e-3
            assert approx <= exact * 2 ** (1 / 8) + 1e-3


# ---------------------------------------------------------------------------
# sharded end-to-end: streaming telemetry + mid-load scrape + bytes
# ---------------------------------------------------------------------------
class TestShardedTelemetryEndToEnd:
    def test_mid_load_scrape_and_byte_identity(self, cache_dir):
        config = det_config()
        tier = ShardTierConfig(
            shards=2, backlog=256, telemetry_interval_s=0.2,
        )
        requests = build_requests(30, networks=list(SERVE_NETWORKS), seed=9)

        async def _go():
            service = ShardedService(config, tier=tier, cache_dir=cache_dir)
            await service.start()
            controller = TelemetryController(
                plane=service.telemetry, interval_s=0.2, source="router"
            )
            controller.start()
            admin = AdminServer(controller, port=0)
            await admin.start()
            base = f"http://127.0.0.1:{admin.port}"
            mid_stats = None
            try:
                load = asyncio.create_task(run_load(service, requests))
                # Poll the admin endpoint until a shard push has landed
                # (the run is still going: load not done).
                for _ in range(200):
                    await asyncio.sleep(0.05)
                    _, body = await asyncio.to_thread(
                        _http_get, f"{base}/stats"
                    )
                    stats = json.loads(body)
                    shard_sources = [
                        name for name in stats["sources"]
                        if name.startswith("shard")
                    ]
                    if shard_sources and any(
                        (stats["sources"][name]["latency_ms"] or {}).get(
                            "count", 0
                        )
                        for name in shard_sources
                    ):
                        mid_stats = stats
                        break
                    if load.done():
                        break
                _, exposition = await asyncio.to_thread(
                    _http_get, f"{base}/metrics"
                )
                result = await load
            finally:
                await admin.stop()
                await controller.stop()
                await service.stop()
            return result, service, mid_stats, exposition

        result, service, mid_stats, exposition = asyncio.run(_go())

        # The mid-run scrape carried per-shard latency quantiles and the
        # live-shard / SLO picture, without stopping the tier.
        assert mid_stats is not None, "no shard telemetry arrived mid-load"
        shard_digests = [
            info["latency_ms"] for name, info in mid_stats["sources"].items()
            if name.startswith("shard") and info["latency_ms"]
        ]
        assert shard_digests
        for digest in shard_digests:
            assert math.isfinite(digest["p50"])
            assert math.isfinite(digest["p99"])
        assert mid_stats["health"]["live_shards"] == 2
        assert {s["name"] for s in mid_stats["slo"]} == {
            "latency_p99_ms", "error_rate", "shed_rate",
        }
        assert validate_exposition(exposition) == []

        # Telemetry on + scraped: responses stay byte-identical to
        # direct inference in deterministic mode.
        assert all(
            response.status == "ok"
            for response in result.responses.values()
        )
        for request in requests:
            response = result.responses[request.id]
            direct = direct_response(service.repo, request)
            assert canonical_response_bytes(response) == (
                canonical_response_bytes(direct)
            )

        # No double counting: streamed deltas + the stop-time fold add
        # up to exactly one count per request in the global registry.
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["router.requests"] == len(requests)
        assert counters["router.forwarded"] == len(requests)
        assert counters["serve.requests"] == len(requests)
        assert counters["serve.completed"] == len(requests)
        histogram = obs.get_metrics().snapshot()["histograms"][
            "serve.latency_ms"
        ]
        assert histogram["count"] == len(requests)
        assert sum(histogram["buckets"].values()) == len(requests)

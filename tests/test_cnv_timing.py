"""Analytic CNV timing tests (repro.core.timing)."""

import numpy as np
import pytest

from repro.baseline.timing import baseline_conv_timing
from repro.baseline.workload import ConvWork
from repro.core.timing import cnv_conv_timing, lane_assignment, window_lane_cycles
from repro.hw.config import PAPER_CONFIG, small_config

from conftest import make_conv_work


class TestLaneAssignment:
    def test_full_depth_reduces_to_vertical_slices(self):
        """With bricks_per_column == lanes (i = 256 in the paper), every
        window column deals its bricks to lanes 0..15 in order — exactly
        the Fig. 6(b) slice assignment."""
        a = lane_assignment(3, 3, 16, 16)
        for fy in range(3):
            for fx in range(3):
                assert list(a[fy, fx]) == list(range(16))

    def test_round_robin_balance(self):
        """Any window's bricks spread across lanes with counts differing by
        at most one (the best any static assignment can do)."""
        a = lane_assignment(5, 5, 3, 16)
        counts = np.bincount(a.reshape(-1), minlength=16)
        assert counts.max() - counts.min() <= 1

    def test_enumeration_order_bz_fastest(self):
        a = lane_assignment(1, 2, 4, 16)
        assert list(a[0, 0]) == [0, 1, 2, 3]
        assert list(a[0, 1]) == [4, 5, 6, 7]


class TestWindowLaneCycles:
    def test_single_window_manual(self):
        """2x2 kernel, 1 brick column, 2 lanes: lanes get alternate bricks."""
        cost = np.array(
            [[[3], [1]], [[2], [5]]], dtype=np.int64
        )  # (y, x, bz=1)
        nnz = cost.copy()
        lanes, window_nnz = window_lane_cycles(cost, nnz, 2, 2, 1, 1, 1, 2)
        # Enumeration: (0,0),(0,1),(1,0),(1,1) -> lanes 0,1,0,1.
        assert lanes[0, 0, 0] == 3 + 2
        assert lanes[0, 0, 1] == 1 + 5
        assert window_nnz[0, 0] == 11


class TestCnvCycles:
    def test_dense_full_depth_matches_baseline(self, rng):
        """With no zeros, no padding, and brick-aligned balanced windows,
        CNV takes exactly the baseline's cycles."""
        work, _ = make_conv_work(
            rng, in_depth=16, kernel=2, pad=0, zero_fraction=0.0, num_filters=4
        )
        cfg = small_config()  # brick 4, 4 lanes -> 4 bricks/column = lanes
        base = baseline_conv_timing(work, cfg)
        cnv = cnv_conv_timing(work, cfg)
        assert cnv.cycles == base.cycles

    def test_sparser_is_never_slower(self, rng):
        """Zeroing more neurons can only reduce CNV cycles."""
        cfg = small_config()
        work, _ = make_conv_work(rng, zero_fraction=0.3)
        sparser = ConvWork(
            name=work.name,
            geometry=work.geometry,
            activations=np.where(
                rng.uniform(size=work.activations.shape) < 0.5,
                0.0,
                work.activations,
            ),
        )
        assert cnv_conv_timing(sparser, cfg).cycles <= cnv_conv_timing(work, cfg).cycles

    def test_all_zero_input_costs_one_cycle_per_brick(self, rng):
        """Empty bricks drain at the one-brick-per-bank-cycle NM limit."""
        work, _ = make_conv_work(rng, in_depth=8, kernel=2, pad=0, zero_fraction=0.0)
        zero_work = ConvWork(
            name=work.name,
            geometry=work.geometry,
            activations=np.zeros_like(work.activations),
        )
        cfg = small_config()  # 4 lanes, brick 4: 2 bricks/column, 8 bricks/window
        timing = cnv_conv_timing(zero_work, cfg)
        # 8 bricks round-robin on 4 lanes -> 2 bubbles per lane -> 2 cycles.
        windows = work.geometry["out_y"] * work.geometry["out_x"]
        assert timing.cycles == windows * 2
        assert timing.lane_events["nonzero"] == 0

    def test_free_skip_ablation(self, rng):
        """empty_brick_cycles=0 removes the empty-brick bubbles."""
        work, _ = make_conv_work(rng, zero_fraction=0.6)
        cfg = small_config()
        with_bubble = cnv_conv_timing(work, cfg)
        free = cnv_conv_timing(work, cfg.with_(empty_brick_cycles=0))
        assert free.cycles <= with_bubble.cycles
        assert free.lane_events["zero"] == 0

    def test_first_layer_falls_back_to_baseline(self, rng):
        work, _ = make_conv_work(rng, is_first=True)
        cfg = small_config()
        cnv = cnv_conv_timing(work, cfg)
        base = baseline_conv_timing(work, cfg)
        assert cnv.cycles == base.cycles
        assert set(cnv.lane_events) == {"conv1"}

    def test_first_layer_encoded_ablation(self, rng):
        """first_layer_encoded=True lets CNV skip conv1 zeros too."""
        work, _ = make_conv_work(rng, is_first=True, zero_fraction=0.6)
        cfg = small_config().with_(first_layer_encoded=True)
        cnv = cnv_conv_timing(work, cfg)
        base = baseline_conv_timing(work, small_config())
        assert cnv.cycles < base.cycles

    def test_event_total_is_units_lanes_cycles(self, rng):
        work, _ = make_conv_work(rng, zero_fraction=0.5)
        cfg = small_config()
        timing = cnv_conv_timing(work, cfg)
        total = sum(timing.lane_events.values())
        assert total == pytest.approx(
            timing.cycles * cfg.num_units * cfg.neuron_lanes
        )

    def test_nonzero_events_equal_nonzero_work(self, rng):
        """Each non-zero neuron is processed exactly once per pass per
        window covering it — counted through the lane-event metric."""
        work, _ = make_conv_work(
            rng, in_depth=8, in_y=4, in_x=4, kernel=2, pad=0, stride=2, zero_fraction=0.5
        )
        cfg = small_config()
        timing = cnv_conv_timing(work, cfg)
        # stride 2, kernel 2: each neuron in exactly one window.
        nnz = int((work.activations != 0).sum())
        assert timing.lane_events["nonzero"] == nnz * cfg.num_units

    def test_groups_and_passes_scale(self, rng):
        work, _ = make_conv_work(rng, in_depth=8, num_filters=8, groups=2)
        cfg = small_config()
        timing = cnv_conv_timing(work, cfg)
        assert timing.cycles > 0
        single, _ = make_conv_work(rng, in_depth=8, num_filters=4, groups=2)

    def test_speedup_in_plausible_band(self, rng):
        """At ~45% zeros, conv speedup lands in the paper's ballpark."""
        work, _ = make_conv_work(
            rng, in_depth=64, in_y=10, in_x=10, num_filters=8, zero_fraction=0.45
        )
        cfg = PAPER_CONFIG
        base = baseline_conv_timing(work, cfg).cycles
        cnv = cnv_conv_timing(work, cfg).cycles
        assert 1.1 < base / cnv < 2.0

    def test_unaligned_depth_padded(self, rng):
        """Depth 24 (google 5x5 layers) pads the final brick with zeros."""
        work, _ = make_conv_work(rng, in_depth=6, kernel=2, pad=0)  # brick 4 -> 1.5
        cfg = small_config()
        timing = cnv_conv_timing(work, cfg)
        assert timing.cycles > 0

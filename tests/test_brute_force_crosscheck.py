"""Brute-force cross-checks: independent reimplementations of the timing
math, written the slow-and-obvious way, must agree with the vectorized
models.  (The structural simulators are the third, cycle-by-cycle opinion;
these tests pin down the closed forms themselves.)"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.timing import baseline_conv_timing
from repro.baseline.workload import ConvWork, group_activations
from repro.core.timing import cnv_conv_timing, lane_assignment
from repro.hw.config import ArchConfig
from repro.nn.activations import sparse_activations


def brute_force_cnv_cycles(work: ConvWork, config: ArchConfig) -> int:
    """Obvious per-window, per-lane enumeration of CNV cycles."""
    geom = work.geometry
    kernel, stride = geom["kernel"], geom["stride"]
    lanes, brick = config.neuron_lanes, config.brick_size
    total = 0
    for group in range(work.num_groups):
        slab = group_activations(work, group)
        depth = slab.shape[0]
        bricks_z = -(-depth // brick)
        passes = -(-work.filters_per_group // config.filters_per_pass)
        for oy in range(geom["out_y"]):
            for ox in range(geom["out_x"]):
                lane_cycles = [0] * lanes
                index = 0
                for fy in range(kernel):
                    for fx in range(kernel):
                        for bz in range(bricks_z):
                            z0, z1 = bz * brick, min((bz + 1) * brick, depth)
                            nnz = int(
                                (slab[z0:z1, oy * stride + fy, ox * stride + fx] != 0).sum()
                            )
                            cost = max(nnz, config.empty_brick_cycles)
                            lane_cycles[index % lanes] += cost
                            index += 1
                total += max(lane_cycles) * passes
    return total


def brute_force_baseline_cycles(work: ConvWork, config: ArchConfig) -> int:
    geom = work.geometry
    kernel = geom["kernel"]
    windows = geom["out_y"] * geom["out_x"]
    total = 0
    for group in range(work.num_groups):
        depth = geom["in_depth"] // geom["groups"]
        passes = -(-work.filters_per_group // config.filters_per_pass)
        if config.fetch_packing == "row":
            per_window = kernel * (-(-(kernel * depth) // config.neuron_lanes))
        else:
            per_window = -(-(kernel * kernel * depth) // config.neuron_lanes)
        total += windows * per_window * passes
    return total


cases = st.tuples(
    st.sampled_from([3, 4, 6, 8, 12]),  # depth
    st.integers(4, 7),  # spatial
    st.sampled_from([2, 5]),  # filters
    st.integers(1, 3),  # kernel
    st.integers(1, 2),  # stride
    st.integers(0, 1),  # pad
    st.floats(0.0, 0.9),
    st.integers(0, 2**32 - 1),
)


class TestBruteForceAgreement:
    @settings(max_examples=25, deadline=None)
    @given(cases, st.sampled_from([0, 1]), st.sampled_from(["window", "row"]))
    def test_cnv_and_baseline_cycles(self, case, empty_cost, packing):
        depth, size, filters, kernel, stride, pad, zf, seed = case
        out = (size - kernel + 2 * pad) // stride + 1
        if out <= 0:
            return
        rng = np.random.default_rng(seed)
        act = sparse_activations((depth, size, size), zf, rng, correlation=0.7)
        config = ArchConfig(
            num_units=2,
            neuron_lanes=4,
            filters_per_unit=2,
            brick_size=4,
            empty_brick_cycles=empty_cost,
            fetch_packing=packing,
        )
        work = ConvWork(
            "bf",
            {
                "in_depth": depth, "in_y": size, "in_x": size,
                "num_filters": filters, "kernel": kernel, "stride": stride,
                "pad": pad, "groups": 1, "out_y": out, "out_x": out,
            },
            act,
        )
        assert cnv_conv_timing(work, config).cycles == brute_force_cnv_cycles(
            work, config
        )
        assert baseline_conv_timing(work, config).cycles == (
            brute_force_baseline_cycles(work, config)
        )

    def test_grouped_case(self, rng):
        act = sparse_activations((8, 6, 6), 0.5, rng)
        config = ArchConfig(num_units=1, neuron_lanes=4, filters_per_unit=2, brick_size=4)
        work = ConvWork(
            "bf",
            {
                "in_depth": 8, "in_y": 6, "in_x": 6, "num_filters": 4,
                "kernel": 2, "stride": 1, "pad": 0, "groups": 2,
                "out_y": 5, "out_x": 5,
            },
            act,
        )
        assert cnv_conv_timing(work, config).cycles == brute_force_cnv_cycles(
            work, config
        )


class TestLaneAssignmentBruteForce:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 20), st.sampled_from([4, 8, 16]))
    def test_matches_flat_enumeration(self, ky, kx, bz, lanes):
        a = lane_assignment(ky, kx, bz, lanes)
        index = 0
        for fy in range(ky):
            for fx in range(kx):
                for b in range(bz):
                    assert a[fy, fx, b] == index % lanes
                    index += 1

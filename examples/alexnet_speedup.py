#!/usr/bin/env python
"""AlexNet on Cnvlutin: per-layer speedup, activity and energy.

Calibrates an AlexNet-geometry network to the paper's Fig. 1 zero-neuron
statistics (44%), runs the full-network timing models, and prints the
per-layer cycle breakdown, the Fig. 10-style activity split and the
Fig. 13 efficiency metrics — the single-network version of the paper's
evaluation.

Run:  python examples/alexnet_speedup.py [--scale reduced|tiny|full]
"""

import argparse

from repro.experiments import ExperimentContext, PaperConfig, format_table
from repro.experiments.fig12_power import network_energy
from repro.hw.counters import LANE_EVENT_CATEGORIES
from repro.power.metrics import EfficiencyMetrics, improvement


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="reduced", choices=["tiny", "reduced", "full"])
    args = parser.parse_args()

    config = PaperConfig(scale=args.scale, networks=["alex"])
    ctx = ExperimentContext(config)
    print(f"calibrating alex at {args.scale} scale "
          f"(input {config.input_size('alex')}px)...")

    base = ctx.baseline_timing("alex")
    cnv = ctx.cnv_timing("alex")

    rows = []
    cnv_cycles = cnv.cycles_by_layer()
    for layer in base.layers:
        cnv_c = cnv_cycles.get(layer.name, layer.cycles)
        rows.append(
            {
                "layer": layer.name,
                "kind": layer.kind,
                "baseline_cycles": layer.cycles,
                "cnv_cycles": cnv_c,
                "speedup": layer.cycles / cnv_c if cnv_c else float("inf"),
            }
        )
    print()
    print(format_table(rows))

    print(f"\ntotal: baseline {base.total_cycles} cycles, CNV {cnv.total_cycles} "
          f"-> {base.total_cycles / cnv.total_cycles:.2f}x speedup "
          "(paper alex: ~1.37x)")

    events = cnv.lane_events()
    total = sum(base.lane_events().values())
    split = ", ".join(
        f"{c}: {events[c] / total:.1%}" for c in LANE_EVENT_CATEGORIES
    )
    print(f"CNV activity breakdown (of baseline events): {split}")

    base_rep, cnv_rep = network_energy(ctx, "alex")
    freq = ctx.arch.frequency_ghz
    ratios = improvement(
        EfficiencyMetrics(base_rep.total_j, base.seconds(freq)),
        EfficiencyMetrics(cnv_rep.total_j, cnv.seconds(freq)),
    )
    print(f"energy gain {ratios['energy']:.2f}x, EDP gain {ratios['edp']:.2f}x, "
          f"ED2P gain {ratios['ed2p']:.2f}x (paper means: 1.47x / 2.01x)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: skip zero neurons on one convolutional layer.

Builds a small sparse conv layer, runs it through BOTH cycle-accurate
simulators — the DaDianNao baseline and Cnvlutin — and shows that CNV
produces bit-identical outputs in fewer cycles by skipping the
zero-valued neurons, exactly as in the paper's Figs. 3/4 walkthrough.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baseline import DaDianNaoNode, baseline_conv_timing
from repro.baseline.workload import ConvWork
from repro.core import CnvNode, cnv_conv_timing, encode
from repro.hw import small_config
from repro.nn import sparse_activations
from repro.nn.layers import conv2d


def main() -> None:
    rng = np.random.default_rng(42)
    config = small_config(num_units=2, neuron_lanes=4, filters_per_unit=2, brick_size=4)

    # A 16 x 8 x 8 input with 45% zero neurons (the paper's Fig. 1 regime),
    # convolved by 4 filters of 3x3.
    activations = sparse_activations((16, 8, 8), zero_fraction=0.45, rng=rng)
    weights = rng.normal(size=(4, 16, 3, 3))
    geometry = {
        "in_depth": 16, "in_y": 8, "in_x": 8, "num_filters": 4,
        "kernel": 3, "stride": 1, "pad": 1, "groups": 1, "out_y": 8, "out_x": 8,
    }
    work = ConvWork("demo", geometry, activations)

    print(f"input neurons: {activations.size}, "
          f"{(activations == 0).mean():.0%} of them zero")

    # The ZFNAf encoding the CNV dispatcher consumes.
    zfnaf = encode(activations, brick_size=config.brick_size)
    print(f"ZFNAf: {zfnaf.num_bricks} bricks, {zfnaf.total_nonzero} (value, offset) "
          f"pairs, storage {zfnaf.storage_bits() / zfnaf.dense_storage_bits() - 1:+.0%} "
          "vs the dense array")

    golden = conv2d(activations, weights, stride=1, pad=1)

    baseline = DaDianNaoNode(config).run_conv_layer(work, weights)
    cnv = CnvNode(config).run_conv_layer(work, weights)

    assert np.allclose(baseline.output, golden), "baseline functional mismatch"
    assert np.allclose(cnv.output, golden), "CNV functional mismatch"
    print("\nboth simulators reproduce the golden convolution exactly")

    print(f"baseline cycles: {baseline.cycles}")
    print(f"CNV cycles:      {cnv.cycles}")
    print(f"speedup:         {baseline.cycles / cnv.cycles:.2f}x")
    print(f"multiplications: baseline {baseline.counters['mults']:.0f} "
          f"(zeros included) vs CNV {cnv.counters['mults']:.0f} (all effectual)")

    # The closed-form models predict the structural simulators exactly.
    assert baseline_conv_timing(work, config).cycles == baseline.cycles
    assert cnv_conv_timing(work, config).cycles == cnv.cycles
    print("analytic timing models match the structural simulators cycle-for-cycle")


if __name__ == "__main__":
    main()

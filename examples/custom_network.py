#!/usr/bin/env python
"""Bring your own network: describe it, calibrate it, accelerate it.

Shows the library-adoption path for a network that is not one of the
paper's six: declare the topology with LayerSpec, initialize and calibrate
weights to a chosen zero-neuron level, and compare DaDianNao vs Cnvlutin
timing — including a custom accelerator geometry and the empty-brick
ablation knob.

Run:  python examples/custom_network.py
"""

import numpy as np

from repro.baseline import baseline_network_timing
from repro.core import cnv_network_timing
from repro.experiments.report import format_table
from repro.hw import PAPER_CONFIG
from repro.nn import (
    LayerSpec,
    Network,
    calibrate_network,
    init_weights,
    measure_zero_fractions,
    run_forward,
)
from repro.nn.datasets import natural_images


def build_my_net() -> Network:
    """A compact VGG-flavoured classifier for 64x64 RGB inputs."""
    return Network(
        name="mynet",
        input_shape=(3, 64, 64),
        layers=[
            LayerSpec(name="conv1", kind="conv", num_filters=32, kernel=5, stride=2, fused_relu=True),
            LayerSpec(name="pool1", kind="maxpool", kernel=2, stride=2),
            LayerSpec(name="conv2", kind="conv", num_filters=64, kernel=3, pad=1, fused_relu=True),
            LayerSpec(name="conv3", kind="conv", num_filters=64, kernel=3, pad=1, fused_relu=True),
            LayerSpec(name="pool2", kind="maxpool", kernel=2, stride=2),
            LayerSpec(name="conv4", kind="conv", num_filters=128, kernel=3, pad=1, fused_relu=True),
            LayerSpec(name="fc", kind="fc", num_filters=10, fused_relu=False),
            LayerSpec(name="prob", kind="softmax"),
        ],
    )


def main() -> None:
    net = build_my_net()
    print(net.describe())

    rng = np.random.default_rng(0)
    store = init_weights(net, rng)
    images = natural_images(net.input_shape, 3, seed=1)

    # Calibrate the ReLU operating points to 50% zero neurons.
    calibrate_network(net, store, images[0], mean_target=0.50)
    report = measure_zero_fractions(net, store, images)
    print(f"\ncalibrated zero-neuron fraction: {report.mac_weighted_mean:.1%} "
          "(target 50%)")

    fwd = run_forward(net, store, images[0])
    rows = []
    for label, arch in [
        ("paper geometry", PAPER_CONFIG),
        ("half-size node (8 units)", PAPER_CONFIG.with_(num_units=8)),
        ("free empty-brick skip", PAPER_CONFIG.with_(empty_brick_cycles=0)),
    ]:
        base = baseline_network_timing(net, fwd.conv_inputs, arch).total_cycles
        cnv = cnv_network_timing(net, fwd.conv_inputs, arch).total_cycles
        rows.append({"configuration": label, "baseline": base, "cnv": cnv,
                     "speedup": base / cnv})
    print()
    print(format_table(rows))


if __name__ == "__main__":
    main()

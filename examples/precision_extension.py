#!/usr/bin/env python
"""Future work, implemented: CNV + variable per-layer precision.

The paper's conclusion proposes "combining CNV with approaches that exploit
other value properties of DNNs, such as the variable precision requirements
of DNNs [Stripes]".  This example finds each layer's minimal activation
bit-width (the Judd-et-al. methodology the paper's threshold search
imitates, driven by the same prediction-stability criterion) and models a
bit-serial CNV front-end at those precisions: the two value properties —
many zeros, few needed bits — compound.

Run:  python examples/precision_extension.py [--network alex]
"""

import argparse

from repro.experiments import ExperimentContext, PaperConfig, format_table
from repro.extensions import (
    combined_cnv_precision_timing,
    minimal_precisions,
    precision_speedup_factor,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--network", default="alex",
                        choices=["alex", "google", "nin", "vgg19", "cnnM", "cnnS"])
    parser.add_argument("--scale", default="tiny", choices=["tiny", "reduced", "full"])
    args = parser.parse_args()

    ctx = ExperimentContext(PaperConfig(scale=args.scale, networks=[args.network]))
    nctx = ctx.network_ctx(args.network)
    print(f"searching minimal per-layer activation precisions for "
          f"{args.network} ({args.scale} scale)...")
    profile = minimal_precisions(nctx.network, nctx.store, nctx.images[:2])

    rows = [
        {"layer": layer, "bits": bits}
        for layer, bits in profile.bits.items()
    ]
    print(format_table(rows))
    print(f"mean precision: {profile.mean_bits:.1f} bits "
          f"(ideal bit-serial factor {precision_speedup_factor(profile.bits):.2f}x); "
          f"predictions stable: {profile.stable}")

    fwd = ctx.forward(args.network, 0)
    base = ctx.baseline_timing(args.network).total_cycles
    plain = ctx.cnv_timing(args.network).total_cycles
    combined = combined_cnv_precision_timing(
        nctx.network, fwd.conv_inputs, ctx.arch, profile.bits
    ).total_cycles
    print(f"\nspeedup over DaDianNao: CNV alone {base / plain:.2f}x, "
          f"CNV + bit-serial precision {base / combined:.2f}x")
    print("zero skipping and precision scaling compound (nearly "
          "multiplicatively on the encoded layers).")


if __name__ == "__main__":
    main()

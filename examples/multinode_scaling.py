#!/usr/bin/env python
"""Multi-node scaling: running networks too big for one node (Section IV-A).

Full-size AlexNet's fc6 alone holds ~75 MB of synapses — more than a
node's 32 MB of SB — which is exactly why DaDianNao (and CNV on top of it)
scales to multi-node systems.  This example sizes each network, then
sweeps node counts for both architectures, showing filter-partitioned
compute scaling against the input-broadcast overhead.

Run:  python examples/multinode_scaling.py
"""

import numpy as np

from repro.cluster import ClusterConfig, cluster_network_timing, nodes_required
from repro.experiments.report import format_table
from repro.hw.config import PAPER_CONFIG
from repro.nn.calibration import calibrate_network
from repro.nn.datasets import natural_images
from repro.nn.inference import init_weights, run_forward
from repro.nn.models import build_network, network_names


def main() -> None:
    print("node capacity: 32 MB SB, 4 MB NM -> nodes needed per network "
          "(full-size inputs):")
    sizing = []
    for name in network_names():
        net = build_network(name)
        sizing.append({"network": name, "nodes_required": nodes_required(net, PAPER_CONFIG)})
    print(format_table(sizing))

    # Scaling sweep on a calibrated (reduced-size) AlexNet.
    net = build_network("alex", input_size=115)
    store = init_weights(net, np.random.default_rng(0))
    images = natural_images(net.input_shape, 2, seed=1)
    calibrate_network(net, store, images)
    fwd = run_forward(net, store, images[0], keep_outputs=False)

    rows = []
    one_node_base = None
    for nodes in (1, 2, 4, 8):
        cluster = ClusterConfig(num_nodes=nodes)
        base = cluster_network_timing(net, fwd.conv_inputs, cluster, "dadiannao")
        cnv = cluster_network_timing(net, fwd.conv_inputs, cluster, "cnvlutin")
        if one_node_base is None:
            one_node_base = base.total_cycles
        rows.append(
            {
                "nodes": nodes,
                "baseline_cycles": base.total_cycles,
                "cnv_cycles": cnv.total_cycles,
                "baseline_scaling": one_node_base / base.total_cycles,
                "cnv_vs_baseline": base.total_cycles / cnv.total_cycles,
            }
        )
    print("\nalex scaling sweep (reduced size):")
    print(format_table(rows))
    print("\nCNV's advantage persists at every node count; scaling is "
          "sublinear once per-node filter shares shrink below the 256 "
          "concurrent filters a node already exploits.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Dynamic neuron pruning with a genuinely trained classifier (Fig. 14).

Trains the small CNN on the synthetic shape-classification task (pure
numpy SGD), then runs the paper's greedy per-layer threshold search
(Section V-E) against real test accuracy, printing the accuracy-vs-speedup
trade-off: a lossless region first, then accuracy decaying as thresholds
rise — the Fig. 14 shape.

Run:  python examples/pruning_tradeoff.py
"""

from repro.core.pruning import ThresholdSearcher, pareto_frontier
from repro.experiments.fig14_pruning import SmallCnnEvaluator
from repro.experiments.report import format_table
from repro.nn.training import train_small_cnn


def main() -> None:
    print("training the small CNN on the shape dataset (numpy SGD)...")
    result = train_small_cnn(train_count=512, test_count=256, epochs=5)
    print(f"test accuracy: {result.test_accuracy:.1%} "
          f"(chance would be {1 / 8:.1%})")

    evaluator = SmallCnnEvaluator(result, accuracy_images=128)
    searcher = ThresholdSearcher(
        evaluate=evaluator, layer_names=evaluator.prunable_layers
    )

    rows = []
    for tolerance in (0.0, 0.01, 0.05, 0.10, 0.25):
        point = searcher.search(tolerance=tolerance)
        rows.append(
            {
                "tolerance": tolerance,
                "thresholds(raw LSBs)": ",".join(
                    str(point.raw_thresholds[n]) for n in evaluator.prunable_layers
                ),
                "accuracy": point.accuracy,
                "speedup": point.speedup,
            }
        )
        print(f"tolerance {tolerance:.2f}: speedup {point.speedup:.2f}x "
              f"at accuracy {point.accuracy:.1%}")

    print()
    print("operating points (Table II / Fig. 14 analogue for the trained net):")
    print(format_table(rows))

    frontier = pareto_frontier(searcher.history)
    print(f"\nexplored {len(searcher.history)} configurations; "
          f"{len(frontier)} on the accuracy/speedup pareto frontier")
    print("paper shape check: an initial lossless region, then accuracy "
          "decays as speedup grows.")


if __name__ == "__main__":
    main()

"""Analytic timing model of Cnvlutin2: skip ineffectual weights too.

Cnvlutin skips ineffectual *activations*: a lane spends one cycle per
non-zero ``(value, offset)`` pair of each ZFNAf brick it owns.  Cnvlutin2
(the follow-up sketched in the paper's conclusion and developed by
Judd et al.) additionally skips activations whose products would all be
ineffectual because the *weights* at that input channel are zero: the
front end intersects the activation brick's offset stream with a
pruned-weight offset stream and dispatches only the offsets present in
both.

The model here keeps CNV's structure — brick-interleaved lane
assignment, window-boundary synchronization, ``empty_brick_cycles`` NM
supply cost — and changes only the per-brick cost:

    cost(brick) = max(|nz(activations) ∩ union_nz(weights)|,
                      empty_brick_cycles)

where ``union_nz(weights)`` is, for the brick's (fy, fx, bz) position,
the set of in-brick offsets at which *any* filter of the current pass
holds a non-zero weight (the weight offset stream is shared per pass —
one synapse column per filter, so an offset is skippable only when every
filter of the pass is zero there).  Because the intersection can never
exceed the activation non-zero count, every brick costs at most its CNV
cost: CNV2 cycles <= CNV cycles layer by layer, for any weights — the
invariant the fig9_backends acceptance check and the conformance suite
pin.  Dense (unpruned) weights reduce the model to CNV exactly.

First-layer convolutions take the unencoded baseline path, exactly like
CNV (the raw image is not ZFNAf-encoded).  The brick/offset bookkeeping
matches :mod:`repro.core.zfnaf` brick alignment (depth padded to a
multiple of ``brick_size``; padding slots are zero, hence ineffectual),
and the property tests cross-validate the intersection counts against
brute force over :class:`~repro.core.zfnaf.ZfnafArray` bricks.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.other_layers import other_layers_timing
from repro.baseline.timing import baseline_conv_timing, conv_works_from_inputs
from repro.baseline.workload import ConvWork, ceil_div, group_activations
from repro.core.timing import lane_assignment
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters
from repro.hw.timing_types import LayerTiming, NetworkTiming
from repro.nn.network import Network

__all__ = [
    "brick_slot_mask",
    "pass_weight_union",
    "pair_intersection_counts",
    "cnv2_conv_timing",
    "cnv2_network_timing",
]

ARCHITECTURE = "cnvlutin2"


def brick_slot_mask(slab: np.ndarray, brick_size: int) -> np.ndarray:
    """Non-zero mask of every ZFNAf slot of a ``(depth, y, x)`` slab.

    Returns a bool array of shape ``(y, x, bricks, slot)`` using the same
    brick alignment as :func:`repro.core.zfnaf.encode`: depth is padded to
    a multiple of ``brick_size`` and padding slots are zero (ineffectual).
    """
    depth, height, width = slab.shape
    bricks = ceil_div(depth, brick_size)
    padded = np.zeros((bricks * brick_size, height, width), dtype=bool)
    padded[:depth] = slab != 0.0
    return padded.reshape(bricks, brick_size, height, width).transpose(2, 3, 0, 1)


def pass_weight_union(weights: np.ndarray, brick_size: int) -> np.ndarray:
    """Per-(fy, fx) offset union of one pass's non-zero weights.

    ``weights`` holds the pass's filters, shape ``(filters, depth, Ky,
    Kx)``.  Returns a bool array ``(Ky, Kx, bricks, slot)``: True where at
    least one filter has a non-zero weight at that (kernel position,
    input channel) — the offsets the weight stream makes dispatchable.
    """
    _, depth, kernel_y, kernel_x = weights.shape
    bricks = ceil_div(depth, brick_size)
    any_filter = np.zeros((bricks * brick_size, kernel_y, kernel_x), dtype=bool)
    any_filter[:depth] = (weights != 0.0).any(axis=0)
    return any_filter.reshape(
        bricks, brick_size, kernel_y, kernel_x
    ).transpose(2, 3, 0, 1)


def pair_intersection_counts(
    act_mask: np.ndarray, union_mask: np.ndarray
) -> np.ndarray:
    """Dispatched offsets per brick: activation non-zero AND weight-live.

    ``act_mask`` is ``(y, x, bricks, slot)`` (from :func:`brick_slot_mask`),
    ``union_mask`` is ``(bricks, slot)`` — one (fy, fx) plane of
    :func:`pass_weight_union`.  Returns float64 counts ``(y, x, bricks)``;
    ``brick_size - count`` is the skipped-pair count (zero activation OR
    all-zero weights), the quantity the property tests brute-force.
    """
    return np.einsum(
        "yxbs,bs->yxb",
        act_mask.astype(np.float32),
        union_mask.astype(np.float32),
    ).astype(np.float64)


def cnv2_conv_timing(
    work: ConvWork, config: ArchConfig, weights: np.ndarray
) -> LayerTiming:
    """Cycles and activity for one conv layer on CNV2.

    ``weights`` is the layer's full filter bank ``(num_filters,
    group_depth, kernel, kernel)``; its exact zeros define the
    ineffectual-weight offsets.  First layers take the unencoded baseline
    path, as on CNV.
    """
    if weights.shape[0] != work.geometry["num_filters"]:
        raise ValueError(
            f"{work.name}: weights carry {weights.shape[0]} filters, "
            f"geometry expects {work.geometry['num_filters']}"
        )
    if work.is_first and not config.first_layer_encoded:
        return baseline_conv_timing(work, config)

    geom = work.geometry
    lanes = config.neuron_lanes
    kernel = geom["kernel"]
    stride = geom["stride"]
    out_y, out_x = geom["out_y"], geom["out_x"]
    windows = out_y * out_x

    counters = ActivityCounters()
    total_cycles = 0
    nonzero_events = 0.0
    zero_events = 0.0
    stall_events = 0.0

    for group in range(work.num_groups):
        slab = group_activations(work, group)
        act_mask = brick_slot_mask(slab, config.brick_size)
        bricks = act_mask.shape[2]
        lane_of = lane_assignment(kernel, kernel, bricks, lanes)
        onehots = np.zeros((kernel, kernel, bricks, lanes), dtype=np.float64)
        for fy in range(kernel):
            for fx in range(kernel):
                onehots[fy, fx, np.arange(bricks), lane_of[fy, fx]] = 1.0

        fpg = work.filters_per_group
        group_weights = weights[group * fpg : (group + 1) * fpg]
        passes = ceil_div(fpg, config.filters_per_pass)
        group_cycles = 0

        for p in range(passes):
            pass_weights = group_weights[
                p * config.filters_per_pass : (p + 1) * config.filters_per_pass
            ]
            union = pass_weight_union(pass_weights, config.brick_size)
            lane_cycles = np.zeros((out_y, out_x, lanes), dtype=np.float64)
            dispatched = 0.0
            for fy in range(kernel):
                for fx in range(kernel):
                    counts = pair_intersection_counts(act_mask, union[fy, fx])
                    if config.empty_brick_cycles:
                        cost = np.maximum(counts, config.empty_brick_cycles)
                    else:
                        cost = counts
                    # Window (oy, ox) reads padded position (oy*S+fy, ox*S+fx).
                    view = cost[fy::stride, fx::stride][:out_y, :out_x]
                    lane_cycles += view @ onehots[fy, fx]
                    eff = counts[fy::stride, fx::stride][:out_y, :out_x]
                    dispatched += float(eff.sum())
            window_cycles = lane_cycles.max(axis=2)
            pass_cycles = int(window_cycles.sum())
            group_cycles += pass_cycles

            busy = float(lane_cycles.sum())  # dispatched + empty-brick bubbles
            stall = float((window_cycles[..., None] - lane_cycles).sum())
            scale = config.num_units
            nonzero_events += scale * dispatched
            zero_events += scale * (busy - dispatched)
            stall_events += scale * stall

            # Datapath: only dispatched (intersected) offsets multiply.
            active = scale * dispatched
            counters.add("mults", active * config.filters_per_unit)
            counters.add("adds", active * config.filters_per_unit)
            counters.add("sb_reads", active)
            # Both offset streams are consulted per dispatched pair:
            # the activation's ZFNAf offset and the weight offset field.
            counters.add("offset_reads", 2 * active)
            counters.add("nbin_reads", scale * busy)
            counters.add("nbin_writes", scale * busy)
            counters.add(
                "nbout_reads",
                pass_cycles * config.num_units * config.filters_per_unit,
            )
            counters.add(
                "nbout_writes",
                pass_cycles * config.num_units * config.filters_per_unit,
            )
            counters.add("nm_reads", windows * kernel * kernel * bricks)
            counters.add("broadcasts", pass_cycles)

        total_cycles += group_cycles
        # Output encoding is pass-independent (one encoded output slab).
        out_slots = (
            ceil_div(fpg, config.brick_size) * config.brick_size * windows
        )
        counters.add("encoder_cycles", out_slots)
        counters.add("nm_writes", out_slots / config.brick_size)

    lane_events = {
        "nonzero": nonzero_events,
        "zero": zero_events,
        "stall": stall_events,
    }
    return LayerTiming(
        name=work.name,
        kind="conv",
        cycles=total_cycles,
        lane_events=lane_events,
        counters=counters,
    )


def cnv2_network_timing(
    network: Network,
    conv_inputs: dict[str, np.ndarray],
    config: ArchConfig,
    weights: dict[str, np.ndarray],
) -> NetworkTiming:
    """Full-network CNV2 timing; ``weights`` maps conv layer -> filter bank."""
    layers = [
        cnv2_conv_timing(work, config, weights[work.name])
        for work in conv_works_from_inputs(network, conv_inputs)
    ]
    layers.extend(other_layers_timing(network, config))
    return NetworkTiming(
        network=network.name, architecture=ARCHITECTURE, layers=layers
    )

"""Analytic timing model of an SCNN-style compressed-sparse accelerator.

SCNN (Parashar et al., ISCA 2017) stores both weights and activations
compressed and computes the *Cartesian product* of the non-zero weight
vector and non-zero activation vector of each input channel: every
multiplication performed is effectual (both operands non-zero), and
output coordinates are reconstructed from the operand indices, with
products scattered into a banked accumulator array.

This model keeps the node budget of the repo's other backends —
``num_units`` PEs, ``multipliers_per_unit`` multipliers each (at the
paper config 16 x 256 = 4096 multipliers, identical to DaDianNao's
array) — and computes, per conv layer:

* **Effectual products** ``E``: for every kernel position (fy, fx) and
  input channel z, (# filters with a non-zero weight at (z, fy, fx)) x
  (# *valid* output positions whose input activation at that offset is
  non-zero).  Valid-output pairs only: products that would land outside
  the output plane (the halo SCNN discards) are not counted, so ``E``
  never exceeds the dense work and ``mults == E`` exactly — the counter
  the conformance suite and fig9_backends cross-validate against an
  independent brute-force/analytic count.
* **PE tiling**: output positions are split into ``num_units``
  contiguous row-major chunks (SCNN's planar tiling); each PE's
  multiplier-limited time is ``ceil(P_pe / multipliers_per_unit)``.
* **Accumulator-bank contention**: each PE has ``2 x
  multipliers_per_unit`` accumulator banks (SCNN provisions 2x to keep
  scatter conflicts rare); position ``p`` maps to bank ``p mod B`` and
  needs ``ceil(products(p) / F_live)`` serialized accumulations, where
  ``F_live = min(filters_per_group, filters_per_unit)`` output channels
  absorb products in parallel.  A PE's time is the max of its
  multiplier-limited and most-loaded-bank time; the layer (per group)
  takes the slowest PE.

Unlike CNV/CNV2 the model has no first-layer special case: compressed
weights skip their zeros against the dense image just as well.  Groups
run sequentially, like every other backend here.

Known honest corner: on tiny output planes (fewer output positions than
PEs — 1x1 outputs at toy scales) most PEs idle and SCNN can lose to the
dense baseline; the conformance suite documents and avoids that regime,
matching the paper's own observation that SCNN underutilizes on small
spatial dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.other_layers import other_layers_timing
from repro.baseline.timing import conv_works_from_inputs
from repro.baseline.workload import ConvWork, ceil_div, group_activations
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters
from repro.hw.timing_types import LayerTiming, NetworkTiming
from repro.nn.network import Network

__all__ = [
    "effectual_pair_count",
    "scnn_conv_timing",
    "scnn_network_timing",
]

ARCHITECTURE = "scnn"


def _strided_plane(slab: np.ndarray, fy: int, fx: int, stride: int,
                   out_y: int, out_x: int) -> np.ndarray:
    """Activations feeding kernel tap (fy, fx) of every valid window.

    ``slab`` is the spatially padded ``(depth, Y, X)`` group slab; output
    position (oy, ox) reads ``slab[:, oy*stride + fy, ox*stride + fx]``.
    """
    return slab[:, fy::stride, fx::stride][:, :out_y, :out_x]


def effectual_pair_count(work: ConvWork, weights: np.ndarray) -> int:
    """Exact count of effectual (non-zero weight x non-zero activation)
    products for ``work``, channel-sum form.

    Computed as sum over (fy, fx, z) of weight-filter counts times valid
    non-zero activation counts — deliberately a *different* accumulation
    order than the per-output-position product map the timing model
    builds, so the two serve as independent cross-checks of each other.
    """
    geom = work.geometry
    kernel = geom["kernel"]
    stride = geom["stride"]
    out_y, out_x = geom["out_y"], geom["out_x"]
    fpg = work.filters_per_group
    total = 0
    for group in range(work.num_groups):
        slab = group_activations(work, group)
        group_weights = weights[group * fpg : (group + 1) * fpg]
        # (# filters with non-zero weight) per (depth, fy, fx).
        filter_counts = (group_weights != 0.0).sum(axis=0).astype(np.int64)
        for fy in range(kernel):
            for fx in range(kernel):
                act_nnz = (
                    _strided_plane(slab, fy, fx, stride, out_y, out_x) != 0.0
                ).sum(axis=(1, 2)).astype(np.int64)
                total += int(filter_counts[:, fy, fx] @ act_nnz)
    return total


def scnn_conv_timing(
    work: ConvWork, config: ArchConfig, weights: np.ndarray
) -> LayerTiming:
    """Cycles and activity for one conv layer on the SCNN-style dataflow."""
    if weights.shape[0] != work.geometry["num_filters"]:
        raise ValueError(
            f"{work.name}: weights carry {weights.shape[0]} filters, "
            f"geometry expects {work.geometry['num_filters']}"
        )
    geom = work.geometry
    kernel = geom["kernel"]
    stride = geom["stride"]
    out_y, out_x = geom["out_y"], geom["out_x"]
    units = config.num_units
    banks = 2 * config.multipliers_per_unit
    f_live = min(work.filters_per_group, config.filters_per_unit)
    fpg = work.filters_per_group

    counters = ActivityCounters()
    total_cycles = 0
    busy_events = 0.0
    stall_events = 0.0

    for group in range(work.num_groups):
        slab = group_activations(work, group)
        group_weights = weights[group * fpg : (group + 1) * fpg]
        filter_counts = (group_weights != 0.0).sum(axis=0).astype(np.float64)

        # Effectual products landing on each valid output position.
        product_map = np.zeros((out_y, out_x), dtype=np.float64)
        for fy in range(kernel):
            for fx in range(kernel):
                act_mask = (
                    _strided_plane(slab, fy, fx, stride, out_y, out_x) != 0.0
                ).astype(np.float64)
                product_map += np.einsum(
                    "z,zyx->yx", filter_counts[:, fy, fx], act_mask
                )
        products = product_map.reshape(-1)
        n_pos = products.size
        group_products = float(products.sum())

        # Contiguous row-major position chunks, one per PE.
        bounds = [(pe * n_pos) // units for pe in range(units + 1)]
        group_cycles = 0
        for pe in range(units):
            lo, hi = bounds[pe], bounds[pe + 1]
            if lo == hi:
                continue
            chunk = products[lo:hi]
            mult_limited = ceil_div(
                int(chunk.sum()), config.multipliers_per_unit
            )
            # Scatter: position p -> bank p mod B, ceil(products/F_live)
            # serialized accumulations per position.
            per_position = np.ceil(chunk / f_live)
            bank_load = np.bincount(
                np.arange(lo, hi) % banks, weights=per_position,
                minlength=banks,
            )
            bank_limited = int(bank_load.max())
            group_cycles = max(group_cycles, max(mult_limited, bank_limited))
        total_cycles += group_cycles

        # Fig. 10 bookkeeping: a cycle offers units x lanes event slots,
        # each worth multipliers_per_unit / lanes products.
        products_per_slot = config.multipliers_per_unit / config.neuron_lanes
        busy = group_products / products_per_slot
        slots = group_cycles * units * config.neuron_lanes
        busy_events += busy
        stall_events += max(0.0, slots - busy)

        # Every product is effectual — the defining counter identity.
        counters.add("mults", group_products)
        counters.add("adds", group_products)
        counters.add("nbout_reads", group_products)
        counters.add("nbout_writes", group_products)
        # Compressed operand traffic (coarse: one read per non-zero,
        # brick-granular for activations, per-element for weights).
        counters.add(
            "nm_reads", float((slab != 0.0).sum()) / config.brick_size
        )
        counters.add("sb_reads", float((group_weights != 0.0).sum()))
        counters.add(
            "nm_writes", out_y * out_x * fpg / config.brick_size
        )
        counters.add("broadcasts", group_cycles)

    if work.is_first:
        lane_events = {"conv1": busy_events + stall_events}
    else:
        lane_events = {"nonzero": busy_events, "stall": stall_events}
    return LayerTiming(
        name=work.name,
        kind="conv",
        cycles=total_cycles,
        lane_events=lane_events,
        counters=counters,
    )


def scnn_network_timing(
    network: Network,
    conv_inputs: dict[str, np.ndarray],
    config: ArchConfig,
    weights: dict[str, np.ndarray],
) -> NetworkTiming:
    """Full-network SCNN timing; ``weights`` maps conv layer -> filter bank."""
    layers = [
        scnn_conv_timing(work, config, weights[work.name])
        for work in conv_works_from_inputs(network, conv_inputs)
    ]
    layers.extend(other_layers_timing(network, config))
    return NetworkTiming(
        network=network.name, architecture=ARCHITECTURE, layers=layers
    )

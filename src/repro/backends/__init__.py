"""Pluggable accelerator backends (see :mod:`repro.backends.registry`)."""

from repro.backends.cnv2 import (
    brick_slot_mask,
    cnv2_conv_timing,
    cnv2_network_timing,
    pair_intersection_counts,
    pass_weight_union,
)
from repro.backends.registry import (
    Backend,
    architectures,
    backend_names,
    get_backend,
    iter_backends,
    power_model_for,
    register,
)
from repro.backends.scnn import (
    effectual_pair_count,
    scnn_conv_timing,
    scnn_network_timing,
)
from repro.backends.weights import (
    DEFAULT_WEIGHT_SPARSITY,
    prune_conv_weights,
    prune_input_channels,
    prune_weights,
)

__all__ = [
    "Backend",
    "register",
    "get_backend",
    "backend_names",
    "iter_backends",
    "architectures",
    "power_model_for",
    "DEFAULT_WEIGHT_SPARSITY",
    "prune_weights",
    "prune_input_channels",
    "prune_conv_weights",
    "brick_slot_mask",
    "pass_weight_union",
    "pair_intersection_counts",
    "cnv2_conv_timing",
    "cnv2_network_timing",
    "effectual_pair_count",
    "scnn_conv_timing",
    "scnn_network_timing",
]

"""The backend registry: timing simulators as data-driven plugins.

Every accelerator model in the repo — the DaDianNao dense baseline, the
Eyeriss-style zero-gating comparator, Cnvlutin, and the weight-sparsity
follow-ups Cnvlutin2 and SCNN — registers here as a :class:`Backend`:
one record naming its timing simulators (layer- and network-level), its
power model, and the contract flags the cross-backend conformance suite
keys off.  Consumers (the experiment context, ``fig9_backends``, the
serving tier's ``backend=`` timing requests, ``repro-obs report``, the
``cnvlutin-sim`` CLI) discover backends through :func:`get_backend` /
:func:`iter_backends` instead of importing simulator modules directly —
adding a backend means one :func:`register` call, and the conformance
suite (parameterized over :func:`backend_names`) covers it with zero
test edits.

Weight-sparse backends (``needs_weights``) take a per-layer filter bank
whose exact zeros define the ineffectual weights; see
:mod:`repro.backends.weights` for the deterministic magnitude pruning
that induces them on the calibrated networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.backends.cnv2 import cnv2_conv_timing, cnv2_network_timing
from repro.backends.scnn import scnn_conv_timing, scnn_network_timing
from repro.baseline.gated import gated_conv_timing, gated_network_timing
from repro.baseline.timing import baseline_conv_timing, baseline_network_timing
from repro.core.timing import cnv_conv_timing, cnv_network_timing
from repro.hw.config import ArchConfig
from repro.hw.timing_types import LayerTiming, NetworkTiming
from repro.power.components import BASELINE, CNV, ArchPowerModel

__all__ = [
    "Backend",
    "register",
    "get_backend",
    "backend_names",
    "iter_backends",
    "architectures",
    "power_model_for",
]


@dataclass(frozen=True)
class Backend:
    """One registered accelerator model.

    ``conv_timing(work, config[, weights]) -> LayerTiming`` and
    ``net_timing(network, conv_inputs, config[, weights]) ->
    NetworkTiming`` are the simulators; call them through
    :meth:`layer_timing` / :meth:`network_timing`, which enforce the
    ``needs_weights`` contract.  ``architecture`` is the string the
    produced :class:`~repro.hw.timing_types.NetworkTiming` carries (and
    the ``activity.<architecture>.*`` gauge namespace).  ``power_model``
    is the silicon the energy model charges this backend's activity to.
    ``mults_are_effectual`` declares the counter identity ``mults ==
    effectual weight x activation pairs`` (SCNN's defining property),
    which the conformance suite verifies against brute force.
    """

    name: str
    architecture: str
    description: str
    conv_timing: Callable[..., LayerTiming]
    net_timing: Callable[..., NetworkTiming]
    power_model: ArchPowerModel
    needs_weights: bool = False
    mults_are_effectual: bool = False

    def _check_weights(self, weights) -> None:
        if self.needs_weights and weights is None:
            raise ValueError(
                f"backend {self.name!r} models weight sparsity and "
                "requires a weights argument"
            )

    def layer_timing(
        self,
        work,
        config: ArchConfig,
        weights: np.ndarray | None = None,
    ) -> LayerTiming:
        """Simulate one conv layer (weights required iff ``needs_weights``)."""
        self._check_weights(weights)
        if self.needs_weights:
            return self.conv_timing(work, config, weights)
        return self.conv_timing(work, config)

    def network_timing(
        self,
        network,
        conv_inputs: dict[str, np.ndarray],
        config: ArchConfig,
        weights: dict[str, np.ndarray] | None = None,
    ) -> NetworkTiming:
        """Simulate a full network from recorded conv inputs."""
        self._check_weights(weights)
        if self.needs_weights:
            return self.net_timing(network, conv_inputs, config, weights)
        return self.net_timing(network, conv_inputs, config)


_REGISTRY: dict[str, Backend] = {}


def register(backend: Backend) -> Backend:
    """Add a backend; names and architecture strings must be unique."""
    if backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} is already registered")
    if backend.architecture in {b.architecture for b in _REGISTRY.values()}:
        raise ValueError(
            f"architecture {backend.architecture!r} is already registered"
        )
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look a backend up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def backend_names() -> list[str]:
    """Registered backend names, registration order."""
    return list(_REGISTRY)


def iter_backends() -> list[Backend]:
    """Registered backends, registration order."""
    return list(_REGISTRY.values())


def architectures() -> dict[str, str]:
    """Map of NetworkTiming ``architecture`` string -> backend name."""
    return {b.architecture: b.name for b in _REGISTRY.values()}


def power_model_for(architecture: str) -> ArchPowerModel:
    """The registered power model for a NetworkTiming architecture string."""
    for backend in _REGISTRY.values():
        if backend.architecture == architecture:
            return backend.power_model
    raise KeyError(
        f"unknown architecture {architecture!r}; registered: "
        f"{sorted(architectures())}"
    )


# ----------------------------------------------------------------------
# Built-in backends.  Registration order is presentation order (the
# fig9_backends table and conformance parameterization follow it).
# ----------------------------------------------------------------------
register(Backend(
    name="baseline",
    architecture="dadiannao",
    description="DaDianNao dense baseline: value-independent lock-step lanes",
    conv_timing=baseline_conv_timing,
    net_timing=baseline_network_timing,
    power_model=BASELINE,
))
register(Backend(
    name="gated",
    architecture="dadiannao-gated",
    # Baseline silicon: the savings are purely gated activity counts.
    description="Eyeriss-style zero gating: baseline cycles, gated energy",
    conv_timing=gated_conv_timing,
    net_timing=gated_network_timing,
    power_model=BASELINE,
))
register(Backend(
    name="cnv",
    architecture="cnvlutin",
    description="Cnvlutin: ZFNAf activation skipping (the paper's design)",
    conv_timing=cnv_conv_timing,
    net_timing=cnv_network_timing,
    power_model=CNV,
))
register(Backend(
    name="cnv2",
    architecture="cnvlutin2",
    description="Cnvlutin2: offset-pair intersection skips ineffectual "
    "weights and activations",
    conv_timing=cnv2_conv_timing,
    net_timing=cnv2_network_timing,
    # CNV silicon plus weight offset streams; the added offset fields are
    # charged through the doubled offset_reads activity, not new silicon.
    power_model=CNV,
    needs_weights=True,
))
register(Backend(
    name="scnn",
    architecture="scnn",
    description="SCNN-style compressed-sparse Cartesian-product dataflow",
    conv_timing=scnn_conv_timing,
    net_timing=scnn_network_timing,
    # Approximation: charged at CNV's calibrated component energies (no
    # SCNN silicon calibration exists in repro.power.components).
    power_model=CNV,
    needs_weights=True,
    mults_are_effectual=True,
))

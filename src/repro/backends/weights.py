"""Deterministic magnitude pruning of conv weights.

The weight-sparse backends (Cnvlutin2, SCNN) skip *ineffectual weights* —
weights that are exactly zero.  The calibrated paper networks carry
He-initialized Gaussian weights with no exact zeros, so weight sparsity
is induced the way the pruning literature does: zero the smallest-
magnitude fraction of each conv layer's weights.  The cut is a per-layer
quantile of ``|w|``, so the derivation is a pure function of the weights
themselves — every process (experiment worker, serving shard, direct
reference path) derives bit-identical masks, which is what lets the
serving differential tests demand byte-equal timing payloads.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_WEIGHT_SPARSITY",
    "prune_weights",
    "prune_input_channels",
    "prune_conv_weights",
]

#: Fraction of each conv layer's weights zeroed for the weight-sparse
#: backends when no explicit sparsity is requested (CNV2's offset streams
#: and SCNN's compressed weights both presume a pruned model).
DEFAULT_WEIGHT_SPARSITY = 0.5


def prune_weights(weights: np.ndarray, fraction: float) -> np.ndarray:
    """Zero the smallest-magnitude ``fraction`` of ``weights``.

    The threshold is the ``fraction``-quantile of ``|weights|``; ties at
    the cut prune together (deterministic, order-independent).
    ``fraction <= 0`` returns the input unchanged (no copy).
    """
    if fraction <= 0.0:
        return weights
    if not fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    magnitudes = np.abs(weights)
    cutoff = np.quantile(magnitudes, fraction)
    pruned = weights.copy()
    pruned[magnitudes <= cutoff] = 0.0
    return pruned


def prune_input_channels(weights: np.ndarray, fraction: float) -> np.ndarray:
    """Zero the lowest-energy ``fraction`` of *input channels*, all filters.

    Channel-structured pruning: the channels with the smallest summed
    |w| across every filter are zeroed everywhere.  Because the zeros
    align across filters, CNV2's pass-wide offset union actually thins —
    this is the sparsity structure under which CNV2 beats CNV *strictly*
    (unstructured magnitude pruning leaves the union dense for any
    realistic filter count: an offset is skippable only when every
    filter of the pass is zero there).  ``weights`` is a conv filter
    bank ``(filters, depth, Ky, Kx)``.
    """
    if fraction <= 0.0:
        return weights
    if not fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    energy = np.abs(weights).sum(axis=(0, 2, 3))
    cutoff = np.quantile(energy, fraction)
    pruned = weights.copy()
    pruned[:, energy <= cutoff, :, :] = 0.0
    return pruned


def prune_conv_weights(
    network, weights: dict[str, np.ndarray], fraction: float
) -> dict[str, np.ndarray]:
    """Per-conv-layer pruned weights for ``network``.

    Only conv layers are returned — the analytic backend models consume
    exactly one weight array per :class:`~repro.baseline.workload.ConvWork`.
    """
    return {
        layer.name: prune_weights(weights[layer.name], fraction)
        for layer in network.conv_layers
    }

"""Sparsity calibration: make synthetic networks match the paper's Fig. 1.

The paper measures, per network, the average fraction of convolutional-layer
multiplication operands that are zero-valued input neurons (Fig. 1): 44% on
average, ranging from 37% (nin) to 50% (cnnS).  We do not have the
pretrained Model-Zoo weights, so this module *calibrates* random-weight
networks to reproduce those statistics: for every ReLU'd layer a scalar
shift (a stand-in for the learned bias) is chosen from a sample quantile of
the layer's pre-activation distribution, so that the desired fraction of
output neurons falls at or below zero.

The resulting activations have the two properties CNV's performance
depends on: the right *marginal* zero fraction per layer, and realistic
*spatial structure* (zeros cluster where the convolved random features are
inactive, exactly as real feature maps do), which determines how evenly
non-zero work spreads over bricks, slices and windows.

Calibration procedure (per network):

1. Build per-conv-layer input targets from a depth ramp (later layers are
   sparser, as consistently observed in the literature), scaled so the
   MAC-weighted mean over all conv layers equals the network's Fig. 1
   target.  The first layer's input is the image (near-zero sparsity) and
   is never calibrated — exactly why CNV does not accelerate conv1.
2. Run a calibration forward pass setting each producing layer's shift to
   the appropriate pre-activation quantile.
3. Measure the achieved conv-input zero fractions; pooling and LRN between
   producer and consumer attenuate sparsity, so repeat step 2 once with
   quantile levels corrected by the measured attenuation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.inference import ForwardResult, WeightStore, run_forward
from repro.nn.network import LayerKind, Network

__all__ = [
    "PAPER_ZERO_FRACTIONS",
    "layer_targets",
    "calibrate_network",
    "measure_zero_fractions",
    "SparsityReport",
]

#: Per-network mean zero-neuron fractions read off the paper's Fig. 1.
#: nin and cnnS are quoted exactly in the text (37% and 50%); the text also
#: gives the six-network mean (44%), which these values preserve.
PAPER_ZERO_FRACTIONS: dict[str, float] = {
    "alex": 0.44,
    "google": 0.46,
    "nin": 0.37,
    "vgg19": 0.45,
    "cnnM": 0.42,
    "cnnS": 0.50,
}

#: Depth ramp: relative sparsity of the first/last calibrated conv input.
_RAMP_LO = 0.70
_RAMP_HI = 1.30
_MIN_LEVEL = 0.02
_MAX_LEVEL = 0.92


def _conv_mac_weights(network: Network) -> dict[str, int]:
    macs = network.macs_per_layer()
    return {layer.name: macs[layer.name] for layer in network.conv_layers}


def layer_targets(network: Network, mean_target: float) -> dict[str, float]:
    """Per-conv-layer input zero-fraction targets.

    Produces a ramp over conv-layer depth scaled (numerically, respecting
    clipping) so that the MAC-weighted mean over *all* conv layers — with
    the first layer pinned to zero sparsity — equals ``mean_target``.
    """
    convs = network.conv_layers
    if not convs:
        raise ValueError(f"network {network.name} has no conv layers")
    weights = _conv_mac_weights(network)
    total = sum(weights.values())
    first = convs[0].name

    n = len(convs)
    ramp = {
        layer.name: _RAMP_LO + (_RAMP_HI - _RAMP_LO) * (idx / max(n - 1, 1))
        for idx, layer in enumerate(convs)
    }

    def weighted_mean(scale: float) -> float:
        acc = 0.0
        for layer in convs:
            if layer.name == first:
                continue
            level = float(np.clip(ramp[layer.name] * scale, _MIN_LEVEL, _MAX_LEVEL))
            acc += weights[layer.name] * level
        return acc / total

    lo, hi = 0.0, 3.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if weighted_mean(mid) < mean_target:
            lo = mid
        else:
            hi = mid
    scale = 0.5 * (lo + hi)

    targets = {
        layer.name: (
            0.0
            if layer.name == first
            else float(np.clip(ramp[layer.name] * scale, _MIN_LEVEL, _MAX_LEVEL))
        )
        for layer in convs
    }
    return targets


def _producers_of_conv_inputs(network: Network) -> dict[str, str]:
    """Map each conv layer to the layer producing its input (or '' for image)."""
    return network.conv_producers()


def _relu_layers(network: Network) -> set[str]:
    return {
        layer.name
        for layer in network.layers
        if layer.fused_relu and layer.kind in (LayerKind.CONV, LayerKind.FC)
    }


def _controlling_relus(
    network: Network, conv_name: str, relu_layers: set[str]
) -> set[str]:
    """The ReLU'd layers whose outputs determine a conv layer's input zeros.

    Walks the producer chain upward through zero-transparent layers
    (pooling, LRN, dropout, concat) until hitting fused-ReLU layers; those
    are where the zeros are created and where calibration must act.
    """
    controllers: set[str] = set()
    idx = network.index_of(conv_name)
    layer = network.layers[idx]
    if layer.input_from is not None:
        frontier = list(layer.input_from)
    elif idx > 0:
        frontier = [network.layers[idx - 1].name]
    else:
        return controllers  # fed by the image
    seen: set[str] = set()
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        if name in relu_layers:
            controllers.add(name)
            continue
        i = network.index_of(name)
        producer = network.layers[i]
        if producer.input_from is not None:
            frontier.extend(producer.input_from)
        elif i > 0:
            frontier.append(network.layers[i - 1].name)
    return controllers


def calibrate_network(
    network: Network,
    store: WeightStore,
    image: np.ndarray,
    mean_target: float | None = None,
    passes: int = 2,
    per_channel: bool = False,
) -> dict[str, float]:
    """Set ``store.shifts`` so conv-input zero fractions match the target.

    ``image`` may be a single array or a list of calibration images (with
    several, quantile estimates are averaged across them and the
    attenuation correction is measured with the averaged shifts held
    fixed).

    ``per_channel`` selects the shift granularity, a deliberate trade-off
    of the random-weight substitution (see DESIGN.md / EXPERIMENTS.md):

    * ``False`` (default) — one scalar shift per layer.  Zeros cluster by
      channel and region like real feature maps, reproducing the paper's
      *performance-relevant* structure: Fig. 1 fractions with tight
      cross-image error bars and Fig. 9 speedups in the published band.
      The cost is that more neuron *positions* stay zero across all
      sampled inputs than the paper's Section II statistics show.
    * ``True`` — per-output-channel shifts (every unit gets its own
      operating point, like a learned bias).  Positional zero diversity
      then approaches the paper's, but the uniform spread of zeros over
      channels removes most lane imbalance and inflates speedups well
      above the published band.

    Returns the per-conv-layer target fractions used.  After this call the
    store can be used with :func:`repro.nn.inference.run_forward` on any
    input and will produce activations with approximately the calibrated
    sparsity.
    """
    if mean_target is None:
        mean_target = PAPER_ZERO_FRACTIONS.get(network.name, 0.44)
    targets = layer_targets(network, mean_target)
    relu_layers = _relu_layers(network)
    controllers = {
        conv_name: _controlling_relus(network, conv_name, relu_layers)
        for conv_name in targets
    }

    # A producing layer may control several conv inputs (inception); use
    # the max target among its consumers.  ReLU'd layers controlling no
    # conv input (e.g. FC layers, dead-end branches) get the network's
    # final ramp level so their outputs look like everything else.
    default_level = max(targets.values()) if targets else mean_target
    producer_levels: dict[str, float] = {}
    for conv_name, ctrl in controllers.items():
        for producer in ctrl:
            producer_levels[producer] = max(
                producer_levels.get(producer, 0.0), targets[conv_name]
            )
    quantile_levels = {
        name: producer_levels.get(name, default_level) for name in relu_layers
    }

    images = image if isinstance(image, (list, tuple)) else [image]

    for _ in range(passes):
        estimates: dict[str, list] = {}

        def shift_fn(layer_name: str, pre: np.ndarray):
            if layer_name not in relu_layers:
                return 0.0
            level = quantile_levels[layer_name]
            if level <= 0.0:
                return 0.0
            if per_channel and pre.ndim == 3:
                shift = -np.quantile(pre, level, axis=(1, 2))
            else:
                shift = -float(np.quantile(pre, level))
            estimates.setdefault(layer_name, []).append(shift)
            return shift

        for calib_image in images:
            run_forward(
                network,
                store,
                calib_image,
                collect_conv_inputs=False,
                keep_outputs=False,
                shift_fn=shift_fn,
            )
        for layer_name, shifts in estimates.items():
            if isinstance(shifts[0], float):
                store.shifts[layer_name] = float(np.mean(shifts))
            else:
                store.shifts[layer_name] = np.mean(shifts, axis=0)

        # Correct for attenuation through pooling/LRN between the
        # controlling ReLU and the consumer: scale each controller's
        # quantile level by target/achieved, with achieved measured using
        # the averaged shifts held fixed.
        achieved_acc: dict[str, float] = {}
        for calib_image in images:
            result = run_forward(
                network,
                store,
                calib_image,
                collect_conv_inputs=True,
                keep_outputs=False,
            )
            for name, arr in result.conv_inputs.items():
                achieved_acc[name] = achieved_acc.get(name, 0.0) + float(
                    np.mean(arr == 0.0)
                )
        achieved = {k: v / len(images) for k, v in achieved_acc.items()}
        corrections: dict[str, list[float]] = {}
        for conv_name, ctrl in controllers.items():
            target = targets[conv_name]
            got = achieved.get(conv_name, 0.0)
            if got <= 1e-6 or target <= 0.0:
                continue
            for producer in ctrl:
                corrections.setdefault(producer, []).append(target / got)
        for producer, factors in corrections.items():
            # A producer may control several conv inputs (inception):
            # combine their corrections geometrically.
            combined = float(np.exp(np.mean(np.log(factors))))
            quantile_levels[producer] = float(
                np.clip(
                    quantile_levels[producer] * combined,
                    _MIN_LEVEL,
                    _MAX_LEVEL + 0.05,
                )
            )
    return targets


@dataclass
class SparsityReport:
    """Measured zero-neuron statistics for one network on a set of inputs."""

    network: str
    per_layer: dict[str, float]
    mac_weighted_mean: float
    per_image_means: list[float]

    @property
    def std_across_images(self) -> float:
        if len(self.per_image_means) < 2:
            return 0.0
        return float(np.std(self.per_image_means))


def measure_zero_fractions(
    network: Network,
    store: WeightStore,
    images: list[np.ndarray],
    thresholds: dict[str, float] | None = None,
) -> SparsityReport:
    """Measure the Fig. 1 statistic: MAC-weighted conv-input zero fraction.

    Each input neuron of a conv layer participates in (roughly) the same
    number of multiplications, so the fraction of zero multiplication
    operands equals the layer's input zero fraction; layers are combined
    weighted by their multiplication counts.
    """
    weights = _conv_mac_weights(network)
    total = sum(weights.values())
    per_layer_acc = {name: 0.0 for name in weights}
    per_image_means: list[float] = []
    # One batched pass over the whole image set; per-image statistics come
    # from slicing the stacked conv inputs (bit-identical to per-image
    # forwards, so the Fig. 1 numbers are unchanged).
    result = run_forward(
        network,
        store,
        np.stack(images),
        thresholds=thresholds,
        collect_conv_inputs=True,
        keep_outputs=False,
    )
    for index in range(len(images)):
        image_acc = 0.0
        for name, arr in result.conv_inputs.items():
            frac = float(np.mean(arr[index] == 0.0))
            per_layer_acc[name] += frac
            image_acc += weights[name] * frac
        per_image_means.append(image_acc / total)
    n = len(images)
    per_layer = {name: acc / n for name, acc in per_layer_acc.items()}
    mean = float(np.mean(per_image_means))
    return SparsityReport(
        network=network.name,
        per_layer=per_layer,
        mac_weighted_mean=mean,
        per_image_means=per_image_means,
    )

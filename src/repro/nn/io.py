"""Weight-store serialization.

Calibrated and trained weight stores are expensive to rebuild (calibration
runs forward passes; training runs SGD), so the library can persist them
as a single ``.npz`` file: weights and biases as arrays, shifts as a pair
of aligned name/value arrays.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.inference import WeightStore

__all__ = ["save_weights", "load_weights"]

_WEIGHT_PREFIX = "w::"
_BIAS_PREFIX = "b::"
_SHIFT_PREFIX = "s::"


def save_weights(store: WeightStore, path: str | Path) -> None:
    """Write a WeightStore to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    for name, weights in store.weights.items():
        arrays[_WEIGHT_PREFIX + name] = weights
    for name, bias in store.biases.items():
        arrays[_BIAS_PREFIX + name] = bias
    for name, shift in store.shifts.items():
        # Scalars and per-channel arrays both store as arrays.
        arrays[_SHIFT_PREFIX + name] = np.asarray(shift)
    np.savez(path, **arrays)


def load_weights(path: str | Path) -> WeightStore:
    """Read a WeightStore previously written by :func:`save_weights`."""
    store = WeightStore()
    with np.load(path) as data:
        for key in data.files:
            if key.startswith(_WEIGHT_PREFIX):
                store.weights[key[len(_WEIGHT_PREFIX):]] = data[key]
            elif key.startswith(_BIAS_PREFIX):
                store.biases[key[len(_BIAS_PREFIX):]] = data[key]
            elif key.startswith(_SHIFT_PREFIX):
                value = data[key]
                store.shifts[key[len(_SHIFT_PREFIX):]] = (
                    float(value) if value.ndim == 0 else value
                )
    return store

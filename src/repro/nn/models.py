"""The six networks of Table I, with their published layer geometries.

=======  ===========  =======================================
network  conv layers  source (paper, Table I)
=======  ===========  =======================================
alex     5            Caffe: bvlc_reference_caffenet
google   59           Caffe: bvlc_googlenet
nin      12           Model Zoo: NIN-imagenet
vgg19    16           Model Zoo: VGG 19-layer
cnnM     5            Model Zoo: VGG_CNN_M_2048
cnnS     5            Model Zoo: VGG_CNN_S
=======  ===========  =======================================

Geometries follow the published prototxts.  Pooling output sizes use floor
rounding; where Caffe's ceil-mode changes a size we add one pixel of padding
so that canonical feature-map sizes (56/28/14/7 for GoogLeNet etc.) are
preserved — the timing and sparsity behaviour CNV depends on is unaffected.

GoogLeNet's 59 convolutional layers are the 57 layers of the main trunk
(3 stem + 9 inception modules x 6) plus the two 1x1 convolutions in the
auxiliary classifiers.
"""

from __future__ import annotations

from dataclasses import replace

from repro.nn.layers import conv_output_size
from repro.nn.network import LayerKind, LayerSpec, Network

__all__ = ["build_network", "network_names", "NETWORK_BUILDERS", "TABLE1_SOURCES"]

#: Source column of the paper's Table I.
TABLE1_SOURCES = {
    "alex": "Caffe: bvlc_reference_caffenet",
    "google": "Caffe: bvlc_googlenet",
    "nin": "Model Zoo: NIN-imagenet",
    "vgg19": "Model Zoo: VGG 19-layer",
    "cnnM": "Model Zoo: VGG_CNN_M_2048",
    "cnnS": "Model Zoo: VGG_CNN_S",
}


def _conv(name, filters, kernel, stride=1, pad=0, groups=1, input_from=None):
    return LayerSpec(
        name=name,
        kind="conv",
        num_filters=filters,
        kernel=kernel,
        stride=stride,
        pad=pad,
        groups=groups,
        input_from=(input_from,) if isinstance(input_from, str) else input_from,
        fused_relu=True,
    )


def _pool(name, kernel, stride, pad=0, kind="maxpool", input_from=None):
    return LayerSpec(
        name=name,
        kind=kind,
        kernel=kernel,
        stride=stride,
        pad=pad,
        input_from=(input_from,) if isinstance(input_from, str) else input_from,
    )


def _lrn(name):
    return LayerSpec(name=name, kind="lrn")


def _fc(name, width, fused_relu=True):
    return LayerSpec(name=name, kind="fc", num_filters=width, fused_relu=fused_relu)


def build_alex() -> Network:
    """bvlc_reference_caffenet (AlexNet), 5 conv layers, 227x227 input."""
    layers = [
        _conv("conv1", 96, 11, stride=4),
        _pool("pool1", 3, 2),
        _lrn("norm1"),
        _conv("conv2", 256, 5, pad=2, groups=2),
        _pool("pool2", 3, 2),
        _lrn("norm2"),
        _conv("conv3", 384, 3, pad=1),
        _conv("conv4", 384, 3, pad=1, groups=2),
        _conv("conv5", 256, 3, pad=1, groups=2),
        _pool("pool5", 3, 2),
        _fc("fc6", 4096),
        _fc("fc7", 4096),
        _fc("fc8", 1000, fused_relu=False),
        LayerSpec(name="prob", kind="softmax"),
    ]
    return Network(name="alex", input_shape=(3, 227, 227), layers=layers)


def build_nin() -> Network:
    """NIN-imagenet, 12 conv layers (4 mlpconv blocks), 224x224 input."""
    layers = [
        _conv("conv1", 96, 11, stride=4),
        _conv("cccp1", 96, 1),
        _conv("cccp2", 96, 1),
        _pool("pool0", 3, 2),
        _conv("conv2", 256, 5, pad=2),
        _conv("cccp3", 256, 1),
        _conv("cccp4", 256, 1),
        _pool("pool2", 3, 2),
        _conv("conv3", 384, 3, pad=1),
        _conv("cccp5", 384, 1),
        _conv("cccp6", 384, 1),
        _pool("pool3", 3, 2),
        _conv("conv4-1024", 1024, 3, pad=1),
        _conv("cccp7-1024", 1024, 1),
        _conv("cccp8-1024", 1000, 1),
        _pool("pool4", 5, 1, kind="avgpool"),
        LayerSpec(name="prob", kind="softmax"),
    ]
    return Network(name="nin", input_shape=(3, 224, 224), layers=layers)


def build_vgg19() -> Network:
    """VGG 19-layer, 16 conv layers, 224x224 input."""
    layers: list[LayerSpec] = []
    block_filters = [64, 128, 256, 512, 512]
    block_convs = [2, 2, 4, 4, 4]
    for b, (filters, convs) in enumerate(zip(block_filters, block_convs), start=1):
        for c in range(1, convs + 1):
            layers.append(_conv(f"conv{b}_{c}", filters, 3, pad=1))
        layers.append(_pool(f"pool{b}", 2, 2))
    layers += [
        _fc("fc6", 4096),
        _fc("fc7", 4096),
        _fc("fc8", 1000, fused_relu=False),
        LayerSpec(name="prob", kind="softmax"),
    ]
    return Network(name="vgg19", input_shape=(3, 224, 224), layers=layers)


def build_cnn_m() -> Network:
    """VGG_CNN_M_2048 (Chatfield et al.), 5 conv layers, 224x224 input."""
    layers = [
        _conv("conv1", 96, 7, stride=2),
        _lrn("norm1"),
        _pool("pool1", 3, 2),
        _conv("conv2", 256, 5, stride=2, pad=1),
        _lrn("norm2"),
        _pool("pool2", 3, 2),
        _conv("conv3", 512, 3, pad=1),
        _conv("conv4", 512, 3, pad=1),
        _conv("conv5", 512, 3, pad=1),
        _pool("pool5", 3, 2),
        _fc("fc6", 4096),
        _fc("fc7", 2048),
        _fc("fc8", 1000, fused_relu=False),
        LayerSpec(name="prob", kind="softmax"),
    ]
    return Network(name="cnnM", input_shape=(3, 224, 224), layers=layers)


def build_cnn_s() -> Network:
    """VGG_CNN_S (Chatfield et al.), 5 conv layers, 224x224 input."""
    layers = [
        _conv("conv1", 96, 7, stride=2),
        _lrn("norm1"),
        _pool("pool1", 3, 3),
        _conv("conv2", 256, 5),
        _pool("pool2", 2, 2),
        _conv("conv3", 512, 3, pad=1),
        _conv("conv4", 512, 3, pad=1),
        _conv("conv5", 512, 3, pad=1),
        _pool("pool5", 3, 3),
        _fc("fc6", 4096),
        _fc("fc7", 4096),
        _fc("fc8", 1000, fused_relu=False),
        LayerSpec(name="prob", kind="softmax"),
    ]
    return Network(name="cnnS", input_shape=(3, 224, 224), layers=layers)


#: (1x1, 3x3_reduce, 3x3, 5x5_reduce, 5x5, pool_proj) filter counts for the
#: nine bvlc_googlenet inception modules.
_INCEPTION = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception(layers: list[LayerSpec], module: str, source: str) -> str:
    """Append one inception module reading from ``source``; return its output."""
    n1, n3r, n3, n5r, n5, npp = _INCEPTION[module]
    pre = f"inception_{module}"
    layers += [
        _conv(f"{pre}/1x1", n1, 1, input_from=source),
        _conv(f"{pre}/3x3_reduce", n3r, 1, input_from=source),
        _conv(f"{pre}/3x3", n3, 3, pad=1, input_from=f"{pre}/3x3_reduce"),
        _conv(f"{pre}/5x5_reduce", n5r, 1, input_from=source),
        _conv(f"{pre}/5x5", n5, 5, pad=2, input_from=f"{pre}/5x5_reduce"),
        _pool(f"{pre}/pool", 3, 1, pad=1, input_from=source),
        _conv(f"{pre}/pool_proj", npp, 1, input_from=f"{pre}/pool"),
        LayerSpec(
            name=f"{pre}/output",
            kind="concat",
            input_from=(
                f"{pre}/1x1",
                f"{pre}/3x3",
                f"{pre}/5x5",
                f"{pre}/pool_proj",
            ),
        ),
    ]
    return f"{pre}/output"


def build_google() -> Network:
    """bvlc_googlenet, 59 conv layers (57 trunk + 2 auxiliary), 224x224 input.

    The two auxiliary classifier branches hang off inception_4a and
    inception_4d; the main trunk continues from the inception outputs (the
    branches are dead ends used only for training-time loss, but their conv
    layers count toward Table I's 59 and consume cycles at inference when
    enabled, so they are modelled).
    """
    layers: list[LayerSpec] = [
        _conv("conv1/7x7_s2", 64, 7, stride=2, pad=3),
        _pool("pool1/3x3_s2", 3, 2, pad=1),
        _lrn("pool1/norm1"),
        _conv("conv2/3x3_reduce", 64, 1),
        _conv("conv2/3x3", 192, 3, pad=1),
        _lrn("conv2/norm2"),
        _pool("pool2/3x3_s2", 3, 2, pad=1),
    ]
    out = _inception(layers, "3a", "pool2/3x3_s2")
    out = _inception(layers, "3b", out)
    layers.append(_pool("pool3/3x3_s2", 3, 2, pad=1, input_from=out))
    out = _inception(layers, "4a", "pool3/3x3_s2")
    # Auxiliary classifier 1 (branch off 4a's output).
    layers += [
        _pool("loss1/ave_pool", 5, 3, kind="avgpool", input_from=out),
        _conv("loss1/conv", 128, 1, input_from="loss1/ave_pool"),
    ]
    out = _inception(layers, "4b", out)
    out = _inception(layers, "4c", out)
    out = _inception(layers, "4d", out)
    # Auxiliary classifier 2 (branch off 4d's output).
    layers += [
        _pool("loss2/ave_pool", 5, 3, kind="avgpool", input_from=out),
        _conv("loss2/conv", 128, 1, input_from="loss2/ave_pool"),
    ]
    out = _inception(layers, "4e", out)
    layers.append(_pool("pool4/3x3_s2", 3, 2, pad=1, input_from=out))
    out = _inception(layers, "5a", "pool4/3x3_s2")
    out = _inception(layers, "5b", out)
    layers += [
        _pool("pool5/7x7_s1", 7, 1, kind="avgpool", input_from=out),
        _fc("loss3/classifier", 1000, fused_relu=False),
        LayerSpec(name="prob", kind="softmax"),
    ]
    return Network(name="google", input_shape=(3, 224, 224), layers=layers)


NETWORK_BUILDERS = {
    "alex": build_alex,
    "google": build_google,
    "nin": build_nin,
    "vgg19": build_vgg19,
    "cnnM": build_cnn_m,
    "cnnS": build_cnn_s,
}


def network_names() -> list[str]:
    """Names of the six evaluated networks, in the paper's Table I order."""
    return ["alex", "google", "nin", "vgg19", "cnnM", "cnnS"]


def _adapt_pools(
    input_shape: tuple[int, int, int], layers: list[LayerSpec]
) -> list[LayerSpec]:
    """Clamp pooling kernels that exceed the incoming feature-map size.

    At the published input resolutions this is a no-op.  At the reduced
    resolutions the experiment harness uses for tractable runs, the final
    global-average pools (and occasionally an inner pool) would overhang
    the shrunken feature maps; clamping the kernel (and stride) to the map
    size preserves each network's topology and conv-layer geometry ratios.
    """
    shapes: dict[str, tuple[int, int, int]] = {}
    new_layers: list[LayerSpec] = []

    def producer_shape(idx: int, layer: LayerSpec) -> tuple[int, int, int]:
        if layer.input_from is None:
            if idx == 0:
                return input_shape
            return shapes[new_layers[idx - 1].name]
        return shapes[layer.input_from[0]]

    for idx, layer in enumerate(layers):
        if layer.kind == LayerKind.CONCAT:
            parts = [shapes[src] for src in layer.input_from]
            shapes[layer.name] = (sum(s[0] for s in parts), parts[0][1], parts[0][2])
            new_layers.append(layer)
            continue
        depth, in_y, in_x = producer_shape(idx, layer)
        if layer.kind in (LayerKind.MAXPOOL, LayerKind.AVGPOOL):
            spatial = min(in_y, in_x)
            if layer.kernel - 2 * layer.pad > spatial:
                layer = replace(
                    layer, kernel=spatial, stride=min(layer.stride, spatial), pad=0
                )
        if layer.kind == LayerKind.CONV:
            out_y = conv_output_size(in_y, layer.kernel, layer.stride, layer.pad)
            out_x = conv_output_size(in_x, layer.kernel, layer.stride, layer.pad)
            shapes[layer.name] = (layer.num_filters, out_y, out_x)
        elif layer.kind in (LayerKind.MAXPOOL, LayerKind.AVGPOOL):
            out_y = conv_output_size(in_y, layer.kernel, layer.stride, layer.pad)
            out_x = conv_output_size(in_x, layer.kernel, layer.stride, layer.pad)
            shapes[layer.name] = (depth, out_y, out_x)
        elif layer.kind == LayerKind.FC:
            shapes[layer.name] = (layer.num_filters, 1, 1)
        else:
            shapes[layer.name] = (depth, in_y, in_x)
        new_layers.append(layer)
    return new_layers


def build_network(name: str, input_size: int | None = None) -> Network:
    """Build one of the six Table I networks by name.

    ``input_size`` overrides the published input resolution (227 for alex,
    224 otherwise); pooling kernels that no longer fit the shrunken maps
    are clamped (see :func:`_adapt_pools`).  Conv-layer counts, filter
    counts and kernels — everything Table I reports — are unchanged.
    """
    try:
        builder = NETWORK_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; choose from {sorted(NETWORK_BUILDERS)}"
        ) from None
    network = builder()
    if input_size is not None and input_size != network.input_shape[1]:
        input_shape = (network.input_shape[0], input_size, input_size)
        layers = _adapt_pools(input_shape, list(network.layers))
        network = Network(name=network.name, input_shape=input_shape, layers=layers)
    return network

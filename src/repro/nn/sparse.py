"""Sparse-aware GEMM/matvec kernels exploiting ZFNAf-style zero skipping.

The paper's premise is that ineffectual (zero) neurons need not be
multiplied; the numpy golden model nevertheless multiplied every one of
them, so the simulated Fig. 9 speedup never appeared in wall-clock
seconds.  This module makes the skip real while preserving the repo's
bit-identity contracts.

Canonical partitioned kernel
----------------------------
OpenBLAS accumulates in a shape-dependent order, so naively compressing
the zero rows/columns out of a GEMM changes the last ulp of every output
— which would break the golden, engine-cache and serving differential
guarantees.  Instead, *every* mode runs the same canonical computation
derived from the data:

1. Partition the im2col patch matrix's k-columns into *live* (some
   non-zero entry) and *dead* (entirely zero) sets, and its rows
   (windows) likewise.
2. Compute the live x live block with one GEMM.  Dead columns multiply
   exact zeros, so their contribution is exactly ``±0.0``; dead rows
   produce exactly-``±0.0`` outputs.
3. ``dense`` mode honestly multiplies the dead parts too (the DaDianNao
   baseline burning cycles on ineffectual neurons); ``sparse`` mode
   skips them and zero-fills.  An unconditional bias add in the caller
   normalizes the only possible difference, the sign of zero.

Because both modes issue the *identical* live-block BLAS call on the
identical buffer, their outputs are byte-identical — the mode changes
speed, never bits.  When no dead columns exist the kernel degenerates to
the single full GEMM the golden model always used.  The per-layer choice
is a density-threshold heuristic (``auto``), overridable per process via
the ``CNVLUTIN_SPARSE`` environment variable or per call site.

Weight transposes
-----------------
The partition gathers rows of the *transposed* weight matrix ``(K, N)``
— contiguous row gathers instead of strided column gathers of the
``(N, K)`` layout, which profiling showed dominating small-``M`` layers.
Transposes are cached per weight array (evicted by a weakref finalizer
when the array dies).  The cache assumes weight arrays are replaced, not
mutated in place — which is how :class:`~repro.nn.inference.WeightStore`
and the training loop behave.

Fault injection
---------------
The sparse path exposes a ``sparse:gemm`` fault site (``CNVLUTIN_FAULTS``
grammar, see :mod:`repro.reliability.faults`).  An injected fault makes
the kernel fall back to the dense canonical path — byte-identical output,
one ``engine.sparse.fallbacks`` counter — so chaos runs complete with
correct results while the injection remains visible in the manifest.

Integrity (ABFT) verification
-----------------------------
Every kernel return path runs through an epilogue that (1) fires the
``mem:activations`` fault site — a ``corrupt`` rule perturbs one element
of the freshly computed product in place, modelling a bad store of a
layer output — and then (2) verifies the Huang-Abraham column-checksum
invariant under the ``CNVLUTIN_INTEGRITY`` policy (see
:mod:`repro.reliability.integrity`).  Verification is read-only, so a
verified run stays byte-identical to an unverified one; a violation
raises :class:`~repro.reliability.integrity.IntegrityError`, which the
serving retry policy treats like any transient failure — a recompute on
clean data heals it bit-exactly, a persistent failure escalates to the
shard quarantine path.
"""

from __future__ import annotations

import os
import threading
import weakref
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.reliability import integrity
from repro.reliability.faults import FaultInjector, InjectedFault

__all__ = [
    "MODES",
    "MODE_ENV",
    "CUTOFF_ENV",
    "DEFAULT_CUTOFF",
    "MEM_ACTIVATIONS_SITE",
    "GemmRecord",
    "resolve_mode",
    "resolve_cutoff",
    "transposed_weights",
    "partitioned_gemm",
    "partitioned_matvec",
    "pop_records",
    "summarize_records",
]

#: Valid values of the mode override.
MODES = ("auto", "always", "never")

#: Environment variable selecting the compute path (``auto|always|never``).
MODE_ENV = "CNVLUTIN_SPARSE"

#: Environment variable overriding the ``auto`` dead-fraction cutoff.
CUTOFF_ENV = "CNVLUTIN_SPARSE_CUTOFF"

#: Default ``auto`` cutoff: skip the dead part when at least this
#: fraction of the reduction dimension is dead.  Below it the savings do
#: not cover the gather overhead, so ``auto`` stays on the dense path.
DEFAULT_CUTOFF = 0.05


def resolve_mode(mode: str | None = None) -> str:
    """The effective mode: explicit argument, else ``CNVLUTIN_SPARSE``.

    Unknown values raise for explicit arguments but fall back to
    ``auto`` for the environment variable — a typo in the environment
    must never make a forward pass fail.
    """
    if mode is not None:
        if mode not in MODES:
            raise ValueError(f"sparse mode must be one of {MODES}, got {mode!r}")
        return mode
    env = os.environ.get(MODE_ENV, "auto").strip().lower()
    return env if env in MODES else "auto"


def resolve_cutoff() -> float:
    """The ``auto`` dead-fraction cutoff, from ``CNVLUTIN_SPARSE_CUTOFF``.

    A non-numeric, non-finite, or out-of-[0, 1] value falls back to the
    default *with a warning* (mirroring ``CNVLUTIN_ENGINE_CACHE_MB``):
    a bad environment variable must never make a forward pass raise,
    but it must not be silently swallowed either.
    """
    import math
    import warnings

    raw = os.environ.get(CUTOFF_ENV)
    if raw is None:
        return DEFAULT_CUTOFF
    try:
        cutoff = float(raw)
    except ValueError:
        cutoff = float("nan")
    if not math.isfinite(cutoff) or not 0.0 <= cutoff <= 1.0:
        warnings.warn(
            f"ignoring invalid {CUTOFF_ENV}={raw!r} "
            f"(expected a number in [0, 1]); using the default "
            f"{DEFAULT_CUTOFF:g}",
            RuntimeWarning,
            stacklevel=3,
        )
        return DEFAULT_CUTOFF
    return cutoff


# ----------------------------------------------------------------------
# per-GEMM decision records (consumed by the engine for span attributes)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GemmRecord:
    """What one partitioned GEMM/matvec decided and skipped."""

    kind: str  # "conv" | "fc"
    path: str  # "sparse" | "dense"
    dead_fraction: float  # dead share of the reduction dimension
    dead_rows: float  # dead share of the output rows (conv windows)
    macs_total: int
    macs_skipped: int
    fallback: bool = False


_tls = threading.local()


def _records() -> list[GemmRecord]:
    records = getattr(_tls, "records", None)
    if records is None:
        records = _tls.records = []
    return records


#: Safety bound so standalone layer calls (tests, notebooks) that never
#: pop cannot grow the record list without limit.
_MAX_RECORDS = 256


def _record(record: GemmRecord) -> None:
    records = _records()
    records.append(record)
    if len(records) > _MAX_RECORDS:
        del records[: len(records) - _MAX_RECORDS]
    obs.counter_add(f"engine.sparse.gemms.{record.path}")
    obs.counter_add("engine.sparse.macs.total", record.macs_total)
    obs.counter_add("engine.sparse.macs.skipped", record.macs_skipped)
    if record.fallback:
        obs.counter_add("engine.sparse.fallbacks")


def pop_records() -> list[GemmRecord]:
    """Drain the calling thread's accumulated GEMM records."""
    records = _records()
    out = list(records)
    records.clear()
    return out


def summarize_records(records: list[GemmRecord]) -> dict:
    """Aggregate records of one layer into span-attribute material."""
    if not records:
        return {"sparse": "none", "dead_fraction": 0.0}
    paths = {record.path for record in records}
    path = paths.pop() if len(paths) == 1 else "mixed"
    total = sum(record.macs_total for record in records)
    skipped = sum(record.macs_skipped for record in records)
    dead = (
        sum(record.dead_fraction * record.macs_total for record in records) / total
        if total
        else 0.0
    )
    return {
        "sparse": path,
        "dead_fraction": round(dead, 4),
        "macs_total": total,
        "macs_skipped": skipped,
    }


# ----------------------------------------------------------------------
# cached contiguous weight transposes
# ----------------------------------------------------------------------
_wt_cache: dict[int, list[np.ndarray]] = {}


def transposed_weights(weights: np.ndarray, groups: int) -> list[np.ndarray]:
    """Per-group contiguous ``(K, group_filters)`` transposed weights.

    ``weights`` is the 4-D conv filter bank ``(N, depth/groups, Fy, Fx)``.
    Results are cached per array object; the cache entry dies with the
    array.  Arrays must not be mutated in place after first use (the
    repo replaces weight arrays wholesale — see module docstring).
    """
    key = id(weights)
    entry = _wt_cache.get(key)
    if entry is None:
        group_filters = weights.shape[0] // groups
        entry = [
            np.ascontiguousarray(
                weights[g * group_filters : (g + 1) * group_filters]
                .reshape(group_filters, -1)
                .T
            )
            for g in range(groups)
        ]
        try:
            weakref.finalize(weights, _wt_cache.pop, key, None)
        except TypeError:
            return entry  # not weakref-able: hand back uncached
        _wt_cache[key] = entry
    return entry


# ----------------------------------------------------------------------
# fault-injection plumbing
# ----------------------------------------------------------------------
_injector_lock = threading.Lock()
_injector_spec: str | None = None
_injector: FaultInjector | None = None

#: The fault site the sparse GEMM path fires (``CNVLUTIN_FAULTS`` rules).
FAULT_SITE = "sparse:gemm"

#: Fault site modelling a corrupted layer-output store: a ``corrupt``
#: rule perturbs one element of the product before verification.
MEM_ACTIVATIONS_SITE = "mem:activations"


def _current_injector() -> FaultInjector:
    """A process-wide injector rebuilt whenever ``CNVLUTIN_FAULTS`` changes.

    Hit counters persist across calls (like the long-lived injectors of
    the pipeline and the serving layer) as long as the spec is stable.
    """
    global _injector_spec, _injector
    spec = os.environ.get("CNVLUTIN_FAULTS", "")
    with _injector_lock:
        if _injector is None or spec != _injector_spec:
            _injector = FaultInjector.from_env()
            _injector_spec = spec
        return _injector


def _sparse_path_survives_faults() -> bool:
    """Fire ``sparse:gemm``; False means fall back to the dense path."""
    injector = _current_injector()
    if not injector.enabled:
        return True
    try:
        injector.fire(FAULT_SITE)
    except InjectedFault:
        return False
    return True


def _maybe_corrupt_output(result: np.ndarray) -> None:
    """Fire ``mem:activations``; a ``corrupt`` action perturbs one element.

    The perturbation is deterministic (middle element, magnitude far
    above any ABFT tolerance) and happens *before* verification, so an
    active ``CNVLUTIN_INTEGRITY`` policy must catch it while an ``off``
    policy lets the corrupted block flow downstream — the difference the
    chaos suite measures.
    """
    injector = _current_injector()
    if not injector.enabled:
        return
    if injector.fire(MEM_ACTIVATIONS_SITE) != "corrupt":
        return
    flat = result.reshape(-1)
    index = flat.size // 2
    flat[index] += (1.0 + abs(float(flat[index]))) * 1e6


def _gemm_epilogue(
    cols: np.ndarray, wt: np.ndarray, result: np.ndarray, kind: str
) -> np.ndarray:
    """Shared exit of every :func:`partitioned_gemm` path.

    The checksum invariant holds for the *full* GEMM on every path: dead
    columns contribute exact zeros to both sides and dead rows sum to
    exact zero, so one verification covers the degenerate, row-live and
    row-partitioned variants alike.
    """
    _maybe_corrupt_output(result)
    if integrity.should_verify():
        integrity.verify_gemm(cols, wt, result, kind=kind)
    return result


def _matvec_epilogue(
    weights: np.ndarray, flat: np.ndarray, result: np.ndarray
) -> np.ndarray:
    """Shared exit of every :func:`partitioned_matvec` path."""
    _maybe_corrupt_output(result)
    if integrity.should_verify():
        integrity.verify_matvec(weights, flat, result)
    return result


# ----------------------------------------------------------------------
# the canonical partitioned kernels
# ----------------------------------------------------------------------
def _choose_skip(mode: str, dead_fraction: float, cutoff: float) -> bool:
    if mode == "always":
        return True
    if mode == "never":
        return False
    return dead_fraction >= cutoff


def partitioned_gemm(
    cols: np.ndarray,
    wt: np.ndarray,
    mode: str,
    cutoff: float,
    kind: str = "conv",
) -> np.ndarray:
    """Canonical partitioned ``cols @ w.T`` — see module docstring.

    Parameters
    ----------
    cols:
        The ``(M, K)`` patch matrix (one im2col'd image/group).
    wt:
        Contiguous ``(K, N)`` transposed weight matrix.
    mode, cutoff:
        Resolved mode and ``auto`` cutoff (see :func:`resolve_mode`).

    Returns the ``(M, N)`` product.  The caller must add the bias (or a
    literal ``0.0``) unconditionally afterwards: that add normalizes the
    sign of the exactly-zero entries the two paths produce differently.
    """
    rows, width = cols.shape
    filters = wt.shape[1]
    nonzero = cols != 0.0
    live_col_mask = nonzero.any(axis=0)
    dead_cols = int(width - np.count_nonzero(live_col_mask))
    macs_total = rows * width * filters
    if dead_cols == 0:
        # Degenerate case: nothing to skip; identical to the historical
        # single-GEMM path.
        _record(
            GemmRecord(
                kind=kind, path="dense", dead_fraction=0.0, dead_rows=0.0,
                macs_total=macs_total, macs_skipped=0,
            )
        )
        return _gemm_epilogue(cols, wt, cols @ wt, kind)

    dead_fraction = dead_cols / width
    skip = _choose_skip(mode, dead_fraction, cutoff)
    fallback = False
    if skip and not _sparse_path_survives_faults():
        skip, fallback = False, True

    live_cols = np.flatnonzero(live_col_mask)
    dead_col_idx = np.flatnonzero(~live_col_mask)
    live_row_mask = nonzero.any(axis=1)
    live_wt = wt[live_cols]

    if live_row_mask.all():
        live_block = cols[:, live_cols]
        product = live_block @ live_wt
        if skip:
            result = product
            skipped = dead_cols * rows * filters
        else:
            result = product + cols[:, dead_col_idx] @ wt[dead_col_idx]
            skipped = 0
        _record(
            GemmRecord(
                kind=kind, path="sparse" if skip else "dense",
                dead_fraction=dead_fraction, dead_rows=0.0,
                macs_total=macs_total, macs_skipped=skipped, fallback=fallback,
            )
        )
        return _gemm_epilogue(cols, wt, result, kind)

    # Some windows saw only zeros: partition the rows as well, so the
    # sparse path can skip them while both paths keep issuing the same
    # live-block BLAS call (a row *subset* GEMM is not bit-equal to the
    # same rows of a full GEMM on OpenBLAS).
    live_rows = np.flatnonzero(live_row_mask)
    dead_rows = np.flatnonzero(~live_row_mask)
    result = np.zeros((rows, filters), dtype=np.result_type(cols, wt))
    live_block = cols[np.ix_(live_rows, live_cols)]
    product = live_block @ live_wt
    if skip:
        result[live_rows] = product
        skipped = macs_total - live_rows.size * live_cols.size * filters
    else:
        dead_wt = wt[dead_col_idx]
        result[live_rows] = product + cols[np.ix_(live_rows, dead_col_idx)] @ dead_wt
        if dead_rows.size:
            # Dead windows: every input is exactly zero, so this computes
            # exact ±0.0 — the honest baseline work.
            result[dead_rows] = (
                cols[np.ix_(dead_rows, live_cols)] @ live_wt
                + cols[np.ix_(dead_rows, dead_col_idx)] @ dead_wt
            )
        skipped = 0
    _record(
        GemmRecord(
            kind=kind, path="sparse" if skip else "dense",
            dead_fraction=dead_fraction,
            dead_rows=dead_rows.size / rows,
            macs_total=macs_total, macs_skipped=skipped, fallback=fallback,
        )
    )
    return _gemm_epilogue(cols, wt, result, kind)


def partitioned_matvec(
    weights: np.ndarray,
    flat: np.ndarray,
    mode: str,
    cutoff: float,
) -> np.ndarray:
    """Canonical partitioned ``weights @ flat`` for FC layers.

    ``weights`` is the ``(out, in)`` FC matrix, ``flat`` the flattened
    input vector.  Zero input elements are the dead set (FC inputs are
    post-ReLU, so element-level sparsity is all there is — there is no
    window structure to exploit).  Orientation and partitioning follow
    the same canonical-call rules as :func:`partitioned_gemm`; with no
    zero inputs this is exactly the historical ``weights @ flat``.
    """
    width = flat.size
    out_features = weights.shape[0]
    live_mask = flat != 0.0
    dead = int(width - np.count_nonzero(live_mask))
    macs_total = width * out_features
    if dead == 0:
        _record(
            GemmRecord(
                kind="fc", path="dense", dead_fraction=0.0, dead_rows=0.0,
                macs_total=macs_total, macs_skipped=0,
            )
        )
        return _matvec_epilogue(weights, flat, weights @ flat)

    dead_fraction = dead / width
    skip = _choose_skip(mode, dead_fraction, cutoff)
    fallback = False
    if skip and not _sparse_path_survives_faults():
        skip, fallback = False, True

    live = np.flatnonzero(live_mask)
    product = np.take(weights, live, axis=1) @ flat[live]
    if skip:
        result = product
        skipped = dead * out_features
    else:
        dead_idx = np.flatnonzero(~live_mask)
        result = product + np.take(weights, dead_idx, axis=1) @ flat[dead_idx]
        skipped = 0
    _record(
        GemmRecord(
            kind="fc", path="sparse" if skip else "dense",
            dead_fraction=dead_fraction, dead_rows=0.0,
            macs_total=macs_total, macs_skipped=skipped, fallback=fallback,
        )
    )
    return _matvec_epilogue(weights, flat, result)

"""A small trainable CNN with pure-numpy backpropagation.

The paper's pruning study (Section V-E, Fig. 14, Table II) needs a real
accuracy signal: per-layer thresholds are raised until classification
accuracy starts to drop.  Since no deep-learning framework is available,
this module implements a compact convolutional classifier and an SGD
trainer from scratch.  The trained weights export into a
:class:`~repro.nn.network.Network` / :class:`~repro.nn.inference.WeightStore`
pair, so the *same* inference engine and accelerator simulators used for the
six big networks run the pruning experiments end-to-end: train -> classify
-> threshold-sweep -> simulate cycles.

Architecture (input ``1 x 24 x 24``, :data:`~repro.nn.datasets.NUM_SHAPE_CLASSES`
outputs)::

    conv1:  8 filters 5x5 pad 2, ReLU      -> 8 x 24 x 24
    pool1:  max 2x2 stride 2               -> 8 x 12 x 12
    conv2: 16 filters 3x3 pad 1, ReLU      -> 16 x 12 x 12
    pool2:  max 2x2 stride 2               -> 16 x 6 x 6
    conv3: 24 filters 3x3 pad 1, ReLU      -> 24 x 6 x 6
    fc:     linear to class logits
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.inference import WeightStore
from repro.nn.network import LayerSpec, Network

__all__ = ["SmallCNN", "TrainResult", "train_small_cnn", "build_small_cnn_network"]


# ----------------------------------------------------------------------
# batched primitive ops with backward passes
# ----------------------------------------------------------------------


def _im2col_batch(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Batched im2col: ``(B, C, H, W)`` -> ``(B, OH*OW, C*kh*kw)``."""
    batch, channels, height, width = x.shape
    oh = (height - kh) // stride + 1
    ow = (width - kw) // stride + 1
    sb, sc, sy, sx = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, oh, ow, channels, kh, kw),
        strides=(sb, sy * stride, sx * stride, sc, sy, sx),
        writeable=False,
    )
    return windows.reshape(batch, oh * ow, channels * kh * kw)


def _col2im_batch(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col_batch` (scatter-add back into the input)."""
    batch, channels, height, width = x_shape
    oh = (height - kh) // stride + 1
    ow = (width - kw) // stride + 1
    cols = cols.reshape(batch, oh, ow, channels, kh, kw)
    out = np.zeros(x_shape, dtype=cols.dtype)
    for fy in range(kh):
        for fx in range(kw):
            out[:, :, fy : fy + oh * stride : stride, fx : fx + ow * stride : stride] += (
                cols[:, :, :, :, fy, fx].transpose(0, 3, 1, 2)
            )
    return out


class _ConvLayer:
    """Conv + bias with cached forward state for backprop."""

    def __init__(self, rng, in_ch: int, out_ch: int, kernel: int, pad: int):
        fan_in = in_ch * kernel * kernel
        self.w = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(out_ch, in_ch, kernel, kernel))
        self.b = np.zeros(out_ch)
        self.kernel, self.pad = kernel, pad
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.x_shape = x.shape
        if self.pad:
            x = np.pad(x, ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)))
        self.x_padded_shape = x.shape
        self.cols = _im2col_batch(x, self.kernel, self.kernel, 1)
        out_ch = self.w.shape[0]
        w_mat = self.w.reshape(out_ch, -1)
        batch = x.shape[0]
        oh = x.shape[2] - self.kernel + 1
        ow = x.shape[3] - self.kernel + 1
        out = self.cols @ w_mat.T + self.b
        return out.reshape(batch, oh, ow, out_ch).transpose(0, 3, 1, 2)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        batch, out_ch, oh, ow = dout.shape
        dmat = dout.transpose(0, 2, 3, 1).reshape(batch, oh * ow, out_ch)
        self.db = dmat.sum(axis=(0, 1))
        self.dw = np.einsum("bij,bik->jk", dmat, self.cols).reshape(self.w.shape)
        dcols = dmat @ self.w.reshape(out_ch, -1)
        dx = _col2im_batch(dcols, self.x_padded_shape, self.kernel, self.kernel, 1)
        if self.pad:
            dx = dx[:, :, self.pad : -self.pad, self.pad : -self.pad]
        return dx


class _ReLULayer:
    def forward(self, x: np.ndarray) -> np.ndarray:
        self.mask = x > 0
        return x * self.mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return dout * self.mask


class _MaxPoolLayer:
    """2x2 stride-2 max pooling with cached argmax."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        self.x_shape = x.shape
        blocks = x.reshape(batch, channels, height // 2, 2, width // 2, 2)
        blocks = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, height // 2, width // 2, 4
        )
        self.argmax = blocks.argmax(axis=-1)
        return blocks.max(axis=-1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        batch, channels, oh, ow = dout.shape
        grad_blocks = np.zeros((batch, channels, oh, ow, 4), dtype=dout.dtype)
        np.put_along_axis(grad_blocks, self.argmax[..., None], dout[..., None], axis=-1)
        grad = grad_blocks.reshape(batch, channels, oh, ow, 2, 2)
        grad = grad.transpose(0, 1, 2, 4, 3, 5).reshape(self.x_shape)
        return grad


class _FCLayer:
    def __init__(self, rng, in_features: int, out_features: int):
        self.w = rng.normal(0.0, np.sqrt(2.0 / in_features), size=(out_features, in_features))
        self.b = np.zeros(out_features)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.x_shape = x.shape
        self.flat = x.reshape(x.shape[0], -1)
        return self.flat @ self.w.T + self.b

    def backward(self, dout: np.ndarray) -> np.ndarray:
        self.dw = dout.T @ self.flat
        self.db = dout.sum(axis=0)
        return (dout @ self.w).reshape(self.x_shape)


@dataclass
class SmallCNN:
    """The trainable classifier; see module docstring for the architecture."""

    num_classes: int
    seed: int = 0
    input_size: int = 24

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        self.conv1 = _ConvLayer(rng, 1, 8, kernel=5, pad=2)
        self.relu1 = _ReLULayer()
        self.pool1 = _MaxPoolLayer()
        self.conv2 = _ConvLayer(rng, 8, 16, kernel=3, pad=1)
        self.relu2 = _ReLULayer()
        self.pool2 = _MaxPoolLayer()
        self.conv3 = _ConvLayer(rng, 16, 24, kernel=3, pad=1)
        self.relu3 = _ReLULayer()
        feat = 24 * (self.input_size // 4) ** 2
        self.fc = _FCLayer(rng, feat, self.num_classes)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward a ``(B, 1, H, W)`` batch to ``(B, classes)`` logits."""
        h = self.pool1.forward(self.relu1.forward(self.conv1.forward(x)))
        h = self.pool2.forward(self.relu2.forward(self.conv2.forward(h)))
        h = self.relu3.forward(self.conv3.forward(h))
        return self.fc.forward(h)

    def loss_and_backward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Softmax cross-entropy; populates layer gradients."""
        batch = logits.shape[0]
        shifted = logits - logits.max(axis=1, keepdims=True)
        exps = np.exp(shifted)
        probs = exps / exps.sum(axis=1, keepdims=True)
        loss = -np.log(probs[np.arange(batch), labels] + 1e-12).mean()
        dlogits = probs
        dlogits[np.arange(batch), labels] -= 1.0
        dlogits /= batch
        dh = self.fc.backward(dlogits)
        dh = self.conv3.backward(self.relu3.backward(dh))
        dh = self.pool2.backward(dh)
        dh = self.conv2.backward(self.relu2.backward(dh))
        dh = self.pool1.backward(dh)
        self.conv1.backward(self.relu1.backward(dh))
        return float(loss)

    def sgd_step(self, lr: float, momentum: float = 0.9) -> None:
        if not hasattr(self, "_velocity"):
            self._velocity = {}
        for name, layer in (
            ("conv1", self.conv1),
            ("conv2", self.conv2),
            ("conv3", self.conv3),
            ("fc", self.fc),
        ):
            for pname in ("w", "b"):
                key = f"{name}.{pname}"
                grad = getattr(layer, f"d{pname}")
                vel = self._velocity.get(key)
                vel = grad if vel is None else momentum * vel + grad
                self._velocity[key] = vel
                setattr(layer, pname, getattr(layer, pname) - lr * vel)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x).argmax(axis=1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(images) == labels))

    # ------------------------------------------------------------------
    def export(self) -> tuple[Network, WeightStore]:
        """Export to a Network/WeightStore runnable by the shared engine."""
        network = build_small_cnn_network(self.num_classes, self.input_size)
        store = WeightStore()
        store.weights["conv1"] = self.conv1.w.copy()
        store.biases["conv1"] = self.conv1.b.copy()
        store.weights["conv2"] = self.conv2.w.copy()
        store.biases["conv2"] = self.conv2.b.copy()
        store.weights["conv3"] = self.conv3.w.copy()
        store.biases["conv3"] = self.conv3.b.copy()
        store.weights["fc"] = self.fc.w.copy()
        store.biases["fc"] = self.fc.b.copy()
        return network, store


def build_small_cnn_network(num_classes: int, input_size: int = 24) -> Network:
    """The :class:`SmallCNN` architecture as a Network description."""
    layers = [
        LayerSpec(name="conv1", kind="conv", num_filters=8, kernel=5, pad=2, fused_relu=True),
        LayerSpec(name="pool1", kind="maxpool", kernel=2, stride=2),
        LayerSpec(name="conv2", kind="conv", num_filters=16, kernel=3, pad=1, fused_relu=True),
        LayerSpec(name="pool2", kind="maxpool", kernel=2, stride=2),
        LayerSpec(name="conv3", kind="conv", num_filters=24, kernel=3, pad=1, fused_relu=True),
        LayerSpec(name="fc", kind="fc", num_filters=num_classes, fused_relu=False),
        LayerSpec(name="prob", kind="softmax"),
    ]
    return Network(name="smallcnn", input_shape=(1, input_size, input_size), layers=layers)


@dataclass
class TrainResult:
    """Outcome of :func:`train_small_cnn`."""

    model: SmallCNN
    network: Network
    store: WeightStore
    train_accuracy: float
    test_accuracy: float
    losses: list[float] = field(default_factory=list)


def train_small_cnn(
    train_count: int = 512,
    test_count: int = 256,
    epochs: int = 6,
    batch_size: int = 32,
    lr: float = 0.05,
    seed: int = 0,
) -> TrainResult:
    """Train :class:`SmallCNN` on the synthetic shape dataset.

    Defaults reach well above 90% test accuracy in a few seconds of numpy
    time, leaving clear headroom for pruning to degrade — the regime the
    Fig. 14 trade-off curves explore.
    """
    from repro.nn.datasets import NUM_SHAPE_CLASSES, ShapeDataset

    dataset = ShapeDataset()
    train_images, train_labels = dataset.batch(train_count, seed=seed)
    test_images, test_labels = dataset.batch(test_count, seed=seed + 1)
    x_train = np.stack(train_images)
    x_test = np.stack(test_images)

    model = SmallCNN(num_classes=NUM_SHAPE_CLASSES, seed=seed)
    rng = np.random.default_rng(seed + 2)
    losses: list[float] = []
    for epoch in range(epochs):
        order = rng.permutation(train_count)
        epoch_lr = lr * (0.5 ** (epoch // 2))
        for start in range(0, train_count, batch_size):
            idx = order[start : start + batch_size]
            logits = model.forward(x_train[idx])
            loss = model.loss_and_backward(logits, train_labels[idx])
            model.sgd_step(epoch_lr)
            losses.append(loss)

    network, store = model.export()
    return TrainResult(
        model=model,
        network=network,
        store=store,
        train_accuracy=model.accuracy(x_train, train_labels),
        test_accuracy=model.accuracy(x_test, test_labels),
        losses=losses,
    )

"""DNN substrate: layers, networks, inference, calibration, training.

This subpackage replaces what the paper obtained from Caffe: the six Table I
network definitions, a functional inference engine producing the inter-layer
activations that Cnvlutin's value-based skipping exploits, fixed-point
arithmetic matching the accelerator datapath, sparsity calibration to the
paper's Fig. 1 statistics, and a small trainable CNN for the accuracy
experiments.
"""

from repro.nn.activations import brick_nonzero_counts, sparse_activations, zero_fraction
from repro.nn.calibration import (
    PAPER_ZERO_FRACTIONS,
    calibrate_network,
    measure_zero_fractions,
)
from repro.nn.inference import ForwardResult, WeightStore, init_weights, run_forward
from repro.nn.io import load_weights, save_weights
from repro.nn.models import build_network, network_names
from repro.nn.network import LayerKind, LayerSpec, Network
from repro.nn.tensor import DEFAULT_FORMAT, FixedPointFormat, dequantize, quantize

__all__ = [
    "brick_nonzero_counts",
    "sparse_activations",
    "zero_fraction",
    "PAPER_ZERO_FRACTIONS",
    "calibrate_network",
    "measure_zero_fractions",
    "ForwardResult",
    "WeightStore",
    "init_weights",
    "run_forward",
    "load_weights",
    "save_weights",
    "build_network",
    "network_names",
    "LayerKind",
    "LayerSpec",
    "Network",
    "DEFAULT_FORMAT",
    "FixedPointFormat",
    "dequantize",
    "quantize",
]

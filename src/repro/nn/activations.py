"""Fast synthetic activation fields with controlled sparsity.

Unit tests and benchmarks need activation tensors with a *known* zero
fraction and realistic spatial clustering without paying for a full
calibrated forward pass.  This module generates them directly: a smoothed
random field is thresholded at the requested quantile, which reproduces the
two properties the Cnvlutin timing model is sensitive to — the marginal
zero probability and the spatial/channel correlation of the zeros (zeros
cluster in "feature absent" regions, so bricks tend to be either mostly
full or mostly empty, exactly the imbalance that creates CNV's
synchronization stalls).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["sparse_activations", "brick_nonzero_counts", "zero_fraction"]


def sparse_activations(
    shape: tuple[int, int, int],
    zero_fraction: float,
    rng: np.random.Generator,
    correlation: float = 2.0,
    channel_correlation: float = 0.5,
) -> np.ndarray:
    """Generate a non-negative ``(depth, y, x)`` activation array.

    Parameters
    ----------
    shape:
        ``(depth, height, width)`` of the activation tensor.
    zero_fraction:
        Desired fraction of exactly-zero entries, in ``[0, 1)``.
    rng:
        Source of randomness.
    correlation:
        Spatial Gaussian-smoothing sigma; larger values cluster the zeros
        more strongly (0 gives i.i.d. zeros).
    channel_correlation:
        Smoothing sigma along the channel axis; real networks show related
        adjacent channels, which matters because ZFNAf bricks run along the
        channel (i) dimension.
    """
    if not 0.0 <= zero_fraction < 1.0:
        raise ValueError("zero_fraction must be in [0, 1)")
    field = rng.normal(size=shape)
    sigmas = (channel_correlation, correlation, correlation)
    if any(s > 0 for s in sigmas):
        field = ndimage.gaussian_filter(field, sigma=sigmas)
    if zero_fraction > 0.0:
        cut = np.quantile(field, zero_fraction)
        out = np.where(field > cut, field - cut, 0.0)
    else:
        out = field - field.min() + 1e-3
    # Scale into a pleasant [0, ~2] activation range.
    peak = out.max()
    if peak > 0:
        out = out * (2.0 / peak)
    return out


def zero_fraction(activations: np.ndarray) -> float:
    """Fraction of exactly-zero entries."""
    return float(np.mean(activations == 0.0))


def brick_nonzero_counts(
    activations: np.ndarray, brick_size: int = 16
) -> np.ndarray:
    """Non-zero counts per ZFNAf brick.

    Bricks run along the channel dimension (the paper's *i* axis): an
    aligned group of ``brick_size`` neurons sharing (y, x).  The channel
    dimension is zero-padded up to a multiple of ``brick_size``, mirroring
    how the baseline pads fetch blocks.

    Returns an array of shape ``(y, x, depth_bricks)`` with values in
    ``[0, brick_size]``.
    """
    depth, height, width = activations.shape
    padded_depth = -(-depth // brick_size) * brick_size
    if padded_depth != depth:
        padded = np.zeros((padded_depth, height, width), dtype=activations.dtype)
        padded[:depth] = activations
    else:
        padded = activations
    mask = padded != 0.0
    counts = mask.reshape(padded_depth // brick_size, brick_size, height, width).sum(
        axis=1
    )
    # (depth_bricks, y, x) -> (y, x, depth_bricks)
    return counts.transpose(1, 2, 0).astype(np.int64)

"""Forward-pass engine for :class:`~repro.nn.network.Network` descriptions.

This is the functional substrate the paper gets from Caffe: it computes the
activations flowing between layers so that (a) the zero-neuron statistics of
Section II can be measured, (b) the cycle simulators have real inputs to
process, and (c) hardware outputs can be validated layer by layer
("on-the-fly validation of the layer output neurons", Section V-A).

The engine supports:

* per-conv-layer *pruning thresholds* (Section V-E): at the output of a
  layer, post-ReLU values with magnitude below the layer's threshold are
  zeroed — exactly what the CNV encoder does with the reused max-pooling
  comparators;
* per-layer *calibration shifts* (see :mod:`repro.nn.calibration`) which
  stand in for the learned biases of the pretrained models;
* optional 16-bit fixed-point quantization at layer boundaries, matching
  the accelerator datapath;
* *batched* inference: a ``(batch, depth, H, W)`` image stack runs every
  image through the network in one pass, bit-identical to per-image calls
  (see :mod:`repro.nn.layers` for how the BLAS calls preserve this).

Activations are computed in the input's floating dtype: a float32 image
over float32 weights stays float32 end to end (integer inputs are promoted
to float64).  Incremental re-use of activations across threshold
configurations lives in :mod:`repro.nn.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.nn import layers as F
from repro.nn import sparse as zskip
from repro.nn.network import LayerKind, LayerSpec, Network
from repro.nn.tensor import FixedPointFormat, dequantize, quantize

__all__ = [
    "WeightStore",
    "ForwardResult",
    "init_weights",
    "run_forward",
    "apply_layer",
]


@dataclass
class WeightStore:
    """Weights and biases for the conv/FC layers of one network.

    ``shifts`` holds per-layer calibration offsets added to the layer's
    pre-activations — scalars or per-output-channel arrays (broadcast over
    the spatial dims).  They play the role of the learned biases that set
    each unit's operating point (and hence its zero fraction); per-channel
    shifts keep every channel live, as trained biases do.
    """

    weights: dict[str, np.ndarray] = field(default_factory=dict)
    biases: dict[str, np.ndarray] = field(default_factory=dict)
    shifts: dict[str, float | np.ndarray] = field(default_factory=dict)

    def shift(self, layer_name: str):
        return self.shifts.get(layer_name, 0.0)


def init_weights(network: Network, rng: np.random.Generator) -> WeightStore:
    """He-initialized random weights for every conv and FC layer.

    The reproduction substitutes pretrained Model-Zoo weights with random
    filters whose scale keeps activation variance roughly constant across
    layers (He et al. scaling); :mod:`repro.nn.calibration` then sets the
    per-layer shifts so the zero-neuron fractions match the paper's Fig. 1.
    """
    store = WeightStore()
    for layer in network.layers:
        if layer.kind == LayerKind.CONV:
            depth = network.input_shape_of(layer.name)[0] // layer.groups
            fan_in = depth * layer.kernel * layer.kernel
            shape = (layer.num_filters, depth, layer.kernel, layer.kernel)
        elif layer.kind == LayerKind.FC:
            in_shape = network.input_shape_of(layer.name)
            fan_in = in_shape[0] * in_shape[1] * in_shape[2]
            shape = (layer.num_filters, fan_in)
        else:
            continue
        scale = np.sqrt(2.0 / fan_in)
        store.weights[layer.name] = rng.normal(0.0, scale, size=shape)
        store.biases[layer.name] = np.zeros(layer.num_filters)
    return store


@dataclass
class ForwardResult:
    """All per-layer activations produced by one forward pass.

    Attributes
    ----------
    outputs:
        Output activation of every layer, by name.  For a batched pass
        every array carries the leading batch axis.
    conv_inputs:
        The activation array *consumed* by each conv layer — the neuron
        stream whose zeros CNV skips.  For grouped convolutions this is the
        full (ungrouped) input; the simulators handle the group split.
    logits:
        Output of the last FC layer (before softmax), if any — ``(classes,)``
        per image, ``(batch, classes)`` for a batched pass.
    """

    outputs: dict[str, np.ndarray]
    conv_inputs: dict[str, np.ndarray]
    logits: np.ndarray | None = None

    def prob(self) -> np.ndarray | None:
        """Softmax probabilities if the network ends in a softmax layer."""
        for name in reversed(list(self.outputs)):
            if name == "prob":
                return self.outputs[name]
        return None


def _apply_shift(pre: np.ndarray, shift) -> np.ndarray:
    """Add a scalar or per-channel shift to a pre-activation array."""
    if np.ndim(shift) == 1 and pre.ndim == 3:
        return pre + np.asarray(shift).reshape(-1, 1, 1)
    if np.ndim(shift) == 1 and pre.ndim == 4:
        return pre + np.asarray(shift).reshape(1, -1, 1, 1)
    return pre + shift


def _producer_output(
    network: Network,
    index: int,
    layer: LayerSpec,
    outputs: dict[str, np.ndarray],
    image: np.ndarray,
) -> np.ndarray:
    if layer.input_from is None:
        if index == 0:
            return image
        return outputs[network.layers[index - 1].name]
    if len(layer.input_from) != 1:
        raise ValueError(f"layer {layer.name!r} has multiple producers")
    return outputs[layer.input_from[0]]


def apply_layer(
    layer: LayerSpec,
    src: np.ndarray,
    store: WeightStore,
    thresholds: dict[str, float],
    shift_fn=None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Compute one layer's raw output from its (already gathered) input.

    ``src`` is the layer's input activation — for CONCAT layers, pass the
    already concatenated array.  Returns ``(out, logits)`` where ``logits``
    is non-``None`` only for FC and SOFTMAX layers (the *pre-quantization*
    logit vector).  Works on both single-image (3-D) and batched (4-D)
    activations.  Quantization at the layer boundary is the caller's job.
    """
    batched = src.ndim == 4
    if layer.kind == LayerKind.CONV:
        pre = F.conv2d(
            src,
            store.weights[layer.name],
            store.biases[layer.name],
            stride=layer.stride,
            pad=layer.pad,
            groups=layer.groups,
        )
        if shift_fn is not None:
            pre = _apply_shift(pre, shift_fn(layer.name, pre))
        else:
            pre = _apply_shift(pre, store.shift(layer.name))
        if layer.fused_relu:
            return F.threshold_relu(pre, thresholds.get(layer.name, 0.0)), None
        return pre, None
    if layer.kind == LayerKind.RELU:
        return F.threshold_relu(src, thresholds.get(layer.name, 0.0)), None
    if layer.kind == LayerKind.MAXPOOL:
        return F.max_pool2d(src, layer.kernel, layer.stride, layer.pad), None
    if layer.kind == LayerKind.AVGPOOL:
        return F.avg_pool2d(src, layer.kernel, layer.stride, layer.pad), None
    if layer.kind == LayerKind.LRN:
        return F.lrn(src, local_size=layer.lrn_size), None
    if layer.kind == LayerKind.DROPOUT:
        return src, None  # identity at inference time
    if layer.kind == LayerKind.FC:
        pre = F.fully_connected(
            src, store.weights[layer.name], store.biases[layer.name]
        )
        if shift_fn is not None:
            pre = _apply_shift(pre, shift_fn(layer.name, pre))
        else:
            pre = _apply_shift(pre, store.shift(layer.name))
        if layer.fused_relu:
            pre = F.threshold_relu(pre, thresholds.get(layer.name, 0.0))
        if batched:
            out = pre.reshape(pre.shape[0], layer.num_filters, 1, 1)
        else:
            out = pre.reshape(layer.num_filters, 1, 1)
        return out, pre
    if layer.kind == LayerKind.SOFTMAX:
        if batched:
            logits = src.reshape(src.shape[0], -1)
        else:
            logits = src.reshape(-1)  # softmax input, FC or not (nin)
        return F.softmax(logits).reshape(src.shape), logits
    raise AssertionError(f"unhandled kind {layer.kind}")  # pragma: no cover


def run_forward(
    network: Network,
    store: WeightStore,
    image: np.ndarray,
    thresholds: dict[str, float] | None = None,
    collect_conv_inputs: bool = True,
    fmt: FixedPointFormat | None = None,
    keep_outputs: bool = True,
    shift_fn=None,
    formats: dict[str, FixedPointFormat] | None = None,
) -> ForwardResult:
    """Run one image — or a stack of images — through the network.

    Parameters
    ----------
    network, store, image:
        The network description, its weights, and a ``(depth, H, W)`` input
        or ``(batch, depth, H, W)`` stack.  The pass computes in the
        image's floating dtype (integer images are promoted to float64).
        A batched pass produces bit-identical arrays to running each image
        separately, with every result carrying the leading batch axis.
    thresholds:
        Optional per-layer pruning thresholds (real-valued); applied to the
        post-ReLU output of the named conv/FC layers (Section V-E dynamic
        neuron pruning).
    collect_conv_inputs:
        Record the neuron array consumed by each conv layer (needed for the
        sparsity statistics and the accelerator simulations).
    fmt:
        If given, quantize activations to this fixed-point format at every
        layer boundary, as the hardware stores them in NM.
    keep_outputs:
        If false, only ``conv_inputs``/``logits`` are retained (saves
        memory on deep networks).
    shift_fn:
        Optional ``(layer_name, pre_activation) -> shift`` hook used by the
        calibration pass (:mod:`repro.nn.calibration`): when provided it
        overrides ``store.shifts`` for conv/FC layers and sees the raw
        (unshifted) pre-activation.
    formats:
        Optional *per-layer* fixed-point formats applied to the named
        layers' outputs — the variable-precision value property the
        paper's conclusion points at (Judd et al., "Stripes"); used by
        :mod:`repro.extensions.precision`.
    """
    image = np.asarray(image)
    if image.shape != network.input_shape and not (
        image.ndim == 4 and image.shape[1:] == network.input_shape
    ):
        raise ValueError(
            f"image shape {image.shape} != network input {network.input_shape}"
        )
    thresholds = thresholds or {}
    formats = formats or {}

    def maybe_quantize(arr: np.ndarray, layer_name: str | None = None) -> np.ndarray:
        layer_fmt = formats.get(layer_name) if layer_name else None
        if layer_fmt is not None:
            arr = dequantize(quantize(arr, layer_fmt), layer_fmt)
        if fmt is None:
            return arr
        return dequantize(quantize(arr, fmt), fmt)

    outputs: dict[str, np.ndarray] = {}
    conv_inputs: dict[str, np.ndarray] = {}
    logits: np.ndarray | None = None
    consumers = _consumer_counts(network)
    remaining = dict(consumers)

    if not np.issubdtype(image.dtype, np.floating):
        image = image.astype(np.float64)
    image = maybe_quantize(image)

    zskip.pop_records()  # discard records left by unrelated layer calls
    for idx, layer in enumerate(network.layers):
        with obs.span(
            f"layer:{layer.name}", cat="nn", network=network.name,
            kind=layer.kind,
        ) as layer_span:
            if layer.kind == LayerKind.CONCAT:
                parts = [outputs[src] for src in layer.input_from]
                out = np.concatenate(parts, axis=parts[0].ndim - 3)
            else:
                src = _producer_output(network, idx, layer, outputs, image)
                if layer.kind == LayerKind.CONV and collect_conv_inputs:
                    conv_inputs[layer.name] = src
                out, layer_logits = apply_layer(layer, src, store, thresholds, shift_fn)
                if layer_logits is not None:
                    logits = layer_logits

            out = maybe_quantize(out, layer.name)
            outputs[layer.name] = out
            sparse_records = zskip.pop_records()
            if obs.tracing_enabled():
                layer_span.set(shape=str(out.shape))
                if sparse_records:
                    layer_span.set(**zskip.summarize_records(sparse_records))

        if not keep_outputs:
            _release_consumed(network, idx, outputs, remaining)

    return ForwardResult(
        outputs=outputs if keep_outputs else {},
        conv_inputs=conv_inputs,
        logits=logits,
    )


def _consumer_counts(network: Network) -> dict[str, int]:
    """How many later layers read each layer's output (for memory release)."""
    counts = {layer.name: 0 for layer in network.layers}
    for idx, layer in enumerate(network.layers):
        if layer.kind == LayerKind.CONCAT:
            for src in layer.input_from:
                counts[src] += 1
        elif layer.input_from is not None:
            counts[layer.input_from[0]] += 1
        elif idx > 0:
            counts[network.layers[idx - 1].name] += 1
    return counts


def _release_consumed(
    network: Network,
    index: int,
    outputs: dict[str, np.ndarray],
    remaining: dict[str, int],
) -> None:
    layer = network.layers[index]
    sources: list[str] = []
    if layer.kind == LayerKind.CONCAT:
        sources = list(layer.input_from)
    elif layer.input_from is not None:
        sources = [layer.input_from[0]]
    elif index > 0:
        sources = [network.layers[index - 1].name]
    for src in sources:
        remaining[src] -= 1
        if remaining[src] == 0:
            outputs.pop(src, None)

"""Fixed-point tensor utilities.

DaDianNao and Cnvlutin operate on 16-bit fixed-point values (the paper
assumes "16-bit fixed-point" neurons and synapses throughout, Section IV-A).
This module provides the quantization helpers used by both the functional
simulators and the reference (float) inference engine so that hardware
outputs can be validated bit-exactly against a quantized golden model.

The fixed-point format is a signed two's-complement Q(m.f) format with
``total_bits`` total bits of which ``frac_bits`` are fractional.  Values are
represented *in integer form* (numpy ``int32`` holding the raw fixed-point
integer) so that multiply/accumulate arithmetic mirrors what the hardware
datapath does: a 16b x 16b multiply produces a 32b product, products are
accumulated at full precision in the adder trees, and the final output
neuron is rounded/saturated back to 16 bits before being written to NBout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FixedPointFormat",
    "DEFAULT_FORMAT",
    "quantize",
    "dequantize",
    "saturate",
    "fixed_point_mac",
]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format.

    Attributes
    ----------
    total_bits:
        Total width in bits including the sign bit.
    frac_bits:
        Number of fractional bits.  ``value = raw / 2**frac_bits``.
    """

    total_bits: int = 16
    frac_bits: int = 8

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("total_bits must be >= 2")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError("frac_bits must be in [0, total_bits)")

    @property
    def scale(self) -> int:
        """Integer scale factor ``2**frac_bits``."""
        return 1 << self.frac_bits

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer."""
        return -(1 << (self.total_bits - 1))

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min / self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max / self.scale

    @property
    def resolution(self) -> float:
        """Value of one least-significant bit."""
        return 1.0 / self.scale


#: The 16-bit format used by the paper's datapath.  Q8.8 gives a dynamic
#: range of [-128, 128) with 1/256 resolution which is ample for the
#: normalized activations this repo generates.
DEFAULT_FORMAT = FixedPointFormat(total_bits=16, frac_bits=8)


def quantize(values: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT) -> np.ndarray:
    """Quantize real ``values`` to raw fixed-point integers (``int32``).

    Rounds to nearest (ties away from zero, matching a hardware
    round-half-away adder) and saturates to the representable range.
    """
    raw = np.asarray(values, dtype=np.float64) * fmt.scale
    raw = np.where(raw >= 0, np.floor(raw + 0.5), np.ceil(raw - 0.5))
    return np.clip(raw, fmt.raw_min, fmt.raw_max).astype(np.int32)


def dequantize(raw: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT) -> np.ndarray:
    """Convert raw fixed-point integers back to real values (``float64``)."""
    return np.asarray(raw, dtype=np.float64) / fmt.scale


def saturate(raw: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT) -> np.ndarray:
    """Saturate raw integers to the representable range of ``fmt``."""
    return np.clip(np.asarray(raw), fmt.raw_min, fmt.raw_max).astype(np.int32)


def fixed_point_mac(
    neurons_raw: np.ndarray,
    synapses_raw: np.ndarray,
    fmt: FixedPointFormat = DEFAULT_FORMAT,
) -> np.ndarray:
    """Multiply-accumulate in raw fixed-point, as the NFU datapath does.

    ``neurons_raw`` and ``synapses_raw`` are broadcast-compatible arrays of
    raw integers.  Each product of two Q(m.f) numbers is a Q(2m.2f) number;
    the adder tree accumulates products at full precision (``int64``), and
    the caller is responsible for the final rescale via
    :func:`rescale_accumulator`.
    """
    return (
        np.asarray(neurons_raw, dtype=np.int64) * np.asarray(synapses_raw, dtype=np.int64)
    )


def rescale_accumulator(
    acc: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT
) -> np.ndarray:
    """Rescale a full-precision accumulator back to raw Q(m.f) with rounding.

    The accumulator holds Q(2m.2f) sums; shifting right by ``frac_bits``
    (with round-to-nearest) returns to Q(m.f), then saturates.
    """
    acc = np.asarray(acc, dtype=np.int64)
    half = 1 << (fmt.frac_bits - 1) if fmt.frac_bits > 0 else 0
    rounded = np.where(acc >= 0, acc + half, acc - half) >> fmt.frac_bits
    return np.clip(rounded, fmt.raw_min, fmt.raw_max).astype(np.int32)


__all__.append("rescale_accumulator")

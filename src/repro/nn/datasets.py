"""Synthetic input data.

The paper classifies 1000 ImageNet images; we have no network access, so
this module generates two kinds of synthetic inputs:

* :func:`natural_image` — multi-scale correlated random fields that mimic
  the 1/f spatial statistics of natural photographs.  These drive the
  sparsity measurements (Fig. 1) and the timing simulations: what matters
  there is that activations flowing through the calibrated networks have
  realistic spatial structure, not that the images depict objects.
* :class:`ShapeDataset` — a small labelled image-classification task
  (oriented bars, crosses, circles, squares, ...) used to *train* a real
  CNN with :mod:`repro.nn.training` so that the pruning experiments
  (Fig. 14, Table II) have a genuine accuracy signal to trade off against
  speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["natural_image", "natural_images", "ShapeDataset", "NUM_SHAPE_CLASSES"]


def natural_image(
    shape: tuple[int, int, int], rng: np.random.Generator
) -> np.ndarray:
    """One synthetic 'natural' image with 1/f-like spectra, values in [0, 1].

    Built as a sum of Gaussian-smoothed white-noise octaves.  The per-image
    octave weights, contrast and colour cast are themselves randomized so
    *different images differ as strongly as different photographs do* —
    without this, zero-neuron positions would correlate across inputs far
    more than the paper observes (Section II finds no neuron that is zero
    on every input).
    """
    depth, height, width = shape
    image = np.zeros(shape, dtype=np.float64)
    max_sigma = max(height, width) / 8
    sigma = 1.0
    amplitude = 1.0
    decay = rng.uniform(0.35, 0.75)  # per-image spectral slope
    while sigma <= max_sigma:
        noise = rng.normal(size=shape)
        smooth = np.stack(
            [ndimage.gaussian_filter(noise[z], sigma=sigma) for z in range(depth)]
        )
        std = smooth.std()
        if std > 0:
            image += amplitude * rng.uniform(0.5, 1.5) * smooth / std
        sigma *= 2.0
        amplitude *= decay
    # Smooth per-image illumination field (shadows / vignetting).
    illum = ndimage.gaussian_filter(
        rng.normal(size=(height, width)), sigma=max(height, width) / 4
    )
    if illum.std() > 0:
        image *= 1.0 + 0.5 * illum / (3 * illum.std())
    image += 0.3 * rng.normal(size=(depth, 1, 1))  # per-channel cast
    lo, hi = image.min(), image.max()
    if hi > lo:
        image = (image - lo) / (hi - lo)
    return image


def natural_images(
    shape: tuple[int, int, int], count: int, seed: int = 0
) -> list[np.ndarray]:
    """A reproducible batch of synthetic natural images."""
    rng = np.random.default_rng(seed)
    return [natural_image(shape, rng) for _ in range(count)]


NUM_SHAPE_CLASSES = 8


@dataclass
class ShapeDataset:
    """Labelled synthetic shape-classification images.

    Eight classes rendered on a noisy background at random positions and
    scales: horizontal bar, vertical bar, the two diagonals, cross, square
    outline, disc, and ring.  Deliberately easy enough for a tiny CNN to
    learn well above chance with numpy-speed training, but hard enough that
    aggressive activation pruning measurably hurts accuracy — the property
    Fig. 14 depends on.
    """

    size: int = 24
    noise: float = 0.25

    def render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        """Render one ``(1, size, size)`` image of class ``label``."""
        if not 0 <= label < NUM_SHAPE_CLASSES:
            raise ValueError(f"label must be in [0, {NUM_SHAPE_CLASSES})")
        size = self.size
        canvas = np.zeros((size, size), dtype=np.float64)
        cy = rng.integers(size // 3, 2 * size // 3)
        cx = rng.integers(size // 3, 2 * size // 3)
        half = int(rng.integers(size // 5, size // 3))
        thick = max(1, size // 12)

        ys, xs = np.mgrid[0:size, 0:size]
        dy, dx = ys - cy, xs - cx
        inside = (np.abs(dy) <= half) & (np.abs(dx) <= half)
        if label == 0:  # horizontal bar
            canvas[(np.abs(dy) < thick) & (np.abs(dx) <= half)] = 1.0
        elif label == 1:  # vertical bar
            canvas[(np.abs(dx) < thick) & (np.abs(dy) <= half)] = 1.0
        elif label == 2:  # main diagonal
            canvas[(np.abs(dy - dx) < thick) & inside] = 1.0
        elif label == 3:  # anti-diagonal
            canvas[(np.abs(dy + dx) < thick) & inside] = 1.0
        elif label == 4:  # cross
            canvas[
                ((np.abs(dy) < thick) | (np.abs(dx) < thick)) & inside
            ] = 1.0
        elif label == 5:  # square outline
            border = (
                (np.abs(np.abs(dy) - half) < thick) & (np.abs(dx) <= half)
            ) | ((np.abs(np.abs(dx) - half) < thick) & (np.abs(dy) <= half))
            canvas[border] = 1.0
        elif label == 6:  # disc
            canvas[dy**2 + dx**2 <= half**2] = 1.0
        else:  # ring
            r2 = dy**2 + dx**2
            canvas[(r2 <= half**2) & (r2 >= (half - 2 * thick) ** 2)] = 1.0

        canvas += self.noise * rng.normal(size=canvas.shape)
        return canvas[np.newaxis, :, :]

    def batch(
        self, count: int, seed: int = 0
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Generate ``count`` images with balanced random labels."""
        rng = np.random.default_rng(seed)
        labels = np.arange(count) % NUM_SHAPE_CLASSES
        rng.shuffle(labels)
        images = [self.render(int(label), rng) for label in labels]
        return images, labels

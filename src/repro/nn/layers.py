"""Functional DNN layer implementations (the golden model).

All layer functions operate on activations stored as 3-D numpy arrays with
layout ``(depth, height, width)`` — i.e. ``a[z, y, x]`` — matching the
paper's description of a layer input as an ``Ix x Iy x i`` array of *input
neurons* indexed ``n(x, y, z)``.  Filters (synapses) are 4-D
``(num_filters, depth, Fy, Fx)``.

Every activation-consuming function also accepts a leading *batch* axis
(``(batch, depth, height, width)``), producing the batch of outputs in one
call.  The batched results are **bit-identical** to running each image
separately: elementwise work is vectorized across the batch, while the
BLAS calls (the conv GEMM and the FC matrix-vector product) are issued per
image on buffers laid out exactly as the single-image path produces them.
A single stacked GEMM over all images is *not* used deliberately —
OpenBLAS dispatches shape-dependent kernels (small-matrix and GEMV
specializations) whose accumulation order differs in the last ulp, which
would break the engine's bit-identity contract (and with it the golden,
ZFNAf and timing validation that diffs hardware outputs against this
model).

The conv GEMM and the FC matvec route through the canonical partitioned
kernels of :mod:`repro.nn.sparse`: the all-zero (ineffectual) slices of
the patch matrix are split off so the ``CNVLUTIN_SPARSE`` mode can skip
them for real wall-clock gains.  Dense and sparse modes are
byte-identical by construction — see that module's docstring for the
bit-identity argument.  Those kernels also carry the ABFT column
checksums of :mod:`repro.reliability.integrity`: under
``CNVLUTIN_INTEGRITY`` every (sampled) GEMM/matvec verifies a
Huang-Abraham sum invariant *before* the bias add, read-only, so a
silently corrupted product raises instead of flowing into downstream
layers or the engine cache.

These implementations are the *golden model*: both the DaDianNao baseline
simulator and the Cnvlutin simulator validate their outputs against them
(the paper's own simulator validated against Caffe in the same fashion,
Section V-A).  ``conv2d`` uses an im2col + matmul formulation for speed; a
deliberately naive quadruple-loop ``conv2d_naive`` exists for testing the
fast path.
"""

from __future__ import annotations

import numpy as np

from repro.nn import sparse as zskip

__all__ = [
    "conv2d",
    "conv2d_naive",
    "relu",
    "threshold_relu",
    "max_pool2d",
    "avg_pool2d",
    "lrn",
    "fully_connected",
    "softmax",
    "im2col",
    "conv_output_size",
    "pad_input",
]


def conv_output_size(in_size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial size for a convolution/pooling window.

    Implements ``O = (I - F + 2*pad) / S + 1`` (floor), the formula from
    Section III-A generalized with padding.
    """
    out = (in_size - kernel + 2 * pad) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size: in={in_size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def pad_input(activations: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the spatial (y, x) dimensions — the last two axes.

    Works for ``(z, y, x)`` arrays and batched ``(batch, z, y, x)`` arrays.
    """
    if pad < 0:
        raise ValueError("pad must be non-negative")
    if pad == 0:
        return activations
    width = [(0, 0)] * (activations.ndim - 2) + [(pad, pad), (pad, pad)]
    return np.pad(activations, width)


def im2col(
    activations: np.ndarray, kernel_y: int, kernel_x: int, stride: int
) -> np.ndarray:
    """Unfold windows of a (pre-padded) ``(z, y, x)`` array into columns.

    Returns an array of shape ``(out_y * out_x, z * kernel_y * kernel_x)``
    where each row is one window flattened in ``(z, fy, fx)`` order.  A
    batched ``(batch, z, y, x)`` input unfolds every image at once and
    returns ``(batch, out_y * out_x, z * kernel_y * kernel_x)``; each
    ``cols[b]`` is a C-contiguous buffer identical to the single-image
    unfold of ``activations[b]``.
    """
    if activations.ndim == 4:
        batch, depth, in_y, in_x = activations.shape
        out_y = (in_y - kernel_y) // stride + 1
        out_x = (in_x - kernel_x) // stride + 1
        sb, sz, sy, sx = activations.strides
        windows = np.lib.stride_tricks.as_strided(
            activations,
            shape=(batch, out_y, out_x, depth, kernel_y, kernel_x),
            strides=(sb, sy * stride, sx * stride, sz, sy, sx),
            writeable=False,
        )
        return windows.reshape(batch, out_y * out_x, depth * kernel_y * kernel_x)
    depth, in_y, in_x = activations.shape
    out_y = (in_y - kernel_y) // stride + 1
    out_x = (in_x - kernel_x) // stride + 1
    sz, sy, sx = activations.strides
    windows = np.lib.stride_tricks.as_strided(
        activations,
        shape=(out_y, out_x, depth, kernel_y, kernel_x),
        strides=(sy * stride, sx * stride, sz, sy, sx),
        writeable=False,
    )
    return windows.reshape(out_y * out_x, depth * kernel_y * kernel_x)


def conv2d(
    activations: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    sparse_mode: str | None = None,
) -> np.ndarray:
    """2-D convolution (cross-correlation, as in CNN frameworks).

    Parameters
    ----------
    activations:
        Input neurons, shape ``(i, Iy, Ix)`` or batched ``(batch, i, Iy, Ix)``.
    weights:
        Synapses, shape ``(N, i // groups, Fy, Fx)``.
    bias:
        Optional per-filter bias, shape ``(N,)``.
    stride, pad:
        Spatial stride and symmetric zero padding.
    groups:
        Grouped convolution (AlexNet-style two-GPU splits use ``groups=2``).
    sparse_mode:
        Optional per-call override of the :mod:`repro.nn.sparse` compute
        path (``auto|always|never``); defaults to ``CNVLUTIN_SPARSE``.
        The mode never changes the output bytes, only the wall-clock.

    Returns
    -------
    Output neurons of shape ``(N, Oy, Ox)`` — or ``(batch, N, Oy, Ox)`` for
    batched input — (pre-activation — apply :func:`relu` separately,
    mirroring the hardware where ReLU happens at the output of the unit
    back-end).  Batched output rows are bit-identical to single-image
    calls: im2col is stacked across the batch, but the GEMM runs per image
    (see module docstring).
    """
    if activations.ndim == 4:
        depth, in_y, in_x = activations.shape[1:]
    else:
        depth, in_y, in_x = activations.shape
    num_filters, w_depth, kernel_y, kernel_x = weights.shape
    if depth % groups or num_filters % groups:
        raise ValueError("depth and num_filters must be divisible by groups")
    if w_depth != depth // groups:
        raise ValueError(
            f"weight depth {w_depth} != input depth {depth} / groups {groups}"
        )
    padded = pad_input(activations, pad)
    out_y = conv_output_size(in_y, kernel_y, stride, pad)
    out_x = conv_output_size(in_x, kernel_x, stride, pad)

    group_depth = depth // groups
    group_filters = num_filters // groups
    # Compute in the inputs' precision (float32 weights halve the cost of
    # the full-resolution experiment sweeps; default stays float64).
    out_dtype = np.result_type(activations, weights)
    mode = zskip.resolve_mode(sparse_mode)
    cutoff = zskip.resolve_cutoff()
    transposed = zskip.transposed_weights(weights, groups)
    # The bias add is unconditional (0.0 when absent): it normalizes the
    # sign of the exactly-zero outputs, the one place the dense and
    # sparse canonical paths could differ (see repro.nn.sparse).
    if activations.ndim == 4:
        batch = activations.shape[0]
        out = np.empty((batch, num_filters, out_y, out_x), dtype=out_dtype)
        for g in range(groups):
            cols = im2col(
                padded[:, g * group_depth : (g + 1) * group_depth],
                kernel_y,
                kernel_x,
                stride,
            )
            for b in range(batch):
                result = zskip.partitioned_gemm(
                    cols[b], transposed[g], mode, cutoff
                )  # (out_y*out_x, group_filters)
                out[b, g * group_filters : (g + 1) * group_filters] = (
                    result.T.reshape(group_filters, out_y, out_x)
                )
        out += (
            np.asarray(bias).reshape(1, num_filters, 1, 1) if bias is not None else 0.0
        )
        return out

    out = np.empty((num_filters, out_y, out_x), dtype=out_dtype)
    for g in range(groups):
        cols = im2col(
            padded[g * group_depth : (g + 1) * group_depth], kernel_y, kernel_x, stride
        )
        result = zskip.partitioned_gemm(
            cols, transposed[g], mode, cutoff
        )  # (out_y*out_x, group_filters)
        out[g * group_filters : (g + 1) * group_filters] = result.T.reshape(
            group_filters, out_y, out_x
        )
    out += np.asarray(bias).reshape(num_filters, 1, 1) if bias is not None else 0.0
    return out


def conv2d_naive(
    activations: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """Reference quadruple-loop convolution used to validate :func:`conv2d`.

    Implements the Section III-A sum directly::

        o(k, l, f) = sum_y sum_x sum_i s^f(y, x, i) * n(y + l*S, x + k*S, i)
    """
    depth, in_y, in_x = activations.shape
    num_filters, w_depth, kernel_y, kernel_x = weights.shape
    padded = pad_input(activations, pad)
    out_y = conv_output_size(in_y, kernel_y, stride, pad)
    out_x = conv_output_size(in_x, kernel_x, stride, pad)
    group_depth = depth // groups
    group_filters = num_filters // groups

    out = np.zeros((num_filters, out_y, out_x), dtype=np.float64)
    for f in range(num_filters):
        g = f // group_filters
        z0 = g * group_depth
        for oy in range(out_y):
            for ox in range(out_x):
                acc = 0.0
                for fy in range(kernel_y):
                    for fx in range(kernel_x):
                        for z in range(w_depth):
                            acc += (
                                weights[f, z, fy, fx]
                                * padded[z0 + z, oy * stride + fy, ox * stride + fx]
                            )
                out[f, oy, ox] = acc
    if bias is not None:
        out += np.asarray(bias).reshape(num_filters, 1, 1)
    return out


def relu(activations: np.ndarray) -> np.ndarray:
    """Rectifier: positives pass, negatives become zero (Section II)."""
    return np.maximum(activations, 0.0)


def threshold_relu(activations: np.ndarray, threshold: float) -> np.ndarray:
    """ReLU followed by dynamic neuron pruning (Section V-E).

    Values whose magnitude is below ``threshold`` are set to zero so the
    Cnvlutin encoder will drop them.  With ``threshold == 0`` this is plain
    ReLU.  The hardware reuses the max-pooling comparators for this check.
    """
    out = np.maximum(activations, 0.0)
    if threshold > 0:
        out[np.abs(out) < threshold] = 0.0
    return out


def _pool2d_windows(
    padded: np.ndarray, kernel: int, stride: int, out_y: int, out_x: int
) -> np.ndarray:
    """Contiguous ``(..., out_y, out_x, kernel*kernel)`` window array.

    The trailing axis holds each window flattened in ``(y, x)`` order —
    the same contiguous buffer the per-pixel loop reduced — so reductions
    over it are bit-identical to the loop's per-window reductions.
    """
    lead = padded.shape[:-2]
    sy, sx = padded.strides[-2:]
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(*lead, out_y, out_x, kernel, kernel),
        strides=(*padded.strides[:-2], sy * stride, sx * stride, sy, sx),
        writeable=False,
    )
    return np.ascontiguousarray(windows).reshape(
        *lead, out_y, out_x, kernel * kernel
    )


def _pool2d(
    activations: np.ndarray,
    kernel: int,
    stride: int,
    pad: int,
    reducer,
    window_reducer,
) -> np.ndarray:
    in_y, in_x = activations.shape[-2:]
    out_y = conv_output_size(in_y, kernel, stride, pad)
    out_x = conv_output_size(in_x, kernel, stride, pad)
    padded = pad_input(activations, pad)
    if (
        (out_y - 1) * stride + kernel <= padded.shape[-2]
        and (out_x - 1) * stride + kernel <= padded.shape[-1]
    ):
        # No-overhang fast path: one stride-tricks window view and a single
        # vectorized reduction over the flattened windows.
        return window_reducer(_pool2d_windows(padded, kernel, stride, out_y, out_x))
    # Pooling windows may overhang the padded input on the far edge for
    # some Caffe geometries (ceil-mode); clip window extents instead.
    if activations.ndim == 4:
        return np.stack(
            [
                _pool2d(image, kernel, stride, pad, reducer, window_reducer)
                for image in activations
            ]
        )
    depth = activations.shape[0]
    out = np.empty((depth, out_y, out_x), dtype=activations.dtype)
    for oy in range(out_y):
        y0 = oy * stride
        y1 = min(y0 + kernel, padded.shape[1])
        for ox in range(out_x):
            x0 = ox * stride
            x1 = min(x0 + kernel, padded.shape[2])
            out[:, oy, ox] = reducer(padded[:, y0:y1, x0:x1])
    return out


def max_pool2d(
    activations: np.ndarray, kernel: int, stride: int, pad: int = 0
) -> np.ndarray:
    """Max pooling over ``kernel x kernel`` windows (batch axis supported)."""
    return _pool2d(
        activations,
        kernel,
        stride,
        pad,
        lambda w: w.reshape(w.shape[0], -1).max(axis=1),
        lambda windows: windows.max(axis=-1),
    )


def avg_pool2d(
    activations: np.ndarray, kernel: int, stride: int, pad: int = 0
) -> np.ndarray:
    """Average pooling over ``kernel x kernel`` windows (batch axis supported)."""
    return _pool2d(
        activations,
        kernel,
        stride,
        pad,
        lambda w: w.reshape(w.shape[0], -1).mean(axis=1),
        lambda windows: windows.mean(axis=-1),
    )


def lrn(
    activations: np.ndarray,
    local_size: int = 5,
    alpha: float = 1e-4,
    beta: float = 0.75,
    k: float = 1.0,
) -> np.ndarray:
    """Local response normalization across channels (AlexNet-style).

    Vectorized over depth: the clipped per-channel band sums become a
    sliding-window sum over a zero-padded depth axis (adding zeros is
    exact, and the window elements are accumulated in the same ascending
    depth order the per-channel loop used, so results are bit-identical).
    Accepts a leading batch axis.
    """
    channel_axis = activations.ndim - 3
    depth = activations.shape[channel_axis]
    half = local_size // 2
    squared = activations**2
    width = [(0, 0)] * activations.ndim
    width[channel_axis] = (half, half)
    padded = np.pad(squared, width)
    strides = padded.strides
    window_shape = (
        *padded.shape[:channel_axis],
        depth,
        local_size,
        *padded.shape[channel_axis + 1 :],
    )
    window_strides = (
        *strides[:channel_axis],
        strides[channel_axis],
        strides[channel_axis],
        *strides[channel_axis + 1 :],
    )
    windows = np.lib.stride_tricks.as_strided(
        padded, shape=window_shape, strides=window_strides, writeable=False
    )
    sums = windows.sum(axis=channel_axis + 1)
    return activations / (k + (alpha / local_size) * sums) ** beta


def fully_connected(
    activations: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    sparse_mode: str | None = None,
) -> np.ndarray:
    """Fully-connected layer: flatten input, multiply by ``(out, in)`` weights.

    A batched ``(batch, ...)`` input (ndim == 4) yields ``(batch, out)``.
    The matrix-vector product runs per image: BLAS GEMV and GEMM kernels
    accumulate in different orders, so a single stacked GEMM would not be
    bit-identical to the single-image path (see module docstring).  The
    matvec routes through :func:`repro.nn.sparse.partitioned_matvec` so
    the ``CNVLUTIN_SPARSE`` path can skip the zero input elements;
    ``sparse_mode`` overrides the mode per call (never the bytes).
    """
    mode = zskip.resolve_mode(sparse_mode)
    cutoff = zskip.resolve_cutoff()
    if activations.ndim == 4:
        batch = activations.shape[0]
        flat = activations.reshape(batch, -1)
        if weights.shape[1] != flat.shape[1]:
            raise ValueError(
                f"FC weight columns {weights.shape[1]} != flattened input "
                f"{flat.shape[1]}"
            )
        out = np.empty(
            (batch, weights.shape[0]), dtype=np.result_type(activations, weights)
        )
        for b in range(batch):
            out[b] = zskip.partitioned_matvec(weights, flat[b], mode, cutoff)
        # Unconditional add: normalizes the sign of exact zeros so dense
        # and sparse modes stay byte-identical (see repro.nn.sparse).
        out = out + (bias if bias is not None else 0.0)
        return out
    flat = activations.reshape(-1)
    if weights.shape[1] != flat.size:
        raise ValueError(
            f"FC weight columns {weights.shape[1]} != flattened input {flat.size}"
        )
    out = zskip.partitioned_matvec(weights, flat, mode, cutoff)
    out = out + (bias if bias is not None else 0.0)
    return out


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over a 1-D logit vector.

    A 2-D ``(batch, classes)`` input is normalized row-wise, bit-identical
    to per-row calls.
    """
    if logits.ndim == 2:
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=-1, keepdims=True)
    shifted = logits - logits.max()
    exps = np.exp(shifted)
    return exps / exps.sum()

"""Incremental, batched forward engine for threshold sweeps.

The Fig. 14 / Table II threshold searches evaluate hundreds of threshold
configurations per network, and each coordinate-ascent trial changes
exactly *one* layer's threshold: every layer that does not read (directly
or transitively) a pruned activation produces bit-identical output across
trials.  :class:`IncrementalForwardEngine` exploits this by caching each
layer's batched output keyed by the layer's *effective threshold
signature* — the subset of active (non-zero) thresholds on layers in the
layer's upstream cone, walked through ``input_from``/concat edges and
including the layer itself.  A forward pass under a new configuration then
replays cached prefixes and only computes the suffix below the perturbed
layer.

All activations are held as a single ``(batch, depth, H, W)`` stack and
computed through the batched paths of :mod:`repro.nn.layers`, so one
engine pass replaces ``batch`` per-image :func:`~repro.nn.inference.run_forward`
calls — bit-identically (differential-tested in
``tests/test_forward_engine.py``).

The cache is bounded by a byte budget (``CNVLUTIN_ENGINE_CACHE_MB``
environment variable, default 512 MiB) with LRU eviction; the engine
never caches less than the most recent entry, so it degrades to plain
recomputation under tiny budgets rather than failing.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.nn import sparse as zskip
from repro.nn.inference import (
    ForwardResult,
    WeightStore,
    _consumer_counts,
    _producer_output,
    _release_consumed,
    apply_layer,
    run_forward,
)
from repro.nn.network import LayerKind, LayerSpec, Network

__all__ = [
    "IncrementalForwardEngine",
    "EngineStats",
    "threshold_scopes",
    "slice_result",
    "attach_shared_weights",
    "attached_arenas",
]

#: Default LRU cache budget in MiB; override with CNVLUTIN_ENGINE_CACHE_MB.
DEFAULT_CACHE_MB = 512.0


def _cache_budget_bytes() -> int:
    """The ``CNVLUTIN_ENGINE_CACHE_MB`` budget in bytes, validated.

    A non-numeric, negative, or non-finite value falls back to the
    default with a warning — a bad environment variable must never make
    an import or a first forward pass raise.
    """
    import math
    import warnings

    raw = os.environ.get("CNVLUTIN_ENGINE_CACHE_MB")
    if raw is None:
        return int(DEFAULT_CACHE_MB * 1024 * 1024)
    try:
        budget_mb = float(raw)
    except ValueError:
        budget_mb = -1.0
    if not math.isfinite(budget_mb) or budget_mb < 0:
        warnings.warn(
            f"ignoring invalid CNVLUTIN_ENGINE_CACHE_MB={raw!r} "
            f"(expected a non-negative number); using the default "
            f"{DEFAULT_CACHE_MB:g} MiB",
            RuntimeWarning,
            stacklevel=3,
        )
        budget_mb = DEFAULT_CACHE_MB
    return int(budget_mb * 1024 * 1024)


def attach_shared_weights(manifest: dict) -> dict[str, WeightStore]:
    """Attach a published shared-memory weight arena as engine stores.

    Returns one read-only zero-copy :class:`WeightStore` view per
    network from an arena manifest (see :class:`repro.nn.shm.
    SharedWeightArena`) — the stores a sharded serving worker hands to
    its engines so N shards share one physical copy of every weight.
    The views record ``engine.shared.attached`` so a metrics snapshot
    shows which processes run on shared weights.
    """
    from repro.nn.shm import SharedWeightArena

    arena = SharedWeightArena.attach(manifest)
    # Keep the mapping object alive for the process lifetime: the views
    # pin the buffer, but letting the SharedMemory handle be collected
    # would run its close() finalizer against an exported buffer.
    _ATTACHED_ARENAS.append(arena)
    obs.counter_add("engine.shared.attached")
    obs.counter_add(
        "engine.shared.bytes", float(arena.manifest.get("bytes", 0))
    )
    return arena.stores


#: Arenas attached by this process (held so finalizers never fire while
#: zero-copy weight views are live).
_ATTACHED_ARENAS: list = []


def attached_arenas() -> list:
    """The arenas this process has attached (most recent last).

    The shard loop needs the arena *handle*, not just its stores, to run
    the between-batch CRC recheck (:meth:`repro.nn.shm.SharedWeightArena.
    verify`) against the live block.
    """
    return list(_ATTACHED_ARENAS)


def _is_prunable(layer: LayerSpec) -> bool:
    """Can a Section V-E threshold change this layer's output directly?"""
    if layer.kind in (LayerKind.CONV, LayerKind.FC):
        return layer.fused_relu
    return layer.kind == LayerKind.RELU


def _producer_names(network: Network, index: int, layer: LayerSpec) -> list[str]:
    if layer.kind == LayerKind.CONCAT:
        return list(layer.input_from)
    if layer.input_from is not None:
        return [layer.input_from[0]]
    if index > 0:
        return [network.layers[index - 1].name]
    return []


def threshold_scopes(network: Network) -> dict[str, tuple[str, ...]]:
    """Per-layer sorted tuple of threshold-bearing layers that can affect it.

    A layer's scope is the union of its producers' scopes (walked through
    ``input_from`` and concat edges) plus the layer itself when a pruning
    threshold applies to it (fused-ReLU conv/FC or a standalone ReLU).
    Two threshold configurations that agree on a layer's scope yield
    bit-identical output for that layer.
    """
    scopes: dict[str, tuple[str, ...]] = {}
    for idx, layer in enumerate(network.layers):
        deps: set[str] = set()
        for src in _producer_names(network, idx, layer):
            deps.update(scopes[src])
        if _is_prunable(layer):
            deps.add(layer.name)
        scopes[layer.name] = tuple(sorted(deps))
    return scopes


def slice_result(result: ForwardResult, index: int) -> ForwardResult:
    """Single-image view (no copy) of a batched :class:`ForwardResult`."""
    return ForwardResult(
        outputs={name: arr[index] for name, arr in result.outputs.items()},
        conv_inputs={name: arr[index] for name, arr in result.conv_inputs.items()},
        logits=None if result.logits is None else result.logits[index],
    )


@dataclass
class EngineStats:
    """Cache effectiveness counters for one engine instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class IncrementalForwardEngine:
    """Batched forward passes with prefix reuse across threshold configs.

    Parameters
    ----------
    network, store:
        The network description and its (calibrated) weights.
    images:
        Image stack ``(batch, depth, H, W)`` — a single ``(depth, H, W)``
        image is promoted to a batch of one.  The stack is computed in its
        own floating dtype (see :func:`~repro.nn.inference.run_forward`).
    cache_bytes:
        LRU budget for cached layer outputs; defaults to the
        ``CNVLUTIN_ENGINE_CACHE_MB`` environment variable (512 MiB).
    label:
        Attribution label (typically the network name) for this engine's
        observability output: per-layer compute times are recorded as
        ``nn.layer.<label>.<layer>`` histograms and per-layer spans carry
        it, so a report can say *which network's* conv2 dominated.

    The engine intentionally does not support the quantization (``fmt``/
    ``formats``) or calibration (``shift_fn``) hooks of ``run_forward`` —
    none of the sweep paths use them, and calibration must observe raw
    pre-activations pass by pass.
    """

    def __init__(
        self,
        network: Network,
        store: WeightStore,
        images: np.ndarray,
        cache_bytes: int | None = None,
        label: str | None = None,
    ):
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[np.newaxis]
        if images.ndim != 4 or images.shape[1:] != network.input_shape:
            raise ValueError(
                f"image stack shape {images.shape} incompatible with network "
                f"input {network.input_shape}"
            )
        if not np.issubdtype(images.dtype, np.floating):
            images = images.astype(np.float64)
        self.network = network
        self.store = store
        self.images = images
        self.label = label if label is not None else network.name
        self.scopes = threshold_scopes(network)
        self.stats = EngineStats()
        if cache_bytes is None:
            cache_bytes = _cache_budget_bytes()
        self.cache_bytes = cache_bytes
        # (layer_name, signature) -> (out, logits); LRU order.
        self._cache: OrderedDict[tuple, tuple[np.ndarray, np.ndarray | None]] = (
            OrderedDict()
        )
        self._cache_used = 0
        # run() mutates the LRU; the serving worker pool calls it from
        # multiple threads (asyncio.to_thread), so serialize it.
        self._run_lock = threading.Lock()

    @property
    def batch(self) -> int:
        return self.images.shape[0]

    def _signature(
        self, name: str, thresholds: dict[str, float]
    ) -> tuple[tuple[str, float], ...]:
        return tuple(
            (dep, float(thresholds[dep]))
            for dep in self.scopes[name]
            if thresholds.get(dep)
        )

    def _remember(self, key: tuple, out: np.ndarray, logits: np.ndarray | None):
        size = out.nbytes + (logits.nbytes if logits is not None else 0)
        self._cache[key] = (out, logits)
        self._cache_used += size
        while self._cache_used > self.cache_bytes and len(self._cache) > 1:
            _, (old_out, old_logits) = self._cache.popitem(last=False)
            self._cache_used -= old_out.nbytes + (
                old_logits.nbytes if old_logits is not None else 0
            )
            self.stats.evictions += 1
            obs.counter_add("engine.cache.evictions")

    def admit(self, images: np.ndarray) -> np.ndarray:
        """Validate an externally-supplied stack for a one-off batched pass.

        The admission hook of the serving layer: promotes a single
        ``(depth, H, W)`` image to a batch of one, checks the shape
        against the network input, promotes integer dtypes to float64
        (the ``run_forward`` contract), and records the admission in the
        metrics registry (``engine.admitted.batches`` /
        ``engine.admitted.images``).
        """
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[np.newaxis]
        if images.ndim != 4 or images.shape[1:] != self.network.input_shape:
            raise ValueError(
                f"admitted stack shape {images.shape} incompatible with "
                f"network input {self.network.input_shape}"
            )
        if not np.issubdtype(images.dtype, np.floating):
            images = images.astype(np.float64)
        obs.counter_add("engine.admitted.batches")
        obs.counter_add("engine.admitted.images", images.shape[0])
        return images

    def run_stack(
        self,
        images: np.ndarray,
        thresholds: dict[str, float] | None = None,
        collect_conv_inputs: bool = True,
        keep_outputs: bool = False,
    ) -> ForwardResult:
        """Batched forward of an *admitted* external stack (serving batches).

        Unlike :meth:`run`, the stack is per-call, so the result bypasses
        the threshold-signature cache (whose keys assume the engine's own
        fixed images) — but shares the network, calibrated store, and the
        batched layer path, keeping the output bit-identical to stacking
        per-image :func:`~repro.nn.inference.run_forward` calls.
        """
        images = self.admit(images)
        with obs.span(
            "engine.run_stack", cat="nn", network=self.label,
            batch=images.shape[0], thresholds=len(thresholds or {}),
        ):
            return run_forward(
                self.network,
                self.store,
                images,
                thresholds=thresholds,
                collect_conv_inputs=collect_conv_inputs,
                keep_outputs=keep_outputs,
            )

    def run(
        self,
        thresholds: dict[str, float] | None = None,
        collect_conv_inputs: bool = True,
        keep_outputs: bool = False,
    ) -> ForwardResult:
        """Forward the whole image stack under one threshold configuration.

        Returns a batched :class:`ForwardResult` bit-identical to stacking
        per-image ``run_forward`` results.  Layers whose threshold
        signature matches a cached entry are replayed from the cache; the
        rest compute (batched) and populate it.  Use :func:`slice_result`
        for per-image views.
        """
        with self._run_lock:
            return self._run_locked(
                thresholds, collect_conv_inputs, keep_outputs
            )

    def _run_locked(
        self,
        thresholds: dict[str, float] | None,
        collect_conv_inputs: bool,
        keep_outputs: bool,
    ) -> ForwardResult:
        network, store = self.network, self.store
        thresholds = thresholds or {}
        outputs: dict[str, np.ndarray] = {}
        conv_inputs: dict[str, np.ndarray] = {}
        logits: np.ndarray | None = None
        remaining = _consumer_counts(network)
        obs.counter_add("engine.runs")

        with obs.span(
            "engine.run", cat="nn", network=self.label, batch=self.batch,
            thresholds=len(thresholds),
        ):
            for idx, layer in enumerate(network.layers):
                key = (layer.name, self._signature(layer.name, thresholds))
                cached = self._cache.get(key)
                if layer.kind == LayerKind.CONCAT:
                    src = None
                    if cached is None:
                        parts = [outputs[s] for s in layer.input_from]
                        src = np.concatenate(parts, axis=1)
                else:
                    src = _producer_output(network, idx, layer, outputs, self.images)
                if layer.kind == LayerKind.CONV and collect_conv_inputs:
                    conv_inputs[layer.name] = src
                with obs.span(
                    f"layer:{layer.name}", cat="nn", network=self.label,
                    kind=layer.kind, hit=cached is not None,
                ) as layer_span:
                    if cached is not None:
                        self._cache.move_to_end(key)
                        self.stats.hits += 1
                        obs.counter_add("engine.cache.hits")
                        out, layer_logits = cached
                        sparse_records = []
                    else:
                        self.stats.misses += 1
                        obs.counter_add("engine.cache.misses")
                        compute_start = time.perf_counter()
                        zskip.pop_records()  # scope records to this layer
                        if layer.kind == LayerKind.CONCAT:
                            out, layer_logits = src, None
                        else:
                            out, layer_logits = apply_layer(
                                layer, src, store, thresholds
                            )
                        obs.observe(
                            f"nn.layer.{self.label}.{layer.name}",
                            time.perf_counter() - compute_start,
                        )
                        sparse_records = zskip.pop_records()
                        self._remember(key, out, layer_logits)
                    if obs.tracing_enabled():
                        layer_span.set(shape=str(out.shape))
                        if sparse_records:
                            layer_span.set(**zskip.summarize_records(sparse_records))
                if layer_logits is not None:
                    logits = layer_logits
                outputs[layer.name] = out
                if not keep_outputs:
                    _release_consumed(network, idx, outputs, remaining)

        return ForwardResult(
            outputs=outputs if keep_outputs else {},
            conv_inputs=conv_inputs,
            logits=logits,
        )

"""Network description: layer specs, shape inference, and the Network class.

A :class:`Network` is an ordered list of :class:`LayerSpec` objects plus the
input shape.  It is a *description* — weights and activations live elsewhere
(:mod:`repro.nn.inference` runs a network, :mod:`repro.nn.models` defines the
six networks from Table I of the paper).

Inception-style branching (GoogLeNet) is expressed with ``input_from``: a
layer may read the output of any earlier named layer instead of its
immediate predecessor, and a ``concat`` layer merges several named outputs
along the depth axis.  This is sufficient to express every topology the
paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.layers import conv_output_size

__all__ = ["LayerKind", "LayerSpec", "Network", "Shape3D"]

#: Activation shape ``(depth, height, width)``.
Shape3D = tuple[int, int, int]

_VALID_KINDS = frozenset(
    {"conv", "relu", "maxpool", "avgpool", "lrn", "fc", "softmax", "concat", "dropout"}
)


class LayerKind:
    """String constants for the supported layer kinds."""

    CONV = "conv"
    RELU = "relu"
    MAXPOOL = "maxpool"
    AVGPOOL = "avgpool"
    LRN = "lrn"
    FC = "fc"
    SOFTMAX = "softmax"
    CONCAT = "concat"
    DROPOUT = "dropout"


@dataclass(frozen=True)
class LayerSpec:
    """Declarative description of one layer.

    Attributes
    ----------
    name:
        Unique layer name, e.g. ``"conv2"`` or ``"inception_3a/5x5"``.
    kind:
        One of the :class:`LayerKind` constants.
    num_filters, kernel, stride, pad, groups:
        Convolution / pooling geometry (``num_filters`` doubles as the
        output width of FC layers).
    input_from:
        Name(s) of the producing layer(s); ``None`` means the previous
        layer in the list (or the network input for the first layer).
        ``concat`` layers list several producers.
    fused_relu:
        Convolution and FC layers in all six paper networks are followed
        by a ReLU; marking it fused keeps layer lists compact and mirrors
        the hardware, where the activation function sits at the unit's
        output (Section III-A "before the activation function").
    """

    name: str
    kind: str
    num_filters: int = 0
    kernel: int = 0
    stride: int = 1
    pad: int = 0
    groups: int = 1
    input_from: tuple[str, ...] | None = None
    fused_relu: bool = False
    lrn_size: int = 5

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown layer kind {self.kind!r}")
        if self.kind == LayerKind.CONV:
            if self.num_filters <= 0 or self.kernel <= 0:
                raise ValueError(f"conv layer {self.name!r} needs filters and kernel")
            if self.num_filters % self.groups:
                raise ValueError(f"conv layer {self.name!r}: filters % groups != 0")
        if self.kind == LayerKind.CONCAT and not self.input_from:
            raise ValueError(f"concat layer {self.name!r} needs input_from")

    @property
    def is_conv(self) -> bool:
        return self.kind == LayerKind.CONV


@dataclass
class Network:
    """An ordered DNN description with shape inference.

    Parameters
    ----------
    name:
        Network name as used in the paper's Table I (e.g. ``"alex"``).
    input_shape:
        Shape of the input image as ``(depth, height, width)``.
    layers:
        Layer specs in topological (execution) order.
    """

    name: str
    input_shape: Shape3D
    layers: list[LayerSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [layer.name for layer in self.layers]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate layer names: {dupes}")
        self._shapes = self._infer_shapes()

    # ------------------------------------------------------------------
    # shape inference
    # ------------------------------------------------------------------
    def _producer_shape(
        self, index: int, shapes: dict[str, Shape3D]
    ) -> Shape3D:
        layer = self.layers[index]
        if layer.input_from is None:
            if index == 0:
                return self.input_shape
            return shapes[self.layers[index - 1].name]
        if len(layer.input_from) != 1:
            raise ValueError(f"layer {layer.name!r} has multiple producers")
        return shapes[layer.input_from[0]]

    def _infer_shapes(self) -> dict[str, Shape3D]:
        shapes: dict[str, Shape3D] = {}
        for idx, layer in enumerate(self.layers):
            if layer.kind == LayerKind.CONCAT:
                parts = [shapes[src] for src in layer.input_from]
                heights = {s[1] for s in parts}
                widths = {s[2] for s in parts}
                if len(heights) != 1 or len(widths) != 1:
                    raise ValueError(
                        f"concat {layer.name!r}: mismatched spatial dims {parts}"
                    )
                shapes[layer.name] = (
                    sum(s[0] for s in parts),
                    heights.pop(),
                    widths.pop(),
                )
                continue
            src = self._producer_shape(idx, shapes)
            depth, in_y, in_x = src
            if layer.kind == LayerKind.CONV:
                if depth % layer.groups:
                    raise ValueError(
                        f"conv {layer.name!r}: depth {depth} not divisible by "
                        f"groups {layer.groups}"
                    )
                out_y = conv_output_size(in_y, layer.kernel, layer.stride, layer.pad)
                out_x = conv_output_size(in_x, layer.kernel, layer.stride, layer.pad)
                shapes[layer.name] = (layer.num_filters, out_y, out_x)
            elif layer.kind in (LayerKind.MAXPOOL, LayerKind.AVGPOOL):
                out_y = conv_output_size(in_y, layer.kernel, layer.stride, layer.pad)
                out_x = conv_output_size(in_x, layer.kernel, layer.stride, layer.pad)
                shapes[layer.name] = (depth, out_y, out_x)
            elif layer.kind == LayerKind.FC:
                shapes[layer.name] = (layer.num_filters, 1, 1)
            else:  # relu, lrn, softmax, dropout: shape preserving
                shapes[layer.name] = src
        return shapes

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def output_shape(self, layer_name: str) -> Shape3D:
        """Activation shape produced by ``layer_name``."""
        return self._shapes[layer_name]

    def input_shape_of(self, layer_name: str) -> Shape3D:
        """Activation shape consumed by ``layer_name`` (first producer)."""
        idx = self.index_of(layer_name)
        layer = self.layers[idx]
        if layer.kind == LayerKind.CONCAT:
            raise ValueError("concat layers have multiple input shapes")
        return self._producer_shape(idx, self._shapes)

    def index_of(self, layer_name: str) -> int:
        for idx, layer in enumerate(self.layers):
            if layer.name == layer_name:
                return idx
        raise KeyError(layer_name)

    @property
    def conv_layers(self) -> list[LayerSpec]:
        """All convolutional layers, in execution order."""
        return [layer for layer in self.layers if layer.is_conv]

    @property
    def num_conv_layers(self) -> int:
        """Conv layer count — the quantity Table I reports per network."""
        return len(self.conv_layers)

    def conv_geometry(self, layer: LayerSpec) -> dict[str, int]:
        """Geometry bundle for a conv layer used by the timing models."""
        depth, in_y, in_x = self.input_shape_of(layer.name)
        out_n, out_y, out_x = self.output_shape(layer.name)
        return {
            "in_depth": depth,
            "in_y": in_y,
            "in_x": in_x,
            "num_filters": out_n,
            "kernel": layer.kernel,
            "stride": layer.stride,
            "pad": layer.pad,
            "groups": layer.groups,
            "out_y": out_y,
            "out_x": out_x,
        }

    def conv_producers(self) -> dict[str, str]:
        """Map each conv layer to the name of the layer producing its input.

        The empty string marks conv layers fed directly by the network
        input image — the "first" layers that CNV processes unencoded.
        """
        producers: dict[str, str] = {}
        for idx, layer in enumerate(self.layers):
            if not layer.is_conv:
                continue
            if layer.input_from is not None:
                producers[layer.name] = layer.input_from[0]
            elif idx == 0:
                producers[layer.name] = ""
            else:
                producers[layer.name] = self.layers[idx - 1].name
        return producers

    def first_conv_layers(self) -> set[str]:
        """Conv layers consuming the raw input image (not accelerated by CNV)."""
        return {name for name, prod in self.conv_producers().items() if prod == ""}

    def macs_per_layer(self) -> dict[str, int]:
        """Multiply-accumulate counts per layer (conv and FC)."""
        macs: dict[str, int] = {}
        for layer in self.layers:
            if layer.kind == LayerKind.CONV:
                geom = self.conv_geometry(layer)
                per_output = (
                    layer.kernel * layer.kernel * geom["in_depth"] // layer.groups
                )
                macs[layer.name] = (
                    per_output * geom["out_y"] * geom["out_x"] * geom["num_filters"]
                )
            elif layer.kind == LayerKind.FC:
                in_shape = self.input_shape_of(layer.name)
                macs[layer.name] = (
                    in_shape[0] * in_shape[1] * in_shape[2] * layer.num_filters
                )
        return macs

    def describe(self) -> str:
        """Human-readable summary table of the network."""
        lines = [f"{self.name}: input {self.input_shape}"]
        for layer in self.layers:
            shape = self._shapes[layer.name]
            extra = ""
            if layer.kind == LayerKind.CONV:
                extra = (
                    f" {layer.num_filters}x{layer.kernel}x{layer.kernel}"
                    f" s{layer.stride} p{layer.pad}"
                    + (f" g{layer.groups}" if layer.groups > 1 else "")
                )
            lines.append(f"  {layer.name:28s} {layer.kind:8s}{extra:24s} -> {shape}")
        return "\n".join(lines)

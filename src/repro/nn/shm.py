"""Read-only shared-memory arena for calibrated network weights.

N serving shards must not carry N private copies of every calibrated
:class:`~repro.nn.inference.WeightStore`.  The router (the *owner*)
packs all weight and bias arrays of every network into **one**
``multiprocessing.shared_memory`` block and hands shards a JSON-safe
*manifest* (block name + per-array offset/shape/dtype).  Each shard
*attaches* by name and rebuilds its stores as zero-copy, read-only numpy
views over the same physical pages — the forward path never writes
weights, so one set of pages serves every shard regardless of the
per-shard ``CNVLUTIN_ENGINE_CACHE_MB`` activation-cache budget.

Layout and bit-identity
-----------------------
Every array is copied byte-exact into the block at a 64-byte-aligned
offset (matching numpy's own allocation alignment, so BLAS sees the
same alignment class it would on a private copy); calibration ``shifts``
are scalars/small vectors and travel inside the manifest as plain JSON.
An attached view therefore computes bit-identically to the private store
it was published from — the sharded differential tests assert exactly
that, end to end through the serving tier.

Ownership / cleanup protocol (documented in DESIGN.md)
------------------------------------------------------
* The **owner** creates the block, publishes, and is the only process
  that ever calls :meth:`SharedWeightArena.unlink` (at service stop) —
  unlink-by-name works even while attachers hold views.
* **Attachers** never unlink.  CPython 3.11 registers *attached* blocks
  with the ``resource_tracker`` too, which would unlink the block when
  the first shard exits; :meth:`attach` therefore unregisters the
  attachment immediately (the documented workaround until the 3.13
  ``track=False`` parameter).
* ``close()`` is best-effort on both sides: live numpy views export the
  buffer, and tearing them down is the process-exit path anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.nn.inference import WeightStore

__all__ = ["SharedWeightArena", "process_pss_kb"]

#: Arena offsets are rounded up to this; numpy allocates 64-byte-aligned
#: buffers, and keeping the same alignment keeps BLAS code paths (and
#: therefore bits) identical between private and shared stores.
ALIGNMENT = 64


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


def _shift_to_json(value):
    return value.tolist() if isinstance(value, np.ndarray) else float(value)


def _shift_from_json(value):
    return np.asarray(value) if isinstance(value, list) else float(value)


@dataclass
class SharedWeightArena:
    """One shared block holding every published array, plus its manifest."""

    shm: shared_memory.SharedMemory
    manifest: dict
    stores: dict[str, WeightStore]
    owner: bool

    # ------------------------------------------------------------------
    # publish (owner side)
    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, stores: dict[str, WeightStore]) -> "SharedWeightArena":
        """Pack the arrays of every store into one new shared block.

        Returns an arena whose ``manifest`` is JSON-safe (what a shard
        spec carries) and whose ``stores`` are the original private
        stores, untouched — the owner keeps computing on its own copies.
        """
        plan: list[tuple[str, str, str, np.ndarray, int]] = []
        offset = 0
        for network in sorted(stores):
            store = stores[network]
            for section in ("weights", "biases"):
                arrays = getattr(store, section)
                for layer in sorted(arrays):
                    arr = np.ascontiguousarray(arrays[layer])
                    offset = _aligned(offset)
                    plan.append((network, section, layer, arr, offset))
                    offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        networks: dict[str, dict] = {}
        for network, section, layer, arr, start in plan:
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=start
            )
            view[...] = arr
            entry = networks.setdefault(
                network, {"weights": {}, "biases": {}, "shifts": {}}
            )
            entry[section][layer] = {
                "offset": start,
                "shape": list(arr.shape),
                "dtype": arr.dtype.str,
            }
        for network, store in stores.items():
            entry = networks.setdefault(
                network, {"weights": {}, "biases": {}, "shifts": {}}
            )
            entry["shifts"] = {
                layer: _shift_to_json(value)
                for layer, value in store.shifts.items()
            }
        manifest = {"shm": shm.name, "bytes": offset, "networks": networks}
        return cls(shm=shm, manifest=manifest, stores=dict(stores), owner=True)

    # ------------------------------------------------------------------
    # attach (shard side)
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, manifest: dict) -> "SharedWeightArena":
        """Open the published block and rebuild read-only view stores."""
        # CPython 3.11 registers *attachments* with the resource tracker,
        # which would unlink the owner's block when the first attaching
        # process exits (and duplicate unregisters from sibling shards
        # make the shared tracker process log KeyErrors).  Suppress the
        # registration entirely for the attach call — the owner's own
        # registration from publish() remains the single tracked claim.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=manifest["shm"], create=False)
        finally:
            resource_tracker.register = original_register
        stores: dict[str, WeightStore] = {}
        for network, entry in manifest["networks"].items():
            sections: dict[str, dict[str, np.ndarray]] = {}
            for section in ("weights", "biases"):
                arrays = {}
                for layer, meta in entry[section].items():
                    view = np.ndarray(
                        tuple(meta["shape"]),
                        dtype=np.dtype(meta["dtype"]),
                        buffer=shm.buf,
                        offset=meta["offset"],
                    )
                    view.flags.writeable = False
                    arrays[layer] = view
                sections[section] = arrays
            stores[network] = WeightStore(
                weights=sections["weights"],
                biases=sections["biases"],
                shifts={
                    layer: _shift_from_json(value)
                    for layer, value in entry["shifts"].items()
                },
            )
        return cls(shm=shm, manifest=manifest, stores=stores, owner=False)

    # ------------------------------------------------------------------
    # cleanup
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (best-effort: live views keep the
        buffer exported, and process exit unmaps regardless)."""
        try:
            self.shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the block name (owner only; safe while attached)."""
        if not self.owner:
            raise RuntimeError("only the publishing owner may unlink the arena")
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double stop
            pass


def process_pss_kb(pid: int) -> int | None:
    """Proportional set size of a process in KiB (Linux smaps_rollup).

    PSS attributes shared pages fractionally across their mappers, so
    summing it over the router + shards measures the *actual* incremental
    memory of adding a shard — the number the sharded benchmark's RSS
    criterion gates on.  Returns ``None`` where the kernel interface is
    unavailable.
    """
    try:
        with open(f"/proc/{pid}/smaps_rollup") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1])
    except (FileNotFoundError, PermissionError, ProcessLookupError, OSError):
        return None
    return None

"""Read-only shared-memory arena for calibrated network weights.

N serving shards must not carry N private copies of every calibrated
:class:`~repro.nn.inference.WeightStore`.  The router (the *owner*)
packs all weight and bias arrays of every network into **one**
``multiprocessing.shared_memory`` block and hands shards a JSON-safe
*manifest* (block name + per-array offset/shape/dtype).  Each shard
*attaches* by name and rebuilds its stores as zero-copy, read-only numpy
views over the same physical pages — the forward path never writes
weights, so one set of pages serves every shard regardless of the
per-shard ``CNVLUTIN_ENGINE_CACHE_MB`` activation-cache budget.

Layout and bit-identity
-----------------------
Every array is copied byte-exact into the block at a 64-byte-aligned
offset (matching numpy's own allocation alignment, so BLAS sees the
same alignment class it would on a private copy); calibration ``shifts``
are scalars/small vectors and travel inside the manifest as plain JSON.
An attached view therefore computes bit-identically to the private store
it was published from — the sharded differential tests assert exactly
that, end to end through the serving tier.

Integrity (CRC32 guard)
-----------------------
The manifest carries a publish-time CRC32 per packed array.
:meth:`attach` verifies every segment before handing out views (a shard
never starts on a corrupt arena), and :meth:`SharedWeightArena.verify`
re-checks the live block on demand — the shard loop calls it between
batches on the ``CNVLUTIN_INTEGRITY_RECHECK_S`` deadline, and the router
calls it before deciding whether a quarantine needs a republish.  The
CRC is the *primary* defense against weight bit flips: call-time ABFT
checksums (:mod:`repro.reliability.integrity`) cannot see corruption
that precedes both sides of their invariant, but a flipped bit in the
shared pages can never match the publish-time checksum.

Ownership / cleanup protocol (documented in DESIGN.md)
------------------------------------------------------
* The **owner** creates the block, publishes, and is the only process
  that ever calls :meth:`SharedWeightArena.unlink` (at service stop) —
  unlink-by-name works even while attachers hold views.
* **Attachers** never unlink.  CPython 3.11 registers *attached* blocks
  with the ``resource_tracker`` too, which would unlink the block when
  the first shard exits; :meth:`attach` therefore unregisters the
  attachment immediately (the documented workaround until the 3.13
  ``track=False`` parameter).
* ``close()`` is best-effort on both sides: live numpy views export the
  buffer, and tearing them down is the process-exit path anyway.
* Blocks are named ``cnvlutin-<owner pid>-<token>`` and every owner
  arena is registered for ``atexit`` unlink, so a router that exits
  without reaching ``stop()`` still cleans up.  A router killed with
  ``SIGKILL`` cannot: :func:`sweep_stale_arenas` scans ``/dev/shm`` for
  ``cnvlutin-*`` blocks whose owner pid is gone and unlinks them — the
  sharded tier runs the sweep at every start.
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
import zlib
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from repro.nn.inference import WeightStore
from repro.reliability.integrity import IntegrityError

__all__ = [
    "SharedWeightArena",
    "sweep_stale_arenas",
    "process_pss_kb",
    "ARENA_PREFIX",
]

#: Arena offsets are rounded up to this; numpy allocates 64-byte-aligned
#: buffers, and keeping the same alignment keeps BLAS code paths (and
#: therefore bits) identical between private and shared stores.
ALIGNMENT = 64

#: Shared blocks are named ``<prefix><owner pid>-<token>`` so the stale
#: sweeper can tell whose arena a leftover ``/dev/shm`` entry belongs to.
ARENA_PREFIX = "cnvlutin-"


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


def _new_block(size: int) -> shared_memory.SharedMemory:
    """A fresh shared block under the pid-stamped naming scheme."""
    while True:
        name = f"{ARENA_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        try:
            return shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except FileExistsError:  # pragma: no cover - 32-bit token collision
            continue


#: Owner arenas still alive at interpreter exit get their name unlinked
#: (idempotent with an explicit ``unlink()`` — FileNotFoundError is
#: swallowed there).  A WeakSet so an arena the owner already dropped
#: does not have its lifetime extended to process exit.
_OWNED_ARENAS: "weakref.WeakSet[SharedWeightArena]" = weakref.WeakSet()


@atexit.register
def _unlink_owned_arenas() -> None:  # pragma: no cover - exit path
    for arena in list(_OWNED_ARENAS):
        try:
            arena.unlink()
        except Exception:
            pass


def _shift_to_json(value):
    return value.tolist() if isinstance(value, np.ndarray) else float(value)


def _shift_from_json(value):
    return np.asarray(value) if isinstance(value, list) else float(value)


@dataclass(eq=False)  # identity hash: arenas live in a WeakSet for atexit
class SharedWeightArena:
    """One shared block holding every published array, plus its manifest."""

    shm: shared_memory.SharedMemory
    manifest: dict
    stores: dict[str, WeightStore]
    owner: bool

    # ------------------------------------------------------------------
    # publish (owner side)
    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, stores: dict[str, WeightStore]) -> "SharedWeightArena":
        """Pack the arrays of every store into one new shared block.

        Returns an arena whose ``manifest`` is JSON-safe (what a shard
        spec carries) and whose ``stores`` are the original private
        stores, untouched — the owner keeps computing on its own copies.
        """
        plan: list[tuple[str, str, str, np.ndarray, int]] = []
        offset = 0
        for network in sorted(stores):
            store = stores[network]
            for section in ("weights", "biases"):
                arrays = getattr(store, section)
                for layer in sorted(arrays):
                    arr = np.ascontiguousarray(arrays[layer])
                    offset = _aligned(offset)
                    plan.append((network, section, layer, arr, offset))
                    offset += arr.nbytes
        shm = _new_block(max(offset, 1))
        networks: dict[str, dict] = {}
        for network, section, layer, arr, start in plan:
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=start
            )
            view[...] = arr
            entry = networks.setdefault(
                network, {"weights": {}, "biases": {}, "shifts": {}}
            )
            entry[section][layer] = {
                "offset": start,
                "shape": list(arr.shape),
                "dtype": arr.dtype.str,
                # Publish-time checksum of the packed bytes: the arena's
                # ground truth, against which attach() and verify() (and
                # through them the shard recheck loop) compare.
                "crc32": zlib.crc32(shm.buf[start : start + arr.nbytes]),
            }
        for network, store in stores.items():
            entry = networks.setdefault(
                network, {"weights": {}, "biases": {}, "shifts": {}}
            )
            entry["shifts"] = {
                layer: _shift_to_json(value)
                for layer, value in store.shifts.items()
            }
        manifest = {"shm": shm.name, "bytes": offset, "networks": networks}
        arena = cls(shm=shm, manifest=manifest, stores=dict(stores), owner=True)
        _OWNED_ARENAS.add(arena)
        return arena

    # ------------------------------------------------------------------
    # attach (shard side)
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, manifest: dict, verify: bool = True) -> "SharedWeightArena":
        """Open the published block and rebuild read-only view stores.

        With ``verify`` (the default) every segment's CRC32 is checked
        against the publish-time manifest before any view is handed out;
        a mismatch raises :class:`IntegrityError` so a shard can never
        start serving from a corrupt arena.
        """
        # CPython 3.11 registers *attachments* with the resource tracker,
        # which would unlink the owner's block when the first attaching
        # process exits (and duplicate unregisters from sibling shards
        # make the shared tracker process log KeyErrors).  Suppress the
        # registration entirely for the attach call — the owner's own
        # registration from publish() remains the single tracked claim.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=manifest["shm"], create=False)
        finally:
            resource_tracker.register = original_register
        stores: dict[str, WeightStore] = {}
        for network, entry in manifest["networks"].items():
            sections: dict[str, dict[str, np.ndarray]] = {}
            for section in ("weights", "biases"):
                arrays = {}
                for layer, meta in entry[section].items():
                    view = np.ndarray(
                        tuple(meta["shape"]),
                        dtype=np.dtype(meta["dtype"]),
                        buffer=shm.buf,
                        offset=meta["offset"],
                    )
                    view.flags.writeable = False
                    arrays[layer] = view
                sections[section] = arrays
            stores[network] = WeightStore(
                weights=sections["weights"],
                biases=sections["biases"],
                shifts={
                    layer: _shift_from_json(value)
                    for layer, value in entry["shifts"].items()
                },
            )
        arena = cls(shm=shm, manifest=manifest, stores=stores, owner=False)
        if verify:
            corrupt = arena.verify()
            if corrupt:
                arena.close()
                raise IntegrityError(
                    f"arena {manifest['shm']} failed CRC32 verification on "
                    f"attach: {corrupt[:3]}"
                    + (f" (+{len(corrupt) - 3} more)" if len(corrupt) > 3 else "")
                )
        return arena

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def _segments(self):
        """``(path, offset, nbytes, crc32)`` per packed array, in manifest
        order.  Entries published before the CRC guard carry no checksum
        and are skipped (``crc32`` is ``None``)."""
        for network in sorted(self.manifest.get("networks", {})):
            entry = self.manifest["networks"][network]
            for section in ("weights", "biases"):
                for layer in sorted(entry[section]):
                    meta = entry[section][layer]
                    nbytes = int(
                        np.dtype(meta["dtype"]).itemsize
                        * int(np.prod(meta["shape"], dtype=np.int64))
                    )
                    yield (
                        f"{network}/{section}/{layer}",
                        int(meta["offset"]),
                        nbytes,
                        meta.get("crc32"),
                    )

    def verify(self) -> list[str]:
        """Re-checksum every segment of the live block.

        Returns the paths (``network/section/layer``) whose bytes no
        longer match their publish-time CRC32 — empty means clean.  One
        ``integrity.checks.crc`` counter per sweep; the *caller* decides
        what a non-empty result means (shard: escalate to the router;
        router: republish before respawning).
        """
        from repro import obs

        obs.counter_add("integrity.checks.crc")
        corrupt = []
        for path, offset, nbytes, crc in self._segments():
            if crc is None:
                continue
            if zlib.crc32(self.shm.buf[offset : offset + nbytes]) != crc:
                corrupt.append(path)
        return corrupt

    # ------------------------------------------------------------------
    # cleanup
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (best-effort: live views keep the
        buffer exported, and process exit unmaps regardless)."""
        try:
            self.shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the block name (owner only; safe while attached)."""
        if not self.owner:
            raise RuntimeError("only the publishing owner may unlink the arena")
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double stop
            pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def sweep_stale_arenas(shm_dir: str = "/dev/shm") -> list[str]:
    """Unlink ``cnvlutin-*`` blocks whose owner pid no longer exists.

    The atexit hook covers every orderly exit, but a router killed with
    ``SIGKILL`` (or an OOM kill) leaks its block until reboot — shared
    memory has no owner-died reclamation.  Block names embed the owner
    pid precisely so this sweep can tell a dead owner's leftovers from a
    concurrently running tier's live arena.  Returns the names removed;
    Linux-only (no ``/dev/shm`` elsewhere), silently a no-op otherwise.
    """
    from repro import obs

    removed = []
    root = Path(shm_dir)
    if not root.is_dir():
        return removed
    for path in sorted(root.glob(f"{ARENA_PREFIX}*")):
        rest = path.name[len(ARENA_PREFIX):]
        pid_text, _, token = rest.partition("-")
        if not pid_text.isdigit() or not token:
            continue  # not ours: some other cnvlutin-* artifact
        pid = int(pid_text)
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            path.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent sweep
            continue
        except OSError:  # pragma: no cover - permission race
            continue
        removed.append(path.name)
        obs.counter_add("integrity.arena.swept")
    return removed


def process_pss_kb(pid: int) -> int | None:
    """Proportional set size of a process in KiB (Linux smaps_rollup).

    PSS attributes shared pages fractionally across their mappers, so
    summing it over the router + shards measures the *actual* incremental
    memory of adding a shard — the number the sharded benchmark's RSS
    criterion gates on.  Returns ``None`` where the kernel interface is
    unavailable.
    """
    try:
        with open(f"/proc/{pid}/smaps_rollup") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1])
    except (FileNotFoundError, PermissionError, ProcessLookupError, OSError):
        return None
    return None

"""The CNV dispatcher, Section IV-B3 / Fig. 8.

The dispatcher keeps NM accesses wide while letting every neuron lane drain
at its own rate.  It has one Brick Buffer (BB) entry per neuron lane; each
entry receives whole bricks (16-neuron-wide NM reads) and broadcasts one
``(value, offset)`` pair per cycle to its lane across all units.  Because
the processing order is static and known in advance, the next brick for a
lane is prefetched while the current one drains ("the fetching ... can be
initiated as early as desired"), so a lane never bubbles between bricks;
a brick containing *only* zero neurons still occupies the one cycle its NM
bank needed to supply it (``ArchConfig.empty_brick_cycles``).

The paper distributes input slices statically one per NM bank, which is
exact when the brick-depth of the input is the lane count (i = 256).  For
shallower layers our lane assignment is window-relative (see
:mod:`repro.core.timing`), so bricks route from address-interleaved banks
to BB entries; the static schedule and early prefetch hide that routing,
and :func:`bank_pressure` quantifies the worst-case per-bank demand the
paper's sub-banking must sustain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.buffers import BrickBufferEntry
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters

__all__ = ["DispatchedBrick", "LaneSlot", "Dispatcher", "bank_pressure"]


@dataclass
class DispatchedBrick:
    """One brick queued for a lane: its encoded pairs plus its sequence
    number within the lane's window order (selects the SB column block)."""

    values: np.ndarray
    offsets: np.ndarray
    seq: int


@dataclass
class LaneSlot:
    """What a lane receives in one cycle.

    ``kind`` is ``"pair"`` (a real (value, offset) broadcast), ``"bubble"``
    (the lane discarded an all-zero brick this cycle) or ``"idle"`` (the
    lane finished its window slice and stalls for synchronization).
    """

    kind: str
    value: float = 0.0
    offset: int = 0
    seq: int = -1


class Dispatcher:
    """Per-window brick dispatch to ``neuron_lanes`` independent lanes."""

    def __init__(self, config: ArchConfig, counters: ActivityCounters | None = None):
        self.config = config
        self.counters = counters if counters is not None else ActivityCounters()
        self._entries = [BrickBufferEntry() for _ in range(config.neuron_lanes)]
        self._queues: list[list[DispatchedBrick]] = [
            [] for _ in range(config.neuron_lanes)
        ]
        self._seq: list[int] = [-1] * config.neuron_lanes
        self.current_slots: list[LaneSlot] = [
            LaneSlot(kind="idle") for _ in range(config.neuron_lanes)
        ]

    def load_window(self, lane_queues: list[list[DispatchedBrick]]) -> None:
        """Stage one window's per-lane brick queues (prefetch the heads)."""
        if len(lane_queues) != self.config.neuron_lanes:
            raise ValueError("one queue per neuron lane required")
        self._queues = [list(q) for q in lane_queues]
        for entry in self._entries:
            entry.invalidate()
        self._seq = [-1] * self.config.neuron_lanes

    @property
    def window_done(self) -> bool:
        """True when every lane has drained its queue and its BB entry."""
        return all(
            entry.exhausted and not queue
            for entry, queue in zip(self._entries, self._queues)
        )

    def tick(self, cycle: int) -> None:
        """Advance one cycle: each lane emits at most one slot."""
        slots: list[LaneSlot] = []
        for lane, entry in enumerate(self._entries):
            if entry.exhausted and self._queues[lane]:
                brick = self._queues[lane].pop(0)
                entry.load(list(brick.values), list(brick.offsets))
                self._seq[lane] = brick.seq
                self.counters.add("nm_reads")
                if not brick.values.size:
                    # An all-zero brick: the NM bank spent this cycle
                    # supplying it; the lane discards it.
                    if self.config.empty_brick_cycles:
                        slots.append(LaneSlot(kind="bubble", seq=brick.seq))
                        entry.invalidate()
                        continue
                    # Free-skip ablation: fall through and try the next
                    # brick next cycle without consuming this one.
                    entry.invalidate()
                    slots.append(self._emit_next(lane))
                    continue
            slots.append(self._emit_next(lane))
        self.current_slots = slots

    def _emit_next(self, lane: int) -> LaneSlot:
        entry = self._entries[lane]
        # With free-skip enabled, chew through any run of empty bricks.
        while entry.exhausted and self._queues[lane]:
            if self.config.empty_brick_cycles:
                break
            brick = self._queues[lane].pop(0)
            entry.load(list(brick.values), list(brick.offsets))
            self._seq[lane] = brick.seq
            self.counters.add("nm_reads")
        pair = entry.next_pair()
        if pair is None:
            return LaneSlot(kind="idle")
        value, offset = pair
        self.counters.add("nbin_reads")
        return LaneSlot(kind="pair", value=value, offset=offset, seq=self._seq[lane])


def bank_pressure(
    brick_addresses: np.ndarray, num_banks: int
) -> dict[int, int]:
    """Histogram of same-cycle fetch demand per NM bank.

    ``brick_addresses``: array of shape ``(cycles, lanes)`` with the linear
    NM brick address each lane fetches at each cycle (-1 for none).  Returns
    ``{concurrent_fetches_per_bank: occurrences}`` — the sub-banked NM must
    sustain the maximum key (Section IV-B3 notes the banks are sub-banked
    for the worst case).
    """
    addresses = np.asarray(brick_addresses)
    if addresses.size == 0:
        return {}
    valid = addresses >= 0
    cycle_index, _ = np.nonzero(valid)
    if cycle_index.size == 0:
        return {}
    # Count fetches per (cycle, bank) cell in one bincount over a fused
    # index, then histogram the non-zero cell values — vectorizing the
    # per-cycle python loop without changing a single count.
    banks = addresses[valid] % num_banks
    per_cell = np.bincount(
        cycle_index * num_banks + banks,
        minlength=addresses.shape[0] * num_banks,
    )
    occupied = per_cell[per_cell > 0]
    totals = np.bincount(occupied)
    return {
        int(count): int(times)
        for count, times in enumerate(totals)
        if count > 0 and times > 0
    }

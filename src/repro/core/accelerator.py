"""Structural (cycle-by-cycle) simulator of a Cnvlutin node.

A CNV node is ``num_units`` units fed by one dispatcher (the interconnect
broadcasts each lane's ``(value, offset)`` pair to that lane's subunit in
every unit).  Per window the node:

1. builds each lane's brick queue from the ZFNAf-encoded input (the
   brick-interleaved assignment of :func:`repro.core.timing.lane_assignment`);
2. steps the dispatcher and units cycle by cycle until every lane has
   drained — lanes that finish early idle, which the observer records as
   *stall* events (Section IV-B5 synchronization);
3. drains the adder-tree partial sums into output neurons.

The simulator is functional (outputs validated against the im2col golden
model) and its cycle counts equal the closed-form model in
:mod:`repro.core.timing` (property-based tests).  Use scaled-down
:func:`repro.hw.config.small_config` geometries; full networks use the
analytic model.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.accelerator import StructuralRunResult
from repro.baseline.workload import ConvWork, ceil_div, group_activations
from repro.core.dispatcher import DispatchedBrick, Dispatcher, LaneSlot
from repro.core.encoder import Encoder
from repro.core.subunit import build_subunit_sb
from repro.core.timing import lane_assignment
from repro.core.unit import CnvUnit
from repro.core.zfnaf import ZfnafArray, encode
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters
from repro.hw.events import CycleKernel

__all__ = ["CnvNode", "encode_layer_output"]


class _EventObserver:
    """Clocked probe recording Fig. 10 lane events from dispatcher slots."""

    def __init__(self, dispatcher: Dispatcher, num_units: int, counters: ActivityCounters):
        self.dispatcher = dispatcher
        self.num_units = num_units
        self.counters = counters

    def tick(self, cycle: int) -> None:
        for slot in self.dispatcher.current_slots:
            if slot.kind == "pair":
                self.counters.add_lane_event("nonzero", self.num_units)
            elif slot.kind == "bubble":
                self.counters.add_lane_event("zero", self.num_units)
            else:
                self.counters.add_lane_event("stall", self.num_units)


class CnvNode:
    """A Cnvlutin node: dispatcher + ``num_units`` CNV units."""

    def __init__(self, config: ArchConfig):
        self.config = config
        self.counters = ActivityCounters()

    def run_conv_layer(
        self,
        work: ConvWork,
        weights: np.ndarray,
        input_zfnaf: dict[int, ZfnafArray] | None = None,
    ) -> StructuralRunResult:
        """Run one (encoded) conv layer; returns outputs and exact cycles.

        ``weights``: (num_filters, in_depth // groups, kernel, kernel).
        ``input_zfnaf`` optionally supplies pre-encoded per-group inputs
        (e.g. produced by the previous layer's encoders); otherwise the
        padded input is encoded here, standing in for the preceding
        layer's on-the-fly encoding.

        Layers flagged as first (raw image input) run *unencoded*: the
        per-layer software flag of Section IV-B disables the offset
        fields and the unit behaves exactly like the baseline, so the run
        is delegated to the lock-step model (conv1 is not accelerated).
        """
        if work.is_first and not self.config.first_layer_encoded:
            from repro.baseline.accelerator import DaDianNaoNode

            result = DaDianNaoNode(self.config).run_conv_layer(work, weights)
            self.counters.merge(result.counters)
            return StructuralRunResult(
                output=result.output, cycles=result.cycles, counters=self.counters
            )
        geom = work.geometry
        config = self.config
        lanes = config.neuron_lanes
        kernel = geom["kernel"]
        stride = geom["stride"]
        out_y, out_x = geom["out_y"], geom["out_x"]
        num_filters = geom["num_filters"]
        output = np.zeros((num_filters, out_y, out_x), dtype=np.float64)
        total_cycles = 0

        for group in range(work.num_groups):
            slab = group_activations(work, group)
            zfnaf = (
                input_zfnaf[group]
                if input_zfnaf is not None
                else encode(slab, config.brick_size)
            )
            bricks_per_column = zfnaf.bricks_per_column
            assignment = lane_assignment(kernel, kernel, bricks_per_column, lanes)
            lane_positions = self._lane_positions(assignment, kernel, bricks_per_column)

            group_filters = work.filters_per_group
            f_base = group * group_filters
            passes = ceil_div(group_filters, config.filters_per_pass)
            for p in range(passes):
                pass_first = p * config.filters_per_pass
                pass_filters = min(config.filters_per_pass, group_filters - pass_first)
                units = self._build_units(
                    weights[f_base + pass_first : f_base + pass_first + pass_filters],
                    lane_positions,
                    zfnaf.original_depth,
                )
                dispatcher = Dispatcher(config, counters=self.counters)
                # The Fig. 10 metric counts units x lanes x cycles events:
                # all physical units tick, even when a partial pass leaves
                # some without filters.
                observer = _EventObserver(dispatcher, config.num_units, self.counters)
                components: list = [dispatcher]
                for unit, _ in units:
                    unit.attach(dispatcher)
                    components.append(unit)
                components.append(observer)
                kernel_sim = CycleKernel(components)

                for oy in range(out_y):
                    for ox in range(out_x):
                        queues = self._window_queues(
                            zfnaf, lane_positions, oy * stride, ox * stride
                        )
                        dispatcher.load_window(queues)
                        for unit, _ in units:
                            unit.reset_window()
                        cycles = kernel_sim.run_until(lambda: dispatcher.window_done)
                        total_cycles += cycles
                        for u, (unit, unit_filters) in enumerate(units):
                            sums = unit.window_outputs()[: len(unit_filters)]
                            for local, f in enumerate(unit_filters):
                                output[f_base + pass_first + f, oy, ox] = sums[local]

        self.counters.add("cycles", total_cycles)
        return StructuralRunResult(
            output=output, cycles=total_cycles, counters=self.counters
        )

    # ------------------------------------------------------------------
    def _lane_positions(
        self, assignment: np.ndarray, kernel: int, bricks_per_column: int
    ) -> list[list[tuple[int, int, int]]]:
        """Ordered (fy, fx, bz) brick positions owned by each lane."""
        lanes = self.config.neuron_lanes
        positions: list[list[tuple[int, int, int]]] = [[] for _ in range(lanes)]
        for fy in range(kernel):
            for fx in range(kernel):
                for bz in range(bricks_per_column):
                    positions[int(assignment[fy, fx, bz])].append((fy, fx, bz))
        return positions

    def _window_queues(
        self,
        zfnaf: ZfnafArray,
        lane_positions: list[list[tuple[int, int, int]]],
        y0: int,
        x0: int,
    ) -> list[list[DispatchedBrick]]:
        queues: list[list[DispatchedBrick]] = []
        for positions in lane_positions:
            queue = []
            for seq, (fy, fx, bz) in enumerate(positions):
                values, offsets = zfnaf.brick(y0 + fy, x0 + fx, bz)
                queue.append(DispatchedBrick(values=values, offsets=offsets, seq=seq))
            queues.append(queue)
        return queues

    def _build_units(
        self,
        pass_weights: np.ndarray,
        lane_positions: list[list[tuple[int, int, int]]],
        padded_depth: int,
    ) -> list[tuple[CnvUnit, list[int]]]:
        config = self.config
        units: list[tuple[CnvUnit, list[int]]] = []
        for u in range(config.num_units):
            first = u * config.filters_per_unit
            unit_filters = list(
                range(first, min(first + config.filters_per_unit, pass_weights.shape[0]))
            )
            if not unit_filters:
                break
            w = np.zeros(
                (config.filters_per_unit,) + pass_weights.shape[1:], dtype=np.float64
            )
            w[: len(unit_filters)] = pass_weights[unit_filters]
            sbs = [
                build_subunit_sb(w, positions, config.brick_size)
                for positions in lane_positions
            ]
            units.append((CnvUnit(config, sbs, counters=self.counters), unit_filters))
        return units


def encode_layer_output(
    output: np.ndarray,
    config: ArchConfig,
    threshold: float = 0.0,
    apply_relu: bool = True,
    counters: ActivityCounters | None = None,
) -> ZfnafArray:
    """Run a layer's output through the per-unit encoders (Section IV-B4).

    ``output`` is the pre-activation (filters, out_y, out_x) array; ReLU
    (and the optional pruning threshold) are applied as the values stream
    through, producing the ZFNAf array the next layer will consume.  The
    result is bit-identical to vectorized encoding of the thresholded
    activations.
    """
    counters = counters if counters is not None else ActivityCounters()
    activated = np.maximum(output, 0.0) if apply_relu else output.copy()
    if threshold > 0.0:
        activated[np.abs(activated) < threshold] = 0.0

    brick = config.brick_size
    depth, out_y, out_x = activated.shape
    num_bz = ceil_div(depth, brick)
    encoder = Encoder(brick_size=brick, threshold=0.0, counters=counters)
    values = np.zeros((out_y, out_x, num_bz, brick), dtype=np.float64)
    offsets = np.zeros((out_y, out_x, num_bz, brick), dtype=np.int8)
    counts = np.zeros((out_y, out_x, num_bz), dtype=np.int16)
    padded = np.zeros((num_bz * brick, out_y, out_x), dtype=np.float64)
    padded[:depth] = activated
    for y in range(out_y):
        for x in range(out_x):
            for bz in range(num_bz):
                neurons = padded[bz * brick : (bz + 1) * brick, y, x]
                result = encoder.encode_brick(neurons)
                count = len(result.values)
                values[y, x, bz, :count] = result.values
                offsets[y, x, bz, :count] = result.offsets
                counts[y, x, bz] = count
    return ZfnafArray(
        values=values,
        offsets=offsets,
        counts=counts,
        brick_size=brick,
        original_depth=depth,
    )

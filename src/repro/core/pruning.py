"""Dynamic neuron pruning, Section V-E.

CNV can skip not just zero neurons but *near-zero* ones: the output encoder
compares each neuron's magnitude against a per-layer threshold (reusing the
max-pooling comparators) and encodes it as zero when below, so its
downstream computation is eliminated.  Thresholds are power-of-two
fixed-point values communicated with the layer metadata.

This module implements:

* threshold application (delegated to the inference engine's
  ``thresholds`` argument — functionally identical to the encoder path);
* the paper's threshold exploration ("gradient descent, similar to the
  approach used ... for finding per layer precision requirements"):
  a coordinate-ascent search over power-of-two thresholds that raises one
  layer at a time while accuracy stays within a tolerance;
* accuracy-vs-speedup sweeps and pareto frontiers for Fig. 14.

The search is generic over an evaluation callback so it runs both on the
really-trained small CNN (true accuracy) and on the calibrated big
networks (proxy accuracy; see :mod:`repro.experiments.fig14_pruning`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.tensor import DEFAULT_FORMAT, FixedPointFormat

__all__ = [
    "PruningPoint",
    "power_of_two_thresholds",
    "raw_to_real",
    "real_to_raw",
    "ThresholdSearcher",
    "pareto_frontier",
]

#: Candidate raw (fixed-point LSB) thresholds explored, as in Table II
#: where per-layer thresholds range over powers of two from 2 to 256.
DEFAULT_RAW_CANDIDATES = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)


def power_of_two_thresholds(max_exponent: int = 8) -> tuple[int, ...]:
    """Raw power-of-two threshold ladder: 0, 1, 2, 4, ..., 2**max_exponent."""
    return (0,) + tuple(2**e for e in range(max_exponent + 1))


def raw_to_real(raw: int, fmt: FixedPointFormat = DEFAULT_FORMAT) -> float:
    """A raw LSB-count threshold as a real value."""
    return raw * fmt.resolution


def real_to_raw(value: float, fmt: FixedPointFormat = DEFAULT_FORMAT) -> int:
    """Round a real threshold to raw LSBs."""
    return int(round(value * fmt.scale))


@dataclass
class PruningPoint:
    """One explored configuration: thresholds with measured outcomes."""

    raw_thresholds: dict[str, int]
    accuracy: float
    speedup: float

    def thresholds_real(self, fmt: FixedPointFormat = DEFAULT_FORMAT) -> dict[str, float]:
        return {name: raw_to_real(raw, fmt) for name, raw in self.raw_thresholds.items()}


#: Evaluation callback: raw per-layer thresholds -> (accuracy, speedup).
EvaluateFn = Callable[[dict[str, int]], tuple[float, float]]


@dataclass
class ThresholdSearcher:
    """Coordinate-ascent search over per-layer power-of-two thresholds.

    Starting from all-zero thresholds, each round tentatively raises every
    layer's threshold to its next candidate, keeps the raise yielding the
    best speedup whose accuracy drop (relative to the unpruned accuracy)
    stays within ``tolerance``, and repeats until no raise is admissible.
    This mirrors the paper's greedy per-layer exploration; the full
    trajectory is recorded for the Fig. 14 trade-off curves.
    """

    evaluate: EvaluateFn
    layer_names: list[str]
    candidates: tuple[int, ...] = DEFAULT_RAW_CANDIDATES
    history: list[PruningPoint] = field(default_factory=list)
    #: Memo of evaluated configurations keyed by their non-zero thresholds:
    #: ``sweep()`` over several tolerances revisits the all-zero baseline
    #: and many trial points, which would otherwise re-run full forward
    #: evaluations.  ``history`` still records every visit (cache hits
    #: append a fresh point without calling ``evaluate``).
    _memo: dict[tuple, PruningPoint] = field(default_factory=dict, init=False)
    cache_hits: int = field(default=0, init=False)

    @staticmethod
    def _memo_key(thresholds: dict[str, int]) -> tuple:
        return tuple(sorted((k, int(v)) for k, v in thresholds.items() if v))

    def _eval_point(self, thresholds: dict[str, int]) -> PruningPoint:
        key = self._memo_key(thresholds)
        cached = self._memo.get(key)
        if cached is not None:
            self.cache_hits += 1
            point = PruningPoint(
                raw_thresholds=dict(thresholds),
                accuracy=cached.accuracy,
                speedup=cached.speedup,
            )
            self.history.append(point)
            return point
        accuracy, speedup = self.evaluate(thresholds)
        point = PruningPoint(
            raw_thresholds=dict(thresholds), accuracy=accuracy, speedup=speedup
        )
        self._memo[key] = point
        self.history.append(point)
        return point

    def _next_candidate(self, raw: int) -> int | None:
        ladder = sorted(set(self.candidates))
        for value in ladder:
            if value > raw:
                return value
        return None

    def search(
        self,
        tolerance: float = 0.0,
        max_rounds: int = 64,
    ) -> PruningPoint:
        """Find the fastest configuration within an accuracy tolerance.

        ``tolerance`` is the admissible *relative* accuracy drop (0 for the
        lossless Table II search, 0.01 / 0.10 for the Fig. 14 loss points).
        """
        current = {name: 0 for name in self.layer_names}
        best = self._eval_point(current)
        baseline_accuracy = best.accuracy
        floor = baseline_accuracy * (1.0 - tolerance)

        for _ in range(max_rounds):
            round_best: PruningPoint | None = None
            round_layer: str | None = None
            for name in self.layer_names:
                nxt = self._next_candidate(current[name])
                if nxt is None:
                    continue
                trial = dict(current)
                trial[name] = nxt
                point = self._eval_point(trial)
                if point.accuracy + 1e-12 < floor:
                    continue
                if round_best is None or point.speedup > round_best.speedup:
                    round_best = point
                    round_layer = name
            if round_best is None or round_best.speedup <= best.speedup + 1e-9:
                break
            best = round_best
            current = dict(round_best.raw_thresholds)
            _ = round_layer
        return best

    def sweep(self, tolerances: list[float]) -> list[PruningPoint]:
        """Best configuration per tolerance (Fig. 14 operating points)."""
        return [self.search(tolerance=t) for t in tolerances]


def pareto_frontier(points: list[PruningPoint]) -> list[PruningPoint]:
    """Points not dominated in (accuracy, speedup), sorted by speedup.

    A point is kept iff no other point has both higher-or-equal speedup and
    strictly higher accuracy — the frontier Fig. 14 plots per network.
    """
    ordered = sorted(points, key=lambda p: (p.speedup, p.accuracy), reverse=True)
    frontier: list[PruningPoint] = []
    best_accuracy = -np.inf
    for point in ordered:
        if point.accuracy > best_accuracy:
            frontier.append(point)
            best_accuracy = point.accuracy
    frontier.reverse()  # ascending speedup
    return frontier

"""A CNV unit: 16 independent front-end subunits + the unchanged back-end.

The back-end is identical to DaDianNao's (Section III-C): one adder tree
per filter reduces the products arriving from all subunits plus the partial
sum from NBout.  Subunits that are stalled or discarding an empty brick
contribute nothing that cycle — and read no synapses, which is where CNV's
SB dynamic-energy saving comes from.
"""

from __future__ import annotations

import numpy as np

from repro.core.dispatcher import LaneSlot
from repro.core.subunit import Subunit
from repro.hw.buffers import PartialSumBuffer
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters

__all__ = ["CnvUnit"]


class CnvUnit:
    """One unit: ``neuron_lanes`` subunits feeding ``filters_per_unit``
    adder trees, accumulating into NBout."""

    def __init__(
        self,
        config: ArchConfig,
        subunit_sbs: list[np.ndarray],
        counters: ActivityCounters | None = None,
    ):
        if len(subunit_sbs) != config.neuron_lanes:
            raise ValueError("one SB slice per subunit required")
        self.config = config
        self.counters = counters if counters is not None else ActivityCounters()
        self.subunits = [
            Subunit(config, sb, counters=self.counters) for sb in subunit_sbs
        ]
        self.nbout = PartialSumBuffer(config.filters_per_unit, counters=self.counters)
        self._source: object | None = None

    def attach(self, dispatcher) -> None:
        """Wire the unit to the dispatcher's per-cycle lane slots."""
        self._source = dispatcher

    def reset_window(self) -> None:
        self.nbout.drain()

    def consume(self, slots: list[LaneSlot]) -> None:
        """Process one cycle of dispatched lane slots."""
        totals = np.zeros(self.config.filters_per_unit, dtype=np.float64)
        any_product = False
        for lane, slot in enumerate(slots):
            if slot.kind != "pair":
                continue
            totals += self.subunits[lane].process(slot.value, slot.offset, slot.seq)
            any_product = True
        if any_product:
            self.counters.add("adds", self.config.multipliers_per_unit)
            for f in range(self.config.filters_per_unit):
                self.nbout.accumulate(f, float(totals[f]))

    def tick(self, cycle: int) -> None:
        """Clocked interface: consume the dispatcher's current slots."""
        if self._source is None:
            raise RuntimeError("unit not attached to a dispatcher")
        self.consume(self._source.current_slots)

    def window_outputs(self) -> np.ndarray:
        """Drain the partial sums at window synchronization."""
        return self.nbout.drain()

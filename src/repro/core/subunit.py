"""The CNV front-end subunit, Section IV-B / Fig. 5(b).

Each subunit owns one neuron lane and one synapse lane per filter of its
unit (16 in the paper): every cycle it takes a single ``(neuron, offset)``
pair, uses the offset to index its private SB slice (128 KB), fetches one
synapse per filter, and produces ``filters_per_unit`` products for the
unit's adder trees.  Because the subunit sees only non-zero neurons, all of
its multiplier work is effectual.
"""

from __future__ import annotations

import numpy as np

from repro.hw.buffers import NeuronFifo
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters
from repro.hw.memory import SynapseBuffer

__all__ = ["Subunit", "build_subunit_sb"]


def build_subunit_sb(
    weights: np.ndarray,
    lane_positions: list[tuple[int, int, int]],
    brick_size: int,
) -> np.ndarray:
    """Arrange a unit's filter synapses into one subunit's SB slice.

    ``weights``: (filters_per_unit, depth, Fy, Fx) for the unit's filters.
    ``lane_positions``: the (fy, fx, bz) window-relative brick positions
    assigned to this lane, in processing order — the "transposed store
    order per subunit" of Section IV-B2, computed statically in software.

    Returns columns of shape ``(len(lane_positions) * brick_size,
    filters_per_unit)``: brick ``seq``'s pairs index columns
    ``seq * brick_size + offset``.
    """
    filters, depth, _, _ = weights.shape
    columns = np.zeros((len(lane_positions) * brick_size, filters), dtype=np.float64)
    for seq, (fy, fx, bz) in enumerate(lane_positions):
        for k in range(brick_size):
            z = bz * brick_size + k
            if z < depth:
                columns[seq * brick_size + k, :] = weights[:, z, fy, fx]
    return columns


class Subunit:
    """One decoupled neuron lane with its private SB slice."""

    def __init__(
        self,
        config: ArchConfig,
        sb_columns: np.ndarray,
        counters: ActivityCounters | None = None,
    ):
        self.config = config
        self.counters = counters if counters is not None else ActivityCounters()
        self.sb = SynapseBuffer(columns=sb_columns, counters=self.counters)
        # The subunit NBin: 64 entries of (16-bit value + offset field).
        # The SRAM is double-pumped — one write and one read per cycle
        # (Section V-A) — so the broadcast pair is buffered and consumed
        # in the same cycle at steady state.
        self.nbin = NeuronFifo(config.nbin_entries, counters=self.counters)

    def process(self, value: float, offset: int, seq: int) -> np.ndarray:
        """One cycle of work: multiply the neuron against one SB column.

        Returns ``filters_per_unit`` products.  The offset adjusts the SB
        index so the non-zero neuron meets the synapses its original
        position required (Section III-C).
        """
        if not 0 <= offset < self.config.brick_size:
            raise ValueError(f"offset {offset} outside brick of {self.config.brick_size}")
        self.nbin.push(value, offset)  # broadcast write (double-pumped)
        value, offset = self.nbin.pop()  # lane read, same cycle
        column = self.sb.read_column(seq * self.config.brick_size + offset)
        self.counters.add("offset_reads")
        products = column * value
        self.counters.add("mults", products.size)
        return products

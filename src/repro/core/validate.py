"""On-the-fly hardware validation (the paper's Section V-A methodology).

"The simulator integrates with the Caffe framework to enable on-the-fly
validation of the layer output neurons."  This module is that harness for
the reproduction: it walks a network layer by layer, runs each conv
layer's *actual* activations through the structural DaDianNao and CNV
node simulators, and checks the outputs against the inference engine's
golden values — plus the structural cycle counts against the analytic
models.

Because the structural simulators step cycle by cycle, validation uses a
scaled-down node by default and can restrict the spatial extent of each
layer (``max_spatial``) to keep runs tractable; functional behaviour is
position-independent, so a spatial crop exercises every datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baseline.accelerator import DaDianNaoNode
from repro.baseline.timing import baseline_conv_timing
from repro.baseline.workload import ConvWork
from repro.core.accelerator import CnvNode
from repro.core.timing import cnv_conv_timing
from repro.hw.config import ArchConfig, small_config
from repro.nn.inference import WeightStore, run_forward
from repro.nn.layers import conv2d
from repro.nn.network import Network

__all__ = ["LayerValidation", "ValidationReport", "validate_network"]


@dataclass
class LayerValidation:
    """Validation outcome for one conv layer."""

    layer: str
    baseline_max_error: float
    cnv_max_error: float
    baseline_cycles_match: bool
    cnv_cycles_match: bool
    speedup: float

    @property
    def passed(self) -> bool:
        return (
            self.baseline_max_error < 1e-9
            and self.cnv_max_error < 1e-9
            and self.baseline_cycles_match
            and self.cnv_cycles_match
        )


@dataclass
class ValidationReport:
    """All per-layer outcomes of one validation run."""

    network: str
    layers: list[LayerValidation] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(layer.passed for layer in self.layers)

    def summary(self) -> str:
        lines = [f"validation of {self.network}:"]
        for lv in self.layers:
            status = "ok" if lv.passed else "FAIL"
            lines.append(
                f"  {lv.layer:24s} {status}  max|err| base {lv.baseline_max_error:.2e} "
                f"cnv {lv.cnv_max_error:.2e}  speedup {lv.speedup:.2f}x"
            )
        return "\n".join(lines)


def _crop_layer(
    activations: np.ndarray, geometry: dict, max_spatial: int
) -> tuple[np.ndarray, dict]:
    """Crop a layer spatially so the structural run stays tractable."""
    geometry = dict(geometry)
    kernel, stride, pad = geometry["kernel"], geometry["stride"], geometry["pad"]
    in_y = min(geometry["in_y"], max(max_spatial, kernel))
    in_x = min(geometry["in_x"], max(max_spatial, kernel))
    geometry["in_y"], geometry["in_x"] = in_y, in_x
    geometry["out_y"] = (in_y - kernel + 2 * pad) // stride + 1
    geometry["out_x"] = (in_x - kernel + 2 * pad) // stride + 1
    return activations[:, :in_y, :in_x], geometry


def validate_network(
    network: Network,
    store: WeightStore,
    image: np.ndarray,
    config: ArchConfig | None = None,
    max_spatial: int = 8,
    max_filters: int = 8,
    layers: list[str] | None = None,
) -> ValidationReport:
    """Validate the structural simulators on a network's real activations.

    Parameters
    ----------
    network, store, image:
        What to run; activations come from the inference engine.
    config:
        Node geometry for the structural runs (scaled-down by default).
    max_spatial, max_filters:
        Tractability crops applied to each layer (every datapath is still
        exercised; see module docstring).
    layers:
        Restrict to these conv layers (default: all of them).
    """
    config = config if config is not None else small_config()
    fwd = run_forward(network, store, image, collect_conv_inputs=True, keep_outputs=False)
    first = network.first_conv_layers()
    report = ValidationReport(network=network.name)
    for layer in network.conv_layers:
        if layers is not None and layer.name not in layers:
            continue
        geometry = network.conv_geometry(layer)
        activations, geometry = _crop_layer(
            fwd.conv_inputs[layer.name], geometry, max_spatial
        )
        weights = store.weights[layer.name]
        n_filters = min(geometry["num_filters"], max_filters * layer.groups)
        n_filters -= n_filters % layer.groups
        per_group = n_filters // layer.groups
        full_group = geometry["num_filters"] // layer.groups
        keep = np.concatenate(
            [
                np.arange(g * full_group, g * full_group + per_group)
                for g in range(layer.groups)
            ]
        )
        geometry["num_filters"] = n_filters
        weights = weights[keep]

        work = ConvWork(
            name=layer.name,
            geometry=geometry,
            activations=activations,
            is_first=layer.name in first,
        )
        golden = conv2d(
            activations,
            weights,
            stride=geometry["stride"],
            pad=geometry["pad"],
            groups=geometry["groups"],
        )
        base = DaDianNaoNode(config).run_conv_layer(work, weights)
        cnv = CnvNode(config).run_conv_layer(work, weights)
        report.layers.append(
            LayerValidation(
                layer=layer.name,
                baseline_max_error=float(np.abs(base.output - golden).max()),
                cnv_max_error=float(np.abs(cnv.output - golden).max()),
                baseline_cycles_match=base.cycles
                == baseline_conv_timing(work, config).cycles,
                cnv_cycles_match=cnv.cycles == cnv_conv_timing(work, config).cycles,
                speedup=base.cycles / cnv.cycles if cnv.cycles else float("inf"),
            )
        )
    return report

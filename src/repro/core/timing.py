"""Analytic (vectorized) timing model of the Cnvlutin accelerator.

CNV decouples the unit front-end into ``neuron_lanes`` independent subunits
(Section IV-B): each cycle a subunit consumes one non-zero ``(value,
offset)`` pair from its NBin and produces ``filters_per_unit`` products.
Work is assigned *brick-interleaved* (Section IV-B2): the bricks of a
window, enumerated in the baseline fetch order (features fastest, then x,
then y), are dealt round-robin to the lanes — ``lane = brick_index mod
neuron_lanes``.  When the input depth is a full 256 this reduces exactly to
the paper's Fig. 6(b) "16 vertical slices, one per lane"; for shallower
layers it generalizes the same static SB-transpose trick across the window.

Per window, a lane spends ``max(nnz(brick), empty_brick_cycles)`` cycles on
each of its bricks: the non-zero pairs take one cycle each, and a brick
with *no* non-zero neurons still occupies the single cycle its NM bank
needed to supply it (Section IV-B3's worst-case bandwidth discussion;
``ArchConfig.empty_brick_cycles = 0`` ablates a free skip).  All lanes
synchronize at window boundaries (Section IV-B5): the window takes the
*maximum* lane time, and the difference is accounted as *stall* events in
the Fig. 10 breakdown.  Layers fed by the raw image are processed
unencoded, exactly like the baseline (CNV does not accelerate conv1).

The closed forms here are proven equal to the structural cycle-by-cycle
simulator (:mod:`repro.core.accelerator`) by property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.other_layers import other_layers_timing
from repro.baseline.timing import baseline_conv_timing, conv_works_from_inputs
from repro.baseline.workload import ConvWork, ceil_div, group_activations
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters
from repro.hw.timing_types import LayerTiming, NetworkTiming
from repro.nn.activations import brick_nonzero_counts
from repro.nn.network import Network

__all__ = [
    "cnv_conv_timing",
    "cnv_network_timing",
    "lane_assignment",
    "window_lane_cycles",
]


def lane_assignment(
    kernel_y: int, kernel_x: int, bricks_per_column: int, lanes: int
) -> np.ndarray:
    """Brick-interleaved lane of each window brick.

    Returns an array of shape ``(kernel_y, kernel_x, bricks_per_column)``
    giving the neuron lane that owns each brick of a window.  Enumeration
    order matches the baseline fetch order (bz fastest, then fx, then fy),
    so with ``bricks_per_column == lanes`` every (fy, fx) column maps its
    bricks to lanes 0..15 — the paper's vertical-slice assignment.
    """
    index = np.arange(kernel_y * kernel_x * bricks_per_column)
    return (index % lanes).reshape(kernel_y, kernel_x, bricks_per_column)


def window_lane_cycles(
    cost: np.ndarray,
    nnz: np.ndarray,
    kernel_y: int,
    kernel_x: int,
    stride: int,
    out_y: int,
    out_x: int,
    lanes: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-window, per-lane cycle counts and per-window non-zero totals.

    Parameters
    ----------
    cost, nnz:
        Per-brick arrays of shape ``(padded_y, padded_x, bricks_per_col)``:
        ``cost`` is the cycles a lane spends on the brick, ``nnz`` its
        non-zero neuron count.
    Returns
    -------
    ``(lane_cycles, window_nnz)`` with shapes ``(out_y, out_x, lanes)`` and
    ``(out_y, out_x)``.
    """
    bricks_per_column = cost.shape[2]
    assignment = lane_assignment(kernel_y, kernel_x, bricks_per_column, lanes)
    bricks_per_window = kernel_y * kernel_x * bricks_per_column
    # One GEMM over im2col'd windows replaces the per-(fy, fx) python
    # loop: scatter the lane assignment into a (bricks_per_window, lanes)
    # one-hot and multiply the unfolded per-window brick costs against
    # it.  All quantities are integer-valued, so the float64 sums are
    # exact in any accumulation order — the cycle counts stay
    # byte-identical to the loop they replace (golden-pinned).
    onehot = np.zeros((bricks_per_window, lanes), dtype=np.float64)
    onehot[np.arange(bricks_per_window), assignment.reshape(-1)] = 1.0
    cost64 = np.ascontiguousarray(cost, dtype=np.float64)
    nnz64 = np.ascontiguousarray(nnz, dtype=np.float64)

    def unfold(padded: np.ndarray) -> np.ndarray:
        sy, sx, sb = padded.strides
        return np.lib.stride_tricks.as_strided(
            padded,
            shape=(out_y, out_x, kernel_y, kernel_x, bricks_per_column),
            strides=(sy * stride, sx * stride, sy, sx, sb),
            writeable=False,
        )

    cost_windows = unfold(cost64)
    nnz_windows = unfold(nnz64)
    lane_cycles = np.empty((out_y, out_x, lanes), dtype=np.float64)
    window_nnz = np.empty((out_y, out_x), dtype=np.float64)
    # Materializing every window at once can dwarf the input for large
    # kernels; process row chunks so the unfolded copy stays bounded.
    chunk_rows = max(1, 4_000_000 // max(1, out_x * bricks_per_window))
    for y0 in range(0, out_y, chunk_rows):
        y1 = min(y0 + chunk_rows, out_y)
        chunk = np.ascontiguousarray(cost_windows[y0:y1]).reshape(
            (y1 - y0) * out_x, bricks_per_window
        )
        lane_cycles[y0:y1] = (chunk @ onehot).reshape(y1 - y0, out_x, lanes)
        window_nnz[y0:y1] = nnz_windows[y0:y1].sum(axis=(2, 3, 4))
    return lane_cycles, window_nnz


def cnv_conv_timing(work: ConvWork, config: ArchConfig) -> LayerTiming:
    """Cycles and activity for one conv layer on CNV.

    First-layer convolutions (raw image input) take the unencoded baseline
    path; their events land in the ``conv1`` category.
    """
    if work.is_first and not config.first_layer_encoded:
        return baseline_conv_timing(work, config)

    geom = work.geometry
    lanes = config.neuron_lanes
    kernel = geom["kernel"]
    stride = geom["stride"]
    out_y, out_x = geom["out_y"], geom["out_x"]
    windows = out_y * out_x

    counters = ActivityCounters()
    total_cycles = 0
    nonzero_events = 0.0
    zero_events = 0.0
    stall_events = 0.0

    for group in range(work.num_groups):
        slab = group_activations(work, group)
        nnz = brick_nonzero_counts(slab, config.brick_size)
        if config.empty_brick_cycles:
            cost = np.maximum(nnz, 1)
        else:
            cost = nnz
        passes = ceil_div(work.filters_per_group, config.filters_per_pass)

        lane_cycles, window_nnz = window_lane_cycles(
            cost, nnz, kernel, kernel, stride, out_y, out_x, lanes
        )
        window_cycles = lane_cycles.max(axis=2)
        group_cycles = int(window_cycles.sum()) * passes
        total_cycles += group_cycles

        total_nnz = float(window_nnz.sum())
        total_busy = float(lane_cycles.sum())  # nonzero + empty-brick bubbles
        total_stall = float(
            (window_cycles[..., None] - lane_cycles).sum()
        )

        scale = passes * config.num_units
        nonzero_events += scale * total_nnz
        zero_events += scale * (total_busy - total_nnz)
        stall_events += scale * total_stall

        # Datapath activity: only busy (non-zero) lane-cycles multiply; a
        # stalled or bubble cycle reads no synapses (Section V-D: "synapses
        # are not read when a subunit is stalled").
        busy = scale * total_nnz
        counters.add("mults", busy * config.filters_per_unit)
        counters.add("adds", busy * config.filters_per_unit)
        counters.add("sb_reads", busy)
        counters.add("offset_reads", busy)
        counters.add("nbin_reads", scale * total_busy)
        counters.add("nbin_writes", scale * total_busy)
        counters.add(
            "nbout_reads",
            group_cycles * config.num_units * config.filters_per_unit,
        )
        counters.add(
            "nbout_writes",
            group_cycles * config.num_units * config.filters_per_unit,
        )
        # The dispatcher reads every brick of every window once per pass.
        bricks_per_window = kernel * kernel * nnz.shape[2]
        counters.add("nm_reads", windows * bricks_per_window * passes)
        counters.add("broadcasts", group_cycles)
        # Output encoding: one cycle per output neuron slot (Section IV-B4).
        out_slots = (
            ceil_div(work.filters_per_group, config.brick_size)
            * config.brick_size
            * windows
        )
        counters.add("encoder_cycles", out_slots)
        counters.add("nm_writes", out_slots / config.brick_size)

    lane_events = {
        "nonzero": nonzero_events,
        "zero": zero_events,
        "stall": stall_events,
    }
    return LayerTiming(
        name=work.name,
        kind="conv",
        cycles=total_cycles,
        lane_events=lane_events,
        counters=counters,
    )


def cnv_network_timing(
    network: Network,
    conv_inputs: dict[str, np.ndarray],
    config: ArchConfig,
) -> NetworkTiming:
    """Full-network CNV timing from a forward pass's recorded conv inputs."""
    layers = [
        cnv_conv_timing(work, config)
        for work in conv_works_from_inputs(network, conv_inputs)
    ]
    layers.extend(other_layers_timing(network, config))
    return NetworkTiming(network=network.name, architecture="cnvlutin", layers=layers)

"""The Cnvlutin contribution: ZFNAf, decoupled units, dispatcher, pruning.

This package holds everything the paper adds on top of DaDianNao: the
Zero-Free Neuron Array format (:mod:`~repro.core.zfnaf`), the on-the-fly
output :mod:`~repro.core.encoder`, the :mod:`~repro.core.dispatcher` that
keeps NM accesses wide while lanes drain independently, the decoupled
:mod:`~repro.core.subunit`/:mod:`~repro.core.unit` front-end, the
structural node simulator (:mod:`~repro.core.accelerator`), the vectorized
timing model (:mod:`~repro.core.timing`) and dynamic neuron pruning
(:mod:`~repro.core.pruning`).
"""

from repro.core.accelerator import CnvNode, encode_layer_output
from repro.core.dispatcher import DispatchedBrick, Dispatcher, LaneSlot, bank_pressure
from repro.core.encoder import EncodedBrickResult, Encoder
from repro.core.pruning import (
    PruningPoint,
    ThresholdSearcher,
    pareto_frontier,
    power_of_two_thresholds,
    raw_to_real,
    real_to_raw,
)
from repro.core.stats import (
    BrickStats,
    LaneBalanceStats,
    brick_stats,
    lane_balance,
    structural_speedup_bound,
)
from repro.core.subunit import Subunit, build_subunit_sb
from repro.core.timing import (
    cnv_conv_timing,
    cnv_network_timing,
    lane_assignment,
    window_lane_cycles,
)
from repro.core.unit import CnvUnit
from repro.core.validate import LayerValidation, ValidationReport, validate_network
from repro.core.zfnaf import ZfnafArray, decode, decode_brick, encode, encode_brick

__all__ = [
    "BrickStats",
    "LaneBalanceStats",
    "brick_stats",
    "lane_balance",
    "structural_speedup_bound",
    "LayerValidation",
    "ValidationReport",
    "validate_network",
    "CnvNode",
    "encode_layer_output",
    "DispatchedBrick",
    "Dispatcher",
    "LaneSlot",
    "bank_pressure",
    "EncodedBrickResult",
    "Encoder",
    "PruningPoint",
    "ThresholdSearcher",
    "pareto_frontier",
    "power_of_two_thresholds",
    "raw_to_real",
    "real_to_raw",
    "Subunit",
    "build_subunit_sb",
    "cnv_conv_timing",
    "cnv_network_timing",
    "lane_assignment",
    "window_lane_cycles",
    "CnvUnit",
    "ZfnafArray",
    "decode",
    "decode_brick",
    "encode",
    "encode_brick",
]

"""Brick and lane-balance statistics: *why* CNV stalls where it stalls.

CNV's residual inefficiency has two distinct causes that these analyses
separate (used by EXPERIMENTS.md to explain per-network deviations):

* **value imbalance** — lanes holding the same number of bricks drain at
  different rates because brick non-zero counts differ (the effect the
  paper's Section IV-B5 synchronization discussion describes);
* **structural imbalance** — when a window holds fewer brick columns than
  the 16 lanes (shallow layers: google's 1x1 reduces, alex conv2's
  48-deep groups), brick counts per lane already differ by construction,
  capping the layer's achievable speedup regardless of values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baseline.workload import ConvWork, group_activations
from repro.core.timing import lane_assignment, window_lane_cycles
from repro.hw.config import ArchConfig
from repro.nn.activations import brick_nonzero_counts

__all__ = [
    "BrickStats",
    "brick_stats",
    "LaneBalanceStats",
    "lane_balance",
    "structural_speedup_bound",
    "encoder_throughput_margin",
]


@dataclass
class BrickStats:
    """Distribution of non-zero counts over an activation array's bricks."""

    brick_size: int
    num_bricks: int
    mean_nonzero: float
    std_nonzero: float
    empty_fraction: float
    full_fraction: float
    histogram: dict[int, int]

    @property
    def zero_fraction(self) -> float:
        return 1.0 - self.mean_nonzero / self.brick_size


def brick_stats(activations: np.ndarray, brick_size: int = 16) -> BrickStats:
    """Per-brick non-zero statistics of one activation array."""
    counts = brick_nonzero_counts(activations, brick_size).reshape(-1)
    values, freqs = np.unique(counts, return_counts=True)
    return BrickStats(
        brick_size=brick_size,
        num_bricks=int(counts.size),
        mean_nonzero=float(counts.mean()),
        std_nonzero=float(counts.std()),
        empty_fraction=float((counts == 0).mean()),
        full_fraction=float((counts == brick_size).mean()),
        histogram={int(v): int(f) for v, f in zip(values, freqs)},
    )


@dataclass
class LaneBalanceStats:
    """Per-window lane balance of one conv layer on CNV."""

    layer: str
    mean_lane_utilization: float  # mean lane cycles / window max
    structural_bound: float  # speedup cap from brick-count imbalance alone
    value_stall_fraction: float  # stalls beyond the structural ones


def structural_speedup_bound(
    kernel: int, bricks_per_column: int, lanes: int
) -> float:
    """Best-case CNV-vs-dense ratio from brick counts alone.

    A window has ``kernel² * bricks_per_column`` bricks dealt round-robin;
    the busiest lane holds ``ceil(bricks / lanes)``.  Even with uniform
    values, the window cannot finish faster than that lane, so the layer's
    dense-relative speedup is bounded by ``bricks / (lanes * ceil(...))``
    (< 1 means CNV is structurally slower than lock-step on this shape).
    """
    bricks = kernel * kernel * bricks_per_column
    busiest = -(-bricks // lanes)
    return bricks / (lanes * busiest)


def encoder_throughput_margin(
    work: ConvWork, config: ArchConfig
) -> float:
    """How comfortably the serial encoder keeps up (Section IV-B4).

    Each unit's encoder needs ``brick_size`` cycles per output brick, and a
    unit produces one output brick (16 output neurons, one per filter) per
    window.  The margin is ``mean window cycles / brick_size``: above 1.0
    the encoder is never the bottleneck — the paper's claim that "output
    neurons are produced at a much slower rate", checked quantitatively.
    """
    from repro.core.timing import cnv_conv_timing

    timing = cnv_conv_timing(work, config)
    geom = work.geometry
    windows = geom["out_y"] * geom["out_x"]
    passes = max(
        1, -(-work.filters_per_group // config.filters_per_pass)
    )
    mean_window_cycles = timing.cycles / (windows * passes * work.num_groups)
    return mean_window_cycles / config.brick_size


def lane_balance(
    work: ConvWork, config: ArchConfig, group: int = 0
) -> LaneBalanceStats:
    """Measured lane balance for one conv layer workload."""
    geom = work.geometry
    slab = group_activations(work, group)
    nnz = brick_nonzero_counts(slab, config.brick_size)
    cost = np.maximum(nnz, 1) if config.empty_brick_cycles else nnz
    lane_cycles, _ = window_lane_cycles(
        cost,
        nnz,
        geom["kernel"],
        geom["kernel"],
        geom["stride"],
        geom["out_y"],
        geom["out_x"],
        config.neuron_lanes,
    )
    window_max = lane_cycles.max(axis=2)
    with np.errstate(invalid="ignore", divide="ignore"):
        utilization = np.where(
            window_max > 0, lane_cycles.mean(axis=2) / window_max, 1.0
        )

    bound = structural_speedup_bound(
        geom["kernel"], nnz.shape[2], config.neuron_lanes
    )
    # Stalls if every brick had identical cost (structural only):
    assignment = lane_assignment(
        geom["kernel"], geom["kernel"], nnz.shape[2], config.neuron_lanes
    )
    counts_per_lane = np.bincount(
        assignment.reshape(-1), minlength=config.neuron_lanes
    )
    structural_util = counts_per_lane.mean() / counts_per_lane.max()
    measured_util = float(utilization.mean())
    value_stall = max(0.0, structural_util - measured_util)
    return LaneBalanceStats(
        layer=work.name,
        mean_lane_utilization=measured_util,
        structural_bound=bound,
        value_stall_fraction=value_stall,
    )

"""The output Encoder subunit, Section IV-B4.

One encoder per CNV unit converts the unit's output bricks to ZFNAf on the
fly, so the *next* layer sees a zero-free stream.  The hardware is serial —
a 16-neuron input buffer (IB), a 16-pair output buffer (OB) and an offset
counter; each cycle it examines one IB neuron, copies it to the next OB
slot iff non-zero, and writes the offset-counter value alongside.  Serial
conversion is affordable because output neurons are produced far more
slowly than inputs are consumed (a window of hundreds of cycles yields one
output brick per unit).

This model counts the encoder's cycles and produces bit-identical bricks to
the vectorized :func:`repro.core.zfnaf.encode` (tested property-based).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.counters import ActivityCounters

__all__ = ["Encoder", "EncodedBrickResult"]


@dataclass
class EncodedBrickResult:
    """One brick in ZFNAf plus the cycles the serial encoder spent."""

    values: np.ndarray
    offsets: np.ndarray
    cycles: int


@dataclass
class Encoder:
    """Serial per-unit ZFNAf encoder (IB -> OB with an offset counter)."""

    brick_size: int = 16
    threshold: float = 0.0
    counters: ActivityCounters = field(default_factory=ActivityCounters)

    def encode_brick(self, neurons: np.ndarray) -> EncodedBrickResult:
        """Encode one output brick, one neuron per cycle.

        ``threshold`` implements the Section V-E dynamic pruning: the
        encoder reuses the pooling comparators to treat near-zero neurons
        (magnitude below the per-layer threshold) as zero, so they are
        dropped from the stream and their computation skipped downstream.
        """
        neurons = np.asarray(neurons, dtype=np.float64)
        if neurons.shape != (self.brick_size,):
            raise ValueError(
                f"encoder consumes bricks of {self.brick_size} neurons"
            )
        ob_values: list[float] = []
        ob_offsets: list[int] = []
        cycles = 0
        for offset_counter in range(self.brick_size):
            value = neurons[offset_counter]
            cycles += 1  # one IB read per cycle
            if value != 0.0 and abs(value) >= self.threshold:
                ob_values.append(float(value))
                ob_offsets.append(offset_counter)
        self.counters.add("encoder_cycles", cycles)
        self.counters.add("nm_writes", 1)
        return EncodedBrickResult(
            values=np.array(ob_values, dtype=np.float64),
            offsets=np.array(ob_offsets, dtype=np.int64),
            cycles=cycles,
        )

"""The Zero-Free Neuron Array format (ZFNAf), Section IV-B1.

ZFNAf stores a neuron array as *bricks*: aligned groups of ``brick_size``
(16 in the paper) neurons that are contiguous along the input-features
dimension *i* and share the same (x, y) coordinates.  Within each brick
only the non-zero neurons are stored, each as a ``(value, offset)`` pair
where the offset is the neuron's original position within the brick
(4 bits for 16-neuron bricks).  Bricks keep their conventional starting
position and are zero padded, so:

* the array remains directly indexable at brick granularity from the
  coordinates of a brick's first neuron — which is what lets the CNV
  dispatcher assign work to subunits independently and locate windows; and
* there are **no memory footprint savings** — unlike CSR-style sparse
  formats, ZFNAf trades footprint (a fixed +25% for the offset fields with
  16-neuron bricks) for wide, aligned accesses (Section VI).

The encoding turns "should this multiplication happen?" control-flow
decisions into data, computed once at the output of the producing layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ZfnafArray", "encode", "decode", "encode_brick", "decode_brick"]

DEFAULT_BRICK_SIZE = 16


def encode_brick(neurons: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode one brick: keep non-zero values with their offsets.

    ``(1, 0, 0, 3)`` encodes to values ``(1, 3)`` and offsets ``(0, 3)``
    — the Section III-C example.
    """
    neurons = np.asarray(neurons)
    nonzero = np.flatnonzero(neurons)
    return neurons[nonzero], nonzero.astype(np.int64)


def decode_brick(
    values: np.ndarray, offsets: np.ndarray, brick_size: int
) -> np.ndarray:
    """Reconstruct the dense brick from its (value, offset) pairs."""
    out = np.zeros(brick_size, dtype=np.asarray(values).dtype if len(values) else np.float64)
    for value, offset in zip(values, offsets):
        if not 0 <= offset < brick_size:
            raise ValueError(f"offset {offset} out of range for brick {brick_size}")
        out[int(offset)] = value
    return out


@dataclass
class ZfnafArray:
    """A neuron array encoded in ZFNAf.

    Storage is dense per brick slot (the format reserves every slot, which
    is exactly its footprint trade-off):

    ``values[y, x, bz, k]``  : k-th non-zero value of brick (y, x, bz)
    ``offsets[y, x, bz, k]`` : its offset within the brick
    ``counts[y, x, bz]``     : number of non-zero neurons in the brick

    ``bz`` indexes bricks along the feature dimension:
    brick ``(y, x, bz)`` covers neurons ``n(z, y, x)`` for
    ``z in [bz*brick_size, (bz+1)*brick_size)``.
    """

    values: np.ndarray
    offsets: np.ndarray
    counts: np.ndarray
    brick_size: int
    original_depth: int

    def __post_init__(self) -> None:
        if self.values.shape != self.offsets.shape:
            raise ValueError("values/offsets shape mismatch")
        if self.values.shape[:3] != self.counts.shape:
            raise ValueError("counts shape mismatch")
        if self.values.shape[3] != self.brick_size:
            raise ValueError("slot dimension must equal brick_size")

    # ------------------------------------------------------------------
    @property
    def spatial_shape(self) -> tuple[int, int]:
        """(height, width) of the underlying neuron array."""
        return self.values.shape[0], self.values.shape[1]

    @property
    def bricks_per_column(self) -> int:
        """Number of bricks along the feature dimension (ceil(i/16))."""
        return self.values.shape[2]

    @property
    def num_bricks(self) -> int:
        return int(np.prod(self.counts.shape))

    @property
    def total_nonzero(self) -> int:
        return int(self.counts.sum())

    def brick(self, y: int, x: int, bz: int) -> tuple[np.ndarray, np.ndarray]:
        """The (values, offsets) pairs of one brick — direct indexing, the
        property CSR lacks that ZFNAf preserves (Section IV-B1)."""
        count = int(self.counts[y, x, bz])
        return self.values[y, x, bz, :count], self.offsets[y, x, bz, :count]

    def storage_bits(self, data_bits: int = 16) -> int:
        """Total storage including offset fields (the +25% NM overhead)."""
        offset_bits = max(1, (self.brick_size - 1).bit_length())
        slots = self.num_bricks * self.brick_size
        return slots * (data_bits + offset_bits)

    def dense_storage_bits(self, data_bits: int = 16) -> int:
        """Storage of the equivalent conventional (padded) 3-D array."""
        return self.num_bricks * self.brick_size * data_bits


def encode(
    activations: np.ndarray, brick_size: int = DEFAULT_BRICK_SIZE
) -> ZfnafArray:
    """Encode a dense ``(depth, y, x)`` neuron array into ZFNAf.

    The feature dimension is zero-padded to a multiple of ``brick_size``
    (matching how fetch blocks pad shallow inputs).  Encoding is
    vectorized; the serial, cycle-counted hardware encoder lives in
    :mod:`repro.core.encoder` and is validated against this function.
    """
    if activations.ndim != 3:
        raise ValueError("activations must be (depth, y, x)")
    depth, height, width = activations.shape
    num_bz = -(-depth // brick_size)
    padded_depth = num_bz * brick_size
    padded = np.zeros((padded_depth, height, width), dtype=np.float64)
    padded[:depth] = activations

    # (padded_depth, y, x) -> (y, x, bz, slot)
    bricks = padded.reshape(num_bz, brick_size, height, width).transpose(2, 3, 0, 1)
    mask = bricks != 0.0
    counts = mask.sum(axis=3).astype(np.int16)

    # Stable argsort puts non-zero slots first while preserving their order,
    # producing exactly the packed layout the serial encoder emits.
    order = np.argsort(~mask, axis=3, kind="stable")
    values = np.take_along_axis(bricks, order, axis=3)
    offsets = order.astype(np.int8)

    # Zero out the tails so padding slots hold (0, 0) pairs.
    slot_index = np.arange(brick_size).reshape(1, 1, 1, brick_size)
    tail = slot_index >= counts[..., None]
    values = np.where(tail, 0.0, values)
    offsets = np.where(tail, 0, offsets)

    return ZfnafArray(
        values=values,
        offsets=offsets,
        counts=counts,
        brick_size=brick_size,
        original_depth=depth,
    )


def decode(zfnaf: ZfnafArray) -> np.ndarray:
    """Reconstruct the dense ``(depth, y, x)`` array from ZFNAf."""
    height, width = zfnaf.spatial_shape
    num_bz = zfnaf.bricks_per_column
    brick = zfnaf.brick_size
    dense = np.zeros((height, width, num_bz, brick), dtype=np.float64)
    slot_index = np.arange(brick).reshape(1, 1, 1, brick)
    valid = slot_index < zfnaf.counts[..., None]
    ys, xs, bzs, ks = np.nonzero(valid)
    # Offsets are unique within a brick, so this scatter has no collisions.
    dense[ys, xs, bzs, zfnaf.offsets[ys, xs, bzs, ks].astype(np.int64)] = zfnaf.values[
        ys, xs, bzs, ks
    ]
    out = dense.transpose(2, 3, 0, 1).reshape(num_bz * brick, height, width)
    return out[: zfnaf.original_depth]

"""Live telemetry controller: local sampling, SLO evaluation, stats.

Glue between the metrics registry, the
:class:`~repro.obs.timeseries.TelemetryPlane`, and whatever wants a
live view (the admin endpoint, ``repro-serve top``, tests):

* a **local sampler** tick (``interval_s``) diffs the process-global
  registry against its previous snapshot
  (:func:`~repro.obs.timeseries.snapshot_delta`) and ingests the delta
  into the plane under a *local* source name — the router/service's own
  counters get the same windowed treatment the shard pushes get, and
  the plane knows not to fold them back at stop (they were sampled
  *from* the registry being folded into);
* an **SLO recorder**: each tick re-evaluates the declared objectives
  (:class:`~repro.obs.slo.SloTracker`) against the plane's merged
  totals and writes ``slo.*`` gauges/breach counters into the global
  registry, so SLO state rides into the run manifest for free;
* the **stats payload**: one JSON-safe dict with per-source latency
  digests (p50/p95/p99 straight from the quantile sketch), the rolling
  window view, gauge high watermarks, SLO statuses, and the router
  health picture — everything the admin endpoint serves and CI asserts
  on.

Stop ordering matters: :meth:`TelemetryController.stop` (which takes a
final local sample) must run *before* the service's own ``stop()``
folds shard telemetry into the global registry — otherwise the folded
shard totals would be re-sampled as "local" work.  The CLI owns both
calls and keeps them in that order.
"""

from __future__ import annotations

import asyncio
import time

from repro import obs
from repro.obs.expo import render_prometheus
from repro.obs.metrics import Histogram
from repro.obs.slo import SloTracker, default_serving_objectives
from repro.obs.timeseries import TelemetryPlane, snapshot_delta

__all__ = ["TelemetryController", "latency_digest"]

#: Histograms the stats payload digests into percentiles, in the order
#: they are preferred as "the" latency series for a source.
_LATENCY_SERIES = ("serve.latency_ms", "router.forward_ms")


def latency_digest(snapshot: dict, name: str | None = None) -> dict | None:
    """p50/p95/p99 (+count/mean/max) of a snapshot's latency histogram."""
    histograms = snapshot.get("histograms", {})
    names = (name,) if name else _LATENCY_SERIES
    for candidate in names:
        payload = histograms.get(candidate)
        if payload and int(payload.get("count", 0)) > 0:
            histogram = Histogram.from_dict(payload)
            digest = histogram.percentiles()
            digest["count"] = histogram.count
            digest["mean"] = round(histogram.mean, 3)
            digest["max"] = round(histogram.max, 3)
            digest["series"] = candidate
            return digest
    return None


class TelemetryController:
    """Samples the local registry into a plane and serves live views."""

    def __init__(
        self,
        plane: TelemetryPlane | None = None,
        interval_s: float = 1.0,
        source: str = "local",
        objectives=None,
        registry=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.plane = plane if plane is not None else TelemetryPlane()
        self.interval_s = float(interval_s)
        self.source = source
        self.registry = registry if registry is not None else obs.get_metrics()
        self.tracker = SloTracker(
            objectives if objectives is not None
            else default_serving_objectives()
        )
        # Empty baseline: the first sample carries everything recorded
        # before telemetry started, so plane totals match the registry.
        self._previous: dict = {}
        self._task: asyncio.Task | None = None
        self._started_at = time.perf_counter()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_local(self) -> dict:
        """One sampler tick: diff, ingest, re-evaluate SLOs."""
        current = self.registry.snapshot()
        delta = snapshot_delta(self._previous, current)
        self._previous = current
        self.plane.ingest(self.source, delta, local=True)
        self.tracker.record(self.plane.totals(), self.registry)
        return delta

    async def _loop(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            self.sample_local()

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("telemetry controller already started")
        self._started_at = time.perf_counter()
        self.sample_local()
        self._task = asyncio.create_task(self._loop())

    async def stop(self) -> None:
        """Final sample + loop teardown.  Call *before* the service's
        own stop() folds remote telemetry into the registry."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        self.sample_local()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def slo_statuses(self) -> list[dict]:
        return [
            status.to_dict()
            for status in self.tracker.evaluate(self.plane.totals())
        ]

    def health(self) -> dict:
        totals = self.plane.totals()
        counters = totals.get("counters", {})
        gauges = totals.get("gauges", {})
        shard_sources = [
            source for source in self.plane.sources()
            if not self.plane.is_local(source)
        ]
        return {
            "live_shards": int(gauges.get("router.live_shards", 0)),
            "deaths": int(counters.get("router.deaths", 0)),
            "respawns": int(counters.get("router.respawns", 0)),
            "quarantines": int(counters.get("integrity.quarantines", 0)),
            "reporting_shards": len(shard_sources),
            "telemetry_dropped_stale": self.plane.dropped_stale,
        }

    def stats(self) -> dict:
        """The admin ``/stats`` payload (samples first, for freshness)."""
        self.sample_local()
        totals = self.plane.totals()
        span, window = self.plane.window()
        window_ok = window.get("counters", {}).get("serve.completed", 0.0)
        sources = {}
        for source in self.plane.sources():
            snapshot = self.plane.source_snapshot(source)
            sources[source] = {
                "local": self.plane.is_local(source),
                "age_s": round(self.plane.last_seen_age_s(source) or 0.0, 3),
                "latency_ms": latency_digest(snapshot),
                "requests": snapshot.get("counters", {}).get(
                    "serve.requests",
                    snapshot.get("counters", {}).get("router.requests", 0.0),
                ),
            }
        return {
            "uptime_s": round(time.perf_counter() - self._started_at, 3),
            "interval_s": self.interval_s,
            "ingested": self.plane.ingested,
            "sources": sources,
            "latency_ms": latency_digest(totals),
            "window": {
                "span_s": round(span, 3),
                "throughput_rps": (
                    round(window_ok / span, 2) if span else 0.0
                ),
                "latency_ms": latency_digest(window),
            },
            "watermarks": {
                name: value
                for name, value in sorted(self.plane.watermarks().items())
            },
            "slo": self.slo_statuses(),
            "health": self.health(),
            "totals": totals,
        }

    def prometheus(self) -> str:
        """The admin ``/metrics`` payload: one series per source."""
        self.sample_local()
        series = [
            ({"source": source}, self.plane.source_snapshot(source))
            for source in self.plane.sources()
        ]
        return render_prometheus(series)

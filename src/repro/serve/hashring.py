"""Consistent-hash ring for shard routing.

The sharded serving tier routes every request by its ``(network,
thresholds)`` identity so that all requests sharing a threshold
configuration land on the same shard — which is what keeps that shard's
:class:`~repro.nn.engine.IncrementalForwardEngine` prefix cache hot for
its slice of the key space.  A consistent hash (rather than
``hash(key) % N``) makes shard death cheap: removing a node re-owns only
the dead node's arc of the ring, so every surviving shard keeps its
cached working set.

Points are the first 8 bytes of SHA-256 — deterministic across
processes and Python runs (never the salted builtin ``hash``), so the
router, tests, and a respawned shard all agree on ownership.  Each node
contributes ``vnodes`` virtual points, which is what bounds the load
imbalance (the property test pins max/mean ≤ 2 at the default 64).
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "request_key"]

#: Virtual points per node; more points → tighter balance, slower add/remove.
DEFAULT_VNODES = 64


def request_key(network: str, thresholds_key: tuple = ()) -> str:
    """Canonical routing key of a request: network + active thresholds.

    ``thresholds_key`` is the sorted tuple from
    :meth:`~repro.serve.requests.ServeRequest.thresholds_key`; floats
    render through ``repr`` so two configs map to the same key iff they
    would batch together.
    """
    parts = [network]
    parts.extend(f"{layer}={value!r}" for layer, value in thresholds_key)
    return "|".join(parts)


def _point(text: str) -> int:
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over integer node ids."""

    def __init__(self, nodes=(), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: set[int] = set()
        self._points: list[int] = []  # sorted virtual points
        self._owners: list[int] = []  # node per point, parallel to _points
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, node: int) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.vnodes):
            point = _point(f"node:{node}#{replica}")
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: int) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def nodes(self) -> list[int]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def owner(self, key: str) -> int:
        """The node owning ``key``; raises when the ring is empty."""
        preference = self.preference(key, limit=1)
        if not preference:
            raise LookupError("hash ring is empty")
        return preference[0]

    def preference(self, key: str, limit: int | None = None) -> list[int]:
        """Nodes in failover order for ``key``: owner first, then the
        distinct nodes met walking the ring clockwise.

        The list is what the router's retry loop consumes — attempt ``n``
        goes to ``preference[n % len(preference)]``, so a failed owner's
        traffic lands deterministically on its ring successor.
        """
        if not self._points:
            return []
        want = len(self._nodes) if limit is None else min(limit, len(self._nodes))
        start = bisect.bisect_right(self._points, _point(key))
        order: list[int] = []
        seen: set[int] = set()
        total = len(self._points)
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) >= want:
                    break
        return order

    def assignments(self, keys) -> dict[str, int]:
        """Key → owner for a batch of keys (test/analysis convenience)."""
        return {key: self.owner(key) for key in keys}

"""Admin endpoint: live stats over HTTP, zero dependencies.

A deliberately tiny HTTP/1.1 server (asyncio streams, no framework —
the repo's no-new-dependencies rule applies to the telemetry plane too)
bound to loopback by default, serving the
:class:`~repro.serve.telemetry.TelemetryController`'s live views:

====================  =================================================
``GET /stats``        full JSON stats payload: per-source latency
                      digests, rolling window, watermarks, SLO
                      statuses, router health
``GET /metrics``      Prometheus text exposition (one series per
                      source, histogram buckets from the sketch)
``GET /slo``          just the SLO statuses + health, JSON
``GET /healthz``      ``{"ok": true}`` — 200 while every SLO is in
                      budget, 503 once any objective is burning
====================  =================================================

Every handler samples the local registry first (the controller does it)
so a scrape always reflects up-to-the-moment local metrics; shard
freshness is bounded by their push interval.  The server never touches
the request path — it reads the telemetry plane, which is fed entirely
off the serving hot path.

Scrapes are counted (``admin.requests``/``admin.errors``) but
responses are connection-close one-shots: curl, Prometheus, and the
``repro-serve top`` poller all speak that happily.
"""

from __future__ import annotations

import asyncio
import json

from repro import obs
from repro.serve.telemetry import TelemetryController

__all__ = ["AdminServer"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    503: "Service Unavailable",
}


def _response(status: int, content_type: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


def _json_body(payload: dict) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()


class AdminServer:
    """Loopback HTTP server over one telemetry controller."""

    def __init__(
        self,
        controller: TelemetryController,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.controller = controller
        self.host = host
        self.requested_port = port
        self._server: asyncio.base_events.Server | None = None

    @property
    def port(self) -> int:
        """The bound port (use with ``port=0`` for an ephemeral one)."""
        if self._server is None:
            raise RuntimeError("admin server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("admin server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.requested_port
        )

    async def stop(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _dispatch(self, path: str) -> bytes:
        if path in ("/stats", "/"):
            return _response(
                200, "application/json", _json_body(self.controller.stats())
            )
        if path == "/metrics":
            return _response(
                200,
                "text/plain; version=0.0.4",
                self.controller.prometheus().encode(),
            )
        if path == "/slo":
            self.controller.sample_local()
            return _response(
                200, "application/json",
                _json_body({
                    "slo": self.controller.slo_statuses(),
                    "health": self.controller.health(),
                }),
            )
        if path == "/healthz":
            self.controller.sample_local()
            statuses = self.controller.slo_statuses()
            healthy = all(status["healthy"] for status in statuses)
            return _response(
                200 if healthy else 503, "application/json",
                _json_body({
                    "ok": healthy,
                    "burning": [
                        status["name"] for status in statuses
                        if not status["healthy"]
                    ],
                }),
            )
        return _response(
            404, "application/json",
            _json_body({
                "error": f"no such path {path!r}",
                "paths": ["/stats", "/metrics", "/slo", "/healthz"],
            }),
        )

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
            fields = request_line.decode("ascii", "replace").split()
            # Drain headers up to the blank line; bodies are ignored
            # (every admin verb is a GET).
            while True:
                header = await asyncio.wait_for(
                    reader.readline(), timeout=5.0
                )
                if header in (b"\r\n", b"\n", b""):
                    break
            if len(fields) < 2 or fields[0] != "GET":
                obs.counter_add("admin.errors")
                payload = _response(
                    400, "application/json",
                    _json_body({"error": "only GET is served"}),
                )
            else:
                obs.counter_add("admin.requests")
                path = fields[1].split("?", 1)[0]
                payload = self._dispatch(path)
            writer.write(payload)
            await writer.drain()
        except (
            asyncio.TimeoutError, TimeoutError, ConnectionError, OSError,
        ):
            obs.counter_add("admin.errors")
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - already-dead transport
                pass

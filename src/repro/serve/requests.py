"""Request/response schema of the inference service.

A :class:`ServeRequest` names one piece of work against one of the six
paper networks:

``classify``
    Forward one synthetic input (derived deterministically from
    ``image_seed``) and return the top-1 class plus the full logit
    vector.
``zero_fraction``
    Forward the input and return the conv-input zero fractions — the
    per-request version of the Fig. 1 measurement.
``timing``
    Forward the input, then run both cycle-accurate timing models on its
    conv-input activations and return baseline/CNV cycles and the
    speedup (the per-request Fig. 9 quantity).

Responses carry an HTTP-flavoured status: ``ok`` (200), ``shed`` (429 —
the queue bound rejected the request; the explicit backpressure signal),
``timeout`` (504 — the per-request deadline expired before compute), and
``error`` (500).  :func:`canonical_response_bytes` serializes exactly the
fields that must not depend on how requests were batched or scheduled —
the differential tests assert *byte* equality between micro-batched
service output and direct one-at-a-time inference, so transport metadata
(latency, observed batch size) is deliberately excluded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "REQUEST_KINDS",
    "STATUS_CODES",
    "ServeRequest",
    "ServeResponse",
    "canonical_response_bytes",
]

#: The work kinds a request may name.
REQUEST_KINDS = ("classify", "zero_fraction", "timing")

#: HTTP-flavoured code per response status.
STATUS_CODES = {"ok": 200, "shed": 429, "timeout": 504, "error": 500}


@dataclass(frozen=True)
class ServeRequest:
    """One unit of work submitted to the service.

    ``image_seed`` determines the synthetic input deterministically (see
    :func:`repro.serve.models.request_image`), so a request is fully
    reproducible from its JSON form alone.  ``thresholds`` optionally
    applies Section V-E per-layer pruning; requests only batch with
    requests that share the same network *and* thresholds.
    ``deadline_ms`` is a relative latency budget: if the request is still
    queued when it expires, the service answers ``timeout`` without
    computing.
    """

    id: str
    kind: str
    network: str
    image_seed: int = 0
    thresholds: dict[str, float] | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"kind must be one of {REQUEST_KINDS}, got {self.kind!r}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")

    def thresholds_key(self) -> tuple:
        """Hashable rendering of the threshold config (batch-group key)."""
        if not self.thresholds:
            return ()
        return tuple(
            sorted((k, float(v)) for k, v in self.thresholds.items() if v)
        )

    def to_json(self) -> str:
        payload = {
            "id": self.id,
            "kind": self.kind,
            "network": self.network,
            "image_seed": self.image_seed,
        }
        if self.thresholds:
            payload["thresholds"] = self.thresholds
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServeRequest":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("request must be a JSON object")
        unknown = set(payload) - {
            "id", "kind", "network", "image_seed", "thresholds", "deadline_ms"
        }
        if unknown:
            raise ValueError(f"unknown request fields {sorted(unknown)}")
        try:
            return cls(
                id=str(payload["id"]),
                kind=payload["kind"],
                network=payload["network"],
                image_seed=int(payload.get("image_seed", 0)),
                thresholds=payload.get("thresholds"),
                deadline_ms=payload.get("deadline_ms"),
            )
        except KeyError as exc:
            raise ValueError(f"request is missing field {exc.args[0]!r}")


@dataclass
class ServeResponse:
    """The service's answer to one request."""

    id: str
    status: str  # "ok" | "shed" | "timeout" | "error"
    kind: str
    network: str
    payload: dict = field(default_factory=dict)
    #: Transport metadata — excluded from canonical identity.
    latency_ms: float | None = None
    batch_size: int | None = None

    @property
    def code(self) -> int:
        return STATUS_CODES[self.status]

    def to_json(self) -> str:
        payload = {
            "id": self.id,
            "status": self.status,
            "code": self.code,
            "kind": self.kind,
            "network": self.network,
            "payload": self.payload,
        }
        if self.latency_ms is not None:
            payload["latency_ms"] = self.latency_ms
        if self.batch_size is not None:
            payload["batch_size"] = self.batch_size
        return json.dumps(payload, sort_keys=True)


def canonical_response_bytes(response: ServeResponse) -> bytes:
    """The batching-invariant bytes of a response.

    JSON with sorted keys over exactly (id, status, code, kind, network,
    payload).  Floats serialize through :func:`repr`-exact ``json.dumps``,
    so two responses are byte-identical iff every logit/metric float is
    bit-identical — the currency of the differential serving tests.
    """
    return json.dumps(
        {
            "id": response.id,
            "status": response.status,
            "code": response.code,
            "kind": response.kind,
            "network": response.network,
            "payload": response.payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")

"""Request/response schema of the inference service.

A :class:`ServeRequest` names one piece of work against one of the six
paper networks:

``classify``
    Forward one input and return the top-1 class plus the full logit
    vector.
``zero_fraction``
    Forward the input and return the conv-input zero fractions — the
    per-request version of the Fig. 1 measurement.
``timing``
    Forward the input, then run both cycle-accurate timing models on its
    conv-input activations and return baseline/CNV cycles and the
    speedup (the per-request Fig. 9 quantity).  With ``backend`` set to
    a registered backend name (see :mod:`repro.backends`), the named
    simulator answers instead — the per-request fig9_backends quantity;
    weight-sparse backends time the repository's default magnitude-pruned
    weights.

The input is either a synthetic image derived deterministically from
``image_seed``, or — when ``image_index`` is set — one of the service's
resident *probe* images (the engine's fixed stack), which is what lets
repeated sweep-style requests hit the
:class:`~repro.nn.engine.IncrementalForwardEngine` prefix cache instead
of recomputing the forward.

Responses carry an HTTP-flavoured status: ``ok`` (200), ``shed`` (429 —
the queue bound rejected the request; the explicit backpressure signal),
``timeout`` (504 — the per-request deadline expired before compute), and
``error`` (500).  :func:`canonical_response_bytes` serializes exactly the
fields that must not depend on how requests were batched, scheduled, or
*sharded* — the differential tests assert *byte* equality between
micro-batched (and consistent-hash-routed) service output and direct
one-at-a-time inference, so transport metadata (latency, observed batch
size, serving shard) is deliberately excluded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "REQUEST_KINDS",
    "STATUS_CODES",
    "ServeRequest",
    "ServeResponse",
    "canonical_response_bytes",
]

#: The work kinds a request may name.
REQUEST_KINDS = ("classify", "zero_fraction", "timing")

#: HTTP-flavoured code per response status.
STATUS_CODES = {"ok": 200, "shed": 429, "timeout": 504, "error": 500}

_REQUEST_FIELDS = {
    "id", "kind", "network", "image_seed", "image_index",
    "thresholds", "deadline_ms", "backend",
}


@dataclass(frozen=True)
class ServeRequest:
    """One unit of work submitted to the service.

    ``image_seed`` determines a synthetic input deterministically (see
    :func:`repro.serve.models.request_image`), so a request is fully
    reproducible from its JSON form alone.  ``image_index`` instead
    selects a *resident probe image* by position in the service's fixed
    stack (``image_seed`` is then ignored); probe requests with equal
    (network, thresholds) are served from one cached engine pass.
    ``thresholds`` optionally applies Section V-E per-layer pruning;
    requests only batch with requests that share the same network *and*
    thresholds.  ``deadline_ms`` is a relative latency budget: if the
    request is still queued when it expires, the service answers
    ``timeout`` without computing.
    """

    id: str
    kind: str
    network: str
    image_seed: int = 0
    image_index: int | None = None
    thresholds: dict[str, float] | None = None
    deadline_ms: float | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"kind must be one of {REQUEST_KINDS}, got {self.kind!r}"
            )
        if self.backend is not None and self.kind != "timing":
            raise ValueError(
                f"backend applies to timing requests only, not {self.kind!r}"
            )
        if self.image_index is not None and self.image_index < 0:
            raise ValueError("image_index must be >= 0 (or None)")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")

    def thresholds_key(self) -> tuple:
        """Hashable rendering of the threshold config (batch-group key)."""
        if not self.thresholds:
            return ()
        return tuple(
            sorted((k, float(v)) for k, v in self.thresholds.items() if v)
        )

    def to_payload(self) -> dict:
        """JSON-safe dict form (the wire format between router and shard)."""
        payload = {
            "id": self.id,
            "kind": self.kind,
            "network": self.network,
            "image_seed": self.image_seed,
        }
        if self.image_index is not None:
            payload["image_index"] = self.image_index
        if self.thresholds:
            payload["thresholds"] = self.thresholds
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        if self.backend is not None:
            payload["backend"] = self.backend
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: dict) -> "ServeRequest":
        if not isinstance(payload, dict):
            raise ValueError("request must be a JSON object")
        unknown = set(payload) - _REQUEST_FIELDS
        if unknown:
            raise ValueError(f"unknown request fields {sorted(unknown)}")
        try:
            return cls(
                id=str(payload["id"]),
                kind=payload["kind"],
                network=payload["network"],
                image_seed=int(payload.get("image_seed", 0)),
                image_index=(
                    None
                    if payload.get("image_index") is None
                    else int(payload["image_index"])
                ),
                thresholds=payload.get("thresholds"),
                deadline_ms=payload.get("deadline_ms"),
                backend=(
                    None
                    if payload.get("backend") is None
                    else str(payload["backend"])
                ),
            )
        except KeyError as exc:
            raise ValueError(f"request is missing field {exc.args[0]!r}")

    @classmethod
    def from_json(cls, text: str) -> "ServeRequest":
        return cls.from_payload(json.loads(text))


@dataclass
class ServeResponse:
    """The service's answer to one request."""

    id: str
    status: str  # "ok" | "shed" | "timeout" | "error"
    kind: str
    network: str
    payload: dict = field(default_factory=dict)
    #: Transport metadata — excluded from canonical identity.
    latency_ms: float | None = None
    batch_size: int | None = None
    shard: int | None = None

    @property
    def code(self) -> int:
        return STATUS_CODES[self.status]

    def to_payload(self) -> dict:
        payload = {
            "id": self.id,
            "status": self.status,
            "code": self.code,
            "kind": self.kind,
            "network": self.network,
            "payload": self.payload,
        }
        if self.latency_ms is not None:
            payload["latency_ms"] = self.latency_ms
        if self.batch_size is not None:
            payload["batch_size"] = self.batch_size
        if self.shard is not None:
            payload["shard"] = self.shard
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: dict) -> "ServeResponse":
        """Rebuild from the wire dict (``code`` is derived, not read).

        ``json`` round-trips floats ``repr``-exactly, so a response
        reconstructed from a shard's reply is canonical-byte-identical
        to the object the shard serialized.
        """
        return cls(
            id=payload["id"],
            status=payload["status"],
            kind=payload["kind"],
            network=payload["network"],
            payload=payload.get("payload", {}),
            latency_ms=payload.get("latency_ms"),
            batch_size=payload.get("batch_size"),
            shard=payload.get("shard"),
        )


def canonical_response_bytes(response: ServeResponse) -> bytes:
    """The batching/sharding-invariant bytes of a response.

    JSON with sorted keys over exactly (id, status, code, kind, network,
    payload).  Floats serialize through :func:`repr`-exact ``json.dumps``,
    so two responses are byte-identical iff every logit/metric float is
    bit-identical — the currency of the differential serving tests.
    """
    return json.dumps(
        {
            "id": response.id,
            "status": response.status,
            "code": response.code,
            "kind": response.kind,
            "network": response.network,
            "payload": response.payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")

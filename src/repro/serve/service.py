"""Asyncio inference service: bounded queues, micro-batching, workers.

Request flow::

    try_submit ──► request queue (bounded: full ⇒ explicit 429-style
        │          "shed" response, never unbounded memory)
        ▼
    dispatcher ──► MicroBatcher (cut on max_batch / linger deadline)
        │
        ▼
    batch queue (bounded ⇒ a slow worker backpressures the dispatcher,
        │         which backpressures the request queue, which sheds)
        ▼
    worker pool ──► execute_batch (off the event loop via a thread; numpy
                    releases the GIL in BLAS) with RetryPolicy-governed
                    retries and deterministic backoff

Per-request deadlines are enforced at execution time: a request whose
budget expired while queued gets a ``timeout`` (504) response without
computing.  Deterministic mode (``ServeConfig(deterministic=True)``)
pins everything the schedule could perturb — single worker, no linger
clock, batches cut at exactly every ``max_batch``-th arrival, tail
flushed only by :meth:`InferenceService.drain` — so tests can assert
byte-identical outputs run after run.

All latency arithmetic (enqueue stamps, deadlines, reported
``latency_ms``) uses ``time.perf_counter()`` — the *same* clock the
:mod:`repro.obs` spans anchor to their wall epoch — never the event
loop's ``loop.time()``.  One epoch means a request's reported latency
and its trace spans agree, and the load generator's percentiles are
computed on the same axis the service measured (mixing epochs skewed
p99 under overload).  ``loop.time()`` survives only inside the
micro-batcher's linger scheduling, where only differences of the same
clock are ever taken.

Every stage reports to :mod:`repro.obs`: ``serve.requests`` /
``serve.shed`` / ``serve.timeouts`` / ``serve.errors`` /
``serve.completed`` / ``serve.batches`` / ``serve.retries`` counters,
``serve.queue_depth`` gauge (plus its ``serve.queue_depth.max`` high
watermark), ``serve.batch_size`` and
``serve.latency_ms`` histograms, and a ``serve.batch`` span per executed
batch — all rendered by ``repro-obs report``.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from dataclasses import dataclass, field

from repro import obs
from repro.backends import backend_names
from repro.experiments.config import PaperConfig
from repro.reliability import FaultInjector, RetryPolicy
from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.models import ModelRepository, execute_batch
from repro.serve.requests import ServeRequest, ServeResponse

__all__ = ["ServeConfig", "InferenceService", "PendingRequest"]

#: Queue sentinel: flush every lingering partial batch (drain/shutdown).
_FLUSH = object()


@dataclass(frozen=True)
class ServeConfig:
    """Service knobs (see module docstring for how they interact)."""

    scale: str = "tiny"
    networks: tuple[str, ...] = ("alex", "cnnS")
    seed: int = 7
    max_batch: int = 8
    linger_ms: float = 2.0
    queue_limit: int = 64
    workers: int = 2
    deterministic: bool = False
    use_cache: bool = True

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    def paper_config(self, cache_dir=None) -> PaperConfig:
        kwargs = {
            "scale": self.scale,
            "networks": list(self.networks),
            "seed": self.seed,
            "use_cache": self.use_cache,
        }
        if cache_dir is not None:
            kwargs["cache_dir"] = cache_dir
        return PaperConfig(**kwargs)


@dataclass
class PendingRequest:
    """A queued request with its completion future and time coordinates."""

    request: ServeRequest
    future: asyncio.Future
    enqueued_at: float
    deadline_at: float | None = None


@dataclass
class _ServiceState:
    queue: asyncio.Queue = None
    batches: asyncio.Queue = None
    tasks: list = field(default_factory=list)


class InferenceService:
    """The serving front end over one :class:`ModelRepository`."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        repo: ModelRepository | None = None,
        policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        cache_dir=None,
    ):
        self.config = config if config is not None else ServeConfig()
        self.repo = repo if repo is not None else ModelRepository(
            self.config.paper_config(cache_dir)
        )
        # Serving default: one retry with a short deterministic backoff.
        self.policy = policy if policy is not None else RetryPolicy(
            max_attempts=2, backoff_base=0.02, backoff_max=0.25,
            seed=self.config.seed,
        )
        self.injector = injector if injector is not None else FaultInjector.from_env()
        self.batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            linger_s=self.config.linger_ms / 1e3,
            deterministic=self.config.deterministic,
        )
        self._state: _ServiceState | None = None
        self._pending: set[asyncio.Future] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._state is not None

    async def start(self) -> None:
        if self._state is not None:
            raise RuntimeError("service already started")
        workers = 1 if self.config.deterministic else self.config.workers
        state = _ServiceState(
            queue=asyncio.Queue(maxsize=self.config.queue_limit),
            batches=asyncio.Queue(maxsize=max(2, 2 * workers)),
        )
        state.tasks.append(asyncio.create_task(self._dispatch_loop(state)))
        for index in range(workers):
            state.tasks.append(
                asyncio.create_task(self._worker_loop(state, index))
            )
        self._state = state

    async def stop(self) -> None:
        """Drain outstanding work, then tear the task pool down."""
        if self._state is None:
            return
        await self.drain()
        state, self._state = self._state, None
        for task in state.tasks:
            task.cancel()
        await asyncio.gather(*state.tasks, return_exceptions=True)

    async def flush(self) -> None:
        """Cut every lingering partial batch without awaiting completion.

        Deterministic mode has no linger clock, so a caller that cannot
        arrange a final :meth:`drain` (a shard worker serving a remote
        router) flushes explicitly after enqueueing — the sharded tier's
        replacement for drain-driven batch cuts.
        """
        state = self._require_state()
        await state.queue.put(_FLUSH)

    async def drain(self) -> None:
        """Flush partial batches and wait for every accepted request."""
        state = self._require_state()
        await state.queue.put(_FLUSH)
        while True:
            pending = [f for f in self._pending if not f.done()]
            if not pending:
                break
            await asyncio.wait(pending)

    def _require_state(self) -> _ServiceState:
        if self._state is None:
            raise RuntimeError("service is not started")
        return self._state

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def try_submit(self, request: ServeRequest) -> asyncio.Future | ServeResponse:
        """Enqueue, or return the explicit shed response when full.

        The bounded queue is the backpressure contract: a rejected
        request costs one small response object, so sustained overload
        keeps memory flat (pinned by the overload test).
        """
        state = self._require_state()
        obs.counter_add("serve.requests")
        error = None
        if request.network not in self.repo.networks:
            error = f"unknown network {request.network!r}"
        elif request.image_index is not None and request.image_index >= (
            self.repo.probe_count(request.network)
        ):
            error = (
                f"image_index {request.image_index} out of range "
                f"(network {request.network} holds "
                f"{self.repo.probe_count(request.network)} probe images)"
            )
        elif request.backend is not None and request.backend not in backend_names():
            error = (
                f"unknown backend {request.backend!r}; registered: "
                f"{backend_names()}"
            )
        if error is not None:
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            future.set_result(self._finished(request, "error", {"error": error}))
            return future
        now = time.perf_counter()
        entry = PendingRequest(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=now,
            deadline_at=(
                None
                if request.deadline_ms is None
                else now + request.deadline_ms / 1e3
            ),
        )
        try:
            state.queue.put_nowait(entry)
        except asyncio.QueueFull:
            obs.counter_add("serve.shed")
            return ServeResponse(
                id=request.id, status="shed", kind=request.kind,
                network=request.network,
                payload={"error": "queue full", "queue_limit": self.config.queue_limit},
            )
        depth = state.queue.qsize()
        obs.gauge_set("serve.queue_depth", depth)
        obs.gauge_max("serve.queue_depth.max", depth)
        self._pending.add(entry.future)
        entry.future.add_done_callback(self._pending.discard)
        return entry.future

    async def submit(self, request: ServeRequest) -> ServeResponse:
        """Submit and await the response (shed resolves immediately)."""
        outcome = self.try_submit(request)
        if isinstance(outcome, ServeResponse):
            return outcome
        return await outcome

    # ------------------------------------------------------------------
    # pipeline tasks
    # ------------------------------------------------------------------
    async def _dispatch_loop(self, state: _ServiceState) -> None:
        loop = asyncio.get_running_loop()
        while True:
            timeout = self.batcher.next_due(loop.time())
            try:
                if timeout is None:
                    entry = await state.queue.get()
                else:
                    entry = await asyncio.wait_for(state.queue.get(), timeout)
            except (TimeoutError, asyncio.TimeoutError):
                entry = None
            if entry is _FLUSH:
                for batch in self.batcher.flush():
                    await state.batches.put(batch)
                continue
            if entry is not None:
                depth = state.queue.qsize()
                obs.gauge_set("serve.queue_depth", depth)
                obs.gauge_max("serve.queue_depth.max", depth)
                batch = self.batcher.add(entry, loop.time())
                if batch is not None:
                    await state.batches.put(batch)
            for batch in self.batcher.due(loop.time()):
                await state.batches.put(batch)

    async def _worker_loop(self, state: _ServiceState, index: int) -> None:
        while True:
            batch = await state.batches.get()
            try:
                await self._execute(batch)
            finally:
                state.batches.task_done()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _finished(
        self, request: ServeRequest, status: str, payload: dict
    ) -> ServeResponse:
        counter = {
            "ok": "serve.completed",
            "timeout": "serve.timeouts",
            "error": "serve.errors",
        }[status]
        obs.counter_add(counter)
        return ServeResponse(
            id=request.id, status=status, kind=request.kind,
            network=request.network, payload=payload,
        )

    def _resolve(self, entry: PendingRequest, response: ServeResponse) -> None:
        if not entry.future.done():
            latency_ms = (time.perf_counter() - entry.enqueued_at) * 1e3
            response.latency_ms = round(latency_ms, 3)
            obs.observe("serve.latency_ms", latency_ms)
            entry.future.set_result(response)

    async def _execute(self, batch: Batch) -> None:
        now = time.perf_counter()
        live: list[PendingRequest] = []
        for entry in batch.entries:
            if entry.deadline_at is not None and now >= entry.deadline_at:
                self._resolve(
                    entry,
                    self._finished(
                        entry.request, "timeout",
                        {"error": "deadline expired before execution"},
                    ),
                )
            else:
                live.append(entry)
        if not live:
            return
        requests = [entry.request for entry in live]
        label = f"serve/{batch.network}"
        attempt = 0
        with obs.span(
            "serve.batch", cat="serve", network=batch.network,
            size=len(live), reason=batch.reason,
            req_ids=[entry.request.id for entry in live],
        ):
            while True:
                try:
                    self.injector.fire("serve:batch", trial=attempt)
                    responses = await asyncio.to_thread(
                        execute_batch, self.repo, requests
                    )
                    break
                except Exception:
                    obs.counter_add("serve.batch_failures")
                    if not self.policy.retries_left(attempt):
                        detail = traceback.format_exc(limit=4)
                        responses = [
                            self._finished(req, "error", {"error": detail})
                            for req in requests
                        ]
                        break
                    obs.counter_add("serve.retries")
                    delay = self.policy.delay(label, attempt)
                    attempt += 1
                    if delay > 0:
                        await asyncio.sleep(delay)
        obs.counter_add("serve.batches")
        obs.observe("serve.batch_size", len(live))
        for entry, response in zip(live, responses):
            if response.status == "ok":
                obs.counter_add("serve.completed")
            response.batch_size = len(live)
            self._resolve(entry, response)

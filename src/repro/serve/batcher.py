"""Dynamic micro-batching: coalesce compatible requests, bounded linger.

The batcher is deliberately a *pure* data structure — no tasks, no
clocks of its own — so the asyncio service can drive it and the unit
tests can single-step it.  Requests group by ``(network, thresholds)``
(the compatibility key of :func:`repro.serve.models.execute_batch`); a
group is cut into a batch when

* it reaches ``max_batch`` requests (cut immediately), or
* its oldest member has waited ``linger_s`` seconds (cut on
  :meth:`due`), or
* the service flushes (drain / shutdown / deterministic mode).

Deterministic mode disables the linger clock entirely: batches cut at
exactly every ``max_batch``-th arrival in submission order, and the tail
only moves on an explicit :meth:`flush` — fixed batch boundaries, so a
test run produces the same batches every time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Batch", "MicroBatcher"]


@dataclass
class Batch:
    """One cut group of pending entries, ready for a worker."""

    network: str
    thresholds_key: tuple
    entries: list[Any]
    reason: str  # "full" | "linger" | "flush"

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class _Group:
    entries: list[Any] = field(default_factory=list)
    oldest_at: float = 0.0


class MicroBatcher:
    """Group pending requests by compatibility key until cut."""

    def __init__(
        self, max_batch: int = 8, linger_s: float = 0.002,
        deterministic: bool = False,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if linger_s < 0:
            raise ValueError("linger_s must be >= 0")
        self.max_batch = max_batch
        self.linger_s = linger_s
        self.deterministic = deterministic
        self._groups: OrderedDict[tuple, _Group] = OrderedDict()

    def __len__(self) -> int:
        return sum(len(group.entries) for group in self._groups.values())

    def _key(self, entry) -> tuple:
        request = entry.request
        return (request.network, request.thresholds_key())

    def _cut(self, key: tuple, reason: str) -> Batch:
        group = self._groups.pop(key)
        return Batch(
            network=key[0], thresholds_key=key[1],
            entries=group.entries, reason=reason,
        )

    def add(self, entry, now: float) -> Batch | None:
        """Queue one pending entry; returns a batch iff the group filled."""
        key = self._key(entry)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group(oldest_at=now)
        group.entries.append(entry)
        if len(group.entries) >= self.max_batch:
            return self._cut(key, "full")
        return None

    def due(self, now: float) -> list[Batch]:
        """Batches whose oldest entry has lingered past the budget."""
        if self.deterministic:
            return []
        expired = [
            key
            for key, group in self._groups.items()
            if now - group.oldest_at >= self.linger_s
        ]
        return [self._cut(key, "linger") for key in expired]

    def next_due(self, now: float) -> float | None:
        """Seconds until the earliest linger deadline (None when idle)."""
        if self.deterministic or not self._groups:
            return None
        oldest = min(group.oldest_at for group in self._groups.values())
        return max(0.0, self.linger_s - (now - oldest))

    def flush(self) -> list[Batch]:
        """Cut every group, oldest first (drain / shutdown)."""
        return [self._cut(key, "flush") for key in list(self._groups)]

"""Self-driving load generation for the inference service.

Two modes:

* **open-loop** (``rate`` requests/second): every request has a
  deterministic target arrival time on a seeded schedule — the offered
  load does not slow down when the service does, which is what makes
  overload visible (queues fill, the shed rate climbs) instead of the
  generator politely self-throttling.
* **closed-loop deterministic** (``rate=None`` with a deterministic
  service): submit everything up front in submission order, then
  ``drain()`` — fixed batch boundaries, used by the differential tests
  and the benchmark's correctness cross-check.

All timestamps — arrival schedule, wall clock, and the service's own
``latency_ms`` stamps — come from one ``time.perf_counter()`` epoch,
the same clock the :mod:`repro.obs` spans hang off; percentiles are
therefore computed on the axis the service measured on (mixing the
event loop's clock with the span clock used to skew p99 under
overload).

Arrival jitter comes from :func:`repro.reliability.policy.hash_fraction`
(the same deterministic hash the retry backoff uses), never from global
random state: a (seed, index) pair always yields the same schedule.

:func:`build_requests` produces the distinct-input mixed workload;
:func:`build_sweep_requests` produces the *sweep* workload — repeated
probe requests cycling over K (network, threshold-variant) groups, the
traffic shape whose working set the sharded tier's consistent-hash
routing partitions across per-shard engine caches.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.reliability.policy import hash_fraction
from repro.serve.requests import REQUEST_KINDS, ServeRequest, ServeResponse
from repro.serve.service import InferenceService

__all__ = [
    "LoadResult",
    "build_requests",
    "build_sweep_requests",
    "run_load",
    "percentile",
    "summarize",
]


def build_requests(
    count: int,
    networks: list[str],
    kinds: list[str] | None = None,
    seed: int = 0,
    thresholds: dict[str, float] | None = None,
    deadline_ms: float | None = None,
) -> list[ServeRequest]:
    """A deterministic mixed workload: round-robin networks × kinds.

    ``image_seed`` is hashed from (seed, index) so distinct requests
    carry distinct inputs while the whole workload stays reproducible
    from one integer.
    """
    kinds = list(kinds) if kinds else list(REQUEST_KINDS)
    unknown = [kind for kind in kinds if kind not in REQUEST_KINDS]
    if unknown:
        raise ValueError(f"unknown request kinds {unknown}")
    requests = []
    for index in range(count):
        requests.append(
            ServeRequest(
                id=f"r{index:06d}",
                kind=kinds[index % len(kinds)],
                network=networks[index % len(networks)],
                image_seed=int(hash_fraction(seed, "image", index) * 2**31),
                thresholds=thresholds,
                deadline_ms=deadline_ms,
            )
        )
    return requests


def build_sweep_requests(
    count: int,
    networks: list[str],
    variants_per_network: int = 12,
    kinds: list[str] | None = None,
    layers: tuple[str, ...] = ("conv2", "conv3"),
    base_threshold: float = 0.02,
    probe_indices: tuple[int, ...] = (0,),
    deadline_ms: float | None = None,
) -> list[ServeRequest]:
    """A sweep-serving workload: probe requests cycling over K groups.

    Each *group* is one (network, single-layer threshold variant) — a
    genuinely distinct computation (different pruning → different
    activations, cycles, zero fractions) targeting real early conv
    layers so each variant's cached suffix is a large share of the
    forward.  Requests round-robin the groups, so every group recurs
    every K requests: the repeat traffic that rewards a shard keeping
    its slice of the key space cached, and punishes one process trying
    to hold all K working sets in a bounded LRU.
    """
    kinds = list(kinds) if kinds else list(REQUEST_KINDS)
    unknown = [kind for kind in kinds if kind not in REQUEST_KINDS]
    if unknown:
        raise ValueError(f"unknown request kinds {unknown}")
    if variants_per_network < 1:
        raise ValueError("variants_per_network must be >= 1")
    groups: list[tuple[str, dict[str, float]]] = []
    for network in networks:
        for variant in range(variants_per_network):
            layer = layers[variant % len(layers)]
            value = round(
                base_threshold * (1 + variant // len(layers)), 6
            )
            groups.append((network, {layer: value}))
    requests = []
    for index in range(count):
        network, thresholds = groups[index % len(groups)]
        requests.append(
            ServeRequest(
                id=f"s{index:06d}",
                kind=kinds[index % len(kinds)],
                network=network,
                image_index=probe_indices[index % len(probe_indices)],
                thresholds=thresholds,
                deadline_ms=deadline_ms,
            )
        )
    return requests


@dataclass
class LoadResult:
    """Responses plus the wall-clock the workload took."""

    responses: dict[str, ServeResponse] = field(default_factory=dict)
    wall_s: float = 0.0

    def by_status(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for response in self.responses.values():
            counts[response.status] = counts.get(response.status, 0) + 1
        return counts

    def ok_latencies_ms(self) -> list[float]:
        return sorted(
            response.latency_ms
            for response in self.responses.values()
            if response.status == "ok" and response.latency_ms is not None
        )


async def run_load(
    service: InferenceService,
    requests: list[ServeRequest],
    rate: float | None = None,
    seed: int = 0,
    jitter: float = 0.2,
) -> LoadResult:
    """Drive one workload through a started service.

    With ``rate`` set, request ``i`` is submitted at
    ``i/rate * (1 + jitter*u_i)`` seconds with ``u_i`` a deterministic
    hash in [-1, 1) — open loop.  Without a rate, everything is
    submitted immediately in order and the service drained (closed
    loop; with a deterministic service this yields fixed batch cuts).

    ``service`` is anything with the submission surface — the in-process
    :class:`InferenceService` or the sharded router front end.
    """
    result = LoadResult()
    start = time.perf_counter()

    if rate is None:
        outcomes = [service.try_submit(request) for request in requests]
        await service.drain()
        for request, outcome in zip(requests, outcomes):
            if isinstance(outcome, ServeResponse):
                result.responses[request.id] = outcome
            else:
                result.responses[request.id] = outcome.result()
    else:
        async def _one(index: int, request: ServeRequest) -> None:
            spread = 2.0 * hash_fraction(seed, "arrival", index) - 1.0
            target = start + (index / rate) * (1.0 + jitter * spread)
            delay = target - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            result.responses[request.id] = await service.submit(request)

        await asyncio.gather(
            *(_one(index, request) for index, request in enumerate(requests))
        )
        await service.drain()

    result.wall_s = time.perf_counter() - start
    return result


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    rank = max(1, -(-len(sorted_values) * q // 100))
    return float(sorted_values[int(rank) - 1])


def _shard_breakdown(result: LoadResult) -> dict[str, dict]:
    """Per-shard outcome/latency digest (responses tagged by the shard
    worker; untagged responses — router-local sheds/errors — bucket
    under ``"router"``)."""
    buckets: dict[str, list[ServeResponse]] = {}
    for response in result.responses.values():
        key = "router" if response.shard is None else f"shard{response.shard}"
        buckets.setdefault(key, []).append(response)
    breakdown = {}
    for key in sorted(buckets):
        responses = buckets[key]
        latencies = sorted(
            r.latency_ms
            for r in responses
            if r.status == "ok" and r.latency_ms is not None
        )
        statuses: dict[str, int] = {}
        for response in responses:
            statuses[response.status] = statuses.get(response.status, 0) + 1
        breakdown[key] = {
            "requests": len(responses),
            "ok": statuses.get("ok", 0),
            "shed": statuses.get("shed", 0),
            "timeout": statuses.get("timeout", 0),
            "error": statuses.get("error", 0),
            "p50_ms": round(percentile(latencies, 50), 3),
            "p95_ms": round(percentile(latencies, 95), 3),
            "p99_ms": round(percentile(latencies, 99), 3),
        }
    return breakdown


def summarize(result: LoadResult) -> dict:
    """JSON-safe digest: throughput, latency percentiles, shed rate.

    When any response carries a shard tag (sharded serving), the digest
    gains a ``per_shard`` breakdown — the ``--json`` report's view of
    how the consistent-hash router spread the key space.
    """
    statuses = result.by_status()
    latencies = result.ok_latencies_ms()
    total = len(result.responses)
    ok = statuses.get("ok", 0)
    summary = {
        "requests": total,
        "ok": ok,
        "shed": statuses.get("shed", 0),
        "timeout": statuses.get("timeout", 0),
        "error": statuses.get("error", 0),
        "shed_rate": statuses.get("shed", 0) / total if total else 0.0,
        "wall_s": round(result.wall_s, 4),
        "throughput_rps": round(ok / result.wall_s, 2) if result.wall_s else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 50), 3),
            "p90": round(percentile(latencies, 90), 3),
            "p95": round(percentile(latencies, 95), 3),
            "p99": round(percentile(latencies, 99), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
    }
    if any(
        response.shard is not None for response in result.responses.values()
    ):
        summary["per_shard"] = _shard_breakdown(result)
    return summary

"""Self-driving load generation for the inference service.

Two modes:

* **open-loop** (``rate`` requests/second): every request has a
  deterministic target arrival time on a seeded schedule — the offered
  load does not slow down when the service does, which is what makes
  overload visible (queues fill, the shed rate climbs) instead of the
  generator politely self-throttling.
* **closed-loop deterministic** (``rate=None`` with a deterministic
  service): submit everything up front in submission order, then
  ``drain()`` — fixed batch boundaries, used by the differential tests
  and the benchmark's correctness cross-check.

Arrival jitter comes from :func:`repro.reliability.policy.hash_fraction`
(the same deterministic hash the retry backoff uses), never from global
random state: a (seed, index) pair always yields the same schedule.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.reliability.policy import hash_fraction
from repro.serve.requests import REQUEST_KINDS, ServeRequest, ServeResponse
from repro.serve.service import InferenceService

__all__ = ["LoadResult", "build_requests", "run_load", "percentile", "summarize"]


def build_requests(
    count: int,
    networks: list[str],
    kinds: list[str] | None = None,
    seed: int = 0,
    thresholds: dict[str, float] | None = None,
    deadline_ms: float | None = None,
) -> list[ServeRequest]:
    """A deterministic mixed workload: round-robin networks × kinds.

    ``image_seed`` is hashed from (seed, index) so distinct requests
    carry distinct inputs while the whole workload stays reproducible
    from one integer.
    """
    kinds = list(kinds) if kinds else list(REQUEST_KINDS)
    unknown = [kind for kind in kinds if kind not in REQUEST_KINDS]
    if unknown:
        raise ValueError(f"unknown request kinds {unknown}")
    requests = []
    for index in range(count):
        requests.append(
            ServeRequest(
                id=f"r{index:06d}",
                kind=kinds[index % len(kinds)],
                network=networks[index % len(networks)],
                image_seed=int(hash_fraction(seed, "image", index) * 2**31),
                thresholds=thresholds,
                deadline_ms=deadline_ms,
            )
        )
    return requests


@dataclass
class LoadResult:
    """Responses plus the wall-clock the workload took."""

    responses: dict[str, ServeResponse] = field(default_factory=dict)
    wall_s: float = 0.0

    def by_status(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for response in self.responses.values():
            counts[response.status] = counts.get(response.status, 0) + 1
        return counts

    def ok_latencies_ms(self) -> list[float]:
        return sorted(
            response.latency_ms
            for response in self.responses.values()
            if response.status == "ok" and response.latency_ms is not None
        )


async def run_load(
    service: InferenceService,
    requests: list[ServeRequest],
    rate: float | None = None,
    seed: int = 0,
    jitter: float = 0.2,
) -> LoadResult:
    """Drive one workload through a started service.

    With ``rate`` set, request ``i`` is submitted at
    ``i/rate * (1 + jitter*u_i)`` seconds with ``u_i`` a deterministic
    hash in [-1, 1) — open loop.  Without a rate, everything is
    submitted immediately in order and the service drained (closed
    loop; with a deterministic service this yields fixed batch cuts).
    """
    loop = asyncio.get_running_loop()
    result = LoadResult()
    start = loop.time()

    if rate is None:
        outcomes = [service.try_submit(request) for request in requests]
        await service.drain()
        for request, outcome in zip(requests, outcomes):
            if isinstance(outcome, ServeResponse):
                result.responses[request.id] = outcome
            else:
                result.responses[request.id] = outcome.result()
    else:
        async def _one(index: int, request: ServeRequest) -> None:
            spread = 2.0 * hash_fraction(seed, "arrival", index) - 1.0
            target = start + (index / rate) * (1.0 + jitter * spread)
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            result.responses[request.id] = await service.submit(request)

        await asyncio.gather(
            *(_one(index, request) for index, request in enumerate(requests))
        )
        await service.drain()

    result.wall_s = loop.time() - start
    return result


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    rank = max(1, -(-len(sorted_values) * q // 100))
    return float(sorted_values[int(rank) - 1])


def summarize(result: LoadResult) -> dict:
    """JSON-safe digest: throughput, latency percentiles, shed rate."""
    statuses = result.by_status()
    latencies = result.ok_latencies_ms()
    total = len(result.responses)
    ok = statuses.get("ok", 0)
    return {
        "requests": total,
        "ok": ok,
        "shed": statuses.get("shed", 0),
        "timeout": statuses.get("timeout", 0),
        "error": statuses.get("error", 0),
        "shed_rate": statuses.get("shed", 0) / total if total else 0.0,
        "wall_s": round(result.wall_s, 4),
        "throughput_rps": round(ok / result.wall_s, 2) if result.wall_s else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 50), 3),
            "p90": round(percentile(latencies, 90), 3),
            "p99": round(percentile(latencies, 99), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
    }

"""``repro-serve`` — serve inference requests, or generate load against
an in-process service.

``serve``
    A TCP JSON-lines server: one request object per line in, one
    response object per line out (responses carry the request ``id``;
    pipelined lines are served concurrently, so they micro-batch)::

        repro-serve serve --port 8707 --scale tiny --networks alex,cnnS
        printf '%s\\n' '{"id":"a","kind":"classify","network":"alex"}' \\
            | nc 127.0.0.1 8707

``loadgen``
    Self-driving: builds a deterministic mixed workload, drives it
    through an in-process service (open-loop at ``--rate``, or
    closed-loop deterministic without one), prints the throughput /
    latency / shed summary, and optionally writes a JSON report
    (``--json``) and a Chrome trace (``--trace``)::

        repro-serve loadgen --requests 50 --scale tiny \\
            --networks alex,cnnS --deterministic --json serve-report.json

``top``
    Terminal dashboard polling a running admin endpoint
    (``repro-serve top --port <admin-port>``): rolling-window
    throughput, p50/p95/p99 per source, SLO burn rates, shard health.

Live telemetry: ``--telemetry-interval S`` (default 1s) samples local
metrics — and, with ``--shards``, streams per-shard metric deltas over
the control sockets — into a rolling window; ``--admin-port PORT``
exposes it over HTTP as ``/stats`` (JSON), ``/metrics`` (Prometheus
text exposition), ``/slo``, and ``/healthz``; ``--slo SPEC`` overrides
the declared objectives.

Both ``serve`` and ``loadgen`` accept ``--shards N`` to run the sharded
tier instead
of a single in-process service: N shard processes behind a
consistent-hash router with shared-memory weights, failover, and
respawn (see :mod:`repro.serve.router`).  ``loadgen --sweep-groups K``
switches to the sweep workload (probe requests cycling over K
(network, threshold) groups) whose per-shard cache affinity the sharded
benchmark measures.

``serve`` drains gracefully on SIGTERM (and SIGINT): the listener
closes (new connections refused), in-flight requests complete and their
responses are written, the batcher flushes, and the process exits 0 —
a rolling restart loses nothing.

Integrity: ``--integrity MODE`` (``off`` / ``always`` / ``sample:P``)
turns on ABFT kernel verification plus — with ``--shards`` — the arena
CRC recheck (``--integrity-recheck-s``) and canary sweep
(``--canary-interval``).  ``loadgen --verify-bytes`` re-runs every ok
response through direct inference and counts byte mismatches (the chaos
suite's zero-corrupted-responses gate).

Exit status: 0 on success, 1 when the workload saw any ``error``
responses, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys

from repro.nn.models import network_names
from repro.obs.slo import parse_slo_spec
from repro.reliability import RetryPolicy
from repro.reliability.integrity import INTEGRITY_ENV, RECHECK_ENV
from repro.serve.admin import AdminServer
from repro.serve.loadgen import (
    build_requests,
    build_sweep_requests,
    run_load,
    summarize,
)
from repro.serve.requests import (
    REQUEST_KINDS,
    ServeRequest,
    ServeResponse,
    canonical_response_bytes,
)
from repro.serve.router import ShardedService, ShardTierConfig
from repro.serve.service import InferenceService, ServeConfig
from repro.serve.telemetry import TelemetryController

__all__ = ["main"]


def _parse_networks(text: str) -> list[str]:
    names = [name.strip() for name in text.split(",") if name.strip()]
    unknown = [name for name in names if name not in network_names()]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown networks {unknown}; choose from {network_names()}"
        )
    if not names:
        raise argparse.ArgumentTypeError("at least one network is required")
    return names


def _parse_kinds(text: str) -> list[str]:
    kinds = [kind.strip() for kind in text.split(",") if kind.strip()]
    unknown = [kind for kind in kinds if kind not in REQUEST_KINDS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown kinds {unknown}; choose from {REQUEST_KINDS}"
        )
    return kinds


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "reduced", "full"])
    parser.add_argument("--networks", type=_parse_networks,
                        default=["alex", "cnnS"], metavar="A,B,...")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--linger-ms", type=float, default=2.0)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--deterministic", action="store_true",
                        help="single worker, fixed batch boundaries, no "
                        "linger clock (reproducible runs)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk calibration artifact cache")
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="run N shard processes behind a consistent-"
                        "hash router (0 = single in-process service)")
    parser.add_argument("--shard-window", type=int, default=8,
                        help="bounded in-flight requests per shard connection")
    parser.add_argument("--shard-backlog", type=int, default=64,
                        help="waiting requests per shard before the router "
                        "sheds")
    parser.add_argument("--shard-cache-mb", type=float, default=None,
                        metavar="MB", help="per-shard CNVLUTIN_ENGINE_CACHE_MB"
                        " override")
    parser.add_argument("--start-method", default="fork",
                        choices=["fork", "spawn"],
                        help="multiprocessing start method for shards")
    parser.add_argument("--integrity", default=None, metavar="MODE",
                        help="CNVLUTIN_INTEGRITY mode: off, always, or "
                        "sample:P (ABFT kernel checksums + arena CRC)")
    parser.add_argument("--integrity-recheck-s", type=float, default=None,
                        metavar="S", help="seconds between shard arena CRC "
                        "rechecks (0 = before every reply)")
    parser.add_argument("--canary-interval", type=float, default=None,
                        metavar="S", help="seconds between router canary "
                        "sweeps (golden-request probes; sharded only)")
    parser.add_argument("--forward-attempts", type=int, default=None,
                        metavar="N", help="router forward retry budget "
                        "(raise to ride out shard quarantine/respawn)")
    parser.add_argument("--forward-backoff", type=float, default=None,
                        metavar="S", help="router forward retry backoff cap")
    parser.add_argument("--admin-port", type=int, default=None, metavar="PORT",
                        help="serve live telemetry over HTTP: /stats (JSON), "
                        "/metrics (Prometheus text), /slo, /healthz "
                        "(0 picks a free port)")
    parser.add_argument("--admin-host", default="127.0.0.1",
                        help="admin endpoint bind address (default loopback)")
    parser.add_argument("--telemetry-interval", type=float, default=1.0,
                        metavar="S", help="seconds between local telemetry "
                        "samples and per-shard metric-delta pushes "
                        "(0 disables streaming telemetry)")
    parser.add_argument("--slo", default=None, metavar="SPEC",
                        help="SLO overrides, comma-separated: "
                        "latency_p99_ms=<ms>,error_rate=<frac>,"
                        "shed_rate=<frac>")


def _service_config(args) -> ServeConfig:
    return ServeConfig(
        scale=args.scale,
        networks=tuple(args.networks),
        seed=args.seed,
        max_batch=args.max_batch,
        linger_ms=args.linger_ms,
        queue_limit=args.queue_limit,
        workers=args.workers,
        deterministic=args.deterministic,
        use_cache=not args.no_cache,
    )


def _build_service(args, trace: bool = False):
    """The in-process service, or the sharded tier when ``--shards N``."""
    config = _service_config(args)
    if args.integrity is not None:
        # Shards get the mode via their spec; this covers the
        # single-process path and the router's own direct inference.
        os.environ[INTEGRITY_ENV] = args.integrity
    if args.integrity_recheck_s is not None:
        os.environ[RECHECK_ENV] = str(args.integrity_recheck_s)
    if not args.shards:
        return InferenceService(config)
    tier = ShardTierConfig(
        shards=args.shards,
        window=args.shard_window,
        backlog=args.shard_backlog,
        engine_cache_mb=args.shard_cache_mb,
        start_method=args.start_method,
        trace=trace,
        integrity=args.integrity,
        integrity_recheck_s=args.integrity_recheck_s,
        canary_interval_s=args.canary_interval,
        telemetry_interval_s=args.telemetry_interval or None,
    )
    policy = None
    if args.forward_attempts is not None or args.forward_backoff is not None:
        policy = RetryPolicy(
            max_attempts=(
                args.forward_attempts if args.forward_attempts is not None
                else 3
            ),
            backoff_base=0.02,
            backoff_max=(
                args.forward_backoff if args.forward_backoff is not None
                else 0.25
            ),
            seed=config.seed,
        )
    return ShardedService(config, tier=tier, policy=policy)


async def _start_telemetry(service, args):
    """(controller, admin) for a started service, per the CLI flags.

    The controller samples the local registry on ``--telemetry-interval``
    and — for the sharded tier — shares the router's
    :class:`~repro.obs.timeseries.TelemetryPlane`, so streamed shard
    deltas and local samples land in one windowed view.  The admin
    server only exists under ``--admin-port``.
    """
    if not args.telemetry_interval and args.admin_port is None:
        return None, None
    plane = getattr(service, "telemetry", None)
    controller = TelemetryController(
        plane=plane,
        interval_s=args.telemetry_interval or 1.0,
        source="router" if plane is not None else "service",
        objectives=parse_slo_spec(args.slo) if args.slo else None,
    )
    controller.start()
    admin = None
    if args.admin_port is not None:
        admin = AdminServer(
            controller, host=args.admin_host, port=args.admin_port
        )
        await admin.start()
        print(
            f"repro-serve admin on http://{args.admin_host}:{admin.port} "
            f"(/stats /metrics /slo /healthz)",
            flush=True,
        )
    return controller, admin


async def _stop_telemetry(controller, admin) -> None:
    """Tear telemetry down — call *before* ``service.stop()`` so the
    final local sample precedes the shard-metrics fold (see
    :mod:`repro.serve.telemetry` on stop ordering)."""
    if admin is not None:
        await admin.stop()
    if controller is not None:
        await controller.stop()


async def _serve_async(args) -> int:
    service = _build_service(args)
    await service.start()
    controller, admin = await _start_telemetry(service, args)
    served = 0
    done = asyncio.Event()
    stopping = asyncio.Event()
    inflight: set[asyncio.Task] = set()
    connections: set[asyncio.StreamWriter] = set()

    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGTERM, stopping.set)
        loop.add_signal_handler(signal.SIGINT, stopping.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
        pass

    async def _handle(reader, writer):
        nonlocal served
        write_lock = asyncio.Lock()
        tasks = []
        connections.add(writer)

        async def _answer(line: bytes) -> None:
            nonlocal served
            try:
                request = ServeRequest.from_json(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                response = ServeResponse(
                    id="?", status="error", kind="classify", network="?",
                    payload={"error": f"bad request: {exc}"},
                )
            else:
                response = await service.submit(request)
            async with write_lock:
                writer.write(response.to_json().encode("utf-8") + b"\n")
                await writer.drain()
            served += 1
            if args.max_requests and served >= args.max_requests:
                done.set()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line.strip():
                    task = asyncio.create_task(_answer(line))
                    tasks.append(task)
                    inflight.add(task)
                    task.add_done_callback(inflight.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            connections.discard(writer)
            writer.close()

    server = await asyncio.start_server(_handle, args.host, args.port)
    ports = [sock.getsockname()[1] for sock in server.sockets]
    print(f"repro-serve listening on {args.host}:{ports[0]} "
          f"(scale={args.scale}, networks={','.join(args.networks)})",
          flush=True)
    waiters = [asyncio.create_task(stopping.wait())]
    if args.max_requests:
        waiters.append(asyncio.create_task(done.wait()))
    try:
        await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
    except asyncio.CancelledError:  # pragma: no cover - hard loop teardown
        pass
    finally:
        for waiter in waiters:
            waiter.cancel()
        # Graceful drain: refuse new connections, let every accepted
        # request finish and flush its response, then stop the service
        # (which flushes the micro-batcher) — a SIGTERM'd rolling
        # restart loses no accepted work and exits 0.
        server.close()
        await server.wait_closed()
        while inflight:
            await asyncio.gather(*list(inflight), return_exceptions=True)
        for writer in list(connections):
            try:
                writer.close()
            except Exception:  # pragma: no cover - already-dead transport
                pass
        await _stop_telemetry(controller, admin)
        await service.stop()
        if stopping.is_set():
            print(f"repro-serve drained after {served} requests", flush=True)
    return 0


async def _loadgen_async(args) -> int:
    from repro import obs

    if args.trace:
        obs.enable_tracing()
    config = _service_config(args)
    service = _build_service(args, trace=bool(args.trace))
    if args.sweep_groups:
        requests = build_sweep_requests(
            args.requests,
            networks=args.networks,
            variants_per_network=max(
                1, args.sweep_groups // max(1, len(args.networks))
            ),
            kinds=args.kinds,
            deadline_ms=args.deadline_ms,
        )
    else:
        requests = build_requests(
            args.requests,
            networks=args.networks,
            kinds=args.kinds,
            seed=args.seed,
            deadline_ms=args.deadline_ms,
        )
    await service.start()
    controller, admin = await _start_telemetry(service, args)
    try:
        result = await run_load(
            service, requests, rate=args.rate, seed=args.seed
        )
        summary = summarize(result)
        if args.verify_bytes:
            summary["byte_mismatches"] = await _verify_bytes(
                service, requests, result
            )
    finally:
        await _stop_telemetry(controller, admin)
        await service.stop()
    if controller is not None:
        # Post-stop: the final sample and the shard fold both landed, so
        # this is the whole run's SLO verdict (and it re-records the
        # slo.* gauges over the complete totals for the --json report).
        statuses = controller.tracker.record(
            obs.get_metrics().snapshot(), obs.get_metrics()
        )
        summary["slo"] = [status.to_dict() for status in statuses]
    print(json.dumps(summary, indent=2))
    if args.json:
        report = {
            "config": {
                "scale": config.scale,
                "networks": list(config.networks),
                "max_batch": config.max_batch,
                "linger_ms": config.linger_ms,
                "queue_limit": config.queue_limit,
                "workers": config.workers,
                "deterministic": config.deterministic,
                "rate": args.rate,
                "kinds": args.kinds or list(REQUEST_KINDS),
                "shards": args.shards,
                "sweep_groups": args.sweep_groups,
                "integrity": args.integrity,
                "integrity_recheck_s": args.integrity_recheck_s,
                "canary_interval": args.canary_interval,
            },
            "summary": summary,
            "metrics": obs.get_metrics().snapshot(),
        }
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote report {args.json}")
    if args.trace:
        written = obs.write_chrome_trace(args.trace)
        print(f"wrote trace {args.trace} ({written} events)")
    failed = summary["error"] or summary.get("byte_mismatches", 0)
    return 1 if failed else 0


def _fetch_stats(url: str) -> dict:
    from urllib.request import urlopen

    with urlopen(url, timeout=5.0) as response:
        return json.loads(response.read().decode("utf-8"))


def _render_top(stats: dict) -> str:
    """One terminal frame of the live stats payload."""
    def digest_line(label: str, digest: dict | None) -> str:
        digest = digest or {}
        return (
            f"{label:<12} p50 {digest.get('p50', 0.0):>9.2f}  "
            f"p95 {digest.get('p95', 0.0):>9.2f}  "
            f"p99 {digest.get('p99', 0.0):>9.2f}  "
            f"max {digest.get('max', 0.0):>9.2f}  "
            f"n {digest.get('count', 0):.0f}"
        )

    window = stats.get("window", {})
    health = stats.get("health", {})
    lines = [
        f"cnvlutin serving — up {stats.get('uptime_s', 0.0):.0f}s, "
        f"window {window.get('span_s', 0.0):.1f}s @ "
        f"{window.get('throughput_rps', 0.0):.1f} rps, "
        f"shards {health.get('live_shards', 0)} live / "
        f"{health.get('reporting_shards', 0)} reporting, "
        f"deaths {health.get('deaths', 0)}, "
        f"respawns {health.get('respawns', 0)}, "
        f"quarantines {health.get('quarantines', 0)}",
        "",
        "latency (ms)",
        digest_line("  total", stats.get("latency_ms")),
        digest_line("  window", window.get("latency_ms")),
        "",
        "sources",
    ]
    for name, info in sorted(stats.get("sources", {}).items()):
        digest = info.get("latency_ms") or {}
        mode = "local" if info.get("local") else "push"
        lines.append(
            f"  {name:<10} {mode:<6} age {info.get('age_s', 0.0):>6.1f}s  "
            f"req {info.get('requests', 0.0):>9.0f}  "
            f"p50 {digest.get('p50', 0.0):>9.2f}  "
            f"p99 {digest.get('p99', 0.0):>9.2f}"
        )
    slo = stats.get("slo", [])
    if slo:
        lines.append("")
        lines.append("slo")
        for status in slo:
            verdict = "ok" if status.get("healthy") else "BURNING"
            lines.append(
                f"  {status.get('name', '?'):<16} {verdict:<8} "
                f"value {status.get('value', 0.0):<12.4g} "
                f"target {status.get('target', 0.0):<12.4g} "
                f"burn {status.get('burn_rate', 0.0):.2f}"
            )
    watermarks = stats.get("watermarks", {})
    depth = watermarks.get("serve.queue_depth.max")
    if depth is not None:
        lines.append("")
        lines.append(f"queue depth high watermark: {depth:.0f}")
    return "\n".join(lines)


async def _top_async(args) -> int:
    url = f"http://{args.host}:{args.port}/stats"
    while True:
        try:
            stats = await asyncio.to_thread(_fetch_stats, url)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {url}: {exc}", file=sys.stderr)
            return 2
        frame = _render_top(stats)
        if args.once:
            print(frame)
            return 0
        # ANSI clear + home: a cheap full-screen refresh, like top(1).
        print(f"\x1b[2J\x1b[H{frame}", flush=True)
        await asyncio.sleep(args.interval)


async def _verify_bytes(service, requests, result) -> int:
    """Count ok responses whose canonical bytes diverge from direct
    inference — the zero-corrupted-responses gate of the chaos suite."""
    from repro.serve.models import direct_response

    repo = service.repo  # InferenceService and ShardedService both carry one
    by_id: dict[str, ServeRequest] = {}
    for request in requests:
        by_id.setdefault(request.id, request)
    mismatches = 0
    for rid, response in result.responses.items():
        if response.status != "ok":
            continue
        request = by_id.get(rid)
        if request is None:
            continue
        direct = await asyncio.to_thread(direct_response, repo, request)
        if canonical_response_bytes(response) != canonical_response_bytes(
            direct
        ):
            mismatches += 1
    return mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-serve", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="TCP JSON-lines inference server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8707,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--max-requests", type=int, default=0, metavar="N",
                       help="exit after N served requests (0 = forever)")
    _add_service_args(serve)
    serve.set_defaults(runner=_serve_async)

    loadgen = sub.add_parser("loadgen", help="drive an in-process service")
    loadgen.add_argument("--requests", type=int, default=50)
    loadgen.add_argument("--rate", type=float, default=None, metavar="RPS",
                         help="open-loop offered load; omit for closed-loop "
                         "submission (deterministic with --deterministic)")
    loadgen.add_argument("--kinds", type=_parse_kinds, default=None,
                         metavar="K1,K2,...",
                         help=f"request mix (default {','.join(REQUEST_KINDS)})")
    loadgen.add_argument("--deadline-ms", type=float, default=None)
    loadgen.add_argument("--sweep-groups", type=int, default=0, metavar="K",
                         help="use the sweep workload: probe requests "
                         "cycling over K (network, threshold) groups — the "
                         "traffic shape the sharded tier's cache "
                         "partitioning accelerates")
    loadgen.add_argument("--verify-bytes", action="store_true",
                         help="re-run every ok response through direct "
                         "inference and count canonical-byte mismatches "
                         "(fails the run when any exist)")
    loadgen.add_argument("--json", default=None, metavar="REPORT_JSON",
                         help="write summary + metrics snapshot")
    loadgen.add_argument("--trace", default=None, metavar="TRACE_JSON",
                         help="record spans and write a Chrome trace")
    _add_service_args(loadgen)
    loadgen.set_defaults(runner=_loadgen_async)

    top = sub.add_parser(
        "top", help="terminal view polling a running admin endpoint"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, required=True,
                     help="admin endpoint port (--admin-port of the server)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh period in seconds")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (no screen clearing)")
    top.set_defaults(runner=_top_async)

    args = parser.parse_args(argv)
    return asyncio.run(args.runner(args))


if __name__ == "__main__":
    sys.exit(main())

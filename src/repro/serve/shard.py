"""Shard worker process: one engine-owning service behind a unix socket.

A *shard* is a full :class:`~repro.serve.service.InferenceService` —
micro-batcher, bounded queues, worker pool, retry policy — running in
its own process and speaking a JSON-lines envelope protocol over a unix
domain socket to the router (:mod:`repro.serve.router`).  Because the
router consistent-hashes on ``(network, thresholds)``, each shard sees a
stable slice of the key space and its per-process
:class:`~repro.nn.engine.IncrementalForwardEngine` LRU caches hold that
slice hot — N shards give the serving tier N× the aggregate prefix-cache
capacity without multiplying the per-process
``CNVLUTIN_ENGINE_CACHE_MB`` budget.

Weights are **not** copied per shard: the spec carries the router's
shared-memory arena manifest, and the shard attaches read-only zero-copy
views (:func:`repro.nn.engine.attach_shared_weights`) before building
its :class:`~repro.experiments.context.ExperimentContext` with preset
stores — no per-shard ``init_weights``, no per-shard calibration.

Wire protocol (one JSON object per line, each direction)::

    → {"rid": 7, "req": {...ServeRequest payload...}}
    ← {"rid": 7, "resp": {...ServeResponse payload, "shard": i...}}
    ← {"rid": 7, "fail": "reason"}          transport-level failure:
                                            the router treats it like a
                                            dead connection and fails
                                            over to a replica
    → {"rid": 8, "op": "ping"}              ← {"rid": 8, "ok": true, ...}
    → {"rid": 9, "op": "obs"}               ← {"rid": 9, "metrics": ...,
                                               "events": [...]}
    → {"rid": 10, "op": "shutdown"}         ← {"rid": 10, "ok": true}

Fault sites: every request envelope passes through
``injector.fire("shard:serve", trial=None)`` — the *global* trial
counter (shared across shards via ``CNVLUTIN_FAULT_STATE``), so
``shard:serve=crash@5`` kills whichever shard handles the 6th sharded
request, mid-run, exactly like an OOM-killed worker.  ``raise`` rules
answer a ``fail`` envelope instead, driving the router's failover path
without losing the process.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.experiments.context import ExperimentContext
from repro.nn.engine import attach_shared_weights
from repro.reliability import FaultInjector, InjectedFault
from repro.reliability.faults import FAULTS_ENV, SEED_ENV, STATE_ENV
from repro.serve.models import ModelRepository
from repro.serve.requests import ServeRequest
from repro.serve.service import InferenceService, ServeConfig

__all__ = ["ShardSpec", "run_shard"]


@dataclass(frozen=True)
class ShardSpec:
    """Everything a shard process needs to build itself.

    Picklable (fork *and* spawn start methods build from the same spec)
    and JSON-safe except ``cache_dir`` — env-var knobs travel explicitly
    so spawn children behave identically to forked ones.
    """

    index: int
    socket_path: str
    config: ServeConfig
    manifest: dict = field(default_factory=dict)
    cache_dir: str | None = None
    engine_cache_mb: float | None = None
    trace: bool = False
    faults: str | None = None
    fault_state: str | None = None
    fault_seed: int = 0


def run_shard(spec: ShardSpec) -> None:
    """Process entry point: apply the spec's environment, then serve."""
    if spec.engine_cache_mb is not None:
        os.environ["CNVLUTIN_ENGINE_CACHE_MB"] = str(spec.engine_cache_mb)
    if spec.faults:
        os.environ[FAULTS_ENV] = spec.faults
        os.environ[SEED_ENV] = str(spec.fault_seed)
        if spec.fault_state:
            os.environ[STATE_ENV] = spec.fault_state
    if spec.trace:
        os.environ["CNVLUTIN_TRACE"] = "1"
        obs.enable_tracing()
    asyncio.run(_shard_main(spec))


def _build_service(spec: ShardSpec) -> InferenceService:
    stores = (
        attach_shared_weights(spec.manifest) if spec.manifest.get("networks")
        else None
    )
    cache_dir = Path(spec.cache_dir) if spec.cache_dir else None
    context = ExperimentContext(
        spec.config.paper_config(cache_dir), stores=stores
    )
    repo = ModelRepository(context=context)
    return InferenceService(config=spec.config, repo=repo)


async def _shard_main(spec: ShardSpec) -> None:
    service = _build_service(spec)
    injector = FaultInjector.from_env()
    await service.start()
    stopping = asyncio.Event()
    obs.counter_add("shard.started")
    obs.gauge_set("shard.index", spec.index)

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def reply(payload: dict) -> None:
            line = json.dumps(payload, sort_keys=True).encode() + b"\n"
            async with write_lock:
                writer.write(line)
                await writer.drain()

        async def serve_one(rid, envelope: dict) -> None:
            try:
                injector.fire("shard:serve", trial=None)
                request = ServeRequest.from_payload(envelope["req"])
            except InjectedFault as exc:
                obs.counter_add("shard.injected_failures")
                await reply({"rid": rid, "fail": str(exc)})
                return
            except (KeyError, TypeError, ValueError) as exc:
                await reply({"rid": rid, "fail": f"bad request: {exc}"})
                return
            obs.counter_add("shard.requests")
            outcome = service.try_submit(request)
            if isinstance(outcome, asyncio.Future):
                if spec.config.deterministic:
                    # No linger clock in deterministic mode and no
                    # router-driven drain: flush so the enqueued request
                    # (plus anything pipelined before it) executes now.
                    await service.flush()
                response = await outcome
            else:
                response = outcome
            response.shard = spec.index
            await reply({"rid": rid, "resp": response.to_payload()})

        async def control(rid, op: str) -> None:
            if op == "ping":
                await reply({"rid": rid, "ok": True, "pid": os.getpid(),
                             "shard": spec.index})
            elif op == "obs":
                await reply({
                    "rid": rid,
                    "metrics": obs.take_snapshot(),
                    "events": obs.drain_events(),
                })
            elif op == "shutdown":
                await reply({"rid": rid, "ok": True})
                stopping.set()
            else:
                await reply({"rid": rid, "fail": f"unknown op {op!r}"})

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    envelope = json.loads(line)
                    rid = envelope["rid"]
                except (ValueError, KeyError, TypeError):
                    continue  # router never sends malformed lines; drop
                if "op" in envelope:
                    await control(rid, envelope["op"])
                else:
                    task = asyncio.create_task(serve_one(rid, envelope))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:  # server teardown mid-read
            pass
        for task in tasks:
            task.cancel()
        writer.close()

    server = await asyncio.start_unix_server(handle, path=spec.socket_path)
    async with server:
        await stopping.wait()
    await service.stop()

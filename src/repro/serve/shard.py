"""Shard worker process: one engine-owning service behind a unix socket.

A *shard* is a full :class:`~repro.serve.service.InferenceService` —
micro-batcher, bounded queues, worker pool, retry policy — running in
its own process and speaking a JSON-lines envelope protocol over a unix
domain socket to the router (:mod:`repro.serve.router`).  Because the
router consistent-hashes on ``(network, thresholds)``, each shard sees a
stable slice of the key space and its per-process
:class:`~repro.nn.engine.IncrementalForwardEngine` LRU caches hold that
slice hot — N shards give the serving tier N× the aggregate prefix-cache
capacity without multiplying the per-process
``CNVLUTIN_ENGINE_CACHE_MB`` budget.

Weights are **not** copied per shard: the spec carries the router's
shared-memory arena manifest, and the shard attaches read-only zero-copy
views (:func:`repro.nn.engine.attach_shared_weights`) before building
its :class:`~repro.experiments.context.ExperimentContext` with preset
stores — no per-shard ``init_weights``, no per-shard calibration.

Wire protocol (one JSON object per line, each direction)::

    → {"rid": 7, "req": {...ServeRequest payload...}}
    ← {"rid": 7, "resp": {...ServeResponse payload, "shard": i...}}
    ← {"rid": 7, "fail": "reason"}          transport-level failure:
                                            the router treats it like a
                                            dead connection and fails
                                            over to a replica
    → {"rid": 8, "op": "ping"}              ← {"rid": 8, "ok": true, ...}
    → {"rid": 9, "op": "obs"}               ← {"rid": 9, "metrics": ...,
                                               "events": [...]}
    → {"rid": 10, "op": "shutdown"}         ← {"rid": 10, "ok": true}
    ← {"evt": "telemetry", "shard": i,      unsolicited periodic push of
       "seq": n, "metrics": {...}}          metric *deltas* (snapshot-
                                            and-reset), every
                                            ``telemetry_interval_s``

Fault sites: every request envelope passes through
``injector.fire("shard:serve", trial=None)`` — the *global* trial
counter (shared across shards via ``CNVLUTIN_FAULT_STATE``), so
``shard:serve=crash@5`` kills whichever shard handles the 6th sharded
request, mid-run, exactly like an OOM-killed worker.  ``raise`` rules
answer a ``fail`` envelope instead, driving the router's failover path
without losing the process.  ``mem:weights=corrupt@N`` flips one bit of
the attached shared arena as the N-th sharded request arrives — in the
*shared* pages, so every shard computes on the flipped weights until the
router republishes.

Integrity gate: when ``CNVLUTIN_INTEGRITY`` is active, every reply is
preceded by an arena CRC recheck whenever the last clean check is older
than ``CNVLUTIN_INTEGRITY_RECHECK_S`` (0 = before *every* reply: since
bit flips persist, no response computed on corrupt weights can then
reach the router, which is the chaos suite's zero-corrupted-responses
guarantee).  A failing recheck — or a persistent
:class:`~repro.reliability.integrity.IntegrityError` surviving the
service's own retry — turns the reply into a ``fail`` envelope, marks
the shard *poisoned* (all later requests fail fast), and pushes an
unsolicited ``{"evt": "integrity", ...}`` envelope so the router can
quarantine, republish, and respawn without waiting for a timeout.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.experiments.context import ExperimentContext
from repro.nn.engine import attach_shared_weights, attached_arenas
from repro.reliability import FaultInjector, InjectedFault
from repro.reliability import integrity
from repro.reliability.faults import FAULTS_ENV, SEED_ENV, STATE_ENV
from repro.serve.models import ModelRepository
from repro.serve.requests import ServeRequest
from repro.serve.service import InferenceService, ServeConfig

__all__ = ["ShardSpec", "run_shard", "MEM_WEIGHTS_SITE"]

#: Fault site modelling a bit flip in the shared weight arena; the
#: ``corrupt`` action is applied here (the call site owns the buffer).
MEM_WEIGHTS_SITE = "mem:weights"


@dataclass(frozen=True)
class ShardSpec:
    """Everything a shard process needs to build itself.

    Picklable (fork *and* spawn start methods build from the same spec)
    and JSON-safe except ``cache_dir`` — env-var knobs travel explicitly
    so spawn children behave identically to forked ones.
    """

    index: int
    socket_path: str
    config: ServeConfig
    manifest: dict = field(default_factory=dict)
    cache_dir: str | None = None
    engine_cache_mb: float | None = None
    trace: bool = False
    faults: str | None = None
    fault_state: str | None = None
    fault_seed: int = 0
    integrity: str | None = None
    integrity_recheck_s: float | None = None
    #: Seconds between unsolicited ``{"evt": "telemetry"}`` pushes of
    #: metric deltas to the router (None disables streaming; the final
    #: ``op: obs`` pull at stop still ships whatever accumulated).
    telemetry_interval_s: float | None = None


def run_shard(spec: ShardSpec) -> None:
    """Process entry point: apply the spec's environment, then serve."""
    if spec.engine_cache_mb is not None:
        os.environ["CNVLUTIN_ENGINE_CACHE_MB"] = str(spec.engine_cache_mb)
    if spec.faults:
        os.environ[FAULTS_ENV] = spec.faults
        os.environ[SEED_ENV] = str(spec.fault_seed)
        if spec.fault_state:
            os.environ[STATE_ENV] = spec.fault_state
    if spec.integrity is not None:
        os.environ[integrity.INTEGRITY_ENV] = spec.integrity
    if spec.integrity_recheck_s is not None:
        os.environ[integrity.RECHECK_ENV] = str(spec.integrity_recheck_s)
    if spec.trace:
        os.environ["CNVLUTIN_TRACE"] = "1"
        obs.enable_tracing()
    asyncio.run(_shard_main(spec))


def _build_service(spec: ShardSpec) -> InferenceService:
    stores = (
        attach_shared_weights(spec.manifest) if spec.manifest.get("networks")
        else None
    )
    cache_dir = Path(spec.cache_dir) if spec.cache_dir else None
    context = ExperimentContext(
        spec.config.paper_config(cache_dir), stores=stores
    )
    repo = ModelRepository(context=context)
    return InferenceService(config=spec.config, repo=repo)


def _corrupt_arena(arena) -> None:
    """Apply a ``mem:weights`` corrupt action: flip one arena bit.

    Targets an FC weight segment when one exists — FC weights are read
    live on every matvec, while conv weights enter GEMMs through cached
    transposes, so an FC flip both corrupts served bytes *and* is
    CRC-detectable.  The flipped bit is in the exponent byte of a
    float32/float64 word, so the damage is far above any dtype
    tolerance.  Flips land in the *shared* pages: every attached shard
    sees them until the router republishes.
    """
    target = None
    for path, offset, nbytes, _ in arena._segments():
        _, section, layer = path.split("/")
        if section == "weights" and layer.startswith("fc"):
            target = (offset, nbytes)
            break
        if section == "weights" and target is None:
            target = (offset, nbytes)
    if target is None:  # pragma: no cover - empty manifest
        return
    offset, nbytes = target
    # Word-align to the middle of the segment, then hit the high byte of
    # a 4-byte word (sign/exponent bits on little-endian floats).
    position = offset + (nbytes // 2 & ~3) + 3
    arena.shm.buf[position] ^= 0x40
    obs.counter_add("integrity.faults.weight_flips")


async def _shard_main(spec: ShardSpec) -> None:
    service = _build_service(spec)
    injector = FaultInjector.from_env()
    await service.start()
    stopping = asyncio.Event()
    obs.counter_add("shard.started")
    obs.gauge_set("shard.index", spec.index)

    arenas = attached_arenas()
    arena = arenas[-1] if arenas else None
    integrity_mode, _ = integrity.resolve_policy()
    recheck_s = integrity.resolve_recheck_s()
    #: Mutable gate state: monotonic deadline of the next arena CRC
    #: recheck, and the poisoned flag set once corruption is confirmed
    #: (every later reply fails fast until the router replaces us).
    gate = {"next_check": 0.0, "poisoned": None}

    def _recheck_due(now: float) -> bool:
        return (
            arena is not None
            and integrity_mode != "off"
            and now >= gate["next_check"]
        )

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def reply(payload: dict) -> None:
            line = json.dumps(payload, sort_keys=True).encode() + b"\n"
            async with write_lock:
                writer.write(line)
                await writer.drain()

        async def escalate(rid, reason: str, detail: str) -> None:
            """Fail the reply, poison the shard, and notify the router."""
            first = gate["poisoned"] is None
            gate["poisoned"] = reason
            obs.counter_add("shard.integrity_failures")
            await reply({"rid": rid, "fail": f"integrity: {detail}"})
            if first:
                await reply({
                    "evt": "integrity",
                    "reason": reason,
                    "detail": detail,
                    "shard": spec.index,
                })

        async def serve_one(rid, envelope: dict) -> None:
            try:
                injector.fire("shard:serve", trial=None)
                if (
                    arena is not None
                    and injector.fire(MEM_WEIGHTS_SITE, trial=None) == "corrupt"
                ):
                    _corrupt_arena(arena)
                request = ServeRequest.from_payload(envelope["req"])
            except InjectedFault as exc:
                obs.counter_add("shard.injected_failures")
                await reply({"rid": rid, "fail": str(exc)})
                return
            except (KeyError, TypeError, ValueError) as exc:
                await reply({"rid": rid, "fail": f"bad request: {exc}"})
                return
            if gate["poisoned"] is not None:
                # Confirmed-corrupt shard: fail fast (no compute) while
                # the router's quarantine/respawn is in flight.
                await reply({
                    "rid": rid,
                    "fail": f"integrity: shard poisoned ({gate['poisoned']})",
                })
                return
            obs.counter_add("shard.requests")
            outcome = service.try_submit(request)
            if isinstance(outcome, asyncio.Future):
                if spec.config.deterministic:
                    # No linger clock in deterministic mode and no
                    # router-driven drain: flush so the enqueued request
                    # (plus anything pipelined before it) executes now.
                    await service.flush()
                response = await outcome
            else:
                response = outcome
            response.shard = spec.index
            # Post-compute, pre-reply integrity gate.  Bit flips in the
            # arena persist, so with a zero recheck deadline any response
            # computed on corrupt weights is guaranteed to see a failing
            # CRC *before* its bytes reach the router.
            now = time.monotonic()
            if _recheck_due(now):
                gate["next_check"] = now + recheck_s
                corrupt = await asyncio.to_thread(arena.verify)
                if corrupt:
                    await escalate(
                        rid, "crc", f"arena CRC mismatch: {corrupt[:3]}"
                    )
                    return
            if response.status == "error" and "IntegrityError" in str(
                response.payload.get("error", "")
            ):
                # The kernel's ABFT check failed on every service-level
                # retry: persistent corruption, not a transient flip.
                await escalate(rid, "abft", "persistent ABFT failure")
                return
            await reply({"rid": rid, "resp": response.to_payload()})

        async def control(rid, op: str) -> None:
            if op == "ping":
                await reply({"rid": rid, "ok": True, "pid": os.getpid(),
                             "shard": spec.index})
            elif op == "obs":
                await reply({
                    "rid": rid,
                    "metrics": obs.take_snapshot(),
                    "events": obs.drain_events(),
                })
            elif op == "shutdown":
                await reply({"rid": rid, "ok": True})
                stopping.set()
            else:
                await reply({"rid": rid, "fail": f"unknown op {op!r}"})

        async def telemetry_loop() -> None:
            """Periodic unsolicited push of metric deltas to the router.

            ``take_snapshot`` resets the registry, so each push carries
            exactly the work since the previous one; the ``seq`` number
            lets the router drop reordered/stale envelopes (last write
            wins per shard).  A failed send merges the delta back so a
            flaky connection never loses counts — they ride the next
            push or the final ``op: obs`` pull.
            """
            seq = 0
            while True:
                await asyncio.sleep(spec.telemetry_interval_s)
                delta = obs.take_snapshot()
                seq += 1
                try:
                    await reply({
                        "evt": "telemetry",
                        "shard": spec.index,
                        "seq": seq,
                        "interval_s": spec.telemetry_interval_s,
                        "metrics": delta,
                    })
                except asyncio.CancelledError:
                    obs.merge_snapshot(delta)
                    raise
                except (ConnectionError, OSError):
                    obs.merge_snapshot(delta)
                    return

        pusher: asyncio.Task | None = None
        if spec.telemetry_interval_s is not None:
            pusher = asyncio.create_task(telemetry_loop())

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    envelope = json.loads(line)
                    rid = envelope["rid"]
                except (ValueError, KeyError, TypeError):
                    continue  # router never sends malformed lines; drop
                if "op" in envelope:
                    await control(rid, envelope["op"])
                else:
                    task = asyncio.create_task(serve_one(rid, envelope))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:  # server teardown mid-read
            pass
        if pusher is not None:
            pusher.cancel()
        for task in tasks:
            task.cancel()
        writer.close()

    server = await asyncio.start_unix_server(handle, path=spec.socket_path)
    async with server:
        await stopping.wait()
    await service.stop()

"""Sharded serving tier: consistent-hash router over shard processes.

:class:`ShardedService` presents the same submission surface as the
in-process :class:`~repro.serve.service.InferenceService` (``start`` /
``try_submit`` / ``submit`` / ``drain`` / ``stop``) but fans work out to
N :mod:`repro.serve.shard` worker processes:

1. **Routing.** Requests are consistent-hashed on their
   ``(network, thresholds)`` key (:func:`repro.serve.hashring.
   request_key`), so every threshold configuration is owned by one
   shard whose :class:`~repro.nn.engine.IncrementalForwardEngine` keeps
   that configuration's layer prefixes hot — the PR-2 prefix-reuse
   property, preserved per shard instead of diluted across all of them.
   Aggregate engine-cache capacity therefore scales with the shard
   count while each process stays inside its own
   ``CNVLUTIN_ENGINE_CACHE_MB`` budget.
2. **Shared weights.** The router builds the calibrated stores once,
   publishes them into one :class:`~repro.nn.shm.SharedWeightArena`,
   and shards attach zero-copy read-only views — adding a shard adds
   engine-cache pages, not weight copies.
3. **Backpressure.** Each shard connection has a bounded in-flight
   *window* (semaphore) plus a bounded waiting *backlog*; a request
   arriving past the backlog is shed at the router (HTTP-429 style),
   mirroring the single-process queue-limit contract.
4. **Failover.** A forward that fails — dead socket, timeout, an
   injected ``shard:forward`` fault, or a shard-side ``fail`` envelope —
   retries under the service :class:`~repro.reliability.RetryPolicy`
   against the next replica in the ring's preference order.  A dead
   shard is removed from the ring (only *its* keys remap — consistent
   hashing's point), its process is respawned under
   :class:`~repro.reliability.RespawnPolicy` backoff, and the new
   generation re-joins the ring once it answers a ping.

5. **Self-healing integrity.** A shard that reports corruption — a
   failing arena CRC recheck, a persistent ABFT kernel failure, or a
   wrong answer to the router's *canary* probe (a golden request with
   known response bytes, swept across shards on
   ``canary_interval_s``) — is **quarantined**: pulled from the ring,
   its process terminated, and a respawn scheduled through the normal
   :class:`~repro.reliability.RespawnPolicy` path.  Before respawning,
   the router verifies its *own* arena view; if the shared pages really
   are corrupt it **republishes** a fresh arena from the calibrated
   stores so the new generation (and later respawns) attach clean
   weights.  ``start()`` also sweeps stale ``cnvlutin-*`` shared-memory
   segments left by dead processes (:func:`repro.nn.shm.
   sweep_stale_arenas`).

Observability: ``router.requests`` / ``router.forwarded`` (+
``router.forwarded.shard<i>``) / ``router.shed`` / ``router.retries`` /
``router.failovers`` / ``router.deaths`` / ``router.respawns``
counters, a ``router.live_shards`` gauge, a ``router.forward_ms``
histogram, and a ``router.forward`` span per attempt;
:meth:`ShardedService.collect_obs` pulls every shard's metrics snapshot
and trace buffer into the router process, so one Chrome trace shows
router and shard time across pids on a single timeline.  Integrity adds
``integrity.detected.<crc|abft|canary>``, ``integrity.quarantines`` (+
``.<reason>``), ``integrity.republishes``, ``integrity.canary.probes``
and ``integrity.arena.swept`` — all counted router-side, because a
quarantined shard's own counters die with its process.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.backends import backend_names
from repro.experiments.context import ExperimentContext
from repro.nn.shm import SharedWeightArena, sweep_stale_arenas
from repro.obs.timeseries import TelemetryPlane
from repro.reliability import (
    FaultInjector,
    InjectedFault,
    RespawnPolicy,
    RetryPolicy,
)
from repro.serve.hashring import HashRing, request_key
from repro.serve.models import ModelRepository, direct_response
from repro.serve.requests import (
    ServeRequest,
    ServeResponse,
    canonical_response_bytes,
)
from repro.serve.service import ServeConfig
from repro.serve.shard import ShardSpec, run_shard

__all__ = ["ShardTierConfig", "ShardedService", "ShardDead"]


class ShardDead(ConnectionError):
    """The shard connection died with requests in flight."""


@dataclass(frozen=True)
class ShardTierConfig:
    """Knobs of the sharded tier (the router side; per-shard service
    behaviour lives in the shared :class:`ServeConfig`)."""

    shards: int = 2
    vnodes: int = 64
    window: int = 8
    backlog: int = 64
    forward_timeout_s: float = 60.0
    connect_timeout_s: float = 15.0
    start_method: str = "fork"
    engine_cache_mb: float | None = None
    trace: bool = False
    faults: str | None = None
    fault_state: str | None = None
    fault_seed: int = 0
    #: ``CNVLUTIN_INTEGRITY`` value pushed into every shard (None =
    #: inherit the environment).
    integrity: str | None = None
    integrity_recheck_s: float | None = None
    #: Seconds between router canary sweeps (golden request with known
    #: response bytes probed on every live shard); None disables the
    #: background loop — ``run_canary()`` can still be called directly.
    canary_interval_s: float | None = None
    #: Seconds between each shard's unsolicited telemetry pushes of
    #: metric deltas over the control socket (None = no streaming; the
    #: stop-time ``op: obs`` pull remains the only metrics hand-off).
    telemetry_interval_s: float | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.backlog < 0:
            raise ValueError("backlog must be >= 0")


class _ShardClient:
    """One shard's connection: rid-multiplexed futures over a unix socket."""

    def __init__(self, index: int, socket_path: str, window: int):
        self.index = index
        self.socket_path = socket_path
        self.window = asyncio.Semaphore(window)
        self.waiting = 0
        self.alive = False
        self.process: multiprocessing.process.BaseProcess | None = None
        self.generation = 0
        self._rid = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._write_lock = asyncio.Lock()
        self._on_down = None
        self._on_event = None

    async def connect(self, timeout_s: float, on_down, on_event=None) -> None:
        """Dial until the shard answers a ping (it may still be building
        its engines when the socket first appears)."""
        deadline = time.perf_counter() + timeout_s
        last_error: Exception | None = None
        while time.perf_counter() < deadline:
            try:
                reader, writer = await asyncio.open_unix_connection(
                    self.socket_path
                )
            except (ConnectionError, FileNotFoundError, OSError) as exc:
                last_error = exc
                await asyncio.sleep(0.05)
                continue
            self._writer = writer
            self._pending = {}
            self._on_down = on_down
            self._on_event = on_event
            self.alive = True
            self._reader_task = asyncio.create_task(self._read_loop(reader))
            await self.call({"op": "ping"}, timeout_s=timeout_s)
            return
        raise TimeoutError(
            f"shard {self.index} did not come up within {timeout_s}s"
        ) from last_error

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                envelope = json.loads(line)
                if "evt" in envelope:
                    # Unsolicited shard push (e.g. an integrity report);
                    # no rid, never resolves a pending call.
                    if self._on_event is not None:
                        self._on_event(self, envelope)
                    continue
                future = self._pending.pop(envelope.get("rid"), None)
                if future is None or future.done():
                    continue
                if "fail" in envelope:
                    future.set_exception(ShardDead(envelope["fail"]))
                else:
                    future.set_result(envelope)
        except (ConnectionError, OSError, ValueError):
            pass
        finally:
            self._fail_pending("shard connection closed")
            if self.alive:
                self.alive = False
                if self._on_down is not None:
                    self._on_down(self)

    def _fail_pending(self, reason: str) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(ShardDead(reason))

    async def call(self, payload: dict, timeout_s: float) -> dict:
        """Send one envelope and await its reply."""
        if not self.alive or self._writer is None:
            raise ShardDead(f"shard {self.index} is down")
        self._rid += 1
        rid = self._rid
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        line = json.dumps({"rid": rid, **payload}).encode() + b"\n"
        try:
            async with self._write_lock:
                self._writer.write(line)
                await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(rid, None)
            raise ShardDead(str(exc))
        try:
            return await asyncio.wait_for(future, timeout_s)
        finally:
            self._pending.pop(rid, None)

    async def close(self) -> None:
        self.alive = False
        self._on_down = None
        self._on_event = None
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._fail_pending("client closed")


class ShardedService:
    """The sharded serving front end (duck-types ``InferenceService``)."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        tier: ShardTierConfig | None = None,
        policy: RetryPolicy | None = None,
        respawn: RespawnPolicy | None = None,
        injector: FaultInjector | None = None,
        cache_dir=None,
    ):
        self.config = config if config is not None else ServeConfig()
        self.tier = tier if tier is not None else ShardTierConfig()
        self.policy = policy if policy is not None else RetryPolicy(
            max_attempts=3, backoff_base=0.02, backoff_max=0.25,
            seed=self.config.seed,
        )
        self.respawn = respawn if respawn is not None else RespawnPolicy(
            seed=self.config.seed
        )
        self.injector = injector if injector is not None else FaultInjector.from_env()
        self.cache_dir = cache_dir
        # Router-side context: builds the calibrated stores once (from the
        # artifact cache) for publication; also answers request validation
        # (known networks, probe-image count) without a socket round trip.
        self.context = ExperimentContext(self.config.paper_config(cache_dir))
        self.repo = ModelRepository(context=self.context)
        self.arena: SharedWeightArena | None = None
        self.ring: HashRing | None = None
        self._clients: dict[int, _ShardClient] = {}
        self._respawns: dict[int, int] = {}
        self._socket_dir: str | None = None
        self._pending: set[asyncio.Future] = set()
        self._background: set[asyncio.Task] = set()
        self._mp = multiprocessing.get_context(self.tier.start_method)
        self._stopping = False
        self._quarantined: set[int] = set()
        self._golden: dict[str, bytes] = {}
        # Always present (ingestion is cheap and only happens when
        # shards actually push): the windowed aggregation of streamed
        # shard deltas the admin endpoint reads.
        self.telemetry = TelemetryPlane()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self.ring is not None

    def shard_pids(self) -> dict[int, int]:
        """Live shard index → pid (for the benchmark's PSS accounting)."""
        return {
            index: client.process.pid
            for index, client in self._clients.items()
            if client.alive and client.process is not None
        }

    def _spec(self, index: int) -> ShardSpec:
        return ShardSpec(
            index=index,
            socket_path=f"{self._socket_dir}/shard{index}.sock",
            config=self.config,
            manifest=self.arena.manifest,
            cache_dir=str(self.cache_dir) if self.cache_dir else None,
            engine_cache_mb=self.tier.engine_cache_mb,
            trace=self.tier.trace,
            faults=self.tier.faults,
            fault_state=self.tier.fault_state,
            fault_seed=self.tier.fault_seed,
            integrity=self.tier.integrity,
            integrity_recheck_s=self.tier.integrity_recheck_s,
            telemetry_interval_s=self.tier.telemetry_interval_s,
        )

    def _spawn(self, index: int) -> _ShardClient:
        spec = self._spec(index)
        client = _ShardClient(index, spec.socket_path, self.tier.window)
        client.process = self._mp.Process(
            target=run_shard, args=(spec,), daemon=True,
            name=f"cnvlutin-shard{index}",
        )
        client.process.start()
        return client

    async def start(self) -> None:
        if self.started:
            raise RuntimeError("service already started")
        sweep_stale_arenas()
        stores = {
            name: self.repo.entry(name).store for name in self.repo.networks
        }
        self.arena = SharedWeightArena.publish(stores)
        self._socket_dir = tempfile.mkdtemp(prefix="cnvlutin-shards-")
        clients = [self._spawn(index) for index in range(self.tier.shards)]
        await asyncio.gather(
            *(
                client.connect(
                    self.tier.connect_timeout_s, self._shard_down,
                    self._shard_event,
                )
                for client in clients
            )
        )
        self._clients = {client.index: client for client in clients}
        self.ring = HashRing(list(self._clients), vnodes=self.tier.vnodes)
        obs.gauge_set("router.live_shards", len(self._clients))
        if self.tier.canary_interval_s is not None:
            task = asyncio.create_task(self._canary_loop())
            self._background.add(task)
            task.add_done_callback(self._background.discard)

    async def drain(self) -> None:
        """Wait for every accepted request to resolve."""
        while True:
            pending = [f for f in self._pending if not f.done()]
            if not pending:
                break
            await asyncio.wait(pending)

    async def stop(self) -> None:
        if not self.started:
            return
        await self.drain()
        self._stopping = True
        for task in list(self._background):
            task.cancel()
        await asyncio.gather(*self._background, return_exceptions=True)
        self.collected = await self.collect_obs()
        # Streamed telemetry reached only the windowed plane during the
        # run; fold each shard's cumulative into the global registry now
        # (shards reset on every push, so the op:obs pull above shipped
        # only the residual since their last push — totals stay exact).
        self.telemetry.fold_into(obs.get_metrics())
        for client in self._clients.values():
            if client.alive:
                try:
                    await client.call({"op": "shutdown"}, timeout_s=5.0)
                except (ShardDead, TimeoutError, asyncio.TimeoutError):
                    pass
            await client.close()
        for client in self._clients.values():
            process = client.process
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self.ring = None
        self._clients = {}
        if self.arena is not None:
            self.arena.unlink()
            self.arena.close()
            self.arena = None
        if self._socket_dir:
            shutil.rmtree(self._socket_dir, ignore_errors=True)
            self._socket_dir = None

    # ------------------------------------------------------------------
    # submission (the InferenceService duck type)
    # ------------------------------------------------------------------
    def try_submit(self, request: ServeRequest) -> asyncio.Future | ServeResponse:
        if not self.started:
            raise RuntimeError("service is not started")
        obs.counter_add("router.requests")
        error = None
        if request.network not in self.repo.networks:
            error = f"unknown network {request.network!r}"
        elif request.image_index is not None and request.image_index >= (
            self.repo.probe_count(request.network)
        ):
            error = (
                f"image_index {request.image_index} out of range "
                f"(network {request.network} holds "
                f"{self.repo.probe_count(request.network)} probe images)"
            )
        elif request.backend is not None and request.backend not in backend_names():
            # Validated here, before routing: an unregistered backend name
            # must answer as a 500-style validation error at the router,
            # never reach (let alone crash) a shard process.
            error = (
                f"unknown backend {request.backend!r}; registered: "
                f"{backend_names()}"
            )
        loop = asyncio.get_running_loop()
        if error is not None:
            obs.counter_add("router.errors")
            future = loop.create_future()
            future.set_result(
                ServeResponse(
                    id=request.id, status="error", kind=request.kind,
                    network=request.network, payload={"error": error},
                )
            )
            return future
        key = request_key(request.network, request.thresholds_key())
        try:
            owner = self.ring.owner(key)
        except LookupError:
            owner = None
        if owner is not None and (
            self._clients[owner].waiting >= self.tier.backlog
        ):
            obs.counter_add("router.shed")
            return ServeResponse(
                id=request.id, status="shed", kind=request.kind,
                network=request.network,
                payload={
                    "error": "shard backlog full",
                    "backlog": self.tier.backlog,
                },
            )
        future = loop.create_future()
        task = asyncio.create_task(self._forward(request, key, future))
        self._background.add(task)
        task.add_done_callback(self._background.discard)
        self._pending.add(future)
        future.add_done_callback(self._pending.discard)
        return future

    async def submit(self, request: ServeRequest) -> ServeResponse:
        outcome = self.try_submit(request)
        if isinstance(outcome, ServeResponse):
            return outcome
        return await outcome

    # ------------------------------------------------------------------
    # forwarding + failover
    # ------------------------------------------------------------------
    def _live_preference(self, key: str) -> list[int]:
        if self.ring is None or len(self.ring) == 0:
            return []
        return [
            index
            for index in self.ring.preference(key, limit=len(self.ring))
            if self._clients[index].alive
        ]

    async def _forward(
        self, request: ServeRequest, key: str, future: asyncio.Future
    ) -> None:
        payload = request.to_payload()
        attempt = 0
        label = f"shard/{request.network}"
        while True:
            preference = self._live_preference(key)
            if not preference:
                # Every shard may be mid-quarantine/respawn; retry on
                # the same budget as a failed forward so a healing tier
                # absorbs the request instead of erroring it.
                if not self.policy.retries_left(attempt):
                    self._finish(
                        future, request, "error",
                        {"error": "no live shards own this key"},
                    )
                    return
                obs.counter_add("router.retries")
                delay = max(self.policy.delay(label, attempt), 0.05)
                attempt += 1
                await asyncio.sleep(delay)
                continue
            target = preference[attempt % len(preference)]
            client = self._clients[target]
            started = time.perf_counter()
            try:
                self.injector.fire("shard:forward", trial=attempt)
                client.waiting += 1
                try:
                    await client.window.acquire()
                finally:
                    client.waiting -= 1
                try:
                    with obs.span(
                        "router.forward", cat="serve",
                        shard=target, attempt=attempt, req=request.id,
                    ):
                        envelope = await client.call(
                            {"req": payload},
                            timeout_s=self.tier.forward_timeout_s,
                        )
                finally:
                    client.window.release()
            except (
                ShardDead, InjectedFault, TimeoutError, asyncio.TimeoutError,
            ) as exc:
                obs.counter_add("router.retries")
                # A retry that will land on a different shard is a
                # failover (the ring successor takes the key's traffic).
                succ = self._live_preference(key)
                if succ and succ[(attempt + 1) % len(succ)] != target:
                    obs.counter_add("router.failovers")
                if not self.policy.retries_left(attempt):
                    self._finish(
                        future, request, "error",
                        {
                            "error": "all shard attempts failed: "
                            f"{type(exc).__name__}: {exc}"
                        },
                    )
                    return
                delay = self.policy.delay(label, attempt)
                attempt += 1
                if delay > 0:
                    await asyncio.sleep(delay)
                continue
            obs.observe(
                "router.forward_ms", (time.perf_counter() - started) * 1e3
            )
            obs.counter_add("router.forwarded")
            obs.counter_add(f"router.forwarded.shard{target}")
            if not future.done():
                future.set_result(ServeResponse.from_payload(envelope["resp"]))
            return

    def _finish(
        self, future: asyncio.Future, request: ServeRequest,
        status: str, payload: dict,
    ) -> None:
        obs.counter_add("router.errors")
        if not future.done():
            future.set_result(
                ServeResponse(
                    id=request.id, status=status, kind=request.kind,
                    network=request.network, payload=payload,
                )
            )

    # ------------------------------------------------------------------
    # death + respawn
    # ------------------------------------------------------------------
    def _shard_down(self, client: _ShardClient) -> None:
        """Reader-task callback: the shard's connection died."""
        if self._stopping or self.ring is None:
            return
        obs.counter_add("router.deaths")
        if client.index in self.ring:
            # Consistent hashing: removing this node remaps only the
            # keys it owned; every other shard's cache stays hot.
            self.ring.remove(client.index)
        obs.gauge_set("router.live_shards", len(self.ring))
        task = asyncio.create_task(self._respawn(client.index))
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    async def _respawn(self, index: int) -> None:
        count = self._respawns.get(index, 0)
        if not self.respawn.allows(count):
            return
        self._respawns[index] = count + 1
        delay = self.respawn.delay(f"shard{index}", count)
        if delay > 0:
            await asyncio.sleep(delay)
        old = self._clients.get(index)
        if old is not None and old.process is not None:
            old.process.join(timeout=1.0)
        client = self._spawn(index)
        client.generation = (old.generation if old else 0) + 1
        try:
            await client.connect(
                self.tier.connect_timeout_s, self._shard_down,
                self._shard_event,
            )
        except (TimeoutError, OSError):
            await client.close()
            task = asyncio.create_task(self._respawn(index))
            self._background.add(task)
            task.add_done_callback(self._background.discard)
            return
        self._clients[index] = client
        if self.ring is not None and index not in self.ring:
            self.ring.add(index)
            obs.gauge_set("router.live_shards", len(self.ring))
        obs.counter_add("router.respawns")

    # ------------------------------------------------------------------
    # integrity: quarantine, republish, canary
    # ------------------------------------------------------------------
    def _shard_event(self, client: _ShardClient, envelope: dict) -> None:
        """Reader-loop callback: a shard pushed an ``evt`` envelope."""
        if self._stopping:
            return
        evt = envelope.get("evt")
        if evt == "telemetry":
            # Streamed metric delta: aggregate into the windowed plane
            # only — never straight into the global registry, which gets
            # the plane's fold exactly once at stop (no double counting).
            self.telemetry.ingest(
                f"shard{envelope.get('shard', client.index)}",
                envelope.get("metrics") or {},
                seq=envelope.get("seq"),
            )
            return
        if evt != "integrity":
            return
        reason = envelope.get("reason", "unknown")
        obs.counter_add(f"integrity.detected.{reason}")
        task = asyncio.create_task(self._quarantine(client, reason))
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    async def _quarantine(self, client: _ShardClient, reason: str) -> None:
        """Detect → quarantine → republish (if corrupt) → respawn.

        The shard already poisoned itself (it fails every request fast),
        so the router's job is to take it out of the ring, make sure the
        shared weights the *next* generation attaches are clean, and
        hand the index to the normal respawn path.
        """
        if self._stopping or self.ring is None:
            return
        index = client.index
        if index in self._quarantined or self._clients.get(index) is not client:
            return  # stale event for an already-replaced generation
        self._quarantined.add(index)
        obs.counter_add("integrity.quarantines")
        obs.counter_add(f"integrity.quarantines.{reason}")
        if index in self.ring:
            self.ring.remove(index)
        obs.gauge_set("router.live_shards", len(self.ring))
        self._republish_if_corrupt()
        # close() clears the on_down callback first, so tearing the
        # connection down here cannot double-schedule a respawn.
        await client.close()
        process = client.process
        if process is not None and process.is_alive():
            process.terminate()
            await asyncio.to_thread(process.join, 5.0)
        self._quarantined.discard(index)
        await self._respawn(index)

    def _republish_if_corrupt(self) -> None:
        """Republish the arena from the calibrated stores — but only if
        the router's own view really fails CRC.  Several shards
        reporting one stale flip must trigger one republish, not one
        per report; and an ABFT-only transient (arena clean) must not
        churn the arena at all."""
        if self.arena is None or not self.arena.verify():
            return
        stores = {
            name: self.repo.entry(name).store for name in self.repo.networks
        }
        old, self.arena = self.arena, SharedWeightArena.publish(stores)
        old.unlink()
        old.close()
        obs.counter_add("integrity.republishes")

    def _canary_request(self, network: str) -> ServeRequest:
        return ServeRequest(
            id=f"canary:{network}", kind="classify", network=network,
            image_index=0,
        )

    async def run_canary(self) -> int:
        """Probe every live shard with a golden request per network and
        quarantine any shard whose canonical response bytes diverge from
        the router's own direct inference.  Returns probes sent."""
        probes = 0
        for network in self.repo.networks:
            golden = self._golden.get(network)
            if golden is None:
                request = self._canary_request(network)
                golden = canonical_response_bytes(
                    await asyncio.to_thread(
                        direct_response, self.repo, request
                    )
                )
                self._golden[network] = golden
            payload = self._canary_request(network).to_payload()
            for client in list(self._clients.values()):
                if not client.alive or client.index in self._quarantined:
                    continue
                try:
                    envelope = await client.call(
                        {"req": payload},
                        timeout_s=self.tier.forward_timeout_s,
                    )
                except (ShardDead, TimeoutError, asyncio.TimeoutError):
                    continue  # dead/poisoned shards heal via other paths
                probes += 1
                obs.counter_add("integrity.canary.probes")
                response = ServeResponse.from_payload(envelope["resp"])
                if canonical_response_bytes(response) != golden:
                    obs.counter_add("integrity.detected.canary")
                    await self._quarantine(client, "canary")
        return probes

    async def _canary_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.tier.canary_interval_s)
            try:
                await self.run_canary()
            except asyncio.CancelledError:
                raise
            except Exception:
                obs.counter_add("integrity.canary.errors")

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    async def collect_obs(self) -> int:
        """Pull every live shard's metrics + trace buffer into this
        process (snapshot-and-reset on the shard side).  Returns the
        number of shards that answered."""
        answered = 0
        for client in list(self._clients.values()):
            if not client.alive:
                continue
            try:
                envelope = await client.call({"op": "obs"}, timeout_s=10.0)
            except (ShardDead, TimeoutError, asyncio.TimeoutError):
                continue
            obs.merge_snapshot(envelope.get("metrics") or {})
            obs.extend_events(envelope.get("events") or [])
            answered += 1
        return answered

"""Model state and request execution for the inference service.

:class:`ModelRepository` owns one calibrated (network, weights) pair per
paper network — built through :class:`~repro.experiments.context.
ExperimentContext`, so calibration shifts come from the same
content-addressed artifact cache the experiment pipeline uses — plus one
:class:`~repro.nn.engine.IncrementalForwardEngine` per network whose
batch-admission hook (:meth:`~repro.nn.engine.IncrementalForwardEngine.
run_stack`) forwards the coalesced request stacks.

:func:`execute_batch` is the whole compute path of the service: one
batched forward shared by every request in the batch (classify,
zero-fraction, and timing requests coalesce freely as long as they agree
on network + thresholds), then per-request payload assembly from the
sliced activations.  :func:`direct_response` is the reference
implementation — one :func:`~repro.nn.inference.run_forward` per request
with no batching, no engine, no service — against which the differential
tests assert byte-identical responses.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.timing import baseline_network_timing
from repro.core.timing import cnv_network_timing
from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext
from repro.hw.config import PAPER_CONFIG, ArchConfig
from repro.nn.datasets import natural_image
from repro.nn.inference import run_forward
from repro.nn.network import Network
from repro.serve.requests import ServeRequest, ServeResponse

__all__ = [
    "ModelRepository",
    "request_image",
    "execute_batch",
    "direct_response",
]


def request_image(network: Network, seed: int) -> np.ndarray:
    """The synthetic input a request names, reproducible from its seed.

    float32, matching the single-precision weights the repository's
    calibrated stores carry — the dtype every activation then stays in.
    """
    rng = np.random.default_rng(seed)
    return natural_image(network.input_shape, rng).astype(np.float32)


class ModelRepository:
    """Calibrated networks + per-network engines, built lazily."""

    def __init__(
        self,
        config: PaperConfig | None = None,
        arch: ArchConfig = PAPER_CONFIG,
        context: ExperimentContext | None = None,
    ):
        self.context = context if context is not None else ExperimentContext(
            config, arch=arch
        )
        self.arch = arch
        self._baseline_cycles: dict[str, int] = {}

    @property
    def networks(self) -> list[str]:
        return list(self.context.config.networks)

    def entry(self, name: str):
        """The calibrated :class:`~repro.experiments.context.NetworkContext`."""
        return self.context.network_ctx(name)

    def engine(self, name: str):
        return self.context.engine(name)

    def image(self, name: str, seed: int) -> np.ndarray:
        return request_image(self.entry(name).network, seed)

    def baseline_cycles(self, name: str, conv_inputs: dict) -> int:
        """Baseline total cycles — value-independent, so memoized per network."""
        if name not in self._baseline_cycles:
            timing = baseline_network_timing(
                self.entry(name).network, conv_inputs, self.arch
            )
            self._baseline_cycles[name] = timing.total_cycles
        return self._baseline_cycles[name]


def _classify_payload(logits: np.ndarray) -> dict:
    return {"top1": int(np.argmax(logits)), "logits": logits.tolist()}


def _zero_fraction_payload(conv_inputs: dict[str, np.ndarray]) -> dict:
    per_layer = {
        layer: float(np.mean(arr == 0.0)) for layer, arr in conv_inputs.items()
    }
    return {
        "mean": float(np.mean(list(per_layer.values()))),
        "per_layer": per_layer,
    }


def _timing_payload(
    repo: ModelRepository, name: str, conv_inputs: dict[str, np.ndarray]
) -> dict:
    network = repo.entry(name).network
    cnv = cnv_network_timing(network, conv_inputs, repo.arch).total_cycles
    base = repo.baseline_cycles(name, conv_inputs)
    return {
        "baseline_cycles": int(base),
        "cnv_cycles": int(cnv),
        "speedup": base / cnv,
    }


def _payload(
    repo: ModelRepository,
    request: ServeRequest,
    logits: np.ndarray | None,
    conv_inputs: dict[str, np.ndarray],
) -> dict:
    if request.kind == "classify":
        if logits is None:
            raise ValueError(f"network {request.network} produced no logits")
        return _classify_payload(logits)
    if request.kind == "zero_fraction":
        return _zero_fraction_payload(conv_inputs)
    return _timing_payload(repo, request.network, conv_inputs)


def _needs_conv_inputs(requests: list[ServeRequest]) -> bool:
    return any(req.kind in ("zero_fraction", "timing") for req in requests)


def execute_batch(
    repo: ModelRepository, requests: list[ServeRequest]
) -> list[ServeResponse]:
    """Serve a coalesced batch with one shared forward pass.

    Every request must agree on (network, thresholds) — the micro-batcher
    groups by exactly that key.  The stacked inputs go through the
    engine's batch-admission hook; payloads are then assembled from the
    per-request slices, bit-identical to running each request alone
    (the PR-2 batch-axis guarantee, pinned by the differential tests).
    """
    if not requests:
        return []
    name = requests[0].network
    thresholds_key = requests[0].thresholds_key()
    for req in requests[1:]:
        if req.network != name or req.thresholds_key() != thresholds_key:
            raise ValueError("batch mixes incompatible (network, thresholds)")
    thresholds = dict(thresholds_key) or None
    stack = np.stack([repo.image(name, req.image_seed) for req in requests])
    result = repo.engine(name).run_stack(
        stack,
        thresholds=thresholds,
        collect_conv_inputs=_needs_conv_inputs(requests),
    )
    responses = []
    for index, req in enumerate(requests):
        logits = None if result.logits is None else result.logits[index]
        conv_inputs = {
            layer: arr[index] for layer, arr in result.conv_inputs.items()
        }
        responses.append(
            ServeResponse(
                id=req.id,
                status="ok",
                kind=req.kind,
                network=req.network,
                payload=_payload(repo, req, logits, conv_inputs),
            )
        )
    return responses


def direct_response(repo: ModelRepository, request: ServeRequest) -> ServeResponse:
    """Reference path: one unbatched ``run_forward`` per request."""
    entry = repo.entry(request.network)
    thresholds = dict(request.thresholds_key()) or None
    result = run_forward(
        entry.network,
        entry.store,
        repo.image(request.network, request.image_seed),
        thresholds=thresholds,
        collect_conv_inputs=_needs_conv_inputs([request]),
        keep_outputs=False,
    )
    return ServeResponse(
        id=request.id,
        status="ok",
        kind=request.kind,
        network=request.network,
        payload=_payload(repo, request, result.logits, result.conv_inputs),
    )

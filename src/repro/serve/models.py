"""Model state and request execution for the inference service.

:class:`ModelRepository` owns one calibrated (network, weights) pair per
paper network — built through :class:`~repro.experiments.context.
ExperimentContext`, so calibration shifts come from the same
content-addressed artifact cache the experiment pipeline uses — plus one
:class:`~repro.nn.engine.IncrementalForwardEngine` per network whose
batch-admission hook (:meth:`~repro.nn.engine.IncrementalForwardEngine.
run_stack`) forwards the coalesced request stacks.

:func:`execute_batch` is the whole compute path of the service: one
batched forward shared by every request in the batch (classify,
zero-fraction, and timing requests coalesce freely as long as they agree
on network + thresholds), then per-request payload assembly from the
sliced activations.  Seeded requests (distinct synthetic inputs) stack
through the engine's one-off batch admission; *probe* requests
(``image_index`` into the engine's resident stack) run through
:meth:`~repro.nn.engine.IncrementalForwardEngine.run`, whose
threshold-signature LRU replays cached layer prefixes — the mechanism
the sharded tier partitions across processes.  :func:`direct_response`
is the reference implementation — one
:func:`~repro.nn.inference.run_forward` per request with no batching, no
engine, no service — against which the differential tests assert
byte-identical responses.
"""

from __future__ import annotations

import numpy as np

from repro.backends import get_backend
from repro.baseline.timing import baseline_network_timing
from repro.core.timing import cnv_network_timing
from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext
from repro.hw.config import PAPER_CONFIG, ArchConfig
from repro.nn.datasets import natural_image
from repro.nn.engine import slice_result
from repro.nn.inference import run_forward
from repro.nn.network import Network
from repro.serve.requests import ServeRequest, ServeResponse

__all__ = [
    "ModelRepository",
    "request_image",
    "execute_batch",
    "direct_response",
]


def request_image(network: Network, seed: int) -> np.ndarray:
    """The synthetic input a request names, reproducible from its seed.

    float32, matching the single-precision weights the repository's
    calibrated stores carry — the dtype every activation then stays in.
    """
    rng = np.random.default_rng(seed)
    return natural_image(network.input_shape, rng).astype(np.float32)


class ModelRepository:
    """Calibrated networks + per-network engines, built lazily."""

    def __init__(
        self,
        config: PaperConfig | None = None,
        arch: ArchConfig = PAPER_CONFIG,
        context: ExperimentContext | None = None,
    ):
        self.context = context if context is not None else ExperimentContext(
            config, arch=arch
        )
        self.arch = arch
        self._baseline_cycles: dict[str, int] = {}
        # (network, thresholds_key, image_index, backend) -> timing
        # payload.  A probe request's conv inputs are a pure function of
        # that key, so the cycle-accurate simulators need run only once
        # per config.
        self._probe_timing: dict[tuple, dict] = {}

    @property
    def networks(self) -> list[str]:
        return list(self.context.config.networks)

    def entry(self, name: str):
        """The calibrated :class:`~repro.experiments.context.NetworkContext`."""
        return self.context.network_ctx(name)

    def engine(self, name: str):
        return self.context.engine(name)

    def image(self, name: str, seed: int) -> np.ndarray:
        return request_image(self.entry(name).network, seed)

    def probe_count(self, name: str) -> int:
        """How many resident probe images ``image_index`` may address."""
        return len(self.entry(name).images)

    def probe_timing_payload(
        self,
        name: str,
        thresholds_key: tuple,
        image_index: int,
        conv_inputs: dict,
        backend: str | None = None,
    ) -> dict:
        """Timing payload for a probe request, memoized per config.

        The simulators are deterministic over conv inputs, and a probe's
        conv inputs are fixed by (network, thresholds, image index) — so
        repeats return the identical ints/floats without re-simulating.
        """
        key = (name, thresholds_key, image_index, backend)
        if key not in self._probe_timing:
            self._probe_timing[key] = _timing_payload(
                self, name, conv_inputs, backend
            )
        return dict(self._probe_timing[key])

    def baseline_cycles(self, name: str, conv_inputs: dict) -> int:
        """Baseline total cycles — value-independent, so memoized per network."""
        if name not in self._baseline_cycles:
            timing = baseline_network_timing(
                self.entry(name).network, conv_inputs, self.arch
            )
            self._baseline_cycles[name] = timing.total_cycles
        return self._baseline_cycles[name]


def _classify_payload(logits: np.ndarray) -> dict:
    return {"top1": int(np.argmax(logits)), "logits": logits.tolist()}


def _zero_fraction_payload(conv_inputs: dict[str, np.ndarray]) -> dict:
    per_layer = {
        layer: float(np.mean(arr == 0.0)) for layer, arr in conv_inputs.items()
    }
    return {
        "mean": float(np.mean(list(per_layer.values()))),
        "per_layer": per_layer,
    }


def _timing_payload(
    repo: ModelRepository,
    name: str,
    conv_inputs: dict[str, np.ndarray],
    backend: str | None = None,
) -> dict:
    network = repo.entry(name).network
    base = repo.baseline_cycles(name, conv_inputs)
    if backend is None:
        # The original CNV-vs-baseline payload, byte-for-byte — requests
        # that never name a backend cannot observe the registry exists.
        cnv = cnv_network_timing(network, conv_inputs, repo.arch).total_cycles
        return {
            "baseline_cycles": int(base),
            "cnv_cycles": int(cnv),
            "speedup": base / cnv,
        }
    spec = get_backend(backend)  # names are validated at admission
    weights = (
        repo.context.pruned_conv_weights(name) if spec.needs_weights else None
    )
    cycles = spec.network_timing(
        network, conv_inputs, repo.arch, weights
    ).total_cycles
    return {
        "backend": backend,
        "baseline_cycles": int(base),
        "backend_cycles": int(cycles),
        "speedup": base / cycles,
    }


def _payload(
    repo: ModelRepository,
    request: ServeRequest,
    logits: np.ndarray | None,
    conv_inputs: dict[str, np.ndarray],
) -> dict:
    if request.kind == "classify":
        if logits is None:
            raise ValueError(f"network {request.network} produced no logits")
        return _classify_payload(logits)
    if request.kind == "zero_fraction":
        return _zero_fraction_payload(conv_inputs)
    return _timing_payload(repo, request.network, conv_inputs, request.backend)


def _needs_conv_inputs(requests: list[ServeRequest]) -> bool:
    return any(req.kind in ("zero_fraction", "timing") for req in requests)


def _probe_payload(
    repo: ModelRepository,
    request: ServeRequest,
    thresholds_key: tuple,
    sliced,
) -> dict:
    if request.kind == "timing":
        return repo.probe_timing_payload(
            request.network, thresholds_key, request.image_index,
            sliced.conv_inputs, request.backend,
        )
    return _payload(repo, request, sliced.logits, sliced.conv_inputs)


def execute_batch(
    repo: ModelRepository, requests: list[ServeRequest]
) -> list[ServeResponse]:
    """Serve a coalesced batch with one shared forward pass.

    Every request must agree on (network, thresholds) — the micro-batcher
    groups by exactly that key.  Seeded requests stack through the
    engine's batch-admission hook; probe requests (``image_index``) share
    one :meth:`~repro.nn.engine.IncrementalForwardEngine.run` over the
    resident stack, replaying cached layer prefixes when the threshold
    signature has been seen before.  Both paths are bit-identical to
    running each request alone (the PR-2 batch-axis guarantee, pinned by
    the differential tests).
    """
    if not requests:
        return []
    name = requests[0].network
    thresholds_key = requests[0].thresholds_key()
    for req in requests[1:]:
        if req.network != name or req.thresholds_key() != thresholds_key:
            raise ValueError("batch mixes incompatible (network, thresholds)")
    thresholds = dict(thresholds_key) or None
    seeded = [
        (pos, req) for pos, req in enumerate(requests) if req.image_index is None
    ]
    probes = [
        (pos, req) for pos, req in enumerate(requests) if req.image_index is not None
    ]
    responses: dict[int, ServeResponse] = {}

    if seeded:
        stack = np.stack([repo.image(name, req.image_seed) for _, req in seeded])
        result = repo.engine(name).run_stack(
            stack,
            thresholds=thresholds,
            collect_conv_inputs=_needs_conv_inputs([req for _, req in seeded]),
        )
        for index, (pos, req) in enumerate(seeded):
            logits = None if result.logits is None else result.logits[index]
            conv_inputs = {
                layer: arr[index] for layer, arr in result.conv_inputs.items()
            }
            responses[pos] = ServeResponse(
                id=req.id, status="ok", kind=req.kind, network=req.network,
                payload=_payload(repo, req, logits, conv_inputs),
            )

    if probes:
        result = repo.engine(name).run(
            thresholds=thresholds,
            collect_conv_inputs=_needs_conv_inputs([req for _, req in probes]),
            keep_outputs=False,
        )
        for pos, req in probes:
            sliced = slice_result(result, req.image_index)
            responses[pos] = ServeResponse(
                id=req.id, status="ok", kind=req.kind, network=req.network,
                payload=_probe_payload(repo, req, thresholds_key, sliced),
            )

    return [responses[pos] for pos in range(len(requests))]


def direct_response(repo: ModelRepository, request: ServeRequest) -> ServeResponse:
    """Reference path: one unbatched ``run_forward`` per request.

    Probe requests forward the named resident image directly — no
    engine, no cache, no memoized timing — so the differential tests
    compare the full sharded/batched/cached pipeline against the
    simplest possible computation of the same answer.
    """
    entry = repo.entry(request.network)
    thresholds = dict(request.thresholds_key()) or None
    if request.image_index is not None:
        image = entry.images[request.image_index]
    else:
        image = repo.image(request.network, request.image_seed)
    result = run_forward(
        entry.network,
        entry.store,
        image,
        thresholds=thresholds,
        collect_conv_inputs=_needs_conv_inputs([request]),
        keep_outputs=False,
    )
    return ServeResponse(
        id=request.id,
        status="ok",
        kind=request.kind,
        network=request.network,
        payload=_payload(repo, request, result.logits, result.conv_inputs),
    )

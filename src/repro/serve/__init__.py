"""Async batched inference serving over the reproduction's engine.

The production-facing front end the ROADMAP's north star asks for:
classify / zero-fraction / timing requests against any of the six paper
networks, coalesced by a dynamic micro-batcher onto the batch-axis
forward engine, executed on a bounded worker pool with
:mod:`repro.reliability` retries, :mod:`repro.obs` spans/metrics
(``serve.*``), explicit backpressure (bounded queues + 429-style shed
responses), per-request deadlines, and a deterministic mode whose
batched outputs are byte-identical to unbatched direct inference.

Entry points: the :class:`InferenceService` API, and the ``repro-serve``
CLI (:mod:`repro.serve.cli`) with ``serve`` and ``loadgen`` subcommands.
"""

from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.loadgen import (
    LoadResult,
    build_requests,
    percentile,
    run_load,
    summarize,
)
from repro.serve.models import (
    ModelRepository,
    direct_response,
    execute_batch,
    request_image,
)
from repro.serve.requests import (
    REQUEST_KINDS,
    STATUS_CODES,
    ServeRequest,
    ServeResponse,
    canonical_response_bytes,
)
from repro.serve.service import InferenceService, PendingRequest, ServeConfig

__all__ = [
    "REQUEST_KINDS",
    "STATUS_CODES",
    "ServeRequest",
    "ServeResponse",
    "canonical_response_bytes",
    "ModelRepository",
    "request_image",
    "execute_batch",
    "direct_response",
    "Batch",
    "MicroBatcher",
    "ServeConfig",
    "InferenceService",
    "PendingRequest",
    "LoadResult",
    "build_requests",
    "run_load",
    "percentile",
    "summarize",
]

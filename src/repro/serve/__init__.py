"""Async batched inference serving over the reproduction's engine.

The production-facing front end the ROADMAP's north star asks for:
classify / zero-fraction / timing requests against any of the six paper
networks, coalesced by a dynamic micro-batcher onto the batch-axis
forward engine, executed on a bounded worker pool with
:mod:`repro.reliability` retries, :mod:`repro.obs` spans/metrics
(``serve.*``), explicit backpressure (bounded queues + 429-style shed
responses), per-request deadlines, and a deterministic mode whose
batched outputs are byte-identical to unbatched direct inference.

The **sharded tier** (:mod:`repro.serve.router` /
:mod:`repro.serve.shard`) scales that service across N processes behind
a consistent-hash router: each shard owns a stable slice of the
``(network, thresholds)`` key space (so its engine prefix cache stays
hot), all shards share one read-only shared-memory copy of the
calibrated weights, dead shards fail over and respawn, and deterministic
mode stays byte-identical to direct inference at any shard count.

Entry points: the :class:`InferenceService` / :class:`ShardedService`
APIs, and the ``repro-serve`` CLI (:mod:`repro.serve.cli`) with
``serve`` and ``loadgen`` subcommands (``--shards N`` selects the
sharded tier).
"""

from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.hashring import HashRing, request_key
from repro.serve.loadgen import (
    LoadResult,
    build_requests,
    build_sweep_requests,
    percentile,
    run_load,
    summarize,
)
from repro.serve.models import (
    ModelRepository,
    direct_response,
    execute_batch,
    request_image,
)
from repro.serve.requests import (
    REQUEST_KINDS,
    STATUS_CODES,
    ServeRequest,
    ServeResponse,
    canonical_response_bytes,
)
from repro.serve.router import ShardDead, ShardedService, ShardTierConfig
from repro.serve.service import InferenceService, PendingRequest, ServeConfig
from repro.serve.shard import ShardSpec, run_shard

__all__ = [
    "REQUEST_KINDS",
    "STATUS_CODES",
    "ServeRequest",
    "ServeResponse",
    "canonical_response_bytes",
    "ModelRepository",
    "request_image",
    "execute_batch",
    "direct_response",
    "Batch",
    "MicroBatcher",
    "ServeConfig",
    "InferenceService",
    "PendingRequest",
    "HashRing",
    "request_key",
    "ShardTierConfig",
    "ShardedService",
    "ShardDead",
    "ShardSpec",
    "run_shard",
    "LoadResult",
    "build_requests",
    "build_sweep_requests",
    "run_load",
    "percentile",
    "summarize",
]

"""Cluster configuration: nodes plus the inter-node interconnect."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import PAPER_CONFIG, ArchConfig

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """A mesh of accelerator nodes.

    Attributes
    ----------
    num_nodes:
        Nodes in the system (DaDianNao scales to 64).
    node:
        The per-node architecture (baseline and CNV share geometry).
    link_gbytes_per_sec:
        Per-node external link bandwidth for broadcasting input neurons
        (DaDianNao uses four HyperTransport 2.0 links; the paper's traffic
        is "the initial input, loading the synapses once per layer, and
        writing the final output").
    broadcast_overlap:
        Fraction of the input broadcast hidden under compute; synapse
        loading is fully overlapped per the paper, and neuron traffic
        largely is too.
    """

    num_nodes: int = 4
    node: ArchConfig = PAPER_CONFIG
    link_gbytes_per_sec: float = 25.6
    broadcast_overlap: float = 0.9

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if not 0.0 <= self.broadcast_overlap <= 1.0:
            raise ValueError("broadcast_overlap must be in [0, 1]")

    @property
    def bytes_per_cycle(self) -> float:
        """Link bandwidth expressed per node-clock cycle."""
        return self.link_gbytes_per_sec / self.node.frequency_ghz

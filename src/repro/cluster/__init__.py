"""Multi-node scaling (Section IV-A).

DaDianNao is a *supercomputer* node design: "multiple nodes can be used to
process larger DNNs that do not fit in the NM and SBs available in a
single node."  This package models that scaling for both architectures —
filter-partitioned layer execution, inter-node input broadcast over the
mesh, and the capacity accounting that decides how many nodes a network
needs in the first place.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.timing import (
    ClusterLayerTiming,
    capacity_report,
    cluster_network_timing,
    nodes_required,
)

__all__ = [
    "ClusterConfig",
    "ClusterLayerTiming",
    "capacity_report",
    "cluster_network_timing",
    "nodes_required",
]

"""Multi-node timing: filter-partitioned layers over a node mesh.

Following DaDianNao's organization, a conv layer's ``N`` filters are
partitioned across nodes (each node already time-multiplexes its 256
concurrent filters); every node sees the full input neuron stream, which
the mesh broadcasts.  A layer's time is therefore

    max over nodes of node_conv_cycles(filters_of_node)
    + un-overlapped share of the input broadcast

and non-conv layers run replicated (they are neuron-bound, not
filter-bound).  Capacity accounting answers the sizing question the paper
raises: a network needs enough aggregate SB for its largest layer's
synapses and enough NM for the largest inter-layer activation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.other_layers import other_layers_timing
from repro.baseline.timing import baseline_conv_timing, conv_works_from_inputs
from repro.baseline.workload import ConvWork, ceil_div
from repro.cluster.config import ClusterConfig
from repro.core.timing import cnv_conv_timing
from repro.nn.network import Network

__all__ = [
    "ClusterLayerTiming",
    "cluster_network_timing",
    "nodes_required",
    "capacity_report",
]

_CONV_TIMING = {"dadiannao": baseline_conv_timing, "cnvlutin": cnv_conv_timing}


@dataclass
class ClusterLayerTiming:
    """One layer's multi-node execution."""

    name: str
    kind: str
    compute_cycles: int
    broadcast_cycles: int
    nodes_used: int

    @property
    def cycles(self) -> int:
        return self.compute_cycles + self.broadcast_cycles


@dataclass
class ClusterTiming:
    """Whole-network multi-node timing."""

    network: str
    architecture: str
    cluster: ClusterConfig
    layers: list[ClusterLayerTiming]

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)


def _partition_filters(work: ConvWork, num_nodes: int) -> list[int]:
    """Filters per node, group-aware (each group splits independently)."""
    per_group = work.filters_per_group
    filters_per_node = ceil_div(per_group, num_nodes)
    counts = []
    remaining = per_group
    for _ in range(num_nodes):
        take = min(filters_per_node, remaining)
        counts.append(take)
        remaining -= take
    return [c for c in counts if c > 0]


def _node_work(work: ConvWork, node_filters: int) -> ConvWork:
    """The same window stream with a node's filter share."""
    geometry = dict(work.geometry)
    geometry["num_filters"] = node_filters * work.num_groups
    return ConvWork(
        name=work.name,
        geometry=geometry,
        activations=work.activations,
        is_first=work.is_first,
    )


def cluster_network_timing(
    network: Network,
    conv_inputs: dict,
    cluster: ClusterConfig,
    architecture: str = "dadiannao",
) -> ClusterTiming:
    """Timing of one network over ``cluster.num_nodes`` nodes."""
    conv_timing = _CONV_TIMING[architecture]
    layers: list[ClusterLayerTiming] = []
    data_bytes = cluster.node.data_bits // 8
    for work in conv_works_from_inputs(network, conv_inputs):
        shares = _partition_filters(work, cluster.num_nodes)
        slowest = 0
        for node_filters in set(shares):
            node_cycles = conv_timing(_node_work(work, node_filters), cluster.node).cycles
            slowest = max(slowest, node_cycles)
        input_bytes = work.activations.size * data_bytes
        broadcast = 0
        if cluster.num_nodes > 1:
            raw = input_bytes / cluster.bytes_per_cycle
            broadcast = int(raw * (1.0 - cluster.broadcast_overlap))
        layers.append(
            ClusterLayerTiming(
                name=work.name,
                kind="conv",
                compute_cycles=slowest,
                broadcast_cycles=broadcast,
                nodes_used=len(shares),
            )
        )
    for timing in other_layers_timing(network, cluster.node):
        layers.append(
            ClusterLayerTiming(
                name=timing.name,
                kind=timing.kind,
                compute_cycles=timing.cycles,
                broadcast_cycles=0,
                nodes_used=1,
            )
        )
    return ClusterTiming(
        network=network.name,
        architecture=architecture,
        cluster=cluster,
        layers=layers,
    )


def nodes_required(network: Network, node_config) -> int:
    """Minimum nodes so the heaviest layer's synapses fit in aggregate SB
    and the largest activation fits in aggregate NM — the sizing rule of
    Section IV-A ('multiple nodes ... for larger DNNs')."""
    data_bytes = node_config.data_bits // 8
    macs = network.macs_per_layer()
    max_synapse_bytes = 0
    for layer in network.layers:
        if layer.name not in macs:
            continue
        if layer.is_conv:
            geom = network.conv_geometry(layer)
            synapses = (
                geom["num_filters"]
                * (geom["in_depth"] // layer.groups)
                * layer.kernel
                * layer.kernel
            )
        else:  # fc
            in_shape = network.input_shape_of(layer.name)
            synapses = layer.num_filters * in_shape[0] * in_shape[1] * in_shape[2]
        max_synapse_bytes = max(max_synapse_bytes, synapses * data_bytes)

    max_act_bytes = 0
    for layer in network.layers:
        d, h, w = network.output_shape(layer.name)
        max_act_bytes = max(max_act_bytes, d * h * w * data_bytes)

    sb_nodes = ceil_div(max_synapse_bytes, int(node_config.sb_bytes_total))
    nm_nodes = ceil_div(
        max_act_bytes, int(node_config.nm_mbytes * 1024 * 1024)
    )
    return max(1, sb_nodes, nm_nodes)


def capacity_report(network: Network, node_config) -> dict[str, float]:
    """Capacity summary used by the sizing example and tests."""
    data_bytes = node_config.data_bits // 8
    largest_act = max(
        (
            network.output_shape(layer.name)[0]
            * network.output_shape(layer.name)[1]
            * network.output_shape(layer.name)[2]
            for layer in network.layers
        ),
        default=0,
    )
    return {
        "nodes_required": nodes_required(network, node_config),
        "largest_activation_mb": largest_act * data_bytes / (1024 * 1024),
        "nm_capacity_mb": node_config.nm_mbytes,
        "sb_capacity_mb": node_config.sb_mbytes_per_unit * node_config.num_units,
    }

"""Beyond-the-paper extensions the conclusion calls for.

Section VII: "The CNV design serves as motivation for additional
exploration such as combining CNV with approaches that exploit other value
properties of DNNs, such as the variable precision requirements of DNNs
[Stripes]."  This package explores that direction:
:mod:`repro.extensions.precision` finds per-layer minimal activation
precisions (Judd et al.'s methodology, reusing the same
prediction-stability criterion as the pruning search) and models the
combined benefit of zero skipping with bit-serial variable-precision
compute.
"""

from repro.extensions.precision import (
    PrecisionProfile,
    combined_cnv_precision_timing,
    minimal_precisions,
    precision_speedup_factor,
)

__all__ = [
    "PrecisionProfile",
    "combined_cnv_precision_timing",
    "minimal_precisions",
    "precision_speedup_factor",
]

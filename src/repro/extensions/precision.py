"""Variable per-layer activation precision (the paper's future work).

Two pieces, both beyond the paper but directly in its stated direction:

* :func:`minimal_precisions` — per-layer minimal fractional bit-widths
  found exactly as Judd et al. [31] (the method the paper's own threshold
  exploration imitates): reduce one layer's activation precision while the
  network's predictions remain unchanged on the sample inputs.
* :func:`combined_cnv_precision_timing` — a first-order model of a CNV
  front-end whose multipliers consume activations *bit-serially* (as in
  Stripes [46]): each surviving non-zero neuron occupies its lane for
  ``ceil(bits_layer)`` bit-cycles instead of a fixed 16, so zero skipping
  and precision scaling multiply.  Dense baseline lanes gain nothing from
  sparsity but do gain from precision; the interesting result is that the
  two effects are nearly orthogonal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baseline.workload import ConvWork
from repro.core.timing import cnv_conv_timing
from repro.hw.config import ArchConfig
from repro.hw.timing_types import LayerTiming, NetworkTiming
from repro.nn.inference import WeightStore, run_forward
from repro.nn.network import Network
from repro.nn.tensor import FixedPointFormat

__all__ = [
    "PrecisionProfile",
    "minimal_precisions",
    "precision_speedup_factor",
    "combined_cnv_precision_timing",
]

#: Candidate total bit-widths explored per layer, descending.
DEFAULT_WIDTHS = (16, 12, 10, 8, 6, 5, 4, 3, 2)


@dataclass
class PrecisionProfile:
    """Per-layer activation bit-widths with their validation outcome."""

    bits: dict[str, int]
    stable: bool

    @property
    def mean_bits(self) -> float:
        return float(np.mean(list(self.bits.values()))) if self.bits else 16.0


def _format_for(bits: int) -> FixedPointFormat:
    """A ``bits``-wide activation format keeping a [-8, 8) dynamic range.

    Activations in this repo are calibrated to O(1) magnitudes, so 4
    integer bits suffice; the rest go to the fraction.
    """
    frac = max(0, bits - 4)
    return FixedPointFormat(total_bits=max(bits, 2), frac_bits=frac)


def _predictions(
    network: Network,
    store: WeightStore,
    images: list[np.ndarray],
    bits: dict[str, int],
) -> list[int]:
    formats = {
        name: _format_for(width) for name, width in bits.items() if width < 16
    }
    preds = []
    for image in images:
        result = run_forward(
            network,
            store,
            image,
            formats=formats or None,
            collect_conv_inputs=False,
            keep_outputs=False,
        )
        preds.append(int(np.argmax(result.logits)))
    return preds


def minimal_precisions(
    network: Network,
    store: WeightStore,
    images: list[np.ndarray],
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
) -> PrecisionProfile:
    """Greedy per-layer minimal activation precision (Judd et al. style).

    Layer by layer (in execution order), lower the layer's output
    precision to the smallest candidate width that keeps every sample
    image's top-1 prediction identical to the full-precision run, holding
    the already-chosen widths of earlier layers fixed.
    """
    reference = _predictions(network, store, images, {})
    bits = {layer.name: 16 for layer in network.conv_layers if layer.fused_relu}
    for layer_name in list(bits):
        chosen = 16
        for width in sorted(set(widths)):
            trial = dict(bits)
            trial[layer_name] = width
            if _predictions(network, store, images, trial) == reference:
                chosen = width
                break  # widths ascend: first stable width is minimal
        bits[layer_name] = chosen
    stable = _predictions(network, store, images, bits) == reference
    return PrecisionProfile(bits=bits, stable=stable)


def precision_speedup_factor(bits: dict[str, int], full_bits: int = 16) -> float:
    """Ideal bit-serial speedup from a precision profile (uniform layers)."""
    if not bits:
        return 1.0
    return full_bits / float(np.mean(list(bits.values())))


def combined_cnv_precision_timing(
    network: Network,
    conv_inputs: dict[str, np.ndarray],
    config: ArchConfig,
    bits: dict[str, int],
) -> NetworkTiming:
    """CNV timing with bit-serial lanes at per-layer precisions.

    Each conv layer's CNV cycle count scales by ``bits/16`` — a non-zero
    neuron occupies its (bit-serial) lane for ``bits`` bit-cycles; a
    16-way serial-lane bundle restores the baseline's per-cycle throughput
    at 16 bits, so full precision reduces exactly to plain CNV.  The
    producing layer's precision governs each conv layer's *input* stream.
    Non-conv layers are unchanged.
    """
    from repro.baseline.other_layers import other_layers_timing
    from repro.baseline.timing import conv_works_from_inputs
    from repro.nn.calibration import _controlling_relus, _relu_layers

    relu_layers = _relu_layers(network)
    layers: list[LayerTiming] = []
    for work in conv_works_from_inputs(network, conv_inputs):
        timing = cnv_conv_timing(work, config)
        # The precision of a conv layer's input stream is set where its
        # zeros are set: at the controlling ReLU layer(s) upstream (pooling
        # and LRN pass the stored precision through).  With several
        # controllers (inception concat) the widest governs.
        controllers = _controlling_relus(network, work.name, relu_layers)
        width = max((bits.get(c, 16) for c in controllers), default=16)
        if width < 16 and not work.is_first:
            scaled = int(np.ceil(timing.cycles * width / 16.0))
            timing = LayerTiming(
                name=timing.name,
                kind=timing.kind,
                cycles=max(scaled, 1),
                lane_events={
                    k: v * width / 16.0 for k, v in timing.lane_events.items()
                },
                counters=timing.counters,
            )
        layers.append(timing)
    layers.extend(other_layers_timing(network, config))
    return NetworkTiming(
        network=network.name, architecture="cnvlutin", layers=layers
    )

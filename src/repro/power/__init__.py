"""Calibrated area/energy models and efficiency metrics (Figs. 11-13)."""

from repro.power.area import AreaBreakdown, area_breakdown, cnv_area_overhead
from repro.power.components import BASELINE, CNV, COMPONENTS, COUNTER_COMPONENT, ArchPowerModel
from repro.power.energy import EnergyReport, energy_report, model_for
from repro.power.metrics import EfficiencyMetrics, ed2p, edp, improvement

__all__ = [
    "AreaBreakdown",
    "area_breakdown",
    "cnv_area_overhead",
    "BASELINE",
    "CNV",
    "COMPONENTS",
    "COUNTER_COMPONENT",
    "ArchPowerModel",
    "EnergyReport",
    "energy_report",
    "model_for",
    "EfficiencyMetrics",
    "ed2p",
    "edp",
    "improvement",
]

"""Efficiency metrics: EDP and ED²P (Fig. 13).

The paper compares architectures with the Energy-Delay Product
(Gonzalez & Horowitz) and the Energy-Delay-Squared Product (ET², Martin et
al.); both are computed from measured energy and delay, and improvements
are reported as baseline/CNV ratios (>1 means CNV is better).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EfficiencyMetrics", "edp", "ed2p", "improvement"]


def edp(energy_j: float, delay_s: float) -> float:
    """Energy-Delay Product in joule-seconds."""
    return energy_j * delay_s


def ed2p(energy_j: float, delay_s: float) -> float:
    """Energy-Delay-Squared Product in joule-seconds²."""
    return energy_j * delay_s * delay_s


@dataclass
class EfficiencyMetrics:
    """Energy/delay of one run plus derived products."""

    energy_j: float
    delay_s: float

    @property
    def edp(self) -> float:
        return edp(self.energy_j, self.delay_s)

    @property
    def ed2p(self) -> float:
        return ed2p(self.energy_j, self.delay_s)


def improvement(baseline: EfficiencyMetrics, contender: EfficiencyMetrics) -> dict[str, float]:
    """Baseline-over-contender improvement ratios (Fig. 13 bars)."""
    return {
        "speedup": baseline.delay_s / contender.delay_s,
        "energy": baseline.energy_j / contender.energy_j,
        "edp": baseline.edp / contender.edp,
        "ed2p": baseline.ed2p / contender.ed2p,
    }

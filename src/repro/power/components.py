"""Component-level technology model: areas, access energies, leakage.

The paper measures area and power from synthesized Verilog (Synopsys DC,
TSMC 65nm) plus the Artisan register-file compiler and the Destiny eDRAM
model.  None of those are available here, so this module substitutes a
calibrated component model:

* **Structure is physical** — four components (NM eDRAM, SB eDRAM, unit
  logic, SRAM buffers), each with an area, a static (leakage/refresh)
  power, and per-access dynamic energies tied to the activity counters the
  simulators emit.
* **Constants are calibrated** to the paper's published ratios: the SB
  dominates area and power, NM is 22% of baseline power, CNV's NM is 34%
  larger (25% offset storage + banking) and its accesses are wider, the
  SRAM area grows 15.8% for offset buffers, and the total area overhead is
  4.49% (Sections V-C/V-D).  The *activity counts* that drive dynamic
  energy are measured by the simulators, so all trends are real; only the
  per-event joules are fitted.

Per-access energies are expressed in picojoules at the paper's 1 GHz
clock; areas in mm²; static power in watts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "BASELINE",
    "CNV",
    "ArchPowerModel",
    "COUNTER_COMPONENT",
    "COMPONENTS",
]

#: The four components of the paper's Fig. 11/12 breakdowns.
COMPONENTS = ("nm", "sb", "logic", "sram")

#: Which component each activity counter's dynamic energy is charged to.
#: "logic" includes the datapath, control, encoder and dispatcher;
#: "sram" includes NBin, NBout and the CNV offset buffers (Section V-D).
COUNTER_COMPONENT: dict[str, str] = {
    "mults": "logic",
    "adds": "logic",
    "encoder_cycles": "logic",
    "broadcasts": "logic",
    "sb_reads": "sb",
    "nm_reads": "nm",
    "nm_writes": "nm",
    "nbin_reads": "sram",
    "nbin_writes": "sram",
    "nbout_reads": "sram",
    "nbout_writes": "sram",
    "offset_reads": "sram",
}


@dataclass(frozen=True)
class ArchPowerModel:
    """Area, leakage and per-access energies for one architecture."""

    name: str
    area_mm2: dict[str, float] = field(default_factory=dict)
    static_power_w: dict[str, float] = field(default_factory=dict)
    dynamic_energy_pj: dict[str, float] = field(default_factory=dict)

    @property
    def total_area(self) -> float:
        return sum(self.area_mm2.values())

    @property
    def total_static_power(self) -> float:
        return sum(self.static_power_w.values())

    def area_fraction(self, component: str) -> float:
        return self.area_mm2[component] / self.total_area


#: Baseline areas: SB-dominated, chosen so the CNV deltas published in
#: Section V-C reproduce the paper's +4.49% total:
#: 0.34*NM + 0.02*logic + 0.158*SRAM = 0.0449 of the total.
_BASE_AREA = {"sb": 55.3, "nm": 7.7, "logic": 4.2, "sram": 2.8}  # mm2, sums 70.0

#: Baseline static power: eDRAM leakage/refresh dominates (32 MB of SB).
_BASE_STATIC = {"sb": 4.2, "nm": 1.6, "logic": 0.9, "sram": 0.35}  # W

#: Baseline per-access dynamic energies (pJ).  At the paper's steady state
#: (4096 multipliers, 256 SB columns, one 256-bit NM fetch block per cycle)
#: these give an SB-dominated dynamic budget with NM at roughly a fifth of
#: total power, matching Fig. 12's baseline bar.
_BASE_DYNAMIC = {
    "mults": 0.9,
    "adds": 0.12,
    "encoder_cycles": 0.0,
    "broadcasts": 25.0,
    "sb_reads": 24.0,
    "nm_reads": 1900.0,
    "nm_writes": 1900.0,
    "nbin_reads": 0.35,
    "nbin_writes": 0.35,
    "nbout_reads": 1.1,
    "nbout_writes": 1.1,
    "offset_reads": 0.0,
}

BASELINE = ArchPowerModel(
    name="dadiannao",
    area_mm2=dict(_BASE_AREA),
    static_power_w=dict(_BASE_STATIC),
    dynamic_energy_pj=dict(_BASE_DYNAMIC),
)

#: CNV deltas (Section V-C/V-D): NM area +34% (offsets +25%, 16 banks),
#: unit logic +2% (dispatcher + encoders), SRAM +15.8% (offset buffers);
#: SB partitioning overhead is negligible.  Static power scales with area.
_CNV_AREA_SCALE = {"sb": 1.0, "nm": 1.34, "logic": 1.02, "sram": 1.158}

#: CNV per-access deltas: NM accesses are 25% wider (offsets) and pay the
#: 16-bank organization; the broadcast bus is wider; NBin entries carry the
#: offset field; SB column reads are unchanged (each still delivers 16
#: synapses from an unchanged 2 MB/unit array).
_CNV_DYNAMIC_SCALE = {
    "nm_reads": 1.9,
    "nm_writes": 1.9,
    "broadcasts": 1.25,
    "nbin_reads": 1.25,
    "nbin_writes": 1.25,
    "encoder_cycles": None,  # replaced below
}

_cnv_dynamic = dict(_BASE_DYNAMIC)
for counter, scale in _CNV_DYNAMIC_SCALE.items():
    if scale is not None:
        _cnv_dynamic[counter] = _BASE_DYNAMIC[counter] * scale
_cnv_dynamic["encoder_cycles"] = 0.45  # serial encoder datapath
_cnv_dynamic["offset_reads"] = 0.06  # 4-bit offset SRAM read

CNV = ArchPowerModel(
    name="cnvlutin",
    area_mm2={c: _BASE_AREA[c] * _CNV_AREA_SCALE[c] for c in COMPONENTS},
    static_power_w={c: _BASE_STATIC[c] * _CNV_AREA_SCALE[c] for c in COMPONENTS},
    dynamic_energy_pj=_cnv_dynamic,
)

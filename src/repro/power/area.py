"""Area model (Fig. 11): per-component breakdowns and the CNV overhead."""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.components import BASELINE, CNV, COMPONENTS, ArchPowerModel

__all__ = ["AreaBreakdown", "area_breakdown", "cnv_area_overhead"]


@dataclass
class AreaBreakdown:
    """Per-component area of one architecture, in mm² and fractions."""

    architecture: str
    by_component: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.by_component.values())

    def fraction(self, component: str) -> float:
        return self.by_component[component] / self.total

    def fractions(self) -> dict[str, float]:
        return {c: self.fraction(c) for c in self.by_component}


def area_breakdown(model: ArchPowerModel | None = None) -> AreaBreakdown:
    """The Fig. 11 area breakdown for one architecture (default baseline)."""
    model = model if model is not None else BASELINE
    return AreaBreakdown(
        architecture=model.name,
        by_component={c: model.area_mm2[c] for c in COMPONENTS},
    )


def cnv_area_overhead() -> float:
    """CNV's total area overhead over the baseline (paper: 4.49%)."""
    return CNV.total_area / BASELINE.total_area - 1.0

"""Energy model (Fig. 12): activity counts x calibrated per-access energies.

Dynamic energy charges every activity counter to its component at the
architecture's per-access energy; static energy is each component's leakage
power times the measured runtime.  Average power is total energy over
runtime.  Because static energy scales with runtime, CNV's speedup itself
saves eDRAM leakage energy — a large part of why the paper's overall
energy drops despite the wider, banked NM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.counters import ActivityCounters
from repro.power.components import (
    COMPONENTS,
    COUNTER_COMPONENT,
    ArchPowerModel,
)

__all__ = ["EnergyReport", "energy_report", "model_for"]


def model_for(architecture: str) -> ArchPowerModel:
    """The power model for an architecture name used by NetworkTiming.

    Resolved through the backend registry, so a newly registered backend
    (with its declared power model) is immediately chargeable here —
    e.g. ``dadiannao-gated`` maps to the baseline silicon (its savings
    come purely from gated activity counts).  Imported lazily:
    :mod:`repro.backends` itself imports power components from this
    package.
    """
    from repro.backends import power_model_for

    return power_model_for(architecture)


@dataclass
class EnergyReport:
    """Energy and power of one run, per component and kind."""

    architecture: str
    seconds: float
    dynamic_j: dict[str, float]
    static_j: dict[str, float]

    @property
    def total_dynamic_j(self) -> float:
        return sum(self.dynamic_j.values())

    @property
    def total_static_j(self) -> float:
        return sum(self.static_j.values())

    @property
    def total_j(self) -> float:
        return self.total_dynamic_j + self.total_static_j

    @property
    def average_power_w(self) -> float:
        return self.total_j / self.seconds if self.seconds > 0 else 0.0

    def component_j(self, component: str) -> float:
        return self.dynamic_j[component] + self.static_j[component]

    def by_component(self) -> dict[str, float]:
        return {c: self.component_j(c) for c in COMPONENTS}


def energy_report(
    counters: ActivityCounters,
    seconds: float,
    architecture: str,
    model: ArchPowerModel | None = None,
) -> EnergyReport:
    """Compute the energy report for one measured run.

    Parameters
    ----------
    counters:
        Merged activity counters from a timing run.
    seconds:
        Measured runtime (cycles / frequency).
    architecture:
        ``"dadiannao"`` or ``"cnvlutin"`` (selects the calibrated model
        unless ``model`` overrides it).
    """
    model = model if model is not None else model_for(architecture)
    dynamic = {c: 0.0 for c in COMPONENTS}
    for counter, count in counters.as_dict().items():
        component = COUNTER_COMPONENT.get(counter)
        if component is None:
            continue
        dynamic[component] += count * model.dynamic_energy_pj[counter] * 1e-12
    static = {c: model.static_power_w[c] * seconds for c in COMPONENTS}
    return EnergyReport(
        architecture=architecture,
        seconds=seconds,
        dynamic_j=dynamic,
        static_j=static,
    )

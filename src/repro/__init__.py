"""Cnvlutin (CNV) — Ineffectual-Neuron-Free Deep Neural Network Computing.

A complete Python reproduction of the ISCA 2016 paper by Albericio, Judd,
Hetherington, Aamodt, Enright Jerger and Moshovos.  The package provides:

* :mod:`repro.nn` — the DNN substrate (networks, inference, calibration);
* :mod:`repro.hw` — shared hardware building blocks (eDRAM/SRAM, buffers,
  interconnect, cycle kernel, activity counters);
* :mod:`repro.baseline` — the DaDianNao baseline accelerator model;
* :mod:`repro.core` — the Cnvlutin contribution: ZFNAf, the dispatcher,
  the decoupled subunits, the output encoder, the vectorized timing model
  and dynamic neuron pruning;
* :mod:`repro.power` — calibrated area/energy models and EDP/ED²P metrics;
* :mod:`repro.experiments` — one module per paper table/figure plus a
  runner that regenerates them all.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

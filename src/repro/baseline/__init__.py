"""The DaDianNao baseline accelerator (Chen et al., MICRO 2014).

CNV is presented as a modification of this design, so the baseline is a
first-class substrate here: a structural NFU/node simulator producing real
outputs and exact cycle counts, a closed-form timing model proven equal to
it, and the shared workload/'other-layer' models both architectures use.
"""

from repro.baseline.accelerator import (
    DaDianNaoNode,
    StructuralRunResult,
    build_fetch_blocks,
    build_sb_columns,
)
from repro.baseline.gated import gated_conv_timing, gated_network_timing
from repro.baseline.nfu import NFU
from repro.baseline.other_layers import other_layer_timing, other_layers_timing
from repro.baseline.timing import (
    baseline_conv_timing,
    baseline_network_timing,
    conv_works_from_inputs,
)
from repro.baseline.workload import ConvWork, ceil_div, group_activations, window_sums

__all__ = [
    "DaDianNaoNode",
    "StructuralRunResult",
    "build_fetch_blocks",
    "build_sb_columns",
    "NFU",
    "gated_conv_timing",
    "gated_network_timing",
    "other_layer_timing",
    "other_layers_timing",
    "baseline_conv_timing",
    "baseline_network_timing",
    "conv_works_from_inputs",
    "ConvWork",
    "ceil_div",
    "group_activations",
    "window_sums",
]

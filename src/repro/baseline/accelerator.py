"""Structural (cycle-by-cycle) simulator of the DaDianNao baseline node.

A node is ``num_units`` NFUs fed by a single broadcast interconnect from
the central Neuron Memory (Section IV-A): every cycle one fetch block —
``neuron_lanes`` neurons, contiguous in the window's (features, x, y)
traversal and zero padded at the window tail — is read from NM and
broadcast to all units; unit ``u`` applies it to filters
``u*filters_per_unit ... (u+1)*filters_per_unit - 1`` of the current pass.

The simulator is fully functional — it produces the layer's output neurons,
validated against the im2col golden model — and its cycle counts equal the
closed-form model of :mod:`repro.baseline.timing` (tested property-based).
It is meant for small/scaled configurations; whole networks use the
analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baseline.workload import ConvWork, ceil_div, group_activations
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters
from repro.hw.interconnect import BroadcastBus
from repro.baseline.nfu import NFU

__all__ = ["DaDianNaoNode", "StructuralRunResult", "build_fetch_blocks", "build_sb_columns"]


@dataclass
class StructuralRunResult:
    """Output and measured activity of a structural layer run."""

    output: np.ndarray  # (num_filters, out_y, out_x), pre-activation
    cycles: int
    counters: ActivityCounters


def build_fetch_blocks(
    window: np.ndarray, lanes: int, packing: str = "window"
) -> np.ndarray:
    """Split a window (depth, Fy, Fx) into lock-step fetch blocks.

    Traversal order is features fastest, then x, then y — n(y, x, i) with i
    innermost, matching Section IV-A1 — zero padded to a multiple of
    ``lanes``.  ``packing="window"`` (default) packs the whole traversal
    densely; ``"row"`` keeps blocks within NM-contiguous window rows.
    Returns shape ``(num_blocks, lanes)``.
    """
    depth, kernel_y, kernel_x = window.shape
    if packing == "window":
        flat = window.transpose(1, 2, 0).reshape(-1)
        blocks = ceil_div(flat.size, lanes)
        padded = np.zeros(blocks * lanes, dtype=np.float64)
        padded[: flat.size] = flat
        return padded.reshape(blocks, lanes)
    blocks_per_row = ceil_div(kernel_x * depth, lanes)
    out = np.zeros((kernel_y * blocks_per_row, lanes), dtype=np.float64)
    for fy in range(kernel_y):
        row = window[:, fy, :].T.reshape(-1)  # (x, i) with i fastest
        flat = out[fy * blocks_per_row : (fy + 1) * blocks_per_row].reshape(-1)
        flat[: row.size] = row
    return out


def build_sb_columns(
    weights: np.ndarray, lanes: int, packing: str = "window"
) -> np.ndarray:
    """Arrange one filter group's synapses into SB columns.

    ``weights``: (filters, depth, Fy, Fx).  Column ``c`` holds the synapses
    matching fetch block ``c`` (same packing as
    :func:`build_fetch_blocks`); shape ``(num_columns, filters, lanes)``.
    """
    filters, depth, kernel_y, kernel_x = weights.shape
    if packing == "window":
        flat = weights.transpose(0, 2, 3, 1).reshape(filters, -1)
        columns = ceil_div(flat.shape[1], lanes)
        padded = np.zeros((filters, columns * lanes), dtype=np.float64)
        padded[:, : flat.shape[1]] = flat
        return padded.reshape(filters, columns, lanes).transpose(1, 0, 2)
    blocks_per_row = ceil_div(kernel_x * depth, lanes)
    columns = kernel_y * blocks_per_row
    padded = np.zeros((filters, columns * lanes), dtype=np.float64)
    for fy in range(kernel_y):
        row = weights[:, :, fy, :].transpose(0, 2, 1).reshape(filters, -1)
        start = fy * blocks_per_row * lanes
        padded[:, start : start + row.shape[1]] = row
    return padded.reshape(filters, columns, lanes).transpose(1, 0, 2)


class DaDianNaoNode:
    """A baseline node: broadcast bus + ``num_units`` lock-step NFUs."""

    def __init__(self, config: ArchConfig):
        self.config = config
        self.counters = ActivityCounters()
        self.bus = BroadcastBus(
            lanes=config.neuron_lanes,
            data_bits=config.data_bits,
            counters=self.counters,
        )

    def run_conv_layer(self, work: ConvWork, weights: np.ndarray) -> StructuralRunResult:
        """Run one conv layer to completion; returns outputs and cycles.

        ``weights``: (num_filters, in_depth // groups, kernel, kernel).
        """
        geom = work.geometry
        config = self.config
        lanes = config.neuron_lanes
        kernel = geom["kernel"]
        stride = geom["stride"]
        out_y, out_x = geom["out_y"], geom["out_x"]
        num_filters = geom["num_filters"]
        output = np.zeros((num_filters, out_y, out_x), dtype=np.float64)
        cycles = 0

        for group in range(work.num_groups):
            slab = group_activations(work, group)
            group_filters = work.filters_per_group
            f_base = group * group_filters
            passes = ceil_div(group_filters, config.filters_per_pass)
            for p in range(passes):
                pass_first = p * config.filters_per_pass
                pass_filters = min(
                    config.filters_per_pass, group_filters - pass_first
                )
                units = self._build_units(
                    weights[f_base + pass_first : f_base + pass_first + pass_filters],
                    lanes,
                )
                for oy in range(out_y):
                    for ox in range(out_x):
                        window = slab[
                            :,
                            oy * stride : oy * stride + kernel,
                            ox * stride : ox * stride + kernel,
                        ]
                        blocks = build_fetch_blocks(
                            window, lanes, config.fetch_packing
                        )
                        for unit, _ in units:
                            unit.reset_window()
                        for block in blocks:
                            self.counters.add("nm_reads")
                            payload = self.bus.broadcast(list(block))
                            for unit, _ in units:
                                unit.process_fetch_block(np.asarray(payload))
                            cycles += 1
                        for unit, unit_filters in units:
                            sums = unit.window_outputs()[: len(unit_filters)]
                            for local, f in enumerate(unit_filters):
                                output[f_base + pass_first + f, oy, ox] = sums[local]
                        self.counters.add(
                            "nm_writes", ceil_div(pass_filters, lanes)
                        )

        self.counters.add("cycles", cycles)
        return StructuralRunResult(output=output, cycles=cycles, counters=self.counters)

    def _build_units(
        self, pass_weights: np.ndarray, lanes: int
    ) -> list[tuple[NFU, list[int]]]:
        """Instantiate NFUs for one pass; filters distributed unit-major."""
        config = self.config
        units: list[tuple[NFU, list[int]]] = []
        for u in range(config.num_units):
            first = u * config.filters_per_unit
            unit_filters = list(
                range(first, min(first + config.filters_per_unit, pass_weights.shape[0]))
            )
            if not unit_filters:
                break
            w = np.zeros(
                (config.filters_per_unit,) + pass_weights.shape[1:], dtype=np.float64
            )
            w[: len(unit_filters)] = pass_weights[unit_filters]
            sb_columns = build_sb_columns(w, lanes, config.fetch_packing)
            units.append((NFU(config, sb_columns, counters=self.counters), unit_filters))
        return units

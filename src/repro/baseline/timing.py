"""Analytic (vectorized) timing model of the DaDianNao baseline.

DaDianNao couples all neuron lanes in lock step (Section III-B): every
cycle one fetch block of ``neuron_lanes`` neurons is broadcast to all
units and multiplied — zero or not — against one SB column per unit.  A
window of ``Fy x Fx x i`` neurons takes exactly
``ceil(Fy * Fx * i / neuron_lanes)`` cycles per filter pass, regardless of
values (``ArchConfig.fetch_packing = "row"`` ablates NM-row-contiguous
blocks at ``Fy * ceil(Fx*i/16)``; both agree for 16-multiple depths).
Filters beyond ``units x filters_per_unit`` (256) require additional
passes over the window stream; grouped convolutions run their groups
sequentially with the reduced depth and filter count.

The model also produces the paper's Fig. 10 execution-activity events: for
the baseline every lane event during a conv layer is either *non-zero* or
*zero* depending on the neuron value occupying the lane (padding slots of
the final partial fetch block count as zero — they occupy lanes exactly
like zero-valued neurons do).

These closed-form counts are proven equal to the structural cycle-by-cycle
simulator (:mod:`repro.baseline.accelerator`) by the property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.other_layers import other_layers_timing
from repro.baseline.workload import ConvWork, ceil_div, group_activations, window_sums
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters
from repro.hw.timing_types import LayerTiming, NetworkTiming
from repro.nn.network import Network

__all__ = [
    "baseline_conv_timing",
    "baseline_network_timing",
    "conv_works_from_inputs",
]


def baseline_conv_timing(work: ConvWork, config: ArchConfig) -> LayerTiming:
    """Cycles and activity for one conv layer on the baseline."""
    geom = work.geometry
    lanes = config.neuron_lanes
    kernel_y = kernel_x = geom["kernel"]
    stride = geom["stride"]
    out_y, out_x = geom["out_y"], geom["out_x"]
    windows = out_y * out_x

    counters = ActivityCounters()
    total_cycles = 0
    nonzero_events = 0.0
    zero_events = 0.0

    for group in range(work.num_groups):
        slab = group_activations(work, group)
        depth = slab.shape[0]
        passes = ceil_div(work.filters_per_group, config.filters_per_pass)
        if config.fetch_packing == "row":
            # NM-contiguous blocks: pack (features, x) within a window
            # row, never across rows.
            cycles_per_window = kernel_y * ceil_div(kernel_x * depth, lanes)
        else:
            # Dense window packing (default; Section II linearity).
            cycles_per_window = ceil_div(kernel_y * kernel_x * depth, lanes)
        group_cycles = windows * cycles_per_window * passes
        total_cycles += group_cycles

        # Non-zero neuron slots per window via an integral image over the
        # depth-summed mask.
        mask_plane = (slab != 0.0).sum(axis=0).astype(np.float64)
        nnz_per_window = window_sums(
            mask_plane, kernel_y, kernel_x, stride, out_y, out_x
        )
        total_nnz = float(nnz_per_window.sum())
        slots_per_window = cycles_per_window * lanes
        total_slots = float(windows * slots_per_window)

        scale = passes * config.num_units
        nonzero_events += scale * total_nnz
        zero_events += scale * (total_slots - total_nnz)

        # Datapath activity: every multiplier runs every cycle; each neuron
        # slot meets every filter of the group once across the passes.
        counters.add("mults", total_slots * work.filters_per_group)
        counters.add("adds", total_slots * work.filters_per_group)
        counters.add(
            "sb_reads", total_slots * work.filters_per_group / config.filters_per_unit
        )
        counters.add("nm_reads", windows * cycles_per_window * passes)
        # Every unit has a private NBin written by the broadcast and read
        # by its lanes each cycle.
        counters.add("nbin_reads", group_cycles * lanes * config.num_units)
        counters.add("nbin_writes", group_cycles * lanes * config.num_units)
        counters.add(
            "nbout_reads", group_cycles * config.num_units * config.filters_per_unit
        )
        counters.add(
            "nbout_writes", group_cycles * config.num_units * config.filters_per_unit
        )
        counters.add(
            "nm_writes", ceil_div(work.filters_per_group * windows, lanes)
        )
        counters.add("broadcasts", windows * cycles_per_window * passes)

    if work.is_first:
        lane_events = {"conv1": nonzero_events + zero_events}
    else:
        lane_events = {"nonzero": nonzero_events, "zero": zero_events}

    return LayerTiming(
        name=work.name,
        kind="conv",
        cycles=total_cycles,
        lane_events=lane_events,
        counters=counters,
    )


def conv_works_from_inputs(
    network: Network, conv_inputs: dict[str, np.ndarray]
) -> list[ConvWork]:
    """Build per-layer workloads from a forward pass's recorded conv inputs."""
    first = network.first_conv_layers()
    works = []
    for layer in network.conv_layers:
        if layer.name not in conv_inputs:
            raise KeyError(f"no recorded input for conv layer {layer.name!r}")
        works.append(
            ConvWork(
                name=layer.name,
                geometry=network.conv_geometry(layer),
                activations=conv_inputs[layer.name],
                is_first=layer.name in first,
            )
        )
    return works


def baseline_network_timing(
    network: Network,
    conv_inputs: dict[str, np.ndarray],
    config: ArchConfig,
) -> NetworkTiming:
    """Full-network baseline timing: conv layers from measured activations,
    non-conv layers from the shared 'other' model."""
    layers = [
        baseline_conv_timing(work, config)
        for work in conv_works_from_inputs(network, conv_inputs)
    ]
    layers.extend(other_layers_timing(network, config))
    return NetworkTiming(network=network.name, architecture="dadiannao", layers=layers)

"""Convolution workload preparation shared by the analytic timing models.

Both accelerators see the same workload: for each conv layer, the (spatially
zero-padded) input activations split by group, plus the layer geometry.
Padding neurons are stored in NM as explicit zeros (DESIGN.md decision):
the baseline spends cycles multiplying them, CNV's encoder removes them like
any other zero.  This module also provides the integral-image machinery for
exact per-window non-zero counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import pad_input

__all__ = ["ConvWork", "group_activations", "window_sums", "ceil_div"]


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class ConvWork:
    """One conv layer's workload: geometry plus the input neuron array."""

    name: str
    geometry: dict[str, int]
    activations: np.ndarray  # (in_depth, in_y, in_x), unpadded
    is_first: bool = False

    def __post_init__(self) -> None:
        expected = (
            self.geometry["in_depth"],
            self.geometry["in_y"],
            self.geometry["in_x"],
        )
        if self.activations.shape != expected:
            raise ValueError(
                f"{self.name}: activations {self.activations.shape} != "
                f"geometry {expected}"
            )

    @property
    def num_groups(self) -> int:
        return self.geometry["groups"]

    @property
    def group_depth(self) -> int:
        return self.geometry["in_depth"] // self.geometry["groups"]

    @property
    def filters_per_group(self) -> int:
        return self.geometry["num_filters"] // self.geometry["groups"]


def group_activations(work: ConvWork, group: int) -> np.ndarray:
    """The spatially padded activation slab consumed by one filter group."""
    depth = work.group_depth
    slab = work.activations[group * depth : (group + 1) * depth]
    return pad_input(slab, work.geometry["pad"])


def window_sums(
    plane: np.ndarray, kernel_y: int, kernel_x: int, stride: int, out_y: int, out_x: int
) -> np.ndarray:
    """Exact sliding-window sums of a 2-D ``plane`` via an integral image.

    Returns ``sums[oy, ox] = sum(plane[oy*S : oy*S+Fy, ox*S : ox*S+Fx])``.
    """
    integral = np.zeros((plane.shape[0] + 1, plane.shape[1] + 1), dtype=np.float64)
    integral[1:, 1:] = plane.cumsum(axis=0).cumsum(axis=1)
    y0 = np.arange(out_y) * stride
    x0 = np.arange(out_x) * stride
    y1 = y0 + kernel_y
    x1 = x0 + kernel_x
    return (
        integral[np.ix_(y1, x1)]
        - integral[np.ix_(y0, x1)]
        - integral[np.ix_(y1, x0)]
        + integral[np.ix_(y0, x0)]
    )

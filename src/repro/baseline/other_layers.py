"""Timing of the non-convolutional ("other") layers.

These layers run identically on DaDianNao and CNV — CNV only accelerates
convolutional layers past the first — so a shared model keeps the two
architectures consistent.  Throughputs follow the DaDianNao design:

* pooling and LRN stream neurons through the units' dedicated circuitry at
  one fetch block (``neuron_lanes`` neurons) per unit per cycle;
* LRN additionally needs the cross-channel sum-of-squares pipeline, modelled
  as a 2x cycle cost;
* fully-connected layers behave like a 1x1 convolution with a single window
  and unique synapses: ``ceil(inputs/lanes) * ceil(outputs/filters_per_pass)``
  compute cycles.  When the layer's synapses exceed total SB capacity and a
  finite off-chip bandwidth is configured, streaming can bound the layer
  instead (off by default: the paper's conv-dominated activity breakdowns
  imply perfectly overlapped synapse prefetch — see DESIGN.md);
* ReLU is fused into the producing layer; dropout, concat and softmax are
  free or negligible (softmax runs on the host in DaDianNao).
"""

from __future__ import annotations

from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters
from repro.hw.timing_types import LayerTiming
from repro.nn.network import LayerKind, Network

__all__ = ["other_layer_timing", "other_layers_timing"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def other_layer_timing(
    network: Network, layer_name: str, config: ArchConfig
) -> LayerTiming | None:
    """Timing for one non-conv layer; None if the layer costs nothing."""
    layer = network.layers[network.index_of(layer_name)]
    counters = ActivityCounters()

    if layer.kind in (LayerKind.MAXPOOL, LayerKind.AVGPOOL):
        depth, in_y, in_x = network.input_shape_of(layer_name)
        neurons = depth * in_y * in_x
        per_cycle = config.num_units * config.neuron_lanes
        cycles = _ceil_div(neurons, per_cycle)
        counters.add("adds", neurons)  # comparators / accumulators
        counters.add("nm_reads", _ceil_div(neurons, config.neuron_lanes))
        out_d, out_y, out_x = network.output_shape(layer_name)
        counters.add("nm_writes", _ceil_div(out_d * out_y * out_x, config.neuron_lanes))
    elif layer.kind == LayerKind.LRN:
        depth, in_y, in_x = network.input_shape_of(layer_name)
        neurons = depth * in_y * in_x
        per_cycle = config.num_units * config.neuron_lanes
        cycles = 2 * _ceil_div(neurons, per_cycle)
        counters.add("mults", neurons * 2)  # squares + scale
        counters.add("nm_reads", _ceil_div(neurons, config.neuron_lanes))
        counters.add("nm_writes", _ceil_div(neurons, config.neuron_lanes))
    elif layer.kind == LayerKind.FC:
        depth, in_y, in_x = network.input_shape_of(layer_name)
        inputs = depth * in_y * in_x
        outputs = layer.num_filters
        compute = _ceil_div(inputs, config.neuron_lanes) * _ceil_div(
            outputs, config.filters_per_pass
        )
        cycles = compute
        synapse_bytes = inputs * outputs * (config.data_bits // 8)
        if (
            config.offchip_gbytes_per_sec is not None
            and synapse_bytes > config.sb_bytes_total
        ):
            bytes_per_cycle = config.offchip_gbytes_per_sec / config.frequency_ghz
            cycles = max(compute, int(synapse_bytes / bytes_per_cycle))
        counters.add("mults", inputs * outputs)
        counters.add("adds", inputs * outputs)
        counters.add("sb_reads", inputs * outputs / config.neuron_lanes)
        counters.add("nm_reads", _ceil_div(inputs, config.neuron_lanes))
        counters.add("nm_writes", _ceil_div(outputs, config.neuron_lanes))
    elif layer.kind == LayerKind.SOFTMAX:
        return None  # host-side in DaDianNao
    else:  # relu (fused), dropout, concat: no cycles
        return None

    events = float(cycles * config.num_units * config.neuron_lanes)
    return LayerTiming(
        name=layer_name,
        kind=layer.kind,
        cycles=cycles,
        lane_events={"other": events},
        counters=counters,
    )


def other_layers_timing(network: Network, config: ArchConfig) -> list[LayerTiming]:
    """Timings for every non-conv layer of the network (skipping free ones)."""
    timings = []
    for layer in network.layers:
        if layer.is_conv:
            continue
        timing = other_layer_timing(network, layer.name, config)
        if timing is not None:
            timings.append(timing)
    return timings

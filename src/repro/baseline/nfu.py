"""The DaDianNao Neural Functional Unit (NFU), Section IV-A / Fig. 5(a).

One NFU processes, per cycle, ``neuron_lanes`` input neurons against
``neuron_lanes x filters_per_unit`` synapses (16 x 256 in the paper): each
neuron lane broadcasts its neuron to one synapse sublane of every filter
lane, the 256 multipliers fire, and one adder tree per filter lane reduces
its ``neuron_lanes`` products together with the partial sum read from
NBout.  All lanes advance in lock step — the coupling that prevents the
baseline from skipping zero-valued neurons.
"""

from __future__ import annotations

import numpy as np

from repro.hw.buffers import PartialSumBuffer
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters
from repro.hw.memory import SynapseBuffer

__all__ = ["NFU"]


class NFU:
    """One baseline unit: lock-step lanes, a private SB, an NBout."""

    def __init__(
        self,
        config: ArchConfig,
        sb_columns: np.ndarray,
        counters: ActivityCounters | None = None,
    ):
        """``sb_columns`` has shape ``(num_columns, filters_per_unit,
        neuron_lanes)``: column ``c`` holds, for every filter lane, the
        synapses matching fetch block ``c`` of the window."""
        self.config = config
        self.counters = counters if counters is not None else ActivityCounters()
        flat = sb_columns.reshape(sb_columns.shape[0], -1)
        self.sb = SynapseBuffer(columns=flat, counters=self.counters)
        self._col_shape = sb_columns.shape[1:]
        self.nbout = PartialSumBuffer(config.filters_per_unit, counters=self.counters)
        self._column = 0

    def reset_window(self) -> None:
        """Start a new window: rewind the SB pointer, clear partial sums."""
        self._column = 0
        self.nbout.drain()

    def process_fetch_block(self, neurons: np.ndarray) -> None:
        """One cycle: multiply a fetch block against the current SB column.

        ``neurons`` has ``neuron_lanes`` entries (zero padded).  Every
        multiplier fires regardless of value — the baseline performs the
        ineffectual products.
        """
        lanes = self.config.neuron_lanes
        if neurons.shape != (lanes,):
            raise ValueError(f"fetch block must have {lanes} neurons")
        column = self.sb.read_column(self._column).reshape(self._col_shape)
        self._column += 1
        products = column * neurons[np.newaxis, :]  # (filters, lanes)
        self.counters.add("mults", products.size)
        self.counters.add("adds", products.size)
        self.counters.add("nbin_reads", lanes)
        partial = products.sum(axis=1)
        for f in range(self.config.filters_per_unit):
            self.nbout.accumulate(f, float(partial[f]))

    def window_outputs(self) -> np.ndarray:
        """Drain NBout: the unit's output neurons for the finished window."""
        return self.nbout.drain()

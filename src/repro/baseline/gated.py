"""A zero-gating baseline: Eyeriss-style power gating without skipping.

Section VI contrasts CNV with Eyeriss, which "gates zero neuron
computations to save power but does not skip them as CNV does".  This
comparator makes that distinction quantitative: it is DaDianNao with
zero-operand multipliers (and their adder-tree inputs and SB reads)
clock-gated — identical cycle counts to the baseline, reduced dynamic
energy.  Comparing the three designs separates CNV's *time* benefit from
its *energy* benefit.
"""

from __future__ import annotations

from repro.baseline.timing import baseline_conv_timing, conv_works_from_inputs
from repro.baseline.other_layers import other_layers_timing
from repro.baseline.workload import ConvWork
from repro.hw.config import ArchConfig
from repro.hw.counters import ActivityCounters
from repro.hw.timing_types import LayerTiming, NetworkTiming
from repro.nn.network import Network

__all__ = ["gated_conv_timing", "gated_network_timing"]

#: Activity that a gated zero-operand lane does not consume.
_GATED_COUNTERS = ("mults", "adds", "sb_reads")


def gated_conv_timing(work: ConvWork, config: ArchConfig) -> LayerTiming:
    """Baseline timing with zero-operand datapath activity gated off."""
    timing = baseline_conv_timing(work, config)
    events = timing.lane_events
    if "conv1" in events:
        # conv1 inputs are image pixels; effectively nothing gates.
        return LayerTiming(
            name=timing.name,
            kind=timing.kind,
            cycles=timing.cycles,
            lane_events=dict(events),
            counters=timing.counters,
        )
    total = events.get("nonzero", 0.0) + events.get("zero", 0.0)
    effectual = events.get("nonzero", 0.0) / total if total else 1.0
    counters = ActivityCounters()
    for name, value in timing.counters.as_dict().items():
        counters.add(name, value * effectual if name in _GATED_COUNTERS else value)
    return LayerTiming(
        name=timing.name,
        kind=timing.kind,
        cycles=timing.cycles,  # gating never saves a cycle
        lane_events=dict(events),
        counters=counters,
    )


def gated_network_timing(
    network: Network,
    conv_inputs: dict,
    config: ArchConfig,
) -> NetworkTiming:
    """Full-network timing of the gating comparator."""
    layers = [
        gated_conv_timing(work, config)
        for work in conv_works_from_inputs(network, conv_inputs)
    ]
    layers.extend(other_layers_timing(network, config))
    return NetworkTiming(
        network=network.name, architecture="dadiannao-gated", layers=layers
    )

"""Fig. 9 — speedup of CNV over the DaDianNao baseline.

Paper: 1.24x (google) to 1.55x (cnnS), 1.37x average from zero skipping
alone; 1.52x average with lossless dynamic pruning (CNV + Pruning).
"""

from __future__ import annotations

import numpy as np

from repro.core.pruning import raw_to_real
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentResult
from repro.experiments.thresholds import lossless_thresholds

__all__ = ["run", "PAPER_SPEEDUPS"]

#: Fig. 9 values quoted in the text (min/max/mean given; per-network bars
#: for the rest are approximate readings used only for shape comparison).
PAPER_SPEEDUPS = {
    "alex": 1.37,
    "google": 1.24,
    "nin": 1.30,
    "vgg19": 1.42,
    "cnnM": 1.40,
    "cnnS": 1.55,
    "average": 1.37,
}

PAPER_PRUNING_SPEEDUPS = {
    "alex": 1.53,
    "google": 1.37,
    "nin": 1.39,
    "vgg19": 1.57,
    "cnnM": 1.56,
    "cnnS": 1.75,
    "average": 1.52,
}


def run(ctx: ExperimentContext, with_pruning: bool = True) -> ExperimentResult:
    rows = []
    plain: list[float] = []
    pruned: list[float] = []
    for name in ctx.config.networks:
        per_image = ctx.speedups_across_images(name)
        speedup = float(np.mean(per_image))
        plain.append(speedup)
        row = {
            "network": name,
            "CNV": speedup,
            "std": float(np.std(per_image)),
            "paper_CNV": PAPER_SPEEDUPS.get(name, float("nan")),
        }
        if with_pruning:
            point = lossless_thresholds(ctx, name)
            thresholds = {
                k: raw_to_real(v) for k, v in point.raw_thresholds.items() if v
            }
            pruning_speedup = ctx.speedup(name, thresholds)
            pruned.append(pruning_speedup)
            row["CNV+Pruning"] = pruning_speedup
            row["paper_CNV+Pruning"] = PAPER_PRUNING_SPEEDUPS.get(name, float("nan"))
        rows.append(row)
    summary = {
        "network": "average",
        "CNV": float(np.mean(plain)),
        "paper_CNV": 1.37,
    }
    if with_pruning:
        summary["CNV+Pruning"] = float(np.mean(pruned))
        summary["paper_CNV+Pruning"] = 1.52
    rows.append(summary)
    return ExperimentResult(
        experiment="fig9",
        title="Speedup of CNV over the baseline",
        rows=rows,
        notes="paper gives exact values for min (google 1.24), max (cnnS 1.55) "
        "and the mean (1.37 / 1.52 with pruning); other bars are readings.",
    )

"""Fig. 14 — accuracy vs speedup trade-off from dynamic neuron pruning.

Paper: every network has an initial lossless region; past it, accuracy
decays roughly exponentially with speedup (-1% relative accuracy buys
1.60x average, -10% buys 1.87x).

Two reproductions are reported:

* the six calibrated networks, sweeping the percentile knob of
  :mod:`repro.experiments.thresholds` with top-1 prediction stability as
  the relative-accuracy proxy (DESIGN.md substitution); and
* the trained small CNN, running the paper's actual greedy threshold
  search (:class:`repro.core.pruning.ThresholdSearcher`) against genuine
  test-set accuracy, end to end through the same inference engine and
  cycle models.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.timing import baseline_network_timing
from repro.core.pruning import PruningPoint, ThresholdSearcher, raw_to_real
from repro.core.timing import cnv_network_timing
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentResult
from repro.experiments.thresholds import DEFAULT_DELTAS, sweep_deltas
from repro.hw.config import ArchConfig
from repro.nn.engine import IncrementalForwardEngine, slice_result

__all__ = ["run", "smallcnn_tradeoff", "SmallCnnEvaluator", "SMALLCNN_ARCH"]

#: Node geometry proportioned to the small CNN's 8-24 channel layers, the
#: same layer-depth-to-lane ratio the paper's 256-deep layers have on the
#: 16-lane node.  Running a 24x24x8 network on the full 4096-multiplier
#: node would leave most lanes structurally idle and say nothing about
#: pruning.
SMALLCNN_ARCH = ArchConfig(
    num_units=4, neuron_lanes=4, filters_per_unit=4, brick_size=4
)


class SmallCnnEvaluator:
    """Evaluation callback for the greedy search on the trained small CNN.

    ``evaluate(raw_thresholds) -> (accuracy, speedup)``: accuracy over the
    held-out shape test set, speedup as mean baseline/CNV cycles over a
    subset of test images (baseline cycles are value-independent).
    """

    def __init__(
        self,
        train_result,
        arch: ArchConfig | None = None,
        accuracy_images: int = 96,
        timing_images: int = 4,
        seed: int = 11,
    ):
        from repro.nn.datasets import ShapeDataset

        self.network = train_result.network
        self.store = train_result.store
        self.arch = arch if arch is not None else SMALLCNN_ARCH
        dataset = ShapeDataset()
        images, labels = dataset.batch(accuracy_images, seed=seed)
        self.images = images
        self.labels = labels
        self.num_timing_images = timing_images
        # One incremental engine over the whole accuracy set: each greedy
        # trial perturbs a single layer's threshold, so everything upstream
        # replays from the engine's signature cache, and all 96 images run
        # through one batched pass instead of 96 forwards.
        self.engine = IncrementalForwardEngine(
            self.network, self.store, np.stack(images)
        )
        first = slice_result(self.engine.run(collect_conv_inputs=True), 0)
        self._baseline_cycles = baseline_network_timing(
            self.network, first.conv_inputs, self.arch
        ).total_cycles
        self.prunable_layers = [
            layer.name for layer in self.network.conv_layers if layer.fused_relu
        ]

    def __call__(self, raw_thresholds: dict[str, int]) -> tuple[float, float]:
        thresholds = {
            name: raw_to_real(raw) for name, raw in raw_thresholds.items() if raw
        }
        result = self.engine.run(
            thresholds=thresholds, collect_conv_inputs=True, keep_outputs=False
        )
        predictions = np.argmax(result.logits, axis=1)
        correct = int((predictions == np.asarray(self.labels)).sum())
        accuracy = correct / len(self.images)

        cnv_cycles = []
        for index in range(self.num_timing_images):
            conv_inputs = {
                name: arr[index] for name, arr in result.conv_inputs.items()
            }
            cnv_cycles.append(
                cnv_network_timing(self.network, conv_inputs, self.arch).total_cycles
            )
        speedup = self._baseline_cycles / float(np.mean(cnv_cycles))
        return accuracy, speedup


def smallcnn_tradeoff(
    ctx: ExperimentContext,
    tolerances: tuple[float, ...] = (0.0, 0.01, 0.05, 0.10),
    epochs: int = 4,
    train_count: int = 384,
) -> list[PruningPoint]:
    """Run the real greedy search on the trained small CNN.

    Returns one operating point per tolerance (relative accuracy drop).
    The full search (training + greedy exploration) is the costliest
    network-independent unit of the harness, so its operating points are
    persisted in the content-addressed artifact cache.
    """
    from dataclasses import asdict

    from repro.nn.training import train_small_cnn

    params = {
        "tolerances": list(tolerances),
        "epochs": epochs,
        "train_count": train_count,
        "arch": asdict(SMALLCNN_ARCH),
    }
    cached = ctx.artifacts.load("smallcnn_tradeoff", **params)
    if cached is not None:
        return [
            PruningPoint(
                raw_thresholds={k: int(v) for k, v in p["raw_thresholds"].items()},
                accuracy=p["accuracy"],
                speedup=p["speedup"],
            )
            for p in cached
        ]

    result = train_small_cnn(
        train_count=train_count, epochs=epochs, seed=ctx.config.seed
    )
    evaluator = SmallCnnEvaluator(result)
    searcher = ThresholdSearcher(
        evaluate=evaluator, layer_names=evaluator.prunable_layers
    )
    points = searcher.sweep(list(tolerances))
    ctx.artifacts.store(
        "smallcnn_tradeoff",
        [
            {
                "raw_thresholds": p.raw_thresholds,
                "accuracy": p.accuracy,
                "speedup": p.speedup,
            }
            for p in points
        ],
        **params,
    )
    return points


def run(
    ctx: ExperimentContext,
    deltas: tuple[float, ...] = DEFAULT_DELTAS,
    include_smallcnn: bool | None = None,
) -> ExperimentResult:
    if include_smallcnn is None:
        include_smallcnn = ctx.config.smallcnn
    rows = []
    for name in ctx.config.networks:
        for point in sweep_deltas(ctx, name, deltas):
            rows.append(
                {
                    "network": name,
                    "knob": point.delta,
                    "relative_accuracy": point.stability,
                    "speedup": point.speedup,
                }
            )
    if include_smallcnn:
        for tolerance, point in zip(
            (0.0, 0.01, 0.05, 0.10), smallcnn_tradeoff(ctx)
        ):
            rows.append(
                {
                    "network": "smallcnn(real)",
                    "knob": tolerance,
                    "relative_accuracy": point.accuracy,
                    "speedup": point.speedup,
                }
            )
    return ExperimentResult(
        experiment="fig14",
        title="Accuracy vs speedup trade-off from pruning neurons",
        rows=rows,
        notes="six networks: top-1 stability vs the unpruned network "
        "(proxy for relative accuracy); smallcnn: true test accuracy via "
        "the paper's greedy threshold search.",
    )

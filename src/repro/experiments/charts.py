"""ASCII chart rendering for the regenerated figures.

The paper's results are figures, not tables; ``cnvlutin-experiments
--charts`` renders each regenerated figure as a terminal chart: horizontal
bars for Fig. 1/9/13, stacked activity/energy bars for Fig. 10/12, and a
scatter for the Fig. 14 trade-off.  Pure text, no plotting dependencies.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult

__all__ = ["bar_chart", "stacked_bar_chart", "scatter_chart", "render"]

_BLOCKS = "█"
_STACK_GLYPHS = {
    "other": "░",
    "conv1": "▒",
    "nonzero": "█",
    "zero": "·",
    "stall": "x",
    "nm": "█",
    "sb": "▓",
    "logic": "▒",
    "sram": "░",
}


def bar_chart(
    items: list[tuple[str, float]],
    width: int = 48,
    reference: float | None = None,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal bar chart; an optional reference value draws a marker."""
    if not items:
        return "(no data)"
    peak = max(value for _, value in items)
    scale_max = max(peak, reference or 0.0) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = []
    for label, value in items:
        bar_len = int(round(width * value / scale_max))
        bar = _BLOCKS * bar_len
        if reference is not None:
            ref_pos = int(round(width * reference / scale_max))
            if ref_pos >= len(bar):
                bar = bar.ljust(ref_pos) + "|"
        lines.append(
            f"{label.ljust(label_width)}  {bar} {value_format.format(value)}"
        )
    if reference is not None:
        lines.append(f"{' ' * label_width}  ('|' marks {value_format.format(reference)})")
    return "\n".join(lines)


def stacked_bar_chart(
    rows: list[tuple[str, dict[str, float]]],
    series: list[str],
    width: int = 60,
) -> str:
    """Stacked horizontal bars, one row per (label, {series: value})."""
    if not rows:
        return "(no data)"
    total_max = max(sum(values.get(s, 0.0) for s in series) for _, values in rows)
    total_max = total_max or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, values in rows:
        bar = ""
        for s in series:
            seg = int(round(width * values.get(s, 0.0) / total_max))
            bar += _STACK_GLYPHS.get(s, "#") * seg
        total = sum(values.get(s, 0.0) for s in series)
        lines.append(f"{label.ljust(label_width)}  {bar} {total:.2f}")
    legend = "  ".join(f"{_STACK_GLYPHS.get(s, '#')}={s}" for s in series)
    lines.append(f"{' ' * label_width}  [{legend}]")
    return "\n".join(lines)


def scatter_chart(
    points: list[tuple[float, float, str]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Scatter plot; each point's label's first character is its glyph."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, label in points:
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = (label or "*")[0]
    lines = [f"{y_label}: {y_min:.2f} .. {y_max:.2f}"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.2f} .. {x_max:.2f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# per-experiment dispatch
# ----------------------------------------------------------------------


def _render_fig1(result: ExperimentResult) -> str:
    items = [(r["network"], r["zero_fraction"]) for r in result.rows]
    return bar_chart(items, reference=0.44, value_format="{:.0%}")


def _render_fig9(result: ExperimentResult) -> str:
    items = [(r["network"], r["CNV"]) for r in result.rows]
    chart = bar_chart(items, reference=1.37)
    if "CNV+Pruning" in result.rows[0]:
        pruned = [(r["network"], r["CNV+Pruning"]) for r in result.rows]
        chart += "\n\nwith lossless pruning:\n" + bar_chart(pruned, reference=1.52)
    return chart


def _render_fig10(result: ExperimentResult) -> str:
    series = ["other", "conv1", "nonzero", "zero", "stall"]
    rows = [
        (f"{r['network']}/{r['arch'][:4]}", {s: r[s] for s in series})
        for r in result.rows
    ]
    return stacked_bar_chart(rows, series)


def _render_fig11(result: ExperimentResult) -> str:
    items = [
        (r["component"], r["cnv_mm2"] / r["baseline_mm2"] - 1.0)
        for r in result.rows
        if r["component"] != "total"
    ]
    return bar_chart(items, value_format="{:+.1%}")


def _render_fig12(result: ExperimentResult) -> str:
    rows = []
    for arch in ("baseline", "cnv"):
        values = {
            r["component"]: r[f"{arch}_static"] + r[f"{arch}_dynamic"]
            for r in result.rows
            if r["component"] != "total"
        }
        rows.append((arch, values))
    return stacked_bar_chart(rows, ["nm", "sb", "logic", "sram"])


def _render_fig13(result: ExperimentResult) -> str:
    edp = [(r["network"], r["EDP_gain"]) for r in result.rows]
    ed2p = [(r["network"], r["ED2P_gain"]) for r in result.rows]
    return (
        "EDP improvement:\n"
        + bar_chart(edp, reference=1.47)
        + "\n\nED2P improvement:\n"
        + bar_chart(ed2p, reference=2.01)
    )


def _render_fig14(result: ExperimentResult) -> str:
    points = [
        (r["speedup"], r["relative_accuracy"], r["network"]) for r in result.rows
    ]
    return scatter_chart(
        points, x_label="speedup", y_label="relative accuracy"
    )


_RENDERERS = {
    "fig1": _render_fig1,
    "fig9": _render_fig9,
    "fig10": _render_fig10,
    "fig11": _render_fig11,
    "fig12": _render_fig12,
    "fig13": _render_fig13,
    "fig14": _render_fig14,
}


def render(result: ExperimentResult) -> str | None:
    """Chart for one experiment result, or None for table-only results."""
    renderer = _RENDERERS.get(result.experiment)
    if renderer is None:
        return None
    return renderer(result)

"""One module per paper table/figure, plus the shared context and runner.

=========  ==========================================================
fig1       zero-valued conv-input neuron fractions (Section II)
table1     networks used
fig9       CNV speedup over DaDianNao (+ lossless pruning)
fig10      execution-activity breakdown
fig11      area breakdown (+4.49% overhead)
fig12      energy/power breakdown
fig13      EDP / ED2P improvements
table2     lossless per-layer pruning thresholds
fig14      accuracy vs speedup pruning trade-off
=========  ==========================================================
"""

from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentResult, format_table

__all__ = ["PaperConfig", "ExperimentContext", "ExperimentResult", "format_table"]

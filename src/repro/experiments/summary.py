"""Headline summary: the paper's claims against this run's measurements.

Collects the handful of numbers the paper's abstract leads with from a set
of experiment results and prints them side by side with a pass/deviation
verdict per claim.  Shape criteria follow the reproduction goal in
EXPERIMENTS.md: direction and rough magnitude, not absolute matching.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, format_table

__all__ = ["headline_summary"]


def _find(results: list[ExperimentResult], experiment: str) -> ExperimentResult | None:
    for result in results:
        if result.experiment == experiment:
            return result
    return None


def _row(results, experiment, key, row_match):
    result = _find(results, experiment)
    if result is None:
        return None
    for row in result.rows:
        if all(row.get(k) == v for k, v in row_match.items()):
            return row.get(key)
    return None


def headline_summary(results: list[ExperimentResult]) -> str:
    """The abstract's claims vs this run, as a table (empty string if the
    needed experiments were not part of the run)."""
    claims = []

    zero = _row(results, "fig1", "zero_fraction", {"network": "average"})
    if zero is not None:
        claims.append(("mean zero-neuron fraction", 0.44, zero, abs(zero - 0.44) < 0.05))

    speedup = _row(results, "fig9", "CNV", {"network": "average"})
    if speedup is not None:
        claims.append(("mean CNV speedup", 1.37, speedup, 1.2 < speedup < 1.6))

    pruned = _row(results, "fig9", "CNV+Pruning", {"network": "average"})
    if pruned is not None and speedup is not None:
        claims.append(
            ("mean speedup with lossless pruning", 1.52, pruned, pruned > speedup)
        )

    area = _row(results, "fig11", "delta", {"component": "total"})
    if area is not None:
        claims.append(("CNV area overhead", 0.0449, area, abs(area - 0.0449) < 0.005))

    edp = _row(results, "fig13", "EDP_gain", {"network": "average"})
    if edp is not None:
        claims.append(("mean EDP improvement", 1.47, edp, 1.2 < edp < 1.8))

    ed2p = _row(results, "fig13", "ED2P_gain", {"network": "average"})
    if ed2p is not None:
        claims.append(("mean ED2P improvement", 2.01, ed2p, 1.6 < ed2p < 2.6))

    if not claims:
        return ""
    rows = [
        {
            "claim": name,
            "paper": paper,
            "measured": measured,
            "shape": "ok" if ok else "DEVIATES",
        }
        for name, paper, measured, ok in claims
    ]
    return "== headline: paper claims vs this run ==\n" + format_table(rows)

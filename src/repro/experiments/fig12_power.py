"""Fig. 12 — power/energy breakdown normalized to the baseline.

The paper reports static, dynamic and overall consumption split across NM,
SB, logic and SRAM, with three quoted deltas: NM +53%, SB dynamic power
-18%, unit SRAM/logic +2%, and overall CNV 7% below the baseline.  Here
the breakdown is computed from measured activity counters and the
calibrated component model, averaged over the configured networks; both
the energy and average-power views are reported (see DESIGN.md on the
paper's Fig. 12/Fig. 13 normalization).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentResult
from repro.power.components import COMPONENTS
from repro.power.energy import energy_report

__all__ = ["run", "network_energy"]


def network_energy(ctx: ExperimentContext, name: str):
    """(baseline EnergyReport, cnv EnergyReport) for one network."""
    base = ctx.baseline_timing(name)
    cnv = ctx.cnv_timing(name)
    freq = ctx.arch.frequency_ghz
    base_rep = energy_report(base.counters(), base.seconds(freq), "dadiannao")
    cnv_rep = energy_report(cnv.counters(), cnv.seconds(freq), "cnvlutin")
    return base_rep, cnv_rep


def run(ctx: ExperimentContext) -> ExperimentResult:
    sums = {
        (arch, kind, comp): 0.0
        for arch in ("baseline", "cnv")
        for kind in ("static", "dynamic")
        for comp in COMPONENTS
    }
    base_totals, cnv_totals = [], []
    power_ratios = []
    for name in ctx.config.networks:
        base_rep, cnv_rep = network_energy(ctx, name)
        for comp in COMPONENTS:
            sums[("baseline", "static", comp)] += base_rep.static_j[comp]
            sums[("baseline", "dynamic", comp)] += base_rep.dynamic_j[comp]
            sums[("cnv", "static", comp)] += cnv_rep.static_j[comp]
            sums[("cnv", "dynamic", comp)] += cnv_rep.dynamic_j[comp]
        base_totals.append(base_rep.total_j)
        cnv_totals.append(cnv_rep.total_j)
        power_ratios.append(cnv_rep.average_power_w / base_rep.average_power_w)

    base_total = sum(base_totals)
    rows = []
    for comp in COMPONENTS:
        base_c = (
            sums[("baseline", "static", comp)] + sums[("baseline", "dynamic", comp)]
        )
        cnv_c = sums[("cnv", "static", comp)] + sums[("cnv", "dynamic", comp)]
        rows.append(
            {
                "component": comp,
                "baseline_static": sums[("baseline", "static", comp)] / base_total,
                "baseline_dynamic": sums[("baseline", "dynamic", comp)] / base_total,
                "cnv_static": sums[("cnv", "static", comp)] / base_total,
                "cnv_dynamic": sums[("cnv", "dynamic", comp)] / base_total,
                "delta": cnv_c / base_c - 1.0,
            }
        )
    energy_ratio = sum(cnv_totals) / base_total
    rows.append(
        {
            "component": "total",
            "baseline_static": sum(sums[("baseline", "static", c)] for c in COMPONENTS)
            / base_total,
            "baseline_dynamic": sum(
                sums[("baseline", "dynamic", c)] for c in COMPONENTS
            )
            / base_total,
            "cnv_static": sum(sums[("cnv", "static", c)] for c in COMPONENTS)
            / base_total,
            "cnv_dynamic": sum(sums[("cnv", "dynamic", c)] for c in COMPONENTS)
            / base_total,
            "delta": energy_ratio - 1.0,
        }
    )
    return ExperimentResult(
        experiment="fig12",
        title="Energy breakdown normalized to baseline",
        rows=rows,
        notes=(
            f"CNV/baseline energy ratio {energy_ratio:.3f} "
            f"(paper overall: 0.93); mean average-power ratio "
            f"{float(np.mean(power_ratios)):.3f}. Paper deltas: NM +53%, "
            "SB dynamic -18%, SRAM/logic +2%."
        ),
        extra={"energy_ratio": energy_ratio},
    )

"""Fig. 13 — EDP and ED²P improvement of CNV over DaDianNao.

Paper: 1.47x EDP and 2.01x ED²P on average.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.fig12_power import network_energy
from repro.experiments.report import ExperimentResult
from repro.power.metrics import EfficiencyMetrics, improvement

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    edps, ed2ps = [], []
    freq = ctx.arch.frequency_ghz
    for name in ctx.config.networks:
        base_rep, cnv_rep = network_energy(ctx, name)
        base_metrics = EfficiencyMetrics(
            energy_j=base_rep.total_j,
            delay_s=ctx.baseline_timing(name).seconds(freq),
        )
        cnv_metrics = EfficiencyMetrics(
            energy_j=cnv_rep.total_j,
            delay_s=ctx.cnv_timing(name).seconds(freq),
        )
        ratios = improvement(base_metrics, cnv_metrics)
        edps.append(ratios["edp"])
        ed2ps.append(ratios["ed2p"])
        rows.append(
            {
                "network": name,
                "speedup": ratios["speedup"],
                "energy_gain": ratios["energy"],
                "EDP_gain": ratios["edp"],
                "ED2P_gain": ratios["ed2p"],
            }
        )
    rows.append(
        {
            "network": "average",
            "speedup": float(
                np.mean([r["speedup"] for r in rows])
            ),
            "energy_gain": float(np.mean([r["energy_gain"] for r in rows])),
            "EDP_gain": float(np.mean(edps)),
            "ED2P_gain": float(np.mean(ed2ps)),
        }
    )
    return ExperimentResult(
        experiment="fig13",
        title="EDP and ED2P improvement of CNV over DaDianNao",
        rows=rows,
        notes="paper averages: EDP 1.47x, ED2P 2.01x.",
    )

"""Table I — the evaluated networks and their conv-layer counts."""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentResult
from repro.nn.models import TABLE1_SOURCES

__all__ = ["run", "PAPER_CONV_LAYERS"]

#: Conv-layer counts from the paper's Table I.
PAPER_CONV_LAYERS = {
    "alex": 5,
    "google": 59,
    "nin": 12,
    "vgg19": 16,
    "cnnM": 5,
    "cnnS": 5,
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    for name in ctx.config.networks:
        network = ctx.network_structure(name)
        rows.append(
            {
                "network": name,
                "conv_layers": network.num_conv_layers,
                "paper": PAPER_CONV_LAYERS.get(name, "-"),
                "source": TABLE1_SOURCES.get(name, "custom"),
            }
        )
    return ExperimentResult(
        experiment="table1",
        title="Networks used",
        rows=rows,
    )

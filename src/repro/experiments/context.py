"""Shared experiment state: calibrated networks, forwards, timings.

Building a paper figure needs the same expensive artifacts over and over —
a calibrated network, forward passes, baseline/CNV timings.  The
:class:`ExperimentContext` builds each once and caches it in memory, and
persists every *derived* artifact (calibration shifts, sparsity reports,
timing summaries, position statistics) to the content-addressed
:class:`~repro.experiments.manifest.ArtifactCache` so parallel workers
and later processes never recompute what any prior process already
produced.  Raw forward activations are deliberately not persisted (they
are large and cheap to avoid: every consumer reads a small derived
artifact instead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import (
    DEFAULT_WEIGHT_SPARSITY,
    get_backend,
    prune_conv_weights,
)
from repro.baseline.timing import baseline_network_timing
from repro.core.timing import cnv_network_timing
from repro.experiments.config import PaperConfig
from repro.experiments.manifest import ArtifactCache, config_fingerprint
from repro.hw.config import PAPER_CONFIG, ArchConfig
from repro.hw.counters import ActivityCounters
from repro.reliability import FaultInjector
from repro.hw.timing_types import LayerTiming, NetworkTiming
from repro.nn.calibration import (
    PAPER_ZERO_FRACTIONS,
    SparsityReport,
    calibrate_network,
    measure_zero_fractions,
)
from repro.nn.datasets import natural_images
from repro.nn.engine import IncrementalForwardEngine, slice_result
from repro.nn.inference import ForwardResult, WeightStore, init_weights
from repro.nn.models import build_network
from repro.nn.network import Network

__all__ = [
    "NetworkContext",
    "ExperimentContext",
    "thresholds_key",
    "timing_to_payload",
    "timing_from_payload",
]


def thresholds_key(thresholds: dict[str, float] | None) -> tuple:
    """Hashable cache key for a threshold configuration."""
    if not thresholds:
        return ()
    return tuple(sorted((k, float(v)) for k, v in thresholds.items() if v))


def timing_to_payload(timing: NetworkTiming) -> dict:
    """JSON-safe rendering of a NetworkTiming (exact float round-trip)."""
    return {
        "network": timing.network,
        "architecture": timing.architecture,
        "layers": [
            {
                "name": layer.name,
                "kind": layer.kind,
                "cycles": layer.cycles,
                "lane_events": dict(layer.lane_events),
                "counters": dict(layer.counters.counts),
            }
            for layer in timing.layers
        ],
    }


def timing_from_payload(payload: dict) -> NetworkTiming:
    layers = []
    for entry in payload["layers"]:
        counters = ActivityCounters()
        counters.counts.update(entry["counters"])
        layers.append(
            LayerTiming(
                name=entry["name"],
                kind=entry["kind"],
                cycles=entry["cycles"],
                lane_events=dict(entry["lane_events"]),
                counters=counters,
            )
        )
    return NetworkTiming(
        network=payload["network"],
        architecture=payload["architecture"],
        layers=layers,
    )


def _sparsity_to_payload(report: SparsityReport) -> dict:
    return {
        "network": report.network,
        "per_layer": dict(report.per_layer),
        "mac_weighted_mean": report.mac_weighted_mean,
        "per_image_means": list(report.per_image_means),
    }


def _sparsity_from_payload(payload: dict) -> SparsityReport:
    return SparsityReport(
        network=payload["network"],
        per_layer=dict(payload["per_layer"]),
        mac_weighted_mean=payload["mac_weighted_mean"],
        per_image_means=list(payload["per_image_means"]),
    )


@dataclass
class NetworkContext:
    """One calibrated network with its input images."""

    name: str
    network: Network
    store: WeightStore
    images: list[np.ndarray]


class ExperimentContext:
    """Lazily builds and caches everything the experiment modules share."""

    def __init__(
        self,
        config: PaperConfig | None = None,
        arch: ArchConfig = PAPER_CONFIG,
        artifacts: ArtifactCache | None = None,
        stores: dict[str, WeightStore] | None = None,
    ):
        self.config = config if config is not None else PaperConfig()
        self.arch = arch
        # Pre-built (typically shared-memory-attached, already calibrated)
        # weight stores: a network named here skips init_weights and
        # calibration entirely — how a serving shard reuses the router's
        # published weights without recomputing or copying them.
        self._preset_stores = dict(stores or {})
        # One injector per context: the artifact cache's fault sites
        # (cache:read / cache:write) share trial counters with the unit
        # sites the parallel runner fires against this same context.
        self.injector = FaultInjector.from_env()
        self.artifacts = (
            artifacts
            if artifacts is not None
            else ArtifactCache(
                self.config.cache_dir,
                config_fingerprint(self.config, arch),
                enabled=self.config.use_cache,
                injector=self.injector,
            )
        )
        self._networks: dict[str, NetworkContext] = {}
        self._structures: dict[str, Network] = {}
        self._engines: dict[str, IncrementalForwardEngine] = {}
        self._forwards: dict[tuple, ForwardResult] = {}
        self._baseline_timings: dict[str, object] = {}
        self._cnv_timings: dict[tuple, object] = {}
        self._backend_timings: dict[tuple, object] = {}
        self._pruned_weights: dict[tuple, dict[str, np.ndarray]] = {}
        self._sparsity: dict[str, SparsityReport] = {}
        self._position_stats: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # network construction and calibration
    # ------------------------------------------------------------------
    def network_structure(self, name: str) -> Network:
        """The layer structure only — no weights, images, or calibration.

        Consumers that just need layer names/counts (table1, threshold
        grouping, conv1 shares) use this so a cache-warm assembly pass
        never pays for weight initialization.
        """
        if name in self._networks:
            return self._networks[name].network
        if name not in self._structures:
            self._structures[name] = build_network(
                name, input_size=self.config.input_size(name)
            )
        return self._structures[name]

    def network_ctx(self, name: str) -> NetworkContext:
        if name in self._networks:
            return self._networks[name]
        network = self.network_structure(name)
        preset = self._preset_stores.get(name)
        if preset is not None:
            # The preset store is final (float32 weights + calibration
            # shifts baked in); only the deterministic input images are
            # rebuilt locally — they are derived from config seed alone.
            images = natural_images(
                network.input_shape,
                self.config.num_images,
                seed=self.config.seed + 1,
            )
            images = [img.astype(np.float32) for img in images]
            ctx = NetworkContext(
                name=name, network=network, store=preset, images=images
            )
            self._networks[name] = ctx
            return ctx
        rng = np.random.default_rng(self.config.seed)
        store = init_weights(network, rng)
        images = natural_images(
            network.input_shape, self.config.num_images, seed=self.config.seed + 1
        )

        # Single precision halves the cost of the (single-core) forward
        # sweeps; zero-pattern statistics and timing are unaffected.
        store.weights = {k: v.astype(np.float32) for k, v in store.weights.items()}
        store.biases = {k: v.astype(np.float32) for k, v in store.biases.items()}
        images = [img.astype(np.float32) for img in images]

        cached = self.artifacts.load("calib", network=name)
        if cached is not None:
            store.shifts = {
                k: np.asarray(v) if isinstance(v, list) else float(v)
                for k, v in cached.items()
            }
        else:
            calibrate_network(
                network,
                store,
                images[: min(3, len(images))],
                mean_target=PAPER_ZERO_FRACTIONS.get(name, 0.44),
            )
            self.artifacts.store(
                "calib",
                {
                    k: (v.tolist() if isinstance(v, np.ndarray) else v)
                    for k, v in store.shifts.items()
                },
                network=name,
            )

        ctx = NetworkContext(name=name, network=network, store=store, images=images)
        self._networks[name] = ctx
        return ctx

    # ------------------------------------------------------------------
    # forwards and timings
    # ------------------------------------------------------------------
    def engine(self, name: str) -> IncrementalForwardEngine:
        """Incremental batched forward engine over the network's image set.

        Every forward in this context runs through one engine per network,
        so activation prefixes are shared across images, threshold
        configurations, and the consumers below (``forward``,
        ``prediction_stability``, ``cnv_timing``, the threshold searches).
        """
        if name not in self._engines:
            ctx = self.network_ctx(name)
            self._engines[name] = IncrementalForwardEngine(
                ctx.network, ctx.store, np.stack(ctx.images), label=name
            )
        return self._engines[name]

    def forward(
        self,
        name: str,
        image_index: int = 0,
        thresholds: dict[str, float] | None = None,
    ) -> ForwardResult:
        key = (name, image_index, thresholds_key(thresholds))
        if key in self._forwards:
            return self._forwards[key]
        batched = self.engine(name).run(
            thresholds=thresholds, collect_conv_inputs=True, keep_outputs=False
        )
        result = slice_result(batched, image_index)
        # Only cache the unpruned forward — threshold sweeps would pile up
        # (the engine's own signature-keyed LRU covers the pruned configs).
        if not thresholds:
            self._forwards[key] = result
        return result

    def baseline_timing(self, name: str):
        """Baseline NetworkTiming (value-independent; computed once)."""
        if name not in self._baseline_timings:
            payload = self.artifacts.load("baseline_timing", network=name)
            if payload is not None:
                self._baseline_timings[name] = timing_from_payload(payload)
            else:
                ctx = self.network_ctx(name)
                fwd = self.forward(name, 0)
                timing = baseline_network_timing(ctx.network, fwd.conv_inputs, self.arch)
                self.artifacts.store(
                    "baseline_timing", timing_to_payload(timing), network=name
                )
                self._baseline_timings[name] = timing
            self._publish_activity(self._baseline_timings[name])
        return self._baseline_timings[name]

    def cnv_timing(
        self,
        name: str,
        thresholds: dict[str, float] | None = None,
        image_index: int = 0,
    ):
        """CNV NetworkTiming for one image under optional pruning thresholds."""
        key = (name, thresholds_key(thresholds), image_index)
        if key in self._cnv_timings:
            return self._cnv_timings[key]
        params = {
            "network": name,
            "thresholds": [list(item) for item in thresholds_key(thresholds)],
            "image_index": image_index,
        }
        payload = self.artifacts.load("cnv_timing", **params)
        if payload is not None:
            timing = timing_from_payload(payload)
        else:
            ctx = self.network_ctx(name)
            fwd = self.forward(name, image_index, thresholds=thresholds)
            timing = cnv_network_timing(ctx.network, fwd.conv_inputs, self.arch)
            self.artifacts.store("cnv_timing", timing_to_payload(timing), **params)
        self._cnv_timings[key] = timing
        # The unpruned first-image timing is the canonical activity
        # profile of (architecture, network); pruned-config variants
        # would drown it in near-duplicates.
        if not thresholds and image_index == 0:
            self._publish_activity(timing)
        return timing

    def pruned_conv_weights(
        self, name: str, sparsity: float = DEFAULT_WEIGHT_SPARSITY
    ) -> dict[str, np.ndarray]:
        """Per-conv-layer magnitude-pruned weights for the weight-sparse
        backends — a pure function of the calibrated store, so every
        process (worker, shard, direct path) derives identical masks."""
        key = (name, float(sparsity))
        if key not in self._pruned_weights:
            ctx = self.network_ctx(name)
            self._pruned_weights[key] = prune_conv_weights(
                ctx.network, ctx.store.weights, sparsity
            )
        return self._pruned_weights[key]

    def backend_timing(
        self,
        backend: str,
        name: str,
        thresholds: dict[str, float] | None = None,
        image_index: int = 0,
        weight_sparsity: float = DEFAULT_WEIGHT_SPARSITY,
    ):
        """NetworkTiming of any registered backend (registry-discovered).

        ``baseline`` and ``cnv`` delegate to their dedicated caches above
        (keeping their artifact kinds — and every existing golden file —
        byte-stable); other backends persist under the ``backend_timing``
        kind.  ``weight_sparsity`` only keys backends that model weight
        sparsity.
        """
        spec = get_backend(backend)  # raises KeyError for unknown names
        if backend == "baseline":
            return self.baseline_timing(name)
        if backend == "cnv":
            return self.cnv_timing(name, thresholds, image_index)
        key = (
            backend,
            name,
            thresholds_key(thresholds),
            image_index,
            float(weight_sparsity) if spec.needs_weights else None,
        )
        if key in self._backend_timings:
            return self._backend_timings[key]
        params = {
            "backend": backend,
            "network": name,
            "thresholds": [list(item) for item in thresholds_key(thresholds)],
            "image_index": image_index,
        }
        if spec.needs_weights:
            params["weight_sparsity"] = float(weight_sparsity)
        payload = self.artifacts.load("backend_timing", **params)
        if payload is not None:
            timing = timing_from_payload(payload)
        else:
            ctx = self.network_ctx(name)
            fwd = self.forward(name, image_index, thresholds=thresholds)
            weights = (
                self.pruned_conv_weights(name, weight_sparsity)
                if spec.needs_weights
                else None
            )
            timing = spec.network_timing(
                ctx.network, fwd.conv_inputs, self.arch, weights
            )
            self.artifacts.store(
                "backend_timing", timing_to_payload(timing), **params
            )
        self._backend_timings[key] = timing
        if not thresholds and image_index == 0:
            self._publish_activity(timing)
        return timing

    def backend_speedup(
        self,
        backend: str,
        name: str,
        thresholds: dict[str, float] | None = None,
        image_index: int = 0,
        weight_sparsity: float = DEFAULT_WEIGHT_SPARSITY,
    ) -> float:
        """Baseline-over-backend cycle ratio (the fig9_backends quantity)."""
        base = self.baseline_timing(name).total_cycles
        timing = self.backend_timing(
            backend, name, thresholds, image_index, weight_sparsity
        )
        return base / timing.total_cycles

    @staticmethod
    def _publish_activity(timing: NetworkTiming) -> None:
        """Export a timing's merged ActivityCounters as obs gauges.

        Gauges (``activity.<architecture>.<network>.<counter>``) restate
        a derived fact, so re-materializing the same timing in another
        process merges idempotently instead of double counting.
        """
        timing.counters().publish(
            f"activity.{timing.architecture}.{timing.network}"
        )

    def speedup(
        self,
        name: str,
        thresholds: dict[str, float] | None = None,
        image_index: int = 0,
    ) -> float:
        """Baseline-over-CNV cycle ratio (the Fig. 9 quantity)."""
        base = self.baseline_timing(name).total_cycles
        cnv = self.cnv_timing(name, thresholds, image_index).total_cycles
        return base / cnv

    def speedups_across_images(self, name: str) -> list[float]:
        """Per-image CNV speedups (baseline cycles are value-independent).

        CNV cycles depend on the zero pattern, which Fig. 1 shows is
        input-stable; the spread here quantifies that for the speedups.
        """
        return [
            self.speedup(name, image_index=idx)
            for idx in range(self.config.num_images)
        ]

    # ------------------------------------------------------------------
    # sparsity and pruning support
    # ------------------------------------------------------------------
    def sparsity(self, name: str) -> SparsityReport:
        """Fig. 1 statistics over all configured images."""
        if name not in self._sparsity:
            payload = self.artifacts.load("sparsity", network=name)
            if payload is not None:
                self._sparsity[name] = _sparsity_from_payload(payload)
            else:
                ctx = self.network_ctx(name)
                report = measure_zero_fractions(ctx.network, ctx.store, ctx.images)
                self.artifacts.store("sparsity", _sparsity_to_payload(report), network=name)
                self._sparsity[name] = report
        return self._sparsity[name]

    def position_stats(self, name: str) -> dict[str, float]:
        """Per-position zero statistics across the sampled inputs.

        The fraction of (non-first-layer) conv-input neuron positions that
        are zero on *every* sampled image, and on at least all-but-one —
        the Section II argument that static elimination cannot work.
        """
        if name in self._position_stats:
            return self._position_stats[name]
        payload = self.artifacts.load("position_stats", network=name)
        if payload is None:
            payload = self._compute_position_stats(name)
            self.artifacts.store("position_stats", payload, network=name)
        self._position_stats[name] = payload
        return payload

    def _compute_position_stats(self, name: str) -> dict[str, float]:
        nctx = self.network_ctx(name)
        total_images = len(nctx.images)
        if total_images < 2:
            # "Always zero across inputs" is vacuous with a single input.
            return {"always_zero": float("nan"), "near_always_zero": float("nan")}
        # One batched pass; counting zeros over the batch axis replaces the
        # per-image accumulation loop bit-identically.
        result = self.engine(name).run(collect_conv_inputs=True, keep_outputs=False)
        zero_counts = {
            layer: (arr == 0.0).sum(axis=0)
            for layer, arr in result.conv_inputs.items()
        }
        always = 0
        near_always = 0
        positions = 0
        first = nctx.network.first_conv_layers()
        for layer, counts in zero_counts.items():
            if layer in first:
                continue  # image pixels, as in the paper's neuron statistics
            positions += counts.size
            always += int((counts == total_images).sum())
            near_always += int((counts >= max(total_images - 1, 1)).sum())
        if positions == 0:
            return {"always_zero": 0.0, "near_always_zero": 0.0}
        return {
            "always_zero": always / positions,
            "near_always_zero": near_always / positions,
        }

    def logits(
        self,
        name: str,
        image_index: int = 0,
        thresholds: dict[str, float] | None = None,
    ) -> np.ndarray:
        result = self.forward(name, image_index, thresholds=thresholds)
        if result.logits is None:
            raise ValueError(f"network {name} produced no logits")
        return result.logits

    def prediction_stability(
        self, name: str, thresholds: dict[str, float] | None
    ) -> float:
        """Fraction of images whose top-1 prediction survives pruning.

        The calibrated networks have no trained accuracy, so top-1
        agreement with the unpruned network stands in for 'relative
        accuracy' (DESIGN.md substitution); the trained small CNN provides
        the genuine accuracy signal.
        """
        total = self.config.num_images
        engine = self.engine(name)
        clean = engine.run(collect_conv_inputs=False, keep_outputs=False)
        pruned = engine.run(
            thresholds=thresholds, collect_conv_inputs=False, keep_outputs=False
        )
        if clean.logits is None or pruned.logits is None:
            raise ValueError(f"network {name} produced no logits")
        agree = int(
            (
                np.argmax(clean.logits[:total], axis=1)
                == np.argmax(pruned.logits[:total], axis=1)
            ).sum()
        )
        return agree / total

    def activation_magnitudes(self, name: str) -> dict[str, np.ndarray]:
        """Per-conv-layer |non-zero| input magnitudes of the unpruned run.

        Used to place per-layer thresholds at a chosen percentile of each
        layer's live activations (the single-knob Table II calibration).
        """
        fwd = self.forward(name, 0)
        out: dict[str, np.ndarray] = {}
        for layer, arr in fwd.conv_inputs.items():
            live = np.abs(arr[arr != 0.0])
            out[layer] = live
        return out

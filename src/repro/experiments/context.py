"""Shared experiment state: calibrated networks, forwards, timings.

Building a paper figure needs the same expensive artifacts over and over —
a calibrated network, forward passes, baseline/CNV timings.  The
:class:`ExperimentContext` builds each once and caches it (calibration
shifts and timing summaries also persist to the on-disk JSON cache so
benchmark processes don't recalibrate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baseline.timing import baseline_network_timing
from repro.core.timing import cnv_network_timing
from repro.experiments.config import PaperConfig
from repro.hw.config import PAPER_CONFIG, ArchConfig
from repro.nn.calibration import (
    PAPER_ZERO_FRACTIONS,
    SparsityReport,
    calibrate_network,
    measure_zero_fractions,
)
from repro.nn.datasets import natural_images
from repro.nn.inference import ForwardResult, WeightStore, init_weights, run_forward
from repro.nn.models import build_network
from repro.nn.network import Network

__all__ = ["NetworkContext", "ExperimentContext", "thresholds_key"]


def thresholds_key(thresholds: dict[str, float] | None) -> tuple:
    """Hashable cache key for a threshold configuration."""
    if not thresholds:
        return ()
    return tuple(sorted((k, float(v)) for k, v in thresholds.items() if v))


@dataclass
class NetworkContext:
    """One calibrated network with its input images."""

    name: str
    network: Network
    store: WeightStore
    images: list[np.ndarray]


class ExperimentContext:
    """Lazily builds and caches everything the experiment modules share."""

    def __init__(self, config: PaperConfig | None = None, arch: ArchConfig = PAPER_CONFIG):
        self.config = config if config is not None else PaperConfig()
        self.arch = arch
        self._networks: dict[str, NetworkContext] = {}
        self._forwards: dict[tuple, ForwardResult] = {}
        self._baseline_timings: dict[str, object] = {}
        self._cnv_timings: dict[tuple, object] = {}
        self._sparsity: dict[str, SparsityReport] = {}

    # ------------------------------------------------------------------
    # network construction and calibration
    # ------------------------------------------------------------------
    def network_ctx(self, name: str) -> NetworkContext:
        if name in self._networks:
            return self._networks[name]
        network = build_network(name, input_size=self.config.input_size(name))
        rng = np.random.default_rng(self.config.seed)
        store = init_weights(network, rng)
        images = natural_images(
            network.input_shape, self.config.num_images, seed=self.config.seed + 1
        )

        # Single precision halves the cost of the (single-core) forward
        # sweeps; zero-pattern statistics and timing are unaffected.
        store.weights = {k: v.astype(np.float32) for k, v in store.weights.items()}
        store.biases = {k: v.astype(np.float32) for k, v in store.biases.items()}
        images = [img.astype(np.float32) for img in images]

        cached = self.config.cache_load("calib", name)
        if cached is not None:
            store.shifts = {
                k: np.asarray(v) if isinstance(v, list) else float(v)
                for k, v in cached.items()
            }
        else:
            calibrate_network(
                network,
                store,
                images[: min(3, len(images))],
                mean_target=PAPER_ZERO_FRACTIONS.get(name, 0.44),
            )
            self.config.cache_store(
                "calib",
                name,
                {
                    k: (v.tolist() if isinstance(v, np.ndarray) else v)
                    for k, v in store.shifts.items()
                },
            )

        ctx = NetworkContext(name=name, network=network, store=store, images=images)
        self._networks[name] = ctx
        return ctx

    # ------------------------------------------------------------------
    # forwards and timings
    # ------------------------------------------------------------------
    def forward(
        self,
        name: str,
        image_index: int = 0,
        thresholds: dict[str, float] | None = None,
    ) -> ForwardResult:
        key = (name, image_index, thresholds_key(thresholds))
        if key in self._forwards:
            return self._forwards[key]
        ctx = self.network_ctx(name)
        result = run_forward(
            ctx.network,
            ctx.store,
            ctx.images[image_index],
            thresholds=thresholds,
            collect_conv_inputs=True,
            keep_outputs=False,
        )
        # Only cache the unpruned forward — threshold sweeps would pile up.
        if not thresholds:
            self._forwards[key] = result
        return result

    def baseline_timing(self, name: str):
        """Baseline NetworkTiming (value-independent; computed once)."""
        if name not in self._baseline_timings:
            ctx = self.network_ctx(name)
            fwd = self.forward(name, 0)
            self._baseline_timings[name] = baseline_network_timing(
                ctx.network, fwd.conv_inputs, self.arch
            )
        return self._baseline_timings[name]

    def cnv_timing(
        self,
        name: str,
        thresholds: dict[str, float] | None = None,
        image_index: int = 0,
    ):
        """CNV NetworkTiming for one image under optional pruning thresholds."""
        key = (name, thresholds_key(thresholds), image_index)
        if key in self._cnv_timings:
            return self._cnv_timings[key]
        ctx = self.network_ctx(name)
        fwd = self.forward(name, image_index, thresholds=thresholds)
        timing = cnv_network_timing(ctx.network, fwd.conv_inputs, self.arch)
        self._cnv_timings[key] = timing
        return timing

    def speedup(
        self,
        name: str,
        thresholds: dict[str, float] | None = None,
        image_index: int = 0,
    ) -> float:
        """Baseline-over-CNV cycle ratio (the Fig. 9 quantity)."""
        base = self.baseline_timing(name).total_cycles
        cnv = self.cnv_timing(name, thresholds, image_index).total_cycles
        return base / cnv

    def speedups_across_images(self, name: str) -> list[float]:
        """Per-image CNV speedups (baseline cycles are value-independent).

        CNV cycles depend on the zero pattern, which Fig. 1 shows is
        input-stable; the spread here quantifies that for the speedups.
        """
        return [
            self.speedup(name, image_index=idx)
            for idx in range(self.config.num_images)
        ]

    # ------------------------------------------------------------------
    # sparsity and pruning support
    # ------------------------------------------------------------------
    def sparsity(self, name: str) -> SparsityReport:
        """Fig. 1 statistics over all configured images."""
        if name not in self._sparsity:
            ctx = self.network_ctx(name)
            self._sparsity[name] = measure_zero_fractions(
                ctx.network, ctx.store, ctx.images
            )
        return self._sparsity[name]

    def logits(
        self,
        name: str,
        image_index: int = 0,
        thresholds: dict[str, float] | None = None,
    ) -> np.ndarray:
        result = self.forward(name, image_index, thresholds=thresholds)
        if result.logits is None:
            raise ValueError(f"network {name} produced no logits")
        return result.logits

    def prediction_stability(
        self, name: str, thresholds: dict[str, float] | None
    ) -> float:
        """Fraction of images whose top-1 prediction survives pruning.

        The calibrated networks have no trained accuracy, so top-1
        agreement with the unpruned network stands in for 'relative
        accuracy' (DESIGN.md substitution); the trained small CNN provides
        the genuine accuracy signal.
        """
        agree = 0
        total = self.config.num_images
        for idx in range(total):
            clean = int(np.argmax(self.logits(name, idx)))
            pruned = int(np.argmax(self.logits(name, idx, thresholds=thresholds)))
            agree += clean == pruned
        return agree / total

    def activation_magnitudes(self, name: str) -> dict[str, np.ndarray]:
        """Per-conv-layer |non-zero| input magnitudes of the unpruned run.

        Used to place per-layer thresholds at a chosen percentile of each
        layer's live activations (the single-knob Table II calibration).
        """
        fwd = self.forward(name, 0)
        out: dict[str, np.ndarray] = {}
        for layer, arr in fwd.conv_inputs.items():
            live = np.abs(arr[arr != 0.0])
            out[layer] = live
        return out

"""Run every paper experiment and print (or save) the regenerated tables.

Command line::

    cnvlutin-experiments --scale reduced
    cnvlutin-experiments --scale full --only fig9,fig13 --output results.md

Each experiment prints the same rows/series the paper's table or figure
reports, alongside the paper's published values where the text quotes them.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig1_zero_fraction,
    fig9_speedup,
    fig10_breakdown,
    fig11_area,
    fig12_power,
    fig13_edp,
    fig14_pruning,
    table1_networks,
    table2_thresholds,
)
from repro.experiments.config import SCALES, PaperConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentResult

__all__ = ["EXPERIMENTS", "run_all", "main"]

#: Experiment registry, in paper order.
EXPERIMENTS = {
    "fig1": fig1_zero_fraction.run,
    "table1": table1_networks.run,
    "fig9": fig9_speedup.run,
    "fig10": fig10_breakdown.run,
    "fig11": fig11_area.run,
    "fig12": fig12_power.run,
    "fig13": fig13_edp.run,
    "table2": table2_thresholds.run,
    "fig14": fig14_pruning.run,
}


def run_all(
    config: PaperConfig | None = None,
    only: list[str] | None = None,
    verbose: bool = True,
    charts: bool = False,
) -> list[ExperimentResult]:
    """Run the selected experiments sharing one context; returns results."""
    from repro.experiments import charts as chart_mod

    ctx = ExperimentContext(config)
    names = only if only is not None else list(EXPERIMENTS)
    results = []
    for name in names:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; choose from {list(EXPERIMENTS)}")
        start = time.time()
        result = EXPERIMENTS[name](ctx)
        results.append(result)
        if verbose:
            print(result.to_table())
            if charts:
                rendered = chart_mod.render(result)
                if rendered:
                    print()
                    print(rendered)
            print(f"[{name} took {time.time() - start:.1f}s]\n")
    if verbose:
        from repro.experiments.summary import headline_summary

        summary = headline_summary(results)
        if summary:
            print(summary)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=SCALES, default="reduced")
    parser.add_argument(
        "--only",
        default=None,
        help=f"comma-separated experiment ids ({','.join(EXPERIMENTS)})",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--networks", default=None, help="comma-separated subset")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--charts", action="store_true", help="render ASCII figures")
    parser.add_argument("--output", default=None, help="also write tables to a file")
    parser.add_argument("--json", default=None, help="write results as JSON")
    args = parser.parse_args(argv)

    kwargs = {"scale": args.scale, "seed": args.seed, "use_cache": not args.no_cache}
    if args.networks:
        kwargs["networks"] = args.networks.split(",")
    config = PaperConfig(**kwargs)
    only = args.only.split(",") if args.only else None
    results = run_all(config, only=only, charts=args.charts)
    if args.output:
        with open(args.output, "w") as handle:
            for result in results:
                handle.write(result.to_table())
                handle.write("\n\n")
        print(f"wrote {args.output}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(
                "[\n" + ",\n".join(result.to_json() for result in results) + "\n]\n"
            )
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Run every paper experiment and print (or save) the regenerated tables.

Command line::

    cnvlutin-experiments --scale reduced
    cnvlutin-experiments --scale full --only fig9,fig13 --output results.md
    cnvlutin-experiments --scale reduced --jobs 4 --profile

Each experiment prints the same rows/series the paper's table or figure
reports, alongside the paper's published values where the text quotes them.

With ``--jobs N`` the run decomposes into (experiment × network) work
units executed on a process pool (see :mod:`repro.experiments.parallel`);
the final tables come from a deterministic serial assembly pass over the
shared artifact cache, so the output is identical to ``--jobs 1``.  Every
run records a :class:`~repro.experiments.manifest.RunManifest` (per-unit
wall time, worker id, cache hit/miss counters); ``--profile`` prints it
and ``--manifest PATH`` writes it as JSON.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import (
    fig1_zero_fraction,
    fig9_speedup,
    fig10_breakdown,
    fig11_area,
    fig12_power,
    fig13_edp,
    fig14_pruning,
    table1_networks,
    table2_thresholds,
)
from repro.experiments.config import SCALES, PaperConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.manifest import RunManifest, UnitRecord
from repro.experiments.report import ExperimentResult, results_to_json_doc

__all__ = ["EXPERIMENTS", "run_all", "run_all_with_manifest", "main"]

#: Experiment registry, in paper order.
EXPERIMENTS = {
    "fig1": fig1_zero_fraction.run,
    "table1": table1_networks.run,
    "fig9": fig9_speedup.run,
    "fig10": fig10_breakdown.run,
    "fig11": fig11_area.run,
    "fig12": fig12_power.run,
    "fig13": fig13_edp.run,
    "table2": table2_thresholds.run,
    "fig14": fig14_pruning.run,
}


def _validate_names(names: list[str]) -> None:
    """Reject unknown experiment names before anything runs (so a typo in
    ``--only a,b,typo`` cannot waste the experiments preceding it)."""
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {unknown!r}; choose from {list(EXPERIMENTS)}"
        )


def run_all_with_manifest(
    config: PaperConfig | None = None,
    only: list[str] | None = None,
    verbose: bool = True,
    charts: bool = False,
    jobs: int = 1,
) -> tuple[list[ExperimentResult], RunManifest]:
    """Run the selected experiments; returns (results, run manifest).

    ``jobs > 1`` schedules (experiment × network) work units on a process
    pool first (warming the content-addressed artifact cache), then
    assembles the results with the same serial loop ``jobs == 1`` uses —
    the printed tables and JSON are identical either way.
    """
    from repro.experiments import charts as chart_mod

    config = config if config is not None else PaperConfig()
    names = list(only) if only is not None else list(EXPERIMENTS)
    _validate_names(names)

    ctx = ExperimentContext(config)
    manifest = RunManifest(
        scale=config.scale,
        seed=config.seed,
        networks=list(config.networks),
        jobs=jobs,
        config_hash=ctx.artifacts.config_hash,
        experiments=names,
    )
    run_start = time.time()

    if jobs > 1:
        from repro.experiments.parallel import execute_units, plan_units

        units = plan_units(config, names)
        for record in execute_units(config, units, jobs=jobs, arch=ctx.arch):
            manifest.add_unit(record)

    phase = "assembly" if jobs > 1 else "serial"
    results = []
    for name in names:
        snapshot = ctx.artifacts.counters()
        start = time.time()
        result = EXPERIMENTS[name](ctx)
        results.append(result)
        delta = ctx.artifacts.delta_since(snapshot)
        manifest.add_unit(
            UnitRecord(
                unit=f"{name}:{phase}" if jobs > 1 else name,
                experiment=name,
                network=None,
                phase=phase,
                worker=os.getpid(),
                seconds=time.time() - start,
                cache_hits=delta["hits"],
                cache_misses=delta["misses"],
            )
        )
        if verbose:
            print(result.to_table())
            if charts:
                rendered = chart_mod.render(result)
                if rendered:
                    print()
                    print(rendered)
            print(f"[{name} took {time.time() - start:.1f}s]\n")
    manifest.wall_seconds = time.time() - run_start
    manifest.cache_stores = ctx.artifacts.stores
    if verbose:
        from repro.experiments.summary import headline_summary

        summary = headline_summary(results)
        if summary:
            print(summary)
    return results, manifest


def run_all(
    config: PaperConfig | None = None,
    only: list[str] | None = None,
    verbose: bool = True,
    charts: bool = False,
    jobs: int = 1,
) -> list[ExperimentResult]:
    """Run the selected experiments; returns results (manifest discarded)."""
    results, _ = run_all_with_manifest(
        config, only=only, verbose=verbose, charts=charts, jobs=jobs
    )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=SCALES, default="reduced")
    parser.add_argument(
        "--only",
        default=None,
        help=f"comma-separated experiment ids ({','.join(EXPERIMENTS)})",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--networks", default=None, help="comma-separated subset")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the (experiment x network) work units",
    )
    parser.add_argument(
        "--no-smallcnn", action="store_true",
        help="skip fig14's trained-small-CNN greedy search",
    )
    parser.add_argument("--charts", action="store_true", help="render ASCII figures")
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-unit wall-time/cache profile after the run",
    )
    parser.add_argument(
        "--manifest", default=None,
        help="write the run manifest JSON here "
        "(default with --jobs > 1: <cache_dir>/manifests/latest.json)",
    )
    parser.add_argument("--output", default=None, help="also write tables to a file")
    parser.add_argument("--json", default=None, help="write results as JSON")
    args = parser.parse_args(argv)

    kwargs = {
        "scale": args.scale,
        "seed": args.seed,
        "use_cache": not args.no_cache,
        "smallcnn": not args.no_smallcnn,
    }
    if args.networks:
        kwargs["networks"] = args.networks.split(",")
    config = PaperConfig(**kwargs)
    only = args.only.split(",") if args.only else None
    try:
        results, manifest = run_all_with_manifest(
            config, only=only, charts=args.charts, jobs=args.jobs
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.profile:
        print(manifest.profile_table())
        print()
    manifest_path = args.manifest
    if manifest_path is None and args.jobs > 1:
        manifest_path = config.cache_dir / "manifests" / "latest.json"
    if manifest_path is not None:
        manifest.save(manifest_path)
        print(f"wrote manifest {manifest_path}")
    if args.output:
        with open(args.output, "w") as handle:
            for result in results:
                handle.write(result.to_table())
                handle.write("\n\n")
        print(f"wrote {args.output}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(results_to_json_doc(results))
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Run every paper experiment and print (or save) the regenerated tables.

Command line::

    cnvlutin-experiments --scale reduced
    cnvlutin-experiments --scale full --only fig9,fig13 --output results.md
    cnvlutin-experiments --scale reduced --jobs 4 --profile

Each experiment prints the same rows/series the paper's table or figure
reports, alongside the paper's published values where the text quotes them.

With ``--jobs N`` the run decomposes into (experiment × network) work
units executed on a process pool (see :mod:`repro.experiments.parallel`);
the final tables come from a deterministic serial assembly pass over the
shared artifact cache, so the output is identical to ``--jobs 1``.  Every
run records a :class:`~repro.experiments.manifest.RunManifest` (per-unit
wall time, worker id, cache hit/miss counters); ``--profile`` prints it
and ``--manifest PATH`` writes it as JSON.

Observability (see :mod:`repro.obs`): ``--trace trace.json`` records
per-layer, per-unit, per-attempt, and per-experiment spans — worker
processes included — and writes them as one Chrome trace-event file;
``--metrics`` prints the self-time/cache/retry report after the run
(also available later from the saved manifest via ``repro-obs report``).
The merged metrics snapshot is embedded in the manifest (schema v3).

Fault tolerance (see :mod:`repro.reliability`): failed units retry with
exponential backoff (``--retries``), hung workers are killed after a
per-unit wall-clock budget (``--unit-timeout``), the manifest is
checkpointed incrementally as units finish, and ``--resume MANIFEST``
re-executes only the units a previous (killed or failed) run did not
complete.  Assembly degrades gracefully by default — an experiment that
still cannot compute emits an explicitly-marked FAILED table instead of
aborting the run — while ``--strict`` restores fail-fast.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import traceback
from pathlib import Path

from repro import obs
from repro.experiments import (
    fig1_zero_fraction,
    fig9_backends,
    fig9_speedup,
    fig10_breakdown,
    fig11_area,
    fig12_power,
    fig13_edp,
    fig14_pruning,
    table1_networks,
    table2_thresholds,
)
from repro.experiments.config import SCALES, PaperConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.manifest import RunManifest, UnitRecord
from repro.experiments.report import ExperimentResult, results_to_json_doc
from repro.reliability import RetryPolicy

__all__ = ["EXPERIMENTS", "run_all", "run_all_with_manifest", "main"]

#: Experiment registry, in paper order.
EXPERIMENTS = {
    "fig1": fig1_zero_fraction.run,
    "table1": table1_networks.run,
    "fig9": fig9_speedup.run,
    "fig9_backends": fig9_backends.run,
    "fig10": fig10_breakdown.run,
    "fig11": fig11_area.run,
    "fig12": fig12_power.run,
    "fig13": fig13_edp.run,
    "table2": table2_thresholds.run,
    "fig14": fig14_pruning.run,
}


def _validate_names(names: list[str]) -> None:
    """Reject unknown experiment names before anything runs (so a typo in
    ``--only a,b,typo`` cannot waste the experiments preceding it)."""
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {unknown!r}; choose from {list(EXPERIMENTS)}"
        )


def _validate_networks(networks: list[str]) -> None:
    """Reject unknown network names before anything runs — an unknown
    network is an input error (exit 2), not a degradable unit failure."""
    from repro.nn.models import NETWORK_BUILDERS

    unknown = [name for name in networks if name not in NETWORK_BUILDERS]
    if unknown:
        raise KeyError(
            f"unknown network(s) {unknown!r}; choose from {sorted(NETWORK_BUILDERS)}"
        )


def _failed_result(name: str, exc: Exception) -> ExperimentResult:
    """The explicitly-marked placeholder a failed experiment assembles to."""
    return ExperimentResult(
        experiment=name,
        title=f"{name} FAILED",
        rows=[{"status": "FAILED", "error": f"{type(exc).__name__}: {exc}"}],
        notes="experiment failed after retries; rerun with --strict to "
        "fail fast, or --resume the manifest to re-execute it",
    )


def run_all_with_manifest(
    config: PaperConfig | None = None,
    only: list[str] | None = None,
    verbose: bool = True,
    charts: bool = False,
    jobs: int = 1,
    policy: RetryPolicy | None = None,
    strict: bool = True,
    resume: Path | str | None = None,
    checkpoint_path: Path | str | None = None,
) -> tuple[list[ExperimentResult], RunManifest]:
    """Run the selected experiments; returns (results, run manifest).

    ``jobs > 1`` schedules (experiment × network) work units on a process
    pool first (warming the content-addressed artifact cache), then
    assembles the results with the same serial loop ``jobs == 1`` uses —
    the printed tables and JSON are identical either way.

    ``policy`` governs per-unit retries/timeouts (default
    :class:`~repro.reliability.RetryPolicy`).  ``resume`` names a prior
    run's manifest: its successfully-completed units are carried over
    (phase ``carried``) and only failed/missing units re-execute.
    ``checkpoint_path`` (set automatically by the CLI) persists the
    manifest incrementally after every unit, so a killed run is
    resumable.  With ``strict`` false, an experiment that still fails in
    assembly yields an explicitly-marked FAILED table instead of raising.
    """
    from repro.experiments import charts as chart_mod
    from repro.experiments.parallel import execute_units, plan_units

    config = config if config is not None else PaperConfig()
    prior = None
    if resume is not None:
        prior = RunManifest.load(resume)
        if only is None and prior.experiments:
            only = list(prior.experiments)
    names = list(only) if only is not None else list(EXPERIMENTS)
    _validate_names(names)
    _validate_networks(list(config.networks))

    ctx = ExperimentContext(config)
    manifest = RunManifest(
        scale=config.scale,
        seed=config.seed,
        networks=list(config.networks),
        jobs=jobs,
        config_hash=ctx.artifacts.config_hash,
        experiments=names,
    )
    run_start = time.perf_counter()

    completed: set[str] = set()
    carried: list[UnitRecord] = []
    if prior is not None:
        if prior.config_hash != ctx.artifacts.config_hash:
            raise ValueError(
                "--resume manifest was produced by a different configuration "
                f"(config_hash {prior.config_hash[:12]} != "
                f"{ctx.artifacts.config_hash[:12]}); rerun without --resume"
            )
        completed = prior.completed_units()
        for record in prior.units:
            if record.unit in completed and record.phase in ("parallel", "carried"):
                carried.append(
                    UnitRecord.from_dict({**record.to_dict(), "phase": "carried"})
                )
        for record in carried:
            manifest.add_unit(record)

    def checkpoint(records: list[UnitRecord]) -> None:
        if checkpoint_path is None:
            return
        snapshot = RunManifest(
            scale=manifest.scale,
            seed=manifest.seed,
            networks=list(manifest.networks),
            jobs=manifest.jobs,
            config_hash=manifest.config_hash,
            experiments=list(manifest.experiments),
            wall_seconds=time.perf_counter() - run_start,
        )
        for record in carried:
            snapshot.add_unit(record)
        for record in records:
            snapshot.add_unit(record)
        snapshot.save(checkpoint_path)

    if jobs > 1 or resume is not None:
        units = [
            unit
            for unit in plan_units(config, names)
            if unit.label not in completed
        ]
        for record in execute_units(
            config, units, jobs=jobs, arch=ctx.arch,
            policy=policy, checkpoint=checkpoint,
        ):
            manifest.add_unit(record)

    unit_phase_ran = jobs > 1 or resume is not None
    phase = "assembly" if unit_phase_ran else "serial"
    results = []
    for name in names:
        snapshot = ctx.artifacts.counters()
        start = time.perf_counter()
        status, error, trace = "ok", "", ""
        with obs.span(
            f"experiment:{name}", cat="experiment", experiment=name, phase=phase
        ) as exp_span:
            try:
                result = EXPERIMENTS[name](ctx)
            except Exception as exc:
                if strict:
                    raise
                status, error = "error", f"{type(exc).__name__}: {exc}"
                trace = traceback.format_exc()
                result = _failed_result(name, exc)
            exp_span.set(status=status)
        results.append(result)
        delta = ctx.artifacts.delta_since(snapshot)
        manifest.add_unit(
            UnitRecord(
                unit=f"{name}:{phase}" if unit_phase_ran else name,
                experiment=name,
                network=None,
                phase=phase,
                worker=os.getpid(),
                seconds=time.perf_counter() - start,
                cache_hits=delta["hits"],
                cache_misses=delta["misses"],
                status=status,
                error=error,
                traceback=trace,
            )
        )
        if verbose:
            print(result.to_table())
            if charts:
                rendered = chart_mod.render(result)
                if rendered:
                    print()
                    print(rendered)
            print(f"[{name} took {time.perf_counter() - start:.1f}s]\n")
    manifest.wall_seconds = time.perf_counter() - run_start
    manifest.cache_stores = ctx.artifacts.stores
    manifest.cache_quarantined = ctx.artifacts.quarantined
    # Merged snapshot: the parent registry already folded in every worker
    # snapshot as its chain completed (schema v3).
    manifest.metrics = obs.get_metrics().snapshot()
    if verbose:
        from repro.experiments.summary import headline_summary

        summary = headline_summary(results)
        if summary:
            print(summary)
    return results, manifest


def run_all(
    config: PaperConfig | None = None,
    only: list[str] | None = None,
    verbose: bool = True,
    charts: bool = False,
    jobs: int = 1,
    **kwargs,
) -> list[ExperimentResult]:
    """Run the selected experiments; returns results (manifest discarded).

    Keyword arguments (``policy``, ``strict``, ``resume``, …) pass
    through to :func:`run_all_with_manifest`.
    """
    results, _ = run_all_with_manifest(
        config, only=only, verbose=verbose, charts=charts, jobs=jobs, **kwargs
    )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=SCALES, default="reduced")
    parser.add_argument(
        "--only",
        default=None,
        help=f"comma-separated experiment ids ({','.join(EXPERIMENTS)})",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--networks", default=None, help="comma-separated subset")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the (experiment x network) work units",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per failed work unit (exponential backoff "
        "with deterministic jitter between attempts)",
    )
    parser.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per work unit before its worker is "
        "presumed hung and killed (--jobs > 1 only)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="MANIFEST",
        help="re-execute only the units this prior run manifest does not "
        "record as completed",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail fast on the first experiment that cannot assemble "
        "(default: emit an explicitly-marked FAILED table and continue)",
    )
    parser.add_argument(
        "--no-smallcnn", action="store_true",
        help="skip fig14's trained-small-CNN greedy search",
    )
    parser.add_argument("--charts", action="store_true", help="render ASCII figures")
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-unit wall-time/cache profile after the run",
    )
    parser.add_argument(
        "--manifest", default=None,
        help="write the run manifest JSON here "
        "(default with --jobs > 1: <cache_dir>/manifests/latest.json)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="TRACE_JSON",
        help="enable span tracing and write a Chrome trace-event file "
        "(open in Perfetto or chrome://tracing); worker-process spans "
        "are merged into one timeline",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the observability report (self-time per layer/"
        "network/experiment, cache hit rates, retries) after the run",
    )
    parser.add_argument("--output", default=None, help="also write tables to a file")
    parser.add_argument("--json", default=None, help="write results as JSON")
    args = parser.parse_args(argv)

    kwargs = {
        "scale": args.scale,
        "seed": args.seed,
        "use_cache": not args.no_cache,
        "smallcnn": not args.no_smallcnn,
    }
    if args.networks:
        kwargs["networks"] = args.networks.split(",")
    config = PaperConfig(**kwargs)
    only = args.only.split(",") if args.only else None
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    policy = RetryPolicy(
        max_attempts=args.retries + 1,
        unit_timeout=args.unit_timeout,
        seed=args.seed,
    )
    manifest_path = args.manifest
    if manifest_path is None and (args.jobs > 1 or args.resume):
        manifest_path = config.cache_dir / "manifests" / "latest.json"
    if args.trace:
        obs.enable_tracing()
    try:
        results, manifest = run_all_with_manifest(
            config,
            only=only,
            charts=args.charts,
            jobs=args.jobs,
            policy=policy,
            strict=args.strict,
            resume=args.resume,
            checkpoint_path=manifest_path,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (ValueError, OSError) as exc:
        if args.resume:  # unreadable/mismatched resume manifest
            print(f"error: {exc}", file=sys.stderr)
            return 2
        raise
    if args.profile:
        print(manifest.profile_table())
        print()
    if args.metrics:
        from repro.obs.report import metrics_report

        print(metrics_report(manifest.to_dict()))
        print()
    if args.trace:
        written = obs.write_chrome_trace(args.trace)
        print(f"wrote trace {args.trace} ({written} events)")
    if manifest_path is not None:
        manifest.save(manifest_path)
        print(f"wrote manifest {manifest_path}")
    if args.output:
        with open(args.output, "w") as handle:
            for result in results:
                handle.write(result.to_table())
                handle.write("\n\n")
        print(f"wrote {args.output}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(results_to_json_doc(results))
        print(f"wrote {args.json}")
    degraded = [
        unit for unit in manifest.units
        if unit.phase in ("assembly", "serial") and unit.status != "ok"
    ]
    if degraded:
        print(
            f"warning: {len(degraded)} experiment(s) emitted FAILED tables: "
            + ", ".join(unit.experiment for unit in degraded),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

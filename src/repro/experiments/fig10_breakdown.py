"""Fig. 10 — breakdown of execution activity, CNV normalized to baseline.

Each (unit, neuron-lane, cycle) triple is one event, categorized as
other / conv1 / non-zero / zero / stall (Section V-B).  The baseline bar
is 1.0 by construction; CNV's bar height equals 1/speedup, and its small
stall share shows CNV captures most of the zero-skipping potential.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentResult
from repro.hw.counters import LANE_EVENT_CATEGORIES

__all__ = ["run", "conv1_runtime_share"]


def conv1_runtime_share(ctx: ExperimentContext, name: str) -> float:
    """First-layer share of baseline runtime (Section V-B quotes google at
    35% vs a 21% average — part of why google speeds up least)."""
    timing = ctx.baseline_timing(name)
    first = ctx.network_structure(name).first_conv_layers()
    conv1_cycles = sum(l.cycles for l in timing.layers if l.name in first)
    return conv1_cycles / timing.total_cycles


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    for name in ctx.config.networks:
        base = ctx.baseline_timing(name)
        cnv = ctx.cnv_timing(name)
        base_events = base.lane_events()
        cnv_events = cnv.lane_events()
        base_total = sum(base_events.values())
        for arch, events in (("baseline", base_events), ("cnv", cnv_events)):
            row = {"network": name, "arch": arch}
            for category in LANE_EVENT_CATEGORIES:
                row[category] = events[category] / base_total
            row["total"] = sum(events.values()) / base_total
            rows.append(row)
    shares = ", ".join(
        f"{name} {conv1_runtime_share(ctx, name):.0%}"
        for name in ctx.config.networks
    )
    return ExperimentResult(
        experiment="fig10",
        title="Breakdown of execution activity (normalized to baseline)",
        rows=rows,
        columns=["network", "arch", *LANE_EVENT_CATEGORIES, "total"],
        notes="cnv total equals 1/speedup; a small stall share means CNV "
        "captures most of the zero-skipping potential (Section V-B). "
        f"conv1 share of baseline runtime: {shares} "
        "(paper: google 35%, average 21%).",
    )
